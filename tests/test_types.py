"""Tests for :mod:`repro.types`."""

from __future__ import annotations

import copy

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.types import (
    UNDECIDED,
    ProcessSet,
    Undecided,
    Verdict,
    process_range,
    validate_k,
    validate_process_ids,
)


class TestUndecided:
    def test_singleton_identity(self):
        assert Undecided() is UNDECIDED

    def test_copy_preserves_identity(self):
        assert copy.deepcopy(UNDECIDED) is UNDECIDED

    def test_is_falsy(self):
        assert not UNDECIDED

    def test_repr(self):
        assert repr(UNDECIDED) == "UNDECIDED"


class TestProcessRange:
    def test_basic(self):
        assert process_range(3) == (1, 2, 3)

    def test_single(self):
        assert process_range(1) == (1,)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            process_range(0)

    @given(st.integers(min_value=1, max_value=200))
    def test_length_and_bounds(self, n):
        ids = process_range(n)
        assert len(ids) == n
        assert ids[0] == 1
        assert ids[-1] == n


class TestValidateProcessIds:
    def test_sorts(self):
        assert validate_process_ids([3, 1, 2]) == (1, 2, 3)

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            validate_process_ids([1, 1])

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            validate_process_ids([0])
        with pytest.raises(ValueError):
            validate_process_ids([-1])

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            validate_process_ids([True, 2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_process_ids([])


class TestValidateK:
    def test_accepts_valid(self):
        assert validate_k(2, 5) == 2

    def test_accepts_k_at_least_n(self):
        assert validate_k(7, 5) == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            validate_k(0, 5)

    def test_rejects_bool(self):
        with pytest.raises(ValueError):
            validate_k(True, 5)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            validate_k(1, 0)


class TestProcessSet:
    def test_iteration_is_sorted(self):
        assert list(ProcessSet([3, 1, 2])) == [1, 2, 3]

    def test_membership_and_len(self):
        group = ProcessSet([1, 2])
        assert 1 in group and 3 not in group
        assert len(group) == 2

    def test_set_operations(self):
        a = ProcessSet([1, 2, 3])
        b = ProcessSet([3, 4])
        assert list(a | b) == [1, 2, 3, 4]
        assert list(a & b) == [3]
        assert list(a - b) == [1, 2]

    def test_disjoint_and_subset(self):
        assert ProcessSet([1]).isdisjoint(ProcessSet([2]))
        assert ProcessSet([1]).issubset(ProcessSet([1, 2]))

    def test_smallest(self):
        assert ProcessSet([5, 3]).smallest == 3

    def test_smallest_empty_raises(self):
        with pytest.raises(ValueError):
            ProcessSet([]).smallest

    def test_repr(self):
        assert repr(ProcessSet([2, 1])) == "{p1, p2}"

    @given(st.sets(st.integers(min_value=1, max_value=30)), st.sets(st.integers(min_value=1, max_value=30)))
    def test_operations_match_frozenset(self, left, right):
        a, b = ProcessSet(left), ProcessSet(right)
        assert set(a | b) == left | right
        assert set(a & b) == left & right
        assert set(a - b) == left - right


class TestVerdict:
    def test_str(self):
        assert str(Verdict.SOLVABLE) == "solvable"
        assert str(Verdict.IMPOSSIBLE) == "impossible"

    def test_members(self):
        assert {v.name for v in Verdict} == {"SOLVABLE", "IMPOSSIBLE", "UNKNOWN"}
