"""Tests for the closed-form borders (Theorem 2, Theorem 8, Corollary 13)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.borders import (
    corollary13_verdict,
    initial_crash_border_f,
    partially_synchronous_border_k,
    theorem2_verdict,
    theorem8_verdict,
)
from repro.exceptions import ConfigurationError
from repro.types import Verdict


class TestTheorem2:
    def test_paper_examples(self):
        # n=4, f=2: impossible for k=1 only.
        assert theorem2_verdict(4, 2, 1).is_impossible
        assert theorem2_verdict(4, 2, 2).verdict is Verdict.UNKNOWN
        # n=7, f=4: impossible up to k=2.
        assert theorem2_verdict(7, 4, 1).is_impossible
        assert theorem2_verdict(7, 4, 2).is_impossible
        assert theorem2_verdict(7, 4, 3).verdict is Verdict.UNKNOWN

    def test_trivial_region(self):
        assert theorem2_verdict(3, 1, 3).is_solvable
        assert theorem2_verdict(3, 1, 5).is_solvable

    def test_no_failures_makes_no_claim(self):
        assert theorem2_verdict(5, 0, 1).verdict is Verdict.UNKNOWN

    def test_consensus_with_single_failure_impossible_for_small_systems(self):
        # k=1, f=1: impossible iff n - 1 <= n - 1, i.e. always (n >= 2).
        for n in range(2, 8):
            assert theorem2_verdict(n, 1, 1).is_impossible

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theorem2_verdict(0, 0, 1)
        with pytest.raises(ConfigurationError):
            theorem2_verdict(3, 4, 1)
        with pytest.raises(ConfigurationError):
            theorem2_verdict(3, 1, 0)

    def test_border_k_helper(self):
        assert partially_synchronous_border_k(4, 2) == 2
        assert partially_synchronous_border_k(7, 4) == 3
        with pytest.raises(ConfigurationError):
            partially_synchronous_border_k(4, 0)

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=1, max_value=29))
    def test_impossible_region_downward_closed_in_k(self, n, f):
        if f >= n:
            return
        for k in range(2, n):
            if theorem2_verdict(n, f, k).is_impossible:
                assert theorem2_verdict(n, f, k - 1).is_impossible


class TestTheorem8:
    def test_paper_borderline_examples(self):
        # consensus needs a correct majority
        assert theorem8_verdict(5, 2, 1).is_solvable
        assert theorem8_verdict(4, 2, 1).is_impossible
        # 2-set agreement: solvable iff 2n > 3f
        assert theorem8_verdict(6, 3, 2).is_solvable
        assert theorem8_verdict(6, 4, 2).is_impossible
        assert theorem8_verdict(7, 4, 2).is_solvable

    def test_exact_border_case_is_impossible(self):
        # k*n == (k+1)*f
        assert theorem8_verdict(6, 4, 2).is_impossible
        assert theorem8_verdict(8, 6, 3).is_impossible

    def test_f_zero_always_solvable(self):
        for n in range(1, 10):
            for k in range(1, n + 1):
                assert theorem8_verdict(n, 0, k).is_solvable

    def test_border_f_helper(self):
        assert initial_crash_border_f(6, 2) == 3
        assert initial_crash_border_f(5, 1) == 2
        for n in range(2, 12):
            for k in range(1, n):
                f_max = initial_crash_border_f(n, k)
                assert theorem8_verdict(n, f_max, k).is_solvable
                if f_max + 1 <= n:
                    assert theorem8_verdict(n, f_max + 1, k).is_impossible

    def test_consistency_with_section6_algorithm_guarantee(self):
        # The Section VI protocol decides at most floor(n/(n-f)) values;
        # Theorem 8's solvable region is exactly k >= that bound.
        for n in range(2, 15):
            for f in range(0, n):
                achieved = n // (n - f)
                for k in range(1, n + 1):
                    expected = k >= achieved
                    assert theorem8_verdict(n, f, k).is_solvable == expected, (n, f, k)

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=40),
    )
    def test_monotonicity(self, n, f, k):
        if f > n:
            return
        verdict = theorem8_verdict(n, f, k)
        if verdict.is_solvable:
            # more allowed values or fewer failures keeps it solvable
            assert theorem8_verdict(n, f, k + 1).is_solvable
            if f > 0:
                assert theorem8_verdict(n, f - 1, k).is_solvable
        else:
            assert theorem8_verdict(n, f, max(k - 1, 1)).is_impossible or k == 1
            if f < n:
                assert theorem8_verdict(n, f + 1, k).is_impossible


class TestCorollary13:
    def test_border(self):
        for n in range(4, 10):
            assert corollary13_verdict(n, 1).is_solvable
            assert corollary13_verdict(n, n - 1).is_solvable
            for k in range(2, n - 1):
                assert corollary13_verdict(n, k).is_impossible, (n, k)

    def test_small_systems_have_no_impossible_region(self):
        assert corollary13_verdict(2, 1).is_solvable
        assert corollary13_verdict(3, 1).is_solvable
        assert corollary13_verdict(3, 2).is_solvable

    def test_trivial_region(self):
        assert corollary13_verdict(4, 4).is_solvable
        assert corollary13_verdict(4, 9).is_solvable

    def test_sources_cited(self):
        assert corollary13_verdict(6, 3).source == "Theorem 10"
        assert corollary13_verdict(6, 1).source == "Corollary 13"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            corollary13_verdict(1, 1)
        with pytest.raises(ConfigurationError):
            corollary13_verdict(4, 0)


class TestBorderVerdictObject:
    def test_flags(self):
        verdict = theorem8_verdict(6, 3, 2)
        assert verdict.is_solvable and not verdict.is_impossible
        assert "Theorem 8" in str(verdict)
        assert verdict.parameters == {"n": 6, "f": 3, "k": 2}

    def test_explanations_carry_numbers(self):
        assert "12" in theorem8_verdict(6, 4, 2).explanation  # k*n = 12
        assert "n-f" in theorem2_verdict(6, 3, 1).explanation
