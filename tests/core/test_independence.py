"""Tests for T-independence (Definition 6, Section IV)."""

from __future__ import annotations

import pytest

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.trivial import DecideOwnValue
from repro.core.independence import (
    asymmetric_family,
    check_independence,
    f_resilient_family,
    obstruction_free_family,
    wait_free_family,
)
from repro.exceptions import ConfigurationError
from repro.models.initial_crash import initial_crash_model


class TestFamilies:
    def test_wait_free_family_size(self):
        assert len(list(wait_free_family((1, 2, 3)))) == 7

    def test_obstruction_free_family(self):
        assert list(obstruction_free_family((2, 1))) == [frozenset({1}), frozenset({2})]

    def test_f_resilient_family(self):
        family = list(f_resilient_family((1, 2, 3, 4), f=1))
        assert frozenset({1, 2, 3}) in family
        assert frozenset({1, 2, 3, 4}) in family
        assert all(len(s) >= 3 for s in family)

    def test_f_resilient_family_validation(self):
        with pytest.raises(ConfigurationError):
            list(f_resilient_family((1, 2), f=3))

    def test_asymmetric_family(self):
        family = list(asymmetric_family((1, 2, 3), pivot=2))
        assert all(2 in s for s in family)
        assert len(family) == 4

    def test_asymmetric_family_validation(self):
        with pytest.raises(ConfigurationError):
            list(asymmetric_family((1, 2), pivot=9))


class TestCheckIndependence:
    def test_trivial_algorithm_is_wait_free(self):
        model = initial_crash_model(4, 3)
        proposals = {p: p for p in model.processes}
        witnesses = check_independence(
            DecideOwnValue(), model, wait_free_family(model.processes), proposals
        )
        assert len(witnesses) == 15
        assert all(w.holds for w in witnesses)

    def test_section6_algorithm_is_independent_for_large_groups_only(self):
        # Lemma 4 in miniature: groups of size >= n-f can decide on their
        # own; smaller groups cannot.
        n, f = 6, 3
        model = initial_crash_model(n, f)
        proposals = {p: p for p in model.processes}
        family = [frozenset({1, 2, 3}), frozenset({4, 5, 6}), frozenset({1, 2}), frozenset({6})]
        witnesses = check_independence(
            KSetInitialCrash(n, f), model, family, proposals, max_steps=400,
        )
        outcome = {tuple(sorted(w.subset)): w.holds for w in witnesses}
        assert outcome[(1, 2, 3)] is True
        assert outcome[(4, 5, 6)] is True
        assert outcome[(1, 2)] is False
        assert outcome[(6,)] is False

    def test_witness_reasons(self):
        n, f = 4, 2
        model = initial_crash_model(n, f)
        proposals = {p: p for p in model.processes}
        witnesses = check_independence(
            KSetInitialCrash(n, f), model, [frozenset({1})], proposals, max_steps=100,
        )
        assert not witnesses[0].holds
        assert "did not decide" in witnesses[0].reason

    def test_family_members_validated(self):
        model = initial_crash_model(3, 1)
        with pytest.raises(ConfigurationError):
            check_independence(
                DecideOwnValue(), model, [frozenset({9})], {p: p for p in model.processes}
            )

    def test_f_resilience_matches_failure_bound(self):
        # The Section VI protocol provides f-resilient progress: every group
        # of size >= n - f decides alone (Observation 1(b) + Lemma 4).
        n, f = 5, 2
        model = initial_crash_model(n, f)
        proposals = {p: p for p in model.processes}
        witnesses = check_independence(
            KSetInitialCrash(n, f), model, f_resilient_family(model.processes, f),
            proposals, max_steps=2_000,
        )
        assert all(w.holds for w in witnesses)
