"""Tests for the Theorem 1 machinery (:mod:`repro.core.impossibility`)."""

from __future__ import annotations

import pytest

from repro.algorithms.flawed_candidate import FlawedQuorumKSet
from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.sigma_omega_consensus import SigmaOmegaConsensus
from repro.core.impossibility import PartitionSpec, TheoremOneApplication
from repro.exceptions import ConfigurationError, PartitionError
from repro.failure_detectors.combined import sigma_omega_k
from repro.models.asynchronous import asynchronous_model
from repro.models.model import FailureAssumption
from repro.models.partially_synchronous import partially_synchronous_model
from repro.partitioning.partitions import theorem2_partition
from repro.partitioning.scenarios import Theorem10Scenario, Theorem2Scenario


class TestPartitionSpec:
    def test_basic_properties(self):
        spec = PartitionSpec(processes=(1, 2, 3, 4, 5), d_blocks=(frozenset({1, 2}),))
        assert spec.k == 2
        assert spec.d_union == {1, 2}
        assert spec.d_bar == {3, 4, 5}
        assert spec.all_blocks() == (frozenset({1, 2}), frozenset({3, 4, 5}))
        assert "D-bar" in spec.describe()

    def test_validation(self):
        with pytest.raises(PartitionError):
            PartitionSpec(processes=(1, 2), d_blocks=(frozenset(),))
        with pytest.raises(PartitionError):
            PartitionSpec(processes=(1, 2), d_blocks=(frozenset({3}),))
        with pytest.raises(PartitionError):
            PartitionSpec(processes=(1, 2, 3), d_blocks=(frozenset({1}), frozenset({1, 2})))
        with pytest.raises(PartitionError):
            # D-bar would be empty
            PartitionSpec(processes=(1, 2), d_blocks=(frozenset({1}), frozenset({2})))

    def test_k1_partition_has_no_blocks(self):
        spec = PartitionSpec(processes=(1, 2, 3), d_blocks=())
        assert spec.k == 1
        assert spec.d_union == frozenset()
        assert spec.d_bar == {1, 2, 3}


class TestApplicationValidation:
    def test_partition_must_match_model(self):
        model = partially_synchronous_model(4, 2)
        foreign = PartitionSpec(processes=(1, 2, 3, 4, 5), d_blocks=(frozenset({1, 2}),))
        with pytest.raises(ConfigurationError):
            TheoremOneApplication(KSetInitialCrash(4, 2), model, foreign)

    def test_proposals_must_be_distinct(self):
        model = partially_synchronous_model(4, 2)
        partition = theorem2_partition(4, 2, 1)
        with pytest.raises(ConfigurationError):
            TheoremOneApplication(
                KSetInitialCrash(4, 2), model, partition,
                proposals={1: "x", 2: "x", 3: "y", 4: "z"},
            )


class TestTheorem2Application:
    def test_all_conditions_hold_for_section6_algorithm(self):
        scenario = Theorem2Scenario(n=7, f=4, k=2, max_steps=6_000)
        witness = scenario.apply(KSetInitialCrash(7, 4))
        assert witness.holds
        assert [r.condition for r in witness.reports] == ["A", "B", "C", "D"]
        assert "does not solve 2-set agreement" in witness.conclusion
        assert "Dolev" in witness.report("C").details

    def test_condition_a_run_attached(self):
        scenario = Theorem2Scenario(n=4, f=2, k=1, max_steps=3_000)
        report = scenario.application(KSetInitialCrash(4, 2)).check_condition_a()
        assert report.satisfied
        assert report.runs and report.runs[0].completed

    def test_condition_c_uses_catalogue(self):
        scenario = Theorem2Scenario(n=4, f=2, k=1)
        application = scenario.application(KSetInitialCrash(4, 2))
        restricted = application.restricted_model()
        assert restricted.n >= 3
        assert application.check_condition_c().satisfied

    def test_condition_a_fails_for_robust_algorithm(self):
        # The (Sigma,Omega) consensus protocol never decides without quorum
        # communication, so the partitioning run cannot satisfy (dec-D):
        # Theorem 1 is not applicable — consistent with consensus being
        # solvable once the model is augmented with (Sigma, Omega).
        n, f, k = 7, 4, 2
        detector = sigma_omega_k(1, gst=0)
        model = asynchronous_model(n, n - 1, failure_detector=detector)
        partition = theorem2_partition(n, f, k)
        application = TheoremOneApplication(
            SigmaOmegaConsensus(n), model, partition,
            restricted_failures=FailureAssumption(1),
            max_steps=1_500,
        )
        report = application.check_condition_a()
        assert not report.satisfied
        witness = application.apply()
        assert not witness.holds
        assert "could not be established" in witness.conclusion

    def test_report_lookup_unknown_condition(self):
        scenario = Theorem2Scenario(n=4, f=2, k=1, max_steps=2_000)
        witness = scenario.apply(KSetInitialCrash(4, 2))
        with pytest.raises(KeyError):
            witness.report("Z")
        assert "Theorem 1 applied" in witness.describe()


class TestTheorem10Application:
    def test_flawed_candidate_satisfies_all_conditions(self):
        scenario = Theorem10Scenario(n=6, k=3)
        witness = scenario.apply(FlawedQuorumKSet(6, 3))
        assert witness.holds
        assert "weakest failure detector" in witness.report("C").details

    def test_condition_d_indistinguishability(self):
        scenario = Theorem10Scenario(n=6, k=3)
        report = scenario.application(FlawedQuorumKSet(6, 3)).check_condition_d()
        assert report.satisfied
        assert len(report.runs) == 2

    def test_condition_d_fails_when_d_too_large_for_failure_bound(self):
        # If the model only tolerates fewer crashes than |D|, the "D
        # initially dead" construction is unavailable and the check reports it.
        n, k = 6, 3
        scenario = Theorem10Scenario(n=n, k=k)
        model = asynchronous_model(n, 1, failure_detector=scenario.detector)
        application = TheoremOneApplication(
            FlawedQuorumKSet(n, k), model, scenario.partition,
            restricted_failures=FailureAssumption(1),
            condition_c_justification="assumed",
            max_steps=2_000,
        )
        report = application.check_condition_d()
        assert not report.satisfied
        assert "failure bound" in report.details
