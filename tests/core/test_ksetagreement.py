"""Tests for :mod:`repro.core.ksetagreement`."""

from __future__ import annotations

import pytest

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.trivial import DecideOwnValue
from repro.core.ksetagreement import (
    KSetAgreementProblem,
    check_agreement,
    check_termination,
    check_validity,
)
from repro.exceptions import (
    AgreementViolation,
    ConfigurationError,
    TerminationViolation,
    ValidityViolation,
)
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.simulation.adversary import IsolationAdversary, PartitioningAdversary
from repro.simulation.executor import ExecutionSettings, execute


def make_run(adversary=None, n=6, f=3, dead=(), max_steps=5_000):
    model = initial_crash_model(n, f)
    pattern = FailurePattern.initially_dead(model.processes, dead)
    return execute(
        KSetInitialCrash(n, f), model, {p: p for p in model.processes},
        adversary=adversary, failure_pattern=pattern,
        settings=ExecutionSettings(max_steps=max_steps),
    )


class TestCheckers:
    def test_agreement_ok(self):
        run = make_run()
        assert check_agreement(run, 1) == []

    def test_agreement_violation_details(self):
        run = make_run(adversary=PartitioningAdversary([[1, 2, 3], [4, 5, 6]]))
        violations = check_agreement(run, 1)
        assert violations and "2 distinct" in violations[0]
        assert check_agreement(run, 2) == []

    def test_agreement_validates_k(self):
        with pytest.raises(ValueError):
            check_agreement(make_run(), 0)

    def test_validity_ok_and_violation(self):
        run = make_run()
        assert check_validity(run) == []
        # claim different proposals: every decision becomes invalid
        assert check_validity(run, proposals={p: f"x{p}" for p in run.processes})

    def test_termination_ok(self):
        assert check_termination(make_run()) == []

    def test_termination_violation_on_truncated_run(self):
        run = make_run(adversary=IsolationAdversary({1}), max_steps=40)
        violations = check_termination(run)
        assert violations and "never decided" in violations[0]


class TestProblem:
    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            KSetAgreementProblem(0)

    def test_is_consensus(self):
        assert KSetAgreementProblem(1).is_consensus
        assert not KSetAgreementProblem(2).is_consensus
        assert str(KSetAgreementProblem(1)) == "consensus"
        assert str(KSetAgreementProblem(3)) == "3-set agreement"

    def test_evaluate_all_ok(self):
        report = KSetAgreementProblem(2).evaluate(make_run(dead={5, 6}))
        assert report.all_ok
        assert report.decided == {1, 2, 3, 4}
        assert report.undecided_correct == frozenset()
        assert "OK" in report.summary()

    def test_evaluate_collects_violations(self):
        run = make_run(adversary=PartitioningAdversary([[1, 2, 3], [4, 5, 6]]))
        report = KSetAgreementProblem(1).evaluate(run)
        assert not report.all_ok
        assert not report.agreement_ok
        assert report.termination_ok
        assert "VIOLATED" in report.summary()

    def test_require_raises_specific_exceptions(self):
        run = make_run(adversary=PartitioningAdversary([[1, 2, 3], [4, 5, 6]]))
        with pytest.raises(AgreementViolation):
            KSetAgreementProblem(1).require(run)

        truncated = make_run(adversary=IsolationAdversary({1}), max_steps=30)
        with pytest.raises(TerminationViolation):
            KSetAgreementProblem(2).require(truncated)

        ok_run = make_run(dead={5, 6})
        with pytest.raises(ValidityViolation):
            KSetAgreementProblem(2).require(ok_run, proposals={p: f"x{p}" for p in ok_run.processes})

    def test_require_returns_report_when_ok(self):
        report = KSetAgreementProblem(2).require(make_run(dead={5, 6}))
        assert report.all_ok

    def test_exception_carries_run(self):
        run = make_run(adversary=PartitioningAdversary([[1, 2, 3], [4, 5, 6]]))
        try:
            KSetAgreementProblem(1).require(run)
        except AgreementViolation as violation:
            assert violation.run is run
