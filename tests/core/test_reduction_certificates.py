"""Tests for the Fact 1 reduction and for certificates."""

from __future__ import annotations

import pytest

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.core.borders import theorem2_verdict, theorem8_verdict
from repro.core.certificates import ImpossibilityCertificate, PossibilityCertificate
from repro.core.ksetagreement import KSetAgreementProblem
from repro.core.reduction import extract_consensus_protocol, run_extracted_consensus
from repro.exceptions import CertificateError
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.models.model import FailureAssumption
from repro.models.partially_synchronous import partially_synchronous_model
from repro.partitioning.scenarios import Theorem2Scenario
from repro.simulation.executor import execute


class TestReduction:
    def test_extracted_protocol_shape(self):
        model = partially_synchronous_model(7, 4)
        algorithm, restricted = extract_consensus_protocol(
            KSetInitialCrash(7, 4), model, {4, 5, 6, 7}
        )
        assert restricted.processes == (4, 5, 6, 7)
        assert restricted.f == 1
        assert algorithm.subset == {4, 5, 6, 7}

    def test_extracted_protocol_custom_failures(self):
        model = partially_synchronous_model(7, 4)
        _algorithm, restricted = extract_consensus_protocol(
            KSetInitialCrash(7, 4), model, {4, 5, 6, 7},
            failures=FailureAssumption(3),
        )
        assert restricted.f == 3

    def test_fact1_on_fair_schedule(self):
        # On a benign schedule the extracted protocol does reach a single
        # value — the behaviour Fact 1 says a correct k-set algorithm would
        # have to guarantee in *every* admissible run of <D-bar>.
        model = partially_synchronous_model(7, 4)
        run, report = run_extracted_consensus(
            KSetInitialCrash(7, 4), model, {4, 5, 6, 7},
            proposals={p: p for p in model.processes},
        )
        assert run.completed
        assert report.k == 1
        assert report.all_ok

    def test_fact1_breaks_under_one_crash(self):
        # ... but with a single mid-run crash in <D-bar> the extracted
        # protocol loses termination, which is exactly the contradiction
        # with condition (C).
        model = partially_synchronous_model(7, 4)
        d_bar = (4, 5, 6, 7)
        pattern = FailurePattern(d_bar, {4: 2})
        run, report = run_extracted_consensus(
            KSetInitialCrash(7, 4), model, d_bar,
            proposals={p: p for p in model.processes},
            failure_pattern=pattern,
            max_steps=400,
        )
        assert not report.termination_ok


class TestPossibilityCertificate:
    def make_report(self, n=6, f=3, k=2):
        model = initial_crash_model(n, f)
        run = execute(KSetInitialCrash(n, f), model, {p: p for p in model.processes})
        return KSetAgreementProblem(k).evaluate(run)

    def test_verify_accepts_consistent_evidence(self):
        claim = theorem8_verdict(6, 3, 2)
        certificate = PossibilityCertificate(
            claim=claim, algorithm_name="kset", reports=(self.make_report(),),
        )
        assert certificate.verify() is certificate
        assert "SOLVABLE" in certificate.describe()

    def test_verify_rejects_wrong_claim(self):
        claim = theorem8_verdict(6, 4, 2)  # impossible point
        certificate = PossibilityCertificate(
            claim=claim, algorithm_name="kset", reports=(self.make_report(),),
        )
        with pytest.raises(CertificateError):
            certificate.verify()

    def test_verify_rejects_empty_or_violating_evidence(self):
        claim = theorem8_verdict(6, 3, 2)
        with pytest.raises(CertificateError):
            PossibilityCertificate(claim=claim, algorithm_name="kset", reports=()).verify()
        bad_report = self.make_report(k=1)  # may be fine; force violation below
        if bad_report.all_ok:
            from repro.simulation.adversary import PartitioningAdversary

            model = initial_crash_model(6, 3)
            run = execute(
                KSetInitialCrash(6, 3), model, {p: p for p in model.processes},
                adversary=PartitioningAdversary([[1, 2, 3], [4, 5, 6]]),
            )
            bad_report = KSetAgreementProblem(1).evaluate(run)
        with pytest.raises(CertificateError):
            PossibilityCertificate(
                claim=theorem8_verdict(6, 3, 1) if theorem8_verdict(6, 3, 1).is_solvable else claim,
                algorithm_name="kset",
                reports=(bad_report,),
            ).verify()


class TestImpossibilityCertificate:
    def test_verify_with_theorem1_witness(self):
        scenario = Theorem2Scenario(n=4, f=2, k=1, max_steps=3_000)
        witness = scenario.apply(KSetInitialCrash(4, 2))
        claim = theorem2_verdict(4, 2, 1)
        certificate = ImpossibilityCertificate(claim=claim, witness=witness)
        assert certificate.verify() is certificate
        assert "Theorem 1 witness" in certificate.describe()

    def test_verify_with_constructed_violation(self):
        from repro.simulation.adversary import PartitioningAdversary

        model = initial_crash_model(6, 4)
        run = execute(
            KSetInitialCrash(6, 4), model, {p: p for p in model.processes},
            adversary=PartitioningAdversary([[1, 2], [3, 4], [5, 6]]),
        )
        report = KSetAgreementProblem(2).evaluate(run)
        claim = theorem8_verdict(6, 4, 2)
        certificate = ImpossibilityCertificate(claim=claim, violation_reports=(report,))
        assert certificate.verify() is certificate
        assert "violation" in certificate.describe()

    def test_verify_rejects_unbacked_certificate(self):
        claim = theorem8_verdict(6, 4, 2)
        with pytest.raises(CertificateError):
            ImpossibilityCertificate(claim=claim).verify()

    def test_verify_rejects_solvable_claim(self):
        claim = theorem8_verdict(6, 3, 2)
        with pytest.raises(CertificateError):
            ImpossibilityCertificate(claim=claim).verify()
