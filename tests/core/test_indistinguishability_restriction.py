"""Tests for Definition 2 / Definition 3 and the restriction operator."""

from __future__ import annotations

import pytest

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.core.indistinguishability import (
    distinguishing_processes,
    indistinguishable_until_decision,
    runs_compatible,
)
from repro.core.restriction import restrict
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.models.model import FailureAssumption
from repro.simulation.adversary import IsolationAdversary, PartitioningAdversary
from repro.simulation.executor import ExecutionSettings, execute, group_decided


N, F = 6, 3
GROUP = frozenset({4, 5, 6})
OTHERS = frozenset({1, 2, 3})


def full_model():
    return initial_crash_model(N, F)


def proposals():
    return {p: p for p in range(1, N + 1)}


def isolation_run():
    """The group {4,5,6} runs alone while {1,2,3} stay silent but alive."""
    return execute(
        KSetInitialCrash(N, F), full_model(), proposals(),
        adversary=IsolationAdversary(GROUP),
        settings=ExecutionSettings(stop_condition=group_decided(GROUP)),
    )


def initially_dead_run():
    """The group {4,5,6} runs alone because {1,2,3} are initially dead."""
    pattern = FailurePattern.initially_dead(tuple(range(1, N + 1)), OTHERS)
    return execute(
        KSetInitialCrash(N, F), full_model(), proposals(),
        failure_pattern=pattern,
    )


def partitioned_run():
    return execute(
        KSetInitialCrash(N, F), full_model(), proposals(),
        adversary=PartitioningAdversary([OTHERS, GROUP]),
    )


class TestIndistinguishability:
    def test_run_indistinguishable_from_itself(self):
        run = isolation_run()
        assert indistinguishable_until_decision(run, run, GROUP)

    def test_isolation_vs_initially_dead(self):
        # The classic argument: the group cannot tell whether the others are
        # dead or merely silent.
        assert indistinguishable_until_decision(isolation_run(), initially_dead_run(), GROUP)

    def test_distinguishable_for_the_others(self):
        # For {1,2,3} the partitioned run (where they only hear each other)
        # differs from the fair run (where they hear everybody).
        fair_run = execute(KSetInitialCrash(N, F), full_model(), proposals())
        differing = distinguishing_processes(partitioned_run(), fair_run, OTHERS)
        assert differing

    def test_partitioned_vs_isolated_for_group(self):
        # Under the partitioning adversary the group receives exactly the
        # same messages as in isolation, so the runs are indistinguishable
        # for the group.
        assert indistinguishable_until_decision(partitioned_run(), isolation_run(), GROUP)

    def test_different_proposals_are_distinguishable(self):
        base = isolation_run()
        changed = execute(
            KSetInitialCrash(N, F), full_model(),
            {**proposals(), 4: 99},
            adversary=IsolationAdversary(GROUP),
            settings=ExecutionSettings(stop_condition=group_decided(GROUP)),
        )
        assert distinguishing_processes(base, changed, GROUP)


class TestCompatibility:
    def test_compatible_when_counterpart_exists(self):
        candidates = [isolation_run(), partitioned_run()]
        references = [initially_dead_run()]
        holds, matching = runs_compatible(candidates, references, GROUP)
        assert holds
        assert set(matching.values()) == {0}

    def test_incompatible_when_no_counterpart(self):
        changed = execute(
            KSetInitialCrash(N, F), full_model(), {**proposals(), 4: 99},
            adversary=IsolationAdversary(GROUP),
            settings=ExecutionSettings(stop_condition=group_decided(GROUP)),
        )
        holds, matching = runs_compatible([changed], [initially_dead_run()], GROUP)
        assert not holds
        assert matching[0] is None

    def test_empty_candidates_trivially_compatible(self):
        holds, matching = runs_compatible([], [isolation_run()], GROUP)
        assert holds and matching == {}


class TestRestriction:
    def test_restrict_returns_consistent_pair(self):
        algorithm, model = restrict(KSetInitialCrash(N, F), full_model(), GROUP)
        assert model.processes == tuple(sorted(GROUP))
        assert algorithm.subset == GROUP
        assert algorithm.full_processes == tuple(range(1, N + 1))

    def test_restricted_failures_default_capped(self):
        _algorithm, model = restrict(KSetInitialCrash(N, F), full_model(), GROUP)
        assert model.f <= len(GROUP) - 1

    def test_explicit_failure_assumption(self):
        _algorithm, model = restrict(
            KSetInitialCrash(N, F), full_model(), GROUP,
            failures=FailureAssumption(1),
        )
        assert model.f == 1

    def test_restricted_run_matches_initially_dead_run_on_group(self):
        # Condition (D) in miniature: A|D in <D> vs. A in M with the rest dead.
        algorithm, model = restrict(KSetInitialCrash(N, F), full_model(), GROUP)
        restricted_run = execute(algorithm, model, {p: p for p in GROUP})
        full_run = initially_dead_run()
        assert indistinguishable_until_decision(restricted_run, full_run, GROUP)
        assert restricted_run.decisions() == {p: full_run.decisions()[p] for p in GROUP}
