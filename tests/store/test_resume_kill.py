"""The resume acceptance test: SIGKILL a multiprocessing campaign, rerun.

A child process runs a process-backend campaign against a persistent
store.  The parent watches the store grow, SIGKILLs the child's whole
process group mid-run, then reruns the same campaign against the same
store and asserts the two load-bearing guarantees:

* the resumed ``CampaignResult`` is **equal** to an uninterrupted run's;
* every scenario the killed campaign completed is served from cache
  (``stats.cached >= completed-at-kill-time``), so no finished work is
  ever recomputed.
"""

from __future__ import annotations

import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignRunner
from repro.store import CachingRunner, open_store
from slow_kind import slow_specs  # registers the kind in this process too

HERE = Path(__file__).resolve().parent
SRC = HERE.parent.parent / "src"

SCENARIOS = 60
SLEEP_MS = 40

CHILD_SCRIPT = """
import sys
from repro.campaign import CampaignRunner
from repro.store import CachingRunner, open_store
from slow_kind import slow_specs

store_path, count, sleep_ms = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
specs = slow_specs(count, sleep_ms=sleep_ms)
runner = CachingRunner(
    open_store(store_path),
    CampaignRunner(backend="process", workers=2, chunk_size=1),
)
runner.run(specs)
print("FINISHED", flush=True)
"""


def _stored_count(path: Path) -> int:
    """Count completed scenarios without opening the store machinery.

    The JSONL loader self-heals files on open, which must not race the
    child's appends — so poll the raw bytes instead.  SQLite readers are
    safe but may catch the writer mid-commit; treat that as "no change".
    """
    if not path.exists():
        return 0
    if path.suffix == ".jsonl":
        return path.read_bytes().count(b"\n")
    try:
        connection = sqlite3.connect(str(path))
        try:
            row = connection.execute("SELECT COUNT(*) FROM results").fetchone()
            return int(row[0])
        finally:
            connection.close()
    except sqlite3.Error:
        return 0


def _run_child_until_killed(store_path: Path, kill_after: int) -> int:
    """Start the campaign child, SIGKILL its process group mid-run.

    Returns the number of scenarios the store held right after the kill.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC), str(HERE)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(store_path), str(SCENARIOS), str(SLEEP_MS)],
        env=env,
        cwd=str(HERE),
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        start_new_session=True,  # its own process group: the kill takes the pool down too
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if _stored_count(store_path) >= kill_after:
                break
            if child.poll() is not None:
                stdout, stderr = child.communicate(timeout=10)
                pytest.fail(
                    f"campaign child exited before the kill "
                    f"(rc={child.returncode}):\n{stderr.decode(errors='replace')}"
                )
            time.sleep(0.02)
        else:
            pytest.fail(f"store never reached {kill_after} outcomes within the deadline")
        os.killpg(os.getpgid(child.pid), signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:  # belt and braces: never leak the child
            try:
                os.killpg(os.getpgid(child.pid), signal.SIGKILL)
            except ProcessLookupError:
                pass
            child.wait(timeout=30)
    assert child.returncode != 0  # it really was killed, not finished
    return _stored_count(store_path)


@pytest.mark.parametrize("store_name", ["resume.jsonl", "resume.sqlite"])
def test_killed_process_campaign_resumes_to_identical_result(tmp_path, store_name):
    store_path = tmp_path / store_name
    completed_before_kill = _run_child_until_killed(store_path, kill_after=4)
    assert completed_before_kill >= 4  # the campaign demonstrably made progress

    specs = slow_specs(SCENARIOS, sleep_ms=SLEEP_MS)
    with open_store(store_path) as store:
        completed = len(store)  # may exceed the raw line count momentarily observed
        assert completed >= completed_before_kill >= 4
        assert completed < SCENARIOS  # ... and demonstrably was interrupted

        resumed_runner = CachingRunner(
            store, CampaignRunner(backend="process", workers=2, chunk_size=1)
        )
        resumed = resumed_runner.run(specs)

    uninterrupted = CampaignRunner().run(specs)
    assert resumed == uninterrupted  # the acceptance equality
    assert [o.spec for o in resumed.outcomes] == [o.spec for o in uninterrupted.outcomes]

    stats = resumed_runner.last_stats
    assert stats.cached >= completed_before_kill  # completed work served from cache
    assert stats.cached + stats.executed == SCENARIOS
    assert stats.executed == SCENARIOS - stats.cached


def test_resumed_store_is_complete_and_idempotent(tmp_path):
    """After a resume, a third run is a pure replay of the full campaign."""
    store_path = tmp_path / "resume.jsonl"
    _run_child_until_killed(store_path, kill_after=4)
    specs = slow_specs(SCENARIOS, sleep_ms=SLEEP_MS)
    with open_store(store_path) as store:
        CachingRunner(store, CampaignRunner(backend="process", workers=2)).run(specs)
        replay_runner = CachingRunner(store)
        replay = replay_runner.run(specs)
    assert replay_runner.last_stats.cached == SCENARIOS
    assert replay_runner.last_stats.executed == 0
    assert replay == CampaignRunner().run(specs)
