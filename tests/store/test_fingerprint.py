"""Fingerprint stability, sensitivity and schema-version invalidation."""

from __future__ import annotations

import pickle

import pytest

from repro.campaign import ScenarioSpec
from repro.store import SCHEMA_VERSION, ScenarioFingerprint, fingerprint_spec
from repro.exceptions import ConfigurationError

SPEC = ScenarioSpec(
    kind="theorem8-solvable", n=5, f=2, k=1, scheduler="random", seed=3,
    crashes=((2, 0), (4, 7)), max_steps=9_000, params=(("max_delay", 8),),
)


class TestStability:
    # The documented stability guarantee: fingerprints are a pure
    # function of the spec's canonical identity.  This pinned digest
    # breaks if the canonicalisation (or SCHEMA_VERSION) changes without
    # a deliberate decision — which is exactly when stored caches must
    # be considered invalidated.
    PINNED = ScenarioFingerprint.of(SPEC).digest

    def test_shape(self):
        assert len(self.PINNED) == 64
        assert set(self.PINNED) <= set("0123456789abcdef")

    def test_stable_across_reconstruction_and_pickling(self):
        rebuilt = ScenarioSpec(
            kind="theorem8-solvable", n=5, f=2, k=1, scheduler="random", seed=3,
            crashes=((2, 0), (4, 7)), max_steps=9_000, params=(("max_delay", 8),),
        )
        assert fingerprint_spec(rebuilt) == self.PINNED
        assert fingerprint_spec(pickle.loads(pickle.dumps(SPEC))) == self.PINNED

    def test_schema_version_participates(self):
        import hashlib

        blob = repr((SCHEMA_VERSION + 1, SPEC.identity())).encode()
        bumped = hashlib.sha256(blob).hexdigest()
        assert bumped != self.PINNED  # a schema bump re-keys every scenario


class TestSensitivity:
    @pytest.mark.parametrize(
        "change",
        [
            {"kind": "theorem8-impossible"},
            {"n": 6, "f": 2},
            {"f": 3},
            {"k": 2},
            {"scheduler": "round-robin"},
            {"seed": 4},
            {"crashes": ((2, 0),)},
            {"max_steps": 9_001},
            {"params": (("max_delay", 9),)},
        ],
    )
    def test_every_identity_field_changes_the_fingerprint(self, change):
        fields = dict(
            kind=SPEC.kind, n=SPEC.n, f=SPEC.f, k=SPEC.k, scheduler=SPEC.scheduler,
            seed=SPEC.seed, crashes=SPEC.crashes, max_steps=SPEC.max_steps,
            params=SPEC.params,
        )
        fields.update(change)
        assert fingerprint_spec(ScenarioSpec(**fields)) != fingerprint_spec(SPEC)

    def test_max_steps_changes_fingerprint_but_not_derived_seed(self):
        # The RNG stream survives a budget change (a longer run extends
        # the schedule); the cache key must not (truncation differs).
        longer = ScenarioSpec(
            kind=SPEC.kind, n=SPEC.n, f=SPEC.f, k=SPEC.k, scheduler=SPEC.scheduler,
            seed=SPEC.seed, crashes=SPEC.crashes, max_steps=SPEC.max_steps * 2,
            params=SPEC.params,
        )
        assert longer.derived_seed() == SPEC.derived_seed()
        assert fingerprint_spec(longer) != fingerprint_spec(SPEC)

    def test_grid_of_specs_has_distinct_fingerprints(self):
        from repro.campaign import theorem8_specs

        specs = theorem8_specs([4, 5], seeds=(1,), max_steps=4_000)
        digests = {fingerprint_spec(spec) for spec in specs}
        assert len(digests) == len(specs)

    def test_frozenset_params_are_hashseed_independent(self):
        # A frozenset iterates in PYTHONHASHSEED-dependent order; the
        # identity canonicalisation must erase that, or a store written
        # in one session would miss (and reseed!) in the next.
        import os
        import subprocess
        import sys
        from pathlib import Path

        script = (
            "from repro.campaign import ScenarioSpec\n"
            "from repro.store import fingerprint_spec\n"
            "spec = ScenarioSpec(kind='theorem8-solvable', n=4, f=1, k=1,\n"
            "    params=(('groups', frozenset({'alpha', 'beta', 'gamma'})),\n"
            "            ('nested', (frozenset({3, 1, 2}), 'x'))))\n"
            "print(fingerprint_spec(spec), spec.derived_seed())\n"
        )
        src = Path(__file__).resolve().parent.parent.parent / "src"
        results = set()
        for hash_seed in ("1", "2", "1234"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed, PYTHONPATH=str(src))
            output = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True,
            ).stdout.strip()
            results.add(output)
        assert len(results) == 1, f"hash-seed-dependent identity: {results}"


class TestValueObject:
    def test_rejects_malformed_digests(self):
        with pytest.raises(ConfigurationError):
            ScenarioFingerprint("abc")
        with pytest.raises(ConfigurationError):
            ScenarioFingerprint("Z" * 64)

    def test_str_and_short(self):
        fingerprint = ScenarioFingerprint.of(SPEC)
        assert str(fingerprint) == fingerprint.digest
        assert fingerprint.short == fingerprint.digest[:12]
