"""Progress reporting: event streams, pool-wide liveness, cached events."""

from __future__ import annotations

import io
import os

from repro.campaign import CampaignRunner, theorem8_specs
from repro.store import (
    CachingRunner,
    CollectingProgressReporter,
    LogProgressReporter,
    MemoryResultStore,
)

SPECS = theorem8_specs([4], seeds=(1,), max_steps=4_000)


class TestEventStream:
    def test_serial_campaign_reports_every_scenario(self):
        reporter = CollectingProgressReporter()
        caching = CachingRunner(MemoryResultStore(), progress=reporter)
        result = caching.run(SPECS)
        assert len(reporter.events) == len(result.outcomes) == len(SPECS)
        snap = reporter.snapshot()
        assert snap["total"] == len(SPECS)
        assert snap["completed"] == len(SPECS)
        assert snap["cached"] == 0
        assert snap["ok"] + snap["violation"] + snap["error"] == len(SPECS)

    def test_verdict_counts_match_the_result(self):
        reporter = CollectingProgressReporter()
        CachingRunner(MemoryResultStore(), progress=reporter).run(SPECS)
        counts = CampaignRunner().run(SPECS).verdict_counts()
        snap = reporter.snapshot()
        assert {k: snap[k] for k in ("ok", "violation", "error")} == counts

    def test_process_campaign_streams_worker_side_events(self):
        reporter = CollectingProgressReporter()
        caching = CachingRunner(
            MemoryResultStore(),
            CampaignRunner(backend="process", workers=2, chunk_size=3),
            progress=reporter,
        )
        result = caching.run(SPECS)
        assert len(reporter.events) == len(result.outcomes)
        pids = {event.worker_pid for event in reporter.events}
        assert len(pids) >= 1  # a degraded (fork-less) pool still reports
        if result.workers > 1:
            assert os.getpid() not in pids  # events were produced worker-side

    def test_cached_scenarios_appear_as_cached_events(self):
        store = MemoryResultStore()
        CachingRunner(store).run(SPECS[:10])
        reporter = CollectingProgressReporter()
        CachingRunner(store, progress=reporter).run(SPECS)
        cached_events = [event for event in reporter.events if event.cached]
        fresh_events = [event for event in reporter.events if not event.cached]
        assert len(cached_events) == 10
        assert len(fresh_events) == len(SPECS) - 10
        assert all(event.worker_pid == os.getpid() for event in cached_events)
        assert reporter.snapshot()["executed"] == len(SPECS) - 10

    def test_duplicate_specs_still_reach_the_announced_total(self):
        # Deduplicated duplicates complete with their first occurrence;
        # the reporter must still see completed == total at the end.
        reporter = CollectingProgressReporter()
        duplicated = [SPECS[0], SPECS[0], SPECS[1], SPECS[0]]
        CachingRunner(MemoryResultStore(), progress=reporter).run(duplicated)
        snap = reporter.snapshot()
        assert snap["total"] == 4
        assert snap["completed"] == 4
        assert snap["cached"] == 2  # the two replayed duplicate positions

    def test_progress_exceptions_never_break_the_campaign(self):
        class ExplodingReporter(CollectingProgressReporter):
            def on_event(self, event):
                raise RuntimeError("reporting is broken")

        caching = CachingRunner(MemoryResultStore(), progress=ExplodingReporter())
        result = caching.run(SPECS[:5])
        assert len(result.outcomes) == 5  # outcomes unaffected


class TestLogReporter:
    def test_log_lines_are_emitted(self):
        stream = io.StringIO()
        reporter = LogProgressReporter(every=10, stream=stream)
        CachingRunner(MemoryResultStore(), progress=reporter).run(SPECS)
        text = stream.getvalue()
        assert f"started: {len(SPECS)} scenarios" in text
        assert f"{len(SPECS)}/{len(SPECS)}" in text
        assert "violation=" in text

    def test_errors_are_always_logged(self):
        from repro.campaign import ScenarioSpec

        stream = io.StringIO()
        reporter = LogProgressReporter(every=1000, stream=stream)
        infeasible = ScenarioSpec(kind="theorem8-impossible", n=4, f=1, k=1)
        CachingRunner(MemoryResultStore(), progress=reporter).run([infeasible])
        assert "ERROR" in stream.getvalue()
