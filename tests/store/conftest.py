"""Shared fixtures for the store suite: one fixture per backend."""

from __future__ import annotations

import pytest

from repro.store import JsonlResultStore, MemoryResultStore, SqliteResultStore

BACKENDS = ("jsonl", "sqlite", "memory")


def make_store(backend: str, tmp_path):
    if backend == "jsonl":
        return JsonlResultStore(tmp_path / "store.jsonl")
    if backend == "sqlite":
        return SqliteResultStore(tmp_path / "store.sqlite")
    return MemoryResultStore()


@pytest.fixture(params=BACKENDS)
def store(request, tmp_path):
    """One ResultStore per registered backend, closed on teardown."""
    instance = make_store(request.param, tmp_path)
    yield instance
    instance.close()
