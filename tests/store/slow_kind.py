"""A deterministic, deliberately slow scenario kind for resume tests.

The kill/resume acceptance test needs a campaign that (a) takes long
enough to be killed mid-run, (b) produces outcomes that are a pure
function of the spec, so a resumed campaign can be asserted *equal* to
an uninterrupted one.  Real border scenarios satisfy (b) but finish in
microseconds at test sizes; this kind adds a controlled sleep.

The module registers the kind on import.  It is imported both by the
test process and by the child campaign process (which gets this
directory on its ``PYTHONPATH``), so cached outcomes written by the
child resolve to the same kind when the parent resumes.
"""

from __future__ import annotations

import time
from typing import List

from repro.campaign.scenarios import scenario_kind
from repro.campaign.spec import ScenarioOutcome, ScenarioSpec

SLOW_KIND = "store-test-slow"


def slow_specs(count: int, *, sleep_ms: int = 40) -> List[ScenarioSpec]:
    """``count`` distinct scenarios of the slow kind, ``sleep_ms`` each."""
    return [
        ScenarioSpec(
            kind=SLOW_KIND, n=4, f=1, k=1, scheduler="random", seed=index,
            params=(("sleep_ms", sleep_ms),),
        )
        for index in range(count)
    ]


@scenario_kind(SLOW_KIND)
def _run_slow(spec: ScenarioSpec) -> ScenarioOutcome:
    time.sleep(int(spec.param("sleep_ms", 40)) / 1000.0)
    # Everything below is derived from the spec alone — never from wall
    # time — so outcomes are identical across runs, processes and kills.
    fingerprint_ish = spec.derived_seed()
    return ScenarioOutcome(
        spec=spec,
        verdict="ok",
        distinct_decisions=1,
        decided=spec.n - spec.f,
        steps=fingerprint_ish % 997,
    )
