"""ResultStore backends: round-trip fidelity, persistence, crash repair."""

from __future__ import annotations

import json

import pytest

from repro.campaign import CampaignRunner, ScenarioSpec, theorem8_specs
from repro.exceptions import ConfigurationError
from repro.store import (
    JsonlResultStore,
    ScenarioFingerprint,
    SqliteResultStore,
    fingerprint_spec,
)

SPECS = theorem8_specs([4], seeds=(1,), max_steps=4_000)
OUTCOMES = CampaignRunner().run(SPECS).outcomes


class TestRoundTrip:
    def test_put_get_identity(self, store):
        for outcome in OUTCOMES[:5]:
            fingerprint = fingerprint_spec(outcome.spec)
            store.put(fingerprint, outcome)
            assert store.get(fingerprint) == outcome

    def test_get_accepts_fingerprint_objects_and_strings(self, store):
        outcome = OUTCOMES[0]
        fingerprint = ScenarioFingerprint.of(outcome.spec)
        store.put(fingerprint, outcome)
        assert store.get(fingerprint) == outcome
        assert store.get(fingerprint.digest) == outcome
        assert fingerprint in store
        assert fingerprint.digest in store

    def test_miss_returns_none(self, store):
        assert store.get("0" * 64) is None
        assert "0" * 64 not in store

    def test_get_many_returns_only_hits(self, store):
        stored = OUTCOMES[:3]
        for outcome in stored:
            store.put(fingerprint_spec(outcome.spec), outcome)
        wanted = [fingerprint_spec(o.spec) for o in OUTCOMES[:6]]
        hits = store.get_many(wanted)
        assert set(hits) == set(wanted[:3])
        assert all(hits[fingerprint_spec(o.spec)] == o for o in stored)

    def test_put_many_and_len(self, store):
        store.put_many((fingerprint_spec(o.spec), o) for o in OUTCOMES)
        assert len(store) == len(OUTCOMES)
        assert store.fingerprints() == frozenset(fingerprint_spec(o.spec) for o in OUTCOMES)

    def test_last_write_wins(self, store):
        first, second = OUTCOMES[0], OUTCOMES[1]
        key = fingerprint_spec(first.spec)
        store.put(key, first)
        store.put(key, second)
        assert store.get(key) == second
        assert len(store) == 1

    def test_error_outcomes_round_trip(self, store):
        infeasible = ScenarioSpec(kind="theorem8-impossible", n=4, f=1, k=1)
        (outcome,) = CampaignRunner().run([infeasible]).outcomes
        assert outcome.verdict == "error"
        store.put(fingerprint_spec(infeasible), outcome)
        assert store.get(fingerprint_spec(infeasible)) == outcome


@pytest.mark.parametrize("backend_cls,suffix", [
    (JsonlResultStore, "store.jsonl"),
    (SqliteResultStore, "store.sqlite"),
])
class TestPersistence:
    def test_reopen_sees_everything(self, tmp_path, backend_cls, suffix):
        path = tmp_path / suffix
        with backend_cls(path) as store:
            for outcome in OUTCOMES:
                store.put(fingerprint_spec(outcome.spec), outcome)
        with backend_cls(path) as reopened:
            assert len(reopened) == len(OUTCOMES)
            for outcome in OUTCOMES:
                assert reopened.get(fingerprint_spec(outcome.spec)) == outcome

    def test_creates_parent_directories(self, tmp_path, backend_cls, suffix):
        path = tmp_path / "nested" / "dirs" / suffix
        with backend_cls(path) as store:
            store.put(fingerprint_spec(OUTCOMES[0].spec), OUTCOMES[0])
        assert path.exists()


class TestJsonlCrashRepair:
    def _populate(self, path, count=3):
        with JsonlResultStore(path) as store:
            for outcome in OUTCOMES[:count]:
                store.put(fingerprint_spec(outcome.spec), outcome)

    def test_torn_final_line_is_dropped_and_healed(self, tmp_path):
        path = tmp_path / "store.jsonl"
        self._populate(path)
        intact = path.read_text()
        path.write_text(intact + '{"fp": "dead", "v": 1, "outco')  # killed mid-append
        with JsonlResultStore(path) as store:
            assert len(store) == 3  # the torn record is gone, the rest intact
            # ... and the file was healed: appends land on a fresh line.
            store.put(fingerprint_spec(OUTCOMES[3].spec), OUTCOMES[3])
        with JsonlResultStore(path) as reopened:
            assert len(reopened) == 4

    def test_missing_trailing_newline_is_repaired(self, tmp_path):
        path = tmp_path / "store.jsonl"
        self._populate(path)
        path.write_text(path.read_text().rstrip("\n"))  # complete record, torn newline
        with JsonlResultStore(path) as store:
            assert len(store) == 3
            store.put(fingerprint_spec(OUTCOMES[3].spec), OUTCOMES[3])
        with JsonlResultStore(path) as reopened:
            assert len(reopened) == 4  # no two records glued onto one line

    def test_mid_file_corruption_is_loud(self, tmp_path):
        path = tmp_path / "store.jsonl"
        self._populate(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:20]  # damage a non-final record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt result store"):
            JsonlResultStore(path)

    def test_non_object_json_line_is_loud_not_a_crash(self, tmp_path):
        # Valid JSON that is not an object must hit the corruption path,
        # not escape as an AttributeError from record.get().
        path = tmp_path / "store.jsonl"
        self._populate(path)
        lines = path.read_text().splitlines()
        lines.insert(1, "123")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt result store"):
            JsonlResultStore(path)

    def test_other_schema_versions_are_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "store.jsonl"
        self._populate(path)
        with path.open("a") as handle:
            handle.write(json.dumps({"fp": "f" * 64, "v": 999, "outcome": {}}) + "\n")
        with JsonlResultStore(path) as store:
            assert len(store) == 3
            assert store.get("f" * 64) is None

    # -- byte-level classification fixtures --------------------------------
    # These pin exactly which shapes truncate (kill artefacts) and which
    # raise (real corruption); see the module docstring of
    # repro/store/jsonl.py for the rationale of each.

    def test_corrupt_final_line_with_trailing_newline_raises(self, tmp_path):
        # A garbage line WITH its newline was written whole — a torn
        # single write(json + "\n") can never produce it, so it is real
        # corruption even in final position, not a kill artefact.
        path = tmp_path / "store.jsonl"
        self._populate(path)
        with path.open("a") as handle:
            handle.write("totally not json\n")
        with pytest.raises(ConfigurationError, match="corrupt result store"):
            JsonlResultStore(path)

    def test_torn_line_that_is_a_valid_json_prefix_is_truncated(self, tmp_path):
        # A record torn at an object boundary parses as valid JSON but
        # is not a loadable record; in tail position (no newline) it is
        # a kill artefact and must be healed away, never half-loaded.
        path = tmp_path / "store.jsonl"
        self._populate(path)
        intact = path.read_bytes()
        from repro.store import SCHEMA_VERSION
        path.write_bytes(intact + json.dumps({"fp": "a" * 64, "v": SCHEMA_VERSION}).encode())
        with JsonlResultStore(path) as store:
            assert len(store) == 3
            assert store.get("a" * 64) is None
        assert path.read_bytes() == intact  # healed back to the good prefix

    def test_empty_file_loads_empty_and_is_untouched(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_bytes(b"")
        with JsonlResultStore(path) as store:
            assert len(store) == 0
        assert path.read_bytes() == b""

    def test_file_of_only_other_schema_rows_loads_empty_untouched(self, tmp_path):
        path = tmp_path / "store.jsonl"
        rows = [{"fp": format(i, "064x"), "v": 999, "outcome": {}} for i in range(3)]
        original = "".join(json.dumps(row) + "\n" for row in rows).encode()
        path.write_bytes(original)
        with JsonlResultStore(path) as store:
            assert len(store) == 0
        assert path.read_bytes() == original  # foreign rows kept for forensics

    def test_current_version_record_with_broken_fp_is_corruption(self, tmp_path):
        # Right schema version but a non-string fingerprint: that is a
        # damaged record, not a foreign schema — it must raise when
        # followed by more data.
        path = tmp_path / "store.jsonl"
        self._populate(path)
        from repro.store import SCHEMA_VERSION
        lines = path.read_text().splitlines()
        lines.insert(1, json.dumps({"fp": 42, "v": SCHEMA_VERSION, "outcome": {}}))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt result store"):
            JsonlResultStore(path)


class TestSqliteSpecifics:
    def test_get_many_batches_over_the_in_limit(self, tmp_path):
        # More lookups than one IN (...) batch; hits must still all land.
        with SqliteResultStore(tmp_path / "store.sqlite") as store:
            for outcome in OUTCOMES:
                store.put(fingerprint_spec(outcome.spec), outcome)
            wanted = [fingerprint_spec(o.spec) for o in OUTCOMES]
            wanted += [format(i, "064x") for i in range(600)]  # misses
            hits = store.get_many(wanted)
            assert len(hits) == len(OUTCOMES)

    def test_unreadable_file_is_a_configuration_error(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_text("this is not a database")
        with pytest.raises(ConfigurationError):
            store = SqliteResultStore(path)
            try:
                store.get("0" * 64)
            finally:
                store.close()
