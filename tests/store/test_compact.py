"""``python -m repro.store.compact``: byte-level fixtures for both backends.

Compaction must keep exactly the rows the readers would index — kept
JSONL lines byte-for-byte, last duplicate winning — drop dead-schema
rows, heal torn tails, refuse mid-file corruption with the same error
the loader raises, and do all of it atomically with an honest
``--dry-run``.  Fixtures mirror ``test_mixed_schema.py``'s.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.campaign import CampaignRunner, theorem8_specs
from repro.exceptions import ConfigurationError
from repro.store import JsonlResultStore, SqliteResultStore, fingerprint_spec
from repro.store.compact import compact_store, main

SPECS = theorem8_specs([4], seeds=(1,), max_steps=4_000)
OUTCOMES = CampaignRunner().run(SPECS).outcomes[:4]


def _v2_rows():
    return [
        {
            "fp": format(0xB0 + i, "064x"),
            "v": 2,
            "outcome": {"verdict": "ok", "props": {"agreement": True}},
        }
        for i in range(2)
    ]


def _write_messy_jsonl(path):
    """v3 rows with one superseded duplicate, v2 rows around them, torn tail.

    Returns the v3 lines a reader would index, in kept order (the stale
    first write of outcome 0 is superseded by its re-put).
    """
    with JsonlResultStore(path) as store:
        store.put(fingerprint_spec(OUTCOMES[0].spec), OUTCOMES[0])  # superseded
        for outcome in OUTCOMES:
            store.put(fingerprint_spec(outcome.spec), outcome)
    v3_lines = path.read_text().splitlines()
    assert len(v3_lines) == len(OUTCOMES) + 1
    v2_lines = [json.dumps(row, sort_keys=True) for row in _v2_rows()]
    mixed = [v2_lines[0]] + v3_lines[:3] + [v2_lines[1]] + v3_lines[3:]
    path.write_bytes(("\n".join(mixed) + "\n").encode() + b'{"fp": "torn')
    return v3_lines[1:]  # the duplicate's last occurrence wins


class TestCompactJsonl:
    def test_keeps_live_rows_byte_for_byte(self, tmp_path):
        path = tmp_path / "store.jsonl"
        kept_lines = _write_messy_jsonl(path)
        report = compact_store(path)
        assert report.backend == "jsonl"
        assert report.rows_kept == len(OUTCOMES)
        assert report.rows_dropped_schema == 2
        assert report.rows_deduped == 1
        assert report.tail_bytes_healed == len(b'{"fp": "torn')
        assert not report.dry_run
        assert path.read_bytes() == ("\n".join(kept_lines) + "\n").encode()

    def test_compacted_store_reads_identically(self, tmp_path):
        path = tmp_path / "store.jsonl"
        _write_messy_jsonl(path)
        compact_store(path)
        with JsonlResultStore(path) as store:
            assert len(store) == len(OUTCOMES)
            for outcome in OUTCOMES:
                assert store.get(fingerprint_spec(outcome.spec)) == outcome

    def test_dry_run_reports_but_never_writes(self, tmp_path):
        path = tmp_path / "store.jsonl"
        _write_messy_jsonl(path)
        before = path.read_bytes()
        report = compact_store(path, dry_run=True)
        assert report.dry_run and report.changed
        assert report.rows_dropped_schema == 2 and report.rows_deduped == 1
        assert path.read_bytes() == before

    def test_idempotent(self, tmp_path):
        path = tmp_path / "store.jsonl"
        _write_messy_jsonl(path)
        compact_store(path)
        once = path.read_bytes()
        second = compact_store(path)
        assert not second.changed
        assert second.bytes_before == second.bytes_after == len(once)
        assert path.read_bytes() == once

    def test_clean_store_is_untouched(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with JsonlResultStore(path) as store:
            for outcome in OUTCOMES:
                store.put(fingerprint_spec(outcome.spec), outcome)
        before = path.read_bytes()
        report = compact_store(path)
        assert not report.changed and report.rows_kept == len(OUTCOMES)
        assert path.read_bytes() == before

    def test_empty_file_is_a_noop(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_bytes(b"")
        report = compact_store(path)
        assert report.rows_kept == 0 and not report.changed

    def test_mid_file_corruption_raises_and_preserves_the_file(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with JsonlResultStore(path) as store:
            store.put(fingerprint_spec(OUTCOMES[0].spec), OUTCOMES[0])
        good = path.read_bytes()
        path.write_bytes(b"!!garbage!!\n" + good)
        with pytest.raises(ConfigurationError, match="corrupt result store"):
            compact_store(path)
        assert path.read_bytes() == b"!!garbage!!\n" + good

    def test_torn_only_tail_is_healed_even_solo(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_bytes(b'{"fp": "torn')
        report = compact_store(path)
        assert report.tail_bytes_healed == len(b'{"fp": "torn')
        assert path.read_bytes() == b""


class TestCompactSqlite:
    def _write_mixed(self, path):
        with SqliteResultStore(path) as store:
            for outcome in OUTCOMES:
                store.put(fingerprint_spec(outcome.spec), outcome)
        conn = sqlite3.connect(path)
        with conn:
            for row in _v2_rows():
                conn.execute(
                    "INSERT OR REPLACE INTO results "
                    "(fingerprint, schema_version, outcome) VALUES (?, ?, ?)",
                    (row["fp"], 2, json.dumps(row["outcome"])),
                )
        conn.close()

    def test_drops_dead_schema_rows_keeps_live_ones(self, tmp_path):
        path = tmp_path / "store.sqlite"
        self._write_mixed(path)
        report = compact_store(path)
        assert report.backend == "sqlite"
        assert report.rows_kept == len(OUTCOMES)
        assert report.rows_dropped_schema == 2
        conn = sqlite3.connect(path)
        total = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
        conn.close()
        assert total == len(OUTCOMES)
        with SqliteResultStore(path) as store:
            for outcome in OUTCOMES:
                assert store.get(fingerprint_spec(outcome.spec)) == outcome

    def test_dry_run_deletes_nothing(self, tmp_path):
        path = tmp_path / "store.sqlite"
        self._write_mixed(path)
        report = compact_store(path, dry_run=True)
        assert report.dry_run and report.rows_dropped_schema == 2
        conn = sqlite3.connect(path)
        dead = conn.execute(
            "SELECT COUNT(*) FROM results WHERE schema_version = 2"
        ).fetchone()[0]
        conn.close()
        assert dead == 2

    def test_idempotent(self, tmp_path):
        path = tmp_path / "store.sqlite"
        self._write_mixed(path)
        compact_store(path)
        second = compact_store(path)
        assert not second.changed and second.rows_kept == len(OUTCOMES)

    def test_non_database_file_is_a_loud_error(self, tmp_path):
        path = tmp_path / "store.sqlite"
        path.write_bytes(b"this is not sqlite")
        with pytest.raises(ConfigurationError):
            compact_store(path)


class TestCompactCli:
    def test_cli_compacts_multiple_stores(self, tmp_path, capsys):
        jsonl = tmp_path / "a.jsonl"
        _write_messy_jsonl(jsonl)
        sqlite_path = tmp_path / "b.sqlite"
        TestCompactSqlite()._write_mixed(sqlite_path)
        assert main([str(jsonl), str(sqlite_path)]) == 0
        out = capsys.readouterr().out
        assert "a.jsonl [jsonl]" in out and "b.sqlite [sqlite]" in out
        assert "dropped 2 dead-schema" in out

    def test_cli_dry_run_flag(self, tmp_path, capsys):
        path = tmp_path / "a.jsonl"
        _write_messy_jsonl(path)
        before = path.read_bytes()
        assert main(["--dry-run", str(path)]) == 0
        assert "would keep" in capsys.readouterr().out
        assert path.read_bytes() == before

    def test_cli_errors_on_missing_and_memory_stores(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing.jsonl")]) == 1
        assert main([":memory:"]) == 1
        err = capsys.readouterr().err
        assert "no such store" in err
        assert "no file to compact" in err

    def test_cli_keeps_going_after_an_error(self, tmp_path, capsys):
        good = tmp_path / "good.jsonl"
        _write_messy_jsonl(good)
        assert main([str(tmp_path / "missing.jsonl"), str(good)]) == 1
        captured = capsys.readouterr()
        assert "good.jsonl [jsonl]" in captured.out
        assert "no such store" in captured.err
