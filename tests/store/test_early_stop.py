"""Adaptive budgets: EarlyStopPolicy certification, skipping, accounting."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, ScenarioSpec, corollary13_specs
from repro.exceptions import ConfigurationError
from repro.store import CachingRunner, EarlyStopPolicy, MemoryResultStore, point_key
from slow_kind import SLOW_KIND  # noqa: F401  (registers the kind)


def sampled_point_specs(samples: int, *, n=4, f=1, k=1) -> list:
    """Many samples of one (kind, n, f, k) point, distinct seeds."""
    return [
        ScenarioSpec(kind=SLOW_KIND, n=n, f=f, k=k, scheduler="random", seed=seed,
                     params=(("sleep_ms", 0),))
        for seed in range(samples)
    ]


class TestPolicyMechanics:
    def test_observation_certifies_and_skips(self):
        policy = EarlyStopPolicy(stop_on=("ok",))
        specs = sampled_point_specs(5)
        outcome = CampaignRunner().run(specs[:1]).outcomes[0]
        assert not policy.should_skip(specs[1])  # nothing certified yet
        policy.observe(outcome)
        assert policy.should_skip(specs[2])
        assert policy.should_skip(specs[3])
        assert policy.skipped == (specs[2], specs[3])
        assert policy.certified_points() == {point_key(specs[0]): "ok"}

    def test_default_does_not_certify_ok_or_error(self):
        policy = EarlyStopPolicy()
        specs = sampled_point_specs(2)
        outcome = CampaignRunner().run(specs[:1]).outcomes[0]
        policy.observe(outcome)  # verdict "ok": not a certifier by default
        assert not policy.should_skip(specs[1])
        assert policy.skipped_count == 0

    def test_distinct_points_have_independent_budgets(self):
        policy = EarlyStopPolicy(stop_on=("ok",))
        point_a = sampled_point_specs(2, k=1)
        point_b = sampled_point_specs(2, k=2)
        policy.observe(CampaignRunner().run(point_a[:1]).outcomes[0])
        assert policy.should_skip(point_a[1])
        assert not policy.should_skip(point_b[1])

    def test_reset_forgets_everything(self):
        policy = EarlyStopPolicy(stop_on=("ok",))
        specs = sampled_point_specs(3)
        policy.observe(CampaignRunner().run(specs[:1]).outcomes[0])
        assert policy.should_skip(specs[1])
        policy.reset()
        assert not policy.should_skip(specs[2])
        assert policy.skipped_count == 0

    def test_invalid_stop_on_rejected(self):
        with pytest.raises(ConfigurationError):
            EarlyStopPolicy(stop_on=())
        with pytest.raises(ConfigurationError):
            EarlyStopPolicy(stop_on=("sometimes",))


class TestAdaptiveCampaigns:
    def test_serial_early_stop_executes_one_sample_per_point(self):
        specs = sampled_point_specs(10)
        policy = EarlyStopPolicy(stop_on=("ok",))
        caching = CachingRunner(MemoryResultStore(), policy=policy)
        result = caching.run(specs)
        # Serial dispatch observes outcome i before dispatching i+1, so
        # exactly one sample of the (certified-ok) point runs.
        assert caching.last_stats.executed == 1
        assert caching.last_stats.skipped == 9
        assert policy.skipped_count == 9
        assert len(result.outcomes) == 1

    def test_skipped_scenarios_are_recorded_not_lost(self):
        specs = sampled_point_specs(6)
        policy = EarlyStopPolicy(stop_on=("ok",))
        caching = CachingRunner(MemoryResultStore(), policy=policy)
        caching.run(specs)
        assert set(policy.skipped) == set(specs[1:])
        stats = caching.last_stats
        assert stats.cached + stats.executed + stats.skipped == stats.total

    def test_cached_violation_certifies_before_anything_runs(self):
        # A violation already in the store must stop the point's pending
        # samples without executing a single scenario of it.
        middle = [s for s in corollary13_specs([5]) if s.kind == "corollary13-middle"]
        assert middle  # the Theorem 10 construction: a certified violation
        store = MemoryResultStore()
        CachingRunner(store).run(middle[:1])

        policy = EarlyStopPolicy()  # default: stop on violation
        caching = CachingRunner(store, policy=policy)
        more_of_the_point = [
            ScenarioSpec(
                kind=middle[0].kind, n=middle[0].n, f=middle[0].f, k=middle[0].k,
                scheduler=middle[0].scheduler, seed=seed,
                max_steps=middle[0].max_steps,
            )
            for seed in range(1, 5)
        ]
        caching.run(middle[:1] + more_of_the_point)
        assert caching.last_stats.cached == 1
        assert caching.last_stats.executed == 0
        assert caching.last_stats.skipped == len(more_of_the_point)

    def test_process_backend_accounting_stays_consistent(self):
        # Under the pool, chunks in flight when a point certifies still
        # run — the guaranteed invariants are the accounting ones.
        specs = sampled_point_specs(24)
        policy = EarlyStopPolicy(stop_on=("ok",))
        caching = CachingRunner(
            MemoryResultStore(),
            CampaignRunner(backend="process", workers=2, chunk_size=1),
            policy=policy,
        )
        result = caching.run(specs)
        stats = caching.last_stats
        assert stats.cached + stats.executed + stats.skipped == stats.total
        assert stats.executed >= 1
        assert len(result.outcomes) == stats.executed
        assert stats.skipped == policy.skipped_count

    def test_early_stop_off_means_no_skips(self):
        specs = sampled_point_specs(5)
        caching = CachingRunner(MemoryResultStore())
        caching.run(specs)
        assert caching.last_stats.skipped == 0
        assert caching.last_stats.executed == 5
