"""Thread-safety, WAL and lifecycle guarantees of the store backends.

The SQLite regression here is the load-bearing one: under the process
campaign backend, ``put`` is called off the main thread (delivery and
drain paths), which the previous ``check_same_thread=True`` connection
rejected with ``sqlite3.ProgrammingError``.
"""

from __future__ import annotations

import sqlite3
import threading

import pytest

from repro.campaign.spec import ScenarioOutcome, ScenarioSpec
from repro.exceptions import ConfigurationError
from repro.store import CachingRunner, MemoryResultStore, SqliteResultStore, open_store

from conftest import BACKENDS, make_store


def _outcome(index: int) -> ScenarioOutcome:
    return ScenarioOutcome(
        spec=ScenarioSpec(kind="concurrency-probe", n=4, f=1, k=1, seed=index),
        verdict="ok",
        steps=index,
    )


def _digest(index: int) -> str:
    return "%064x" % index


class TestSqliteThreadSafety:
    def test_put_from_another_thread_does_not_raise(self, tmp_path):
        """The exact failure mode of the process backend's drain thread."""
        store = SqliteResultStore(tmp_path / "threaded.sqlite")
        failures = []

        def put_one():
            try:
                store.put(_digest(1), _outcome(1))
            except sqlite3.ProgrammingError as exc:  # the old bug
                failures.append(exc)

        thread = threading.Thread(target=put_one)
        thread.start()
        thread.join()
        assert failures == []
        assert store.get(_digest(1)) == _outcome(1)
        store.close()

    def test_concurrent_puts_and_gets_from_many_threads(self, tmp_path):
        store = SqliteResultStore(tmp_path / "threaded.sqlite")
        per_thread, threads_count = 25, 4
        errors = []

        def worker(tag: int):
            try:
                for i in range(per_thread):
                    index = tag * per_thread + i
                    store.put(_digest(index), _outcome(index))
                    assert store.get(_digest(index)) == _outcome(index)
                    store.get_many([_digest(j) for j in range(index + 1)])
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(threads_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(store) == per_thread * threads_count
        store.close()

    def test_wal_mode_is_enabled_on_the_file(self, tmp_path):
        path = tmp_path / "wal.sqlite"
        store = SqliteResultStore(path)
        store.put(_digest(1), _outcome(1))
        store.close()
        # A fresh raw connection sees the persistent WAL journal mode.
        conn = sqlite3.connect(str(path))
        try:
            (mode,) = conn.execute("PRAGMA journal_mode").fetchone()
        finally:
            conn.close()
        assert mode.lower() == "wal"

    def test_caching_runner_with_process_backend_persists_through_threads(self, tmp_path):
        # End to end: a process-backend campaign with progress events
        # (which activates the drain thread) against a SQLite store.
        from repro.campaign import CampaignRunner, theorem8_specs
        from repro.store import CollectingProgressReporter

        specs = theorem8_specs([4], seeds=(1,), max_steps=4_000)
        with CachingRunner(
            open_store(tmp_path / "campaign.sqlite"),
            CampaignRunner(backend="process", workers=2),
            progress=CollectingProgressReporter(),
        ) as runner:
            runner.run(specs)
            assert runner.last_stats.executed == len(specs)


class TestLifecycle:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_close_is_idempotent(self, backend, tmp_path):
        store = make_store(backend, tmp_path)
        store.put(_digest(1), _outcome(1))
        store.close()
        store.close()  # must not raise

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_context_manager_closes(self, backend, tmp_path):
        with make_store(backend, tmp_path) as store:
            store.put(_digest(1), _outcome(1))
        store.close()  # already closed by __exit__: still a no-op

    def test_sqlite_rejects_use_after_close(self, tmp_path):
        store = SqliteResultStore(tmp_path / "closed.sqlite")
        store.close()
        with pytest.raises(ConfigurationError, match="closed"):
            store.put(_digest(1), _outcome(1))
        with pytest.raises(ConfigurationError, match="closed"):
            store.get(_digest(1))

    def test_caching_runner_context_manager_closes_store_and_journal(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        with CachingRunner(MemoryResultStore(), journal=journal_path) as runner:
            runner.run([])
        # The runner owned the journal (opened from a path): closed now.
        assert runner.journal is not None
        runner.close()  # idempotent through both store and journal
