"""ProgressReporter under concurrent event delivery.

Under the process backend, events reach the reporter from the parent's
drain thread while the owner thread calls ``snapshot()`` whenever it
likes; these tests hammer that contract directly with threads (the
same discipline as tests/store/test_store_concurrency.py applies to the
SQLite store) and pin the well-formed-zero-state guarantee for
snapshots taken before ``campaign_started``.
"""

from __future__ import annotations

import io
import threading

from repro.campaign.runner import ScenarioEvent
from repro.store import (
    CollectingProgressReporter,
    LogProgressReporter,
    ProgressReporter,
)

THREADS = 8
EVENTS_PER_THREAD = 250


def _event(i: int, *, verdict: str = "ok", cached: bool = False) -> ScenarioEvent:
    return ScenarioEvent(
        label=f"scenario-{i}",
        verdict=verdict,
        seconds=0.001,
        worker_pid=40_000 + (i % 4),
        cached=cached,
    )


def _hammer(reporter: ProgressReporter, verdicts) -> None:
    """Deliver events from THREADS threads, all released at once."""
    barrier = threading.Barrier(THREADS)
    errors = []

    def worker(thread_index: int) -> None:
        try:
            barrier.wait()
            for i in range(EVENTS_PER_THREAD):
                reporter(_event(
                    thread_index * EVENTS_PER_THREAD + i,
                    verdict=verdicts[i % len(verdicts)],
                    cached=(i % 5 == 0),
                ))
        except Exception as exc:  # noqa: BLE001 - surfaced as test failure
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(t,)) for t in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []


class TestConcurrentDelivery:
    def test_counters_are_exact_under_thread_hammer(self):
        total = THREADS * EVENTS_PER_THREAD
        reporter = ProgressReporter()
        reporter.campaign_started(total)
        _hammer(reporter, verdicts=("ok", "violation", "error"))
        snap = reporter.snapshot()
        assert snap["completed"] == total
        assert snap["cached"] == total // 5
        assert snap["ok"] + snap["violation"] + snap["error"] == total
        assert snap["executed"] == total - total // 5
        assert snap["workers_seen"] == 4

    def test_snapshot_is_consistent_while_events_arrive(self):
        # A snapshot taken mid-hammer must be internally consistent: the
        # verdict counts sum to completed, cached never exceeds it.
        reporter = ProgressReporter()
        reporter.campaign_started(THREADS * EVENTS_PER_THREAD)
        stop = threading.Event()
        inconsistencies = []

        def observer() -> None:
            while not stop.is_set():
                snap = reporter.snapshot()
                verdict_sum = snap["ok"] + snap["violation"] + snap["error"]
                if verdict_sum != snap["completed"]:
                    inconsistencies.append(snap)
                if snap["cached"] > snap["completed"]:
                    inconsistencies.append(snap)

        watcher = threading.Thread(target=observer)
        watcher.start()
        try:
            _hammer(reporter, verdicts=("ok", "violation"))
        finally:
            stop.set()
            watcher.join()
        assert inconsistencies == []

    def test_collecting_reporter_keeps_every_event(self):
        reporter = CollectingProgressReporter()
        reporter.campaign_started(THREADS * EVENTS_PER_THREAD)
        _hammer(reporter, verdicts=("ok",))
        assert len(reporter.events) == THREADS * EVENTS_PER_THREAD

    def test_log_reporter_survives_the_hammer(self):
        stream = io.StringIO()
        total = THREADS * EVENTS_PER_THREAD
        reporter = LogProgressReporter(every=100, stream=stream)
        reporter.campaign_started(total)
        _hammer(reporter, verdicts=("ok",))
        reporter.campaign_finished()
        text = stream.getvalue()
        assert f"started: {total} scenarios" in text
        assert f"{total}/{total}" in text


class TestZeroState:
    def test_snapshot_before_campaign_started_is_well_formed(self):
        snap = ProgressReporter().snapshot()
        assert snap == {
            "total": 0,
            "completed": 0,
            "cached": 0,
            "executed": 0,
            "workers_seen": 0,
            "elapsed_seconds": 0.0,
            "scenarios_per_second": 0.0,
            "ok": 0,
            "violation": 0,
            "error": 0,
        }

    def test_events_before_campaign_started_still_count(self):
        # The runner contract delivers campaign_started first, but a
        # reporter fed bare events must degrade gracefully, not divide
        # by an unset start time.
        reporter = ProgressReporter()
        reporter(_event(0))
        snap = reporter.snapshot()
        assert snap["completed"] == 1
        assert snap["total"] == 0
        assert snap["elapsed_seconds"] == 0.0
        assert snap["scenarios_per_second"] == 0.0

    def test_log_reporter_zero_state_rate_is_silent(self):
        stream = io.StringIO()
        reporter = LogProgressReporter(every=1, stream=stream)
        reporter.campaign_finished()  # no events at all
        line = stream.getvalue().strip()
        assert line.startswith("[campaign] 0/?")
        assert "rate=" not in line  # no samples -> no extrapolation

    def test_rate_and_eta_appear_after_enough_samples(self):
        stream = io.StringIO()
        reporter = LogProgressReporter(every=10, stream=stream)
        reporter.campaign_started(40)
        for i in range(20):
            reporter(_event(i))
        text = stream.getvalue()
        assert "rate=" in text
        assert "eta=" in text


class TestRateWindowGuards:
    """Degenerate sample windows must never produce a rate or an ETA."""

    @staticmethod
    def _reporter_with_samples(samples):
        reporter = LogProgressReporter(every=1, stream=io.StringIO())
        reporter.campaign_started(100)
        reporter.completed = samples[-1][1]
        reporter._samples.clear()
        reporter._samples.extend(samples)
        return reporter

    def test_same_tick_samples_yield_no_estimate(self):
        # Two samples in the same clock tick: zero-width window.  Must
        # degrade to "no estimate", never raise ZeroDivisionError.
        reporter = self._reporter_with_samples([(10.0, 0), (10.0, 5)])
        rate, eta = reporter._rate_eta()
        assert (rate, eta) == (0.0, None)

    def test_near_same_tick_samples_yield_no_estimate(self):
        # Regression: a positive-but-negligible span used to pass the
        # exact-zero guard and manufacture an absurd rate (here 5e9/s)
        # and a nonsense ETA.
        reporter = self._reporter_with_samples([(10.0, 0), (10.0 + 1e-9, 5)])
        rate, eta = reporter._rate_eta()
        assert (rate, eta) == (0.0, None)

    def test_real_window_still_estimates(self):
        reporter = self._reporter_with_samples([(10.0, 0), (12.0, 10)])
        rate, eta = reporter._rate_eta()
        assert rate == 5.0
        assert eta == (100 - 10) / 5.0

    def test_same_tick_line_emission_is_safe(self):
        stream = io.StringIO()
        reporter = LogProgressReporter(every=1, stream=stream)
        reporter.campaign_started(10)
        reporter.completed = 2
        reporter._samples.clear()
        reporter._samples.extend([(10.0, 0), (10.0, 2)])
        reporter._emit_line()  # must not raise, must not print a rate
        assert "rate=" not in stream.getvalue()
