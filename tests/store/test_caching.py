"""Cache-hit determinism: cached, resumed and cold campaigns are equal."""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, ScenarioSpec, theorem8_specs
from repro.exceptions import ConfigurationError
from repro.store import CachingRunner, MemoryResultStore, fingerprint_spec

SPECS = theorem8_specs([4], seeds=(1,), max_steps=4_000)
COLD = CampaignRunner().run(SPECS)

RUNNERS = {
    "serial": CampaignRunner(),
    "chunked": CampaignRunner(backend="chunked", chunk_size=3),
    "process": CampaignRunner(backend="process", workers=2, chunk_size=3),
}


@pytest.fixture(params=tuple(RUNNERS))
def backend_runner(request):
    return RUNNERS[request.param]


class TestColdThenWarm:
    def test_cold_run_matches_plain_campaign_and_fills_the_store(
        self, store, backend_runner
    ):
        caching = CachingRunner(store, backend_runner)
        result = caching.run(SPECS)
        assert result == COLD
        assert caching.last_stats.executed == len(SPECS)
        assert caching.last_stats.cached == 0
        assert len(store) == len(SPECS)

    def test_warm_run_is_pure_replay_and_equal(self, store, backend_runner):
        CachingRunner(store).run(SPECS)
        caching = CachingRunner(store, backend_runner)
        warm = caching.run(SPECS)
        assert warm == COLD
        assert [o.spec for o in warm.outcomes] == [o.spec for o in COLD.outcomes]
        assert caching.last_stats.cached == len(SPECS)
        assert caching.last_stats.executed == 0
        assert caching.last_stats.hit_rate == 1.0

    def test_partially_cached_run_equals_cold_run(self, store, backend_runner):
        # A store holding an arbitrary prefix stands in for any
        # interrupted campaign: the rerun must recompute exactly the
        # missing scenarios and produce the uninterrupted result.
        prefix = len(SPECS) // 3
        CachingRunner(store).run(SPECS[:prefix])
        caching = CachingRunner(store, backend_runner)
        resumed = caching.run(SPECS)
        assert resumed == COLD
        assert caching.last_stats.cached == prefix
        assert caching.last_stats.executed == len(SPECS) - prefix

    def test_scattered_cache_hits_keep_campaign_order(self, store, backend_runner):
        # Cache every third scenario (not a prefix): merged outcomes must
        # still come back in spec order, not hits-first.
        scattered = SPECS[::3]
        CachingRunner(store).run(scattered)
        caching = CachingRunner(store, backend_runner)
        resumed = caching.run(SPECS)
        assert resumed == COLD
        assert caching.last_stats.cached == len(scattered)


class TestStatsAndEdgeCases:
    def test_stats_add_up(self, store):
        caching = CachingRunner(store)
        caching.run(SPECS[:10])
        stats = caching.last_stats
        assert stats.total == 10
        assert stats.cached + stats.executed + stats.skipped == stats.total
        assert stats.as_dict()["hit_rate"] == 0.0

    def test_empty_campaign(self, store):
        caching = CachingRunner(store)
        result = caching.run([])
        assert result.outcomes == ()
        assert caching.last_stats.total == 0
        assert caching.last_stats.hit_rate == 0.0

    def test_duplicate_specs_execute_once_but_count_per_position(self, store):
        spec = SPECS[0]
        caching = CachingRunner(store)
        result = caching.run([spec, spec, spec])
        assert len(result.outcomes) == 3
        assert len({id(o) for o in result.outcomes}) <= 3
        assert result.outcomes[0] == result.outcomes[1] == result.outcomes[2]
        assert caching.last_stats.total == 3
        assert caching.last_stats.executed == 3  # three positions, one execution
        assert len(store) == 1

    def test_unknown_kind_fails_fast_even_when_fully_cached(self, store):
        caching = CachingRunner(store)
        caching.run(SPECS[:1])
        bogus = ScenarioSpec(kind="no-such-kind", n=4, f=1, k=1)
        with pytest.raises(ConfigurationError):
            caching.run([bogus])

    def test_grid_accepted_directly(self, store):
        from repro.campaign import ScenarioGrid

        grid = ScenarioGrid(
            kinds=("theorem8-solvable",), n_values=(4,), f_values=(1,), k_values=(1,),
        )
        caching = CachingRunner(store)
        first = caching.run(grid)
        again = caching.run(grid)
        assert first == again
        assert caching.last_stats.cached == len(first.outcomes)

    def test_max_steps_is_part_of_the_cache_key(self, store):
        # A truncation-sensitive knob must never be served a stale hit.
        base = SPECS[0]
        bigger = ScenarioSpec(
            kind=base.kind, n=base.n, f=base.f, k=base.k, scheduler=base.scheduler,
            seed=base.seed, crashes=base.crashes, max_steps=base.max_steps * 2,
            params=base.params,
        )
        caching = CachingRunner(store)
        caching.run([base])
        caching.run([bigger])
        assert caching.last_stats.executed == 1  # not served from base's entry
        assert len(store) == 2

    def test_store_contents_are_addressable_by_fingerprint(self, store):
        CachingRunner(store).run(SPECS[:5])
        for spec in SPECS[:5]:
            stored = store.get(fingerprint_spec(spec))
            assert stored is not None
            assert stored.spec == spec

    def test_memory_store_rejects_unpersistable_params_like_disk_does(self):
        spec = ScenarioSpec(
            kind="theorem8-solvable", n=4, f=1, k=1,
            params=(("bad", object()),),  # hashable, but not persistable
        )
        with pytest.raises(ConfigurationError):
            CachingRunner(MemoryResultStore()).run([spec])
