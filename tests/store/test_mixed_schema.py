"""Mixed-schema store reads: v2 rows alongside v3 rows, byte-for-byte.

Stores outlive schema bumps: a long-running sweep directory can hold
rows written before :data:`repro.store.SCHEMA_VERSION` was raised to 3.
Reading such a store must be *tolerant* — old rows are skipped (their
fingerprints can never match a current-version lookup anyway, since the
schema version is hashed into the fingerprint), never decoded with the
current codec, and never allowed to crash iteration.  These fixtures
pin that contract at the byte level for both backends, alongside the
torn-tail fixtures in ``test_backends.py``.
"""

from __future__ import annotations

import json
import sqlite3

from repro.campaign import CampaignRunner, theorem8_specs
from repro.store import JsonlResultStore, SqliteResultStore, fingerprint_spec

SPECS = theorem8_specs([4], seeds=(1,), max_steps=4_000)
OUTCOMES = CampaignRunner().run(SPECS).outcomes[:3]


def _v2_rows():
    """Plausible SCHEMA_VERSION=2 records, in the pre-``recording`` shape.

    The payloads are deliberately *not* decodable by the current codec
    (missing fields, renamed keys): a tolerant reader must skip them on
    the version tag alone, before ever looking inside.
    """
    return [
        {
            "fp": format(0xA0 + i, "064x"),
            "v": 2,
            "outcome": {
                "spec": {"kind": "theorem8-solvable", "n": 4, "f": 1, "k": 1},
                "verdict": "ok",
                "props": {"agreement": True},  # v2 key layout, not v3's
            },
        }
        for i in range(3)
    ]


class TestJsonlMixedSchema:
    def _write_mixed(self, path):
        """v2 and v3 rows interleaved, exactly as appends would land."""
        with JsonlResultStore(path) as store:
            for outcome in OUTCOMES:
                store.put(fingerprint_spec(outcome.spec), outcome)
        v3_lines = path.read_text().splitlines()
        v2_lines = [json.dumps(row, sort_keys=True) for row in _v2_rows()]
        mixed = [
            v2_lines[0], v3_lines[0], v2_lines[1],
            v3_lines[1], v3_lines[2], v2_lines[2],
        ]
        content = ("\n".join(mixed) + "\n").encode()
        path.write_bytes(content)
        return content

    def test_v2_rows_are_skipped_v3_rows_decode(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        self._write_mixed(path)
        with JsonlResultStore(path) as store:
            assert len(store) == len(OUTCOMES)
            for outcome in OUTCOMES:
                assert store.get(fingerprint_spec(outcome.spec)) == outcome
            for row in _v2_rows():
                assert store.get(row["fp"]) is None
            assert len(store.fingerprints()) == len(OUTCOMES)

    def test_mixed_file_bytes_are_preserved(self, tmp_path):
        # Skipping is read-only: old rows stay on disk for forensics (or
        # a future migration); opening the store never rewrites them.
        path = tmp_path / "mixed.jsonl"
        content = self._write_mixed(path)
        with JsonlResultStore(path):
            pass
        assert path.read_bytes() == content

    def test_mixed_store_accepts_new_appends(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        self._write_mixed(path)
        extra = CampaignRunner().run(SPECS).outcomes[3]
        with JsonlResultStore(path) as store:
            store.put(fingerprint_spec(extra.spec), extra)
        with JsonlResultStore(path) as reopened:
            assert len(reopened) == len(OUTCOMES) + 1
            assert reopened.get(fingerprint_spec(extra.spec)) == extra

    def test_v2_tail_row_with_undecodable_payload_is_not_corruption(self, tmp_path):
        # A v2 row in final position, complete with newline: schema skip
        # must win over the torn-tail and corruption classifications.
        path = tmp_path / "mixed.jsonl"
        with JsonlResultStore(path) as store:
            store.put(fingerprint_spec(OUTCOMES[0].spec), OUTCOMES[0])
        before = path.read_bytes()
        tail = (json.dumps(_v2_rows()[0], sort_keys=True) + "\n").encode()
        path.write_bytes(before + tail)
        with JsonlResultStore(path) as store:
            assert len(store) == 1
        assert path.read_bytes() == before + tail


class TestSqliteMixedSchema:
    def _write_mixed(self, path):
        with SqliteResultStore(path) as store:
            for outcome in OUTCOMES:
                store.put(fingerprint_spec(outcome.spec), outcome)
        conn = sqlite3.connect(path)
        with conn:
            for row in _v2_rows():
                conn.execute(
                    "INSERT OR REPLACE INTO results "
                    "(fingerprint, schema_version, outcome) VALUES (?, ?, ?)",
                    (row["fp"], 2, json.dumps(row["outcome"])),
                )
        conn.close()

    def test_v2_rows_invisible_to_reads_and_iteration(self, tmp_path):
        path = tmp_path / "mixed.sqlite"
        self._write_mixed(path)
        with SqliteResultStore(path) as store:
            assert len(store) == len(OUTCOMES)
            for outcome in OUTCOMES:
                assert store.get(fingerprint_spec(outcome.spec)) == outcome
            for row in _v2_rows():
                assert store.get(row["fp"]) is None
            wanted = [fingerprint_spec(o.spec) for o in OUTCOMES]
            wanted += [row["fp"] for row in _v2_rows()]
            hits = store.get_many(wanted)
            assert set(hits) == set(wanted[:len(OUTCOMES)])
            # items() decodes lazily: exhausting it must never touch the
            # undecodable v2 payloads.
            decoded = dict(store.items())
            assert len(decoded) == len(OUTCOMES)

    def test_v2_rows_survive_in_the_table(self, tmp_path):
        path = tmp_path / "mixed.sqlite"
        self._write_mixed(path)
        with SqliteResultStore(path):
            pass
        conn = sqlite3.connect(path)
        count = conn.execute(
            "SELECT COUNT(*) FROM results WHERE schema_version = 2"
        ).fetchone()[0]
        conn.close()
        assert count == len(_v2_rows())
