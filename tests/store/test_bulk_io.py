"""Bulk store I/O: batched commits, idle flush, index plans, kill windows.

``commit_batch > 1`` relaxes the per-put durability point to "within one
batch or one flush".  These tests pin everything that relaxation is
*not* allowed to change: read-your-writes, last-write-wins ordering
across the buffering boundary, the JSONL torn-tail classification, and
— via a SIGKILL mid-campaign — the at-most-one-batch loss bound a
resumed campaign relies on.  They also pin the two pure perf claims:
commit counts actually drop, and the bulk skip query is answered from
the covering index.
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignRunner, theorem8_specs
from repro.campaign.spec import ScenarioOutcome, ScenarioSpec
from repro.exceptions import ConfigurationError
from repro.store import (
    CachingRunner,
    JsonlResultStore,
    SqliteResultStore,
    open_store,
)
from repro.store.fingerprint import SCHEMA_VERSION, fingerprint_spec
from slow_kind import slow_specs

HERE = Path(__file__).resolve().parent
SRC = HERE.parent.parent / "src"


def outcome_for(seed: int, *, steps: int = 1) -> ScenarioOutcome:
    spec = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                        scheduler="random", seed=seed, max_steps=4_000)
    return ScenarioOutcome(spec=spec, verdict="ok", distinct_decisions=1,
                           decided=3, steps=steps)


def batching_store(tmp_path, backend: str, commit_batch: int = 8, **kwargs):
    cls = {"jsonl": JsonlResultStore, "sqlite": SqliteResultStore}[backend]
    return cls(tmp_path / f"store.{backend}", commit_batch=commit_batch,
               **kwargs)


class TestBatchedCommits:
    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_commit_counts_drop_to_one_per_batch(self, tmp_path, backend):
        store = batching_store(tmp_path, backend, commit_batch=8)
        try:
            for seed in range(20):
                store.put(fingerprint_spec(outcome_for(seed).spec),
                          outcome_for(seed))
            store.flush()
            io = store.io_stats()
            assert io["puts"] == 20
            assert io["committed_rows"] == 20
            assert io["commits"] == 3  # 8 + 8 + flushed 4
            assert io["max_commit_batch"] == 8
            assert io["buffered"] == 0
        finally:
            store.close()

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_default_keeps_per_put_commits(self, tmp_path, backend):
        store = batching_store(tmp_path, backend, commit_batch=1)
        try:
            for seed in range(5):
                store.put(fingerprint_spec(outcome_for(seed).spec),
                          outcome_for(seed))
            io = store.io_stats()
            assert io["commits"] == 5
            assert io["max_commit_batch"] == 1
        finally:
            store.close()

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_read_your_writes_while_buffered(self, tmp_path, backend):
        store = batching_store(tmp_path, backend, commit_batch=100)
        try:
            outcome = outcome_for(1)
            digest = fingerprint_spec(outcome.spec)
            store.put(digest, outcome)
            assert store.get(digest) == outcome
            assert digest in store.get_many([digest])
            assert digest in store.fingerprints()
        finally:
            store.close()

    def test_sqlite_reads_flush_first(self, tmp_path):
        store = batching_store(tmp_path, "sqlite", commit_batch=100)
        try:
            outcome = outcome_for(1)
            store.put(fingerprint_spec(outcome.spec), outcome)
            assert store.io_stats()["buffered"] == 1
            store.get(fingerprint_spec(outcome.spec))
            assert store.io_stats()["buffered"] == 0  # the read drained it
        finally:
            store.close()

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_close_flushes_buffered_rows(self, tmp_path, backend):
        store = batching_store(tmp_path, backend, commit_batch=100)
        outcomes = [outcome_for(seed) for seed in range(7)]
        for outcome in outcomes:
            store.put(fingerprint_spec(outcome.spec), outcome)
        store.close()
        with open_store(tmp_path / f"store.{backend}") as reopened:
            assert len(reopened) == 7

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_idle_timer_flushes_partial_batch(self, tmp_path, backend):
        store = batching_store(tmp_path, backend, commit_batch=100,
                               idle_flush_seconds=0.05)
        try:
            outcome = outcome_for(1)
            store.put(fingerprint_spec(outcome.spec), outcome)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if store.io_stats()["buffered"] == 0:
                    break
                time.sleep(0.01)
            io = store.io_stats()
            assert io["buffered"] == 0
            assert io["commits"] == 1
        finally:
            store.close()
        # Durable on disk, not just indexed in memory.
        with open_store(tmp_path / f"store.{backend}") as reopened:
            assert len(reopened) == 1

    def test_sqlite_put_many_drains_buffer_in_order(self, tmp_path):
        store = batching_store(tmp_path, "sqlite", commit_batch=100)
        try:
            old = outcome_for(1, steps=1)
            new = outcome_for(1, steps=2)  # same fingerprint, later write
            digest = fingerprint_spec(old.spec)
            store.put(digest, old)
            store.put_many([(digest, new)])
            assert store.get(digest) == new  # last write won across the boundary
            assert store.io_stats()["buffered"] == 0
        finally:
            store.close()

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_commit_batch_validated(self, tmp_path, backend):
        with pytest.raises(ConfigurationError):
            batching_store(tmp_path, backend, commit_batch=0)

    def test_open_store_threads_commit_batch(self, tmp_path):
        with open_store(tmp_path / "s.sqlite", commit_batch=4) as store:
            assert store.io_stats()["commit_batch"] == 4
        with open_store(tmp_path / "s.jsonl", commit_batch=4) as store:
            assert store.io_stats()["commit_batch"] == 4
        with open_store(":memory:") as store:
            assert store.io_stats() == {}  # in-memory ignores batching


class TestQueryPlan:
    def test_bulk_skip_query_is_index_only(self, tmp_path):
        store = SqliteResultStore(tmp_path / "plan.sqlite")
        try:
            for seed in range(10):
                store.put(fingerprint_spec(outcome_for(seed).spec),
                          outcome_for(seed))
            conn = store._connection()
            placeholders = ",".join("?" for _ in range(3))
            plan_rows = conn.execute(
                f"EXPLAIN QUERY PLAN SELECT fingerprint, outcome FROM results "
                f"WHERE schema_version = ? AND fingerprint IN ({placeholders})",
                [SCHEMA_VERSION, "a" * 64, "b" * 64, "c" * 64],
            ).fetchall()
            plan = " ".join(str(row) for row in plan_rows)
            assert "USING INDEX" in plan or "USING COVERING INDEX" in plan, plan
            # fingerprints() — the skip pass's other query — never walks
            # the payload-bearing table rows.
            scan_rows = conn.execute(
                "EXPLAIN QUERY PLAN SELECT fingerprint FROM results "
                "WHERE schema_version = ?", (SCHEMA_VERSION,),
            ).fetchall()
            scan = " ".join(str(row) for row in scan_rows)
            assert "COVERING INDEX results_schema_fingerprint" in scan, scan
        finally:
            store.close()


class TestJsonlTornTail:
    """The byte-level torn-tail classification must hold for files
    written by *buffered* appends exactly as for per-record appends."""

    def _buffered_file(self, tmp_path) -> Path:
        path = tmp_path / "torn.jsonl"
        store = JsonlResultStore(path, commit_batch=5)
        for seed in range(5):  # exactly one batched write of 5 lines
            store.put(fingerprint_spec(outcome_for(seed).spec),
                      outcome_for(seed))
        assert store.io_stats()["commits"] == 1
        store.close()
        return path

    def test_torn_final_line_truncated_away(self, tmp_path):
        path = self._buffered_file(tmp_path)
        with path.open("ab") as handle:
            handle.write(b'{"fp": "dead', )  # a kill mid-batched-write
        with JsonlResultStore(path) as store:
            assert len(store) == 5
        assert path.read_bytes().count(b"\n") == 5  # tail gone, file clean

    def test_torn_json_prefix_line_truncated_away(self, tmp_path):
        path = self._buffered_file(tmp_path)
        with path.open("ab") as handle:
            handle.write(b'{"fp": "ab"}')  # valid JSON, incomplete record
        with JsonlResultStore(path) as store:
            assert len(store) == 5

    def test_garbage_with_newline_is_corruption(self, tmp_path):
        path = self._buffered_file(tmp_path)
        with path.open("ab") as handle:
            handle.write(b"!!! not json !!!\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            JsonlResultStore(path)

    def test_mid_file_damage_is_corruption(self, tmp_path):
        path = self._buffered_file(tmp_path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[2] = b"torn mid file\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(ConfigurationError, match="corrupt"):
            JsonlResultStore(path)


SCENARIOS = 40
SLEEP_MS = 30
COMMIT_BATCH = 4

CHILD_SCRIPT = """
import sys
from repro.campaign import CampaignRunner
from repro.store import CachingRunner, open_store
from slow_kind import slow_specs

store_path, count, sleep_ms, commit_batch = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]))
specs = slow_specs(count, sleep_ms=sleep_ms)
runner = CachingRunner(
    open_store(store_path, commit_batch=commit_batch),
    CampaignRunner(backend="process", workers=2, chunk_size=1),
)
runner.run(specs)
print("FINISHED", flush=True)
"""


def _stored_count(path: Path) -> int:
    if not path.exists():
        return 0
    if path.suffix == ".jsonl":
        return path.read_bytes().count(b"\n")
    try:
        connection = sqlite3.connect(str(path))
        try:
            row = connection.execute("SELECT COUNT(*) FROM results").fetchone()
            return int(row[0])
        finally:
            connection.close()
    except sqlite3.Error:
        return 0


def _kill_batched_child(store_path: Path, kill_after: int) -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC), str(HERE)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(store_path),
         str(SCENARIOS), str(SLEEP_MS), str(COMMIT_BATCH)],
        env=env, cwd=str(HERE),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        start_new_session=True,
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if _stored_count(store_path) >= kill_after:
                break
            if child.poll() is not None:
                stdout, stderr = child.communicate(timeout=10)
                pytest.fail(
                    f"campaign child exited before the kill "
                    f"(rc={child.returncode}):\n{stderr.decode(errors='replace')}"
                )
            time.sleep(0.02)
        else:
            pytest.fail(f"store never reached {kill_after} outcomes in time")
        os.killpg(os.getpgid(child.pid), signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            try:
                os.killpg(os.getpgid(child.pid), signal.SIGKILL)
            except ProcessLookupError:
                pass
            child.wait(timeout=30)
    assert child.returncode != 0
    return _stored_count(store_path)


@pytest.mark.parametrize("store_name", ["batched.jsonl", "batched.sqlite"])
def test_sigkill_mid_batched_commit_loses_at_most_one_batch(tmp_path, store_name):
    """The new durability point: a kill mid-campaign with ``commit_batch``
    buffering still resumes to the identical result, and the lost window
    is bounded — the campaign demonstrably persisted progress in batches
    and the resume re-runs only what the tail lost."""
    store_path = tmp_path / store_name
    completed_before_kill = _kill_batched_child(store_path, kill_after=6)
    assert completed_before_kill >= 6
    assert completed_before_kill < SCENARIOS

    specs = slow_specs(SCENARIOS, sleep_ms=SLEEP_MS)
    with open_store(store_path, commit_batch=COMMIT_BATCH) as store:
        completed = len(store)
        assert completed >= completed_before_kill
        resumed_runner = CachingRunner(
            store, CampaignRunner(backend="process", workers=2, chunk_size=1))
        resumed = resumed_runner.run(specs)

    uninterrupted = CampaignRunner().run(specs)
    assert resumed == uninterrupted
    stats = resumed_runner.last_stats
    # Everything durably committed before the kill is served from cache;
    # the loss window is the buffered tail, at most one commit batch.
    assert stats.cached >= completed_before_kill
    assert stats.cached + stats.executed == SCENARIOS


class TestCampaignsOverBatchedStores:
    def test_warm_rerun_equal_and_fully_cached(self, tmp_path):
        specs = theorem8_specs([4], seeds=(1,), max_steps=4_000)
        path = tmp_path / "campaign.sqlite"
        with open_store(path, commit_batch=16) as store:
            runner = CachingRunner(store, CampaignRunner())
            cold = runner.run(specs)
            io = store.io_stats()
            assert io["commits"] < io["puts"]  # batching actually engaged
        with open_store(path, commit_batch=16) as store:
            runner = CachingRunner(store, CampaignRunner())
            warm = runner.run(specs)
            assert runner.last_stats.cached == len(specs)
        assert warm == cold

    def test_no_spec_hashed_twice_per_campaign(self, tmp_path, monkeypatch):
        """The fingerprint memo + CachingRunner threading contract: one
        sha256 per distinct spec instance for the whole campaign."""
        import repro.store.fingerprint as fingerprint_module

        calls = []
        real_sha256 = fingerprint_module.hashlib.sha256

        def counting_sha256(blob):
            calls.append(blob)
            return real_sha256(blob)

        monkeypatch.setattr(
            fingerprint_module.hashlib, "sha256", counting_sha256)
        specs = theorem8_specs([4], seeds=(1,), max_steps=4_000)
        with open_store(tmp_path / "hash.sqlite", commit_batch=8) as store:
            CachingRunner(store, CampaignRunner()).run(specs)
        # One fingerprint hash per spec — the skip pass, the store puts
        # and persist() all reuse it (derived_seed hashes are separate
        # and counted here too, also at most one per executed spec).
        assert len(calls) <= 2 * len(specs)
