"""The query layer: cross-campaign aggregation over stores and journals.

The headline scenario is the acceptance criterion: two campaigns merged
into one SQLite store plus one journal, answered with a by-(kind, n,
scheduler) cost aggregation.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, theorem8_specs
from repro.campaign.spec import ScenarioOutcome, ScenarioSpec
from repro.exceptions import ConfigurationError
from repro.provenance import (
    ResourceUsage,
    aggregate_cost,
    aggregate_outcomes,
    disagreement_report,
    disagreements,
    read_journal,
    replay_ledger,
)
from repro.store import CachingRunner, MemoryResultStore, open_store

PINNED_KWARGS = dict(seeds=(1,), max_steps=4_000)


@pytest.fixture(scope="module")
def merged(tmp_path_factory):
    """Two campaigns (n=4, then n=5) merged into one store + journal."""
    tmp = tmp_path_factory.mktemp("provenance-queries")
    store_path = tmp / "merged.sqlite"
    journal_path = tmp / "journal.jsonl"
    with CachingRunner(open_store(store_path), journal=journal_path) as runner:
        runner.run(theorem8_specs([4], **PINNED_KWARGS))
        runner.run(theorem8_specs([5], **PINNED_KWARGS))
    replay = replay_ledger(read_journal(journal_path))
    return store_path, replay


class TestAggregateOutcomes:
    def test_by_kind_n_scheduler_covers_every_stored_outcome(self, merged):
        store_path, _replay = merged
        specs = theorem8_specs([4], **PINNED_KWARGS) + theorem8_specs([5], **PINNED_KWARGS)
        with open_store(store_path) as store:
            stored = len(store)
            groups = aggregate_outcomes(store, ("kind", "n", "scheduler"))
        assert sum(group.scenarios for group in groups.values()) == stored
        # Both campaigns appear: n=4 and n=5 groups for each kind.
        ns = {key[1] for key in groups}
        assert ns == {4, 5}
        kinds = {key[0] for key in groups}
        assert kinds == {spec.kind for spec in specs}

    def test_verdict_split_sums_to_scenarios(self, merged):
        store_path, _replay = merged
        with open_store(store_path) as store:
            groups = aggregate_outcomes(store, ("kind",))
        for group in groups.values():
            assert group.ok + group.violation + group.error == group.scenarios

    def test_unknown_dimension_is_rejected(self, merged):
        store_path, _replay = merged
        with open_store(store_path) as store:
            with pytest.raises(ConfigurationError, match="cannot group by"):
                aggregate_outcomes(store, ("kind", "colour"))


class TestAggregateCost:
    def test_two_merged_campaigns_by_kind_n_scheduler(self, merged):
        """The acceptance criterion: cost aggregation over two campaigns."""
        store_path, replay = merged
        assert len(replay.campaigns) == 2
        assert all(ledger.finished for ledger in replay.campaigns.values())
        with open_store(store_path) as store:
            cost, unresolved = aggregate_cost(store, replay, ("kind", "n", "scheduler"))
        assert unresolved == ()
        # Every executed scenario of both campaigns is attributed.
        assert sum(group.scenarios for group in cost.values()) == len(replay.ran_fingerprints)
        # Cost carries wall time (journal) joined to spec dims (store).
        assert sum(group.usage.seconds for group in cost.values()) == pytest.approx(
            replay.total_usage().seconds)
        assert {key[1] for key in cost} == {4, 5}

    def test_include_cached_adds_replays(self, merged):
        store_path, replay = merged
        with open_store(store_path) as store:
            ran_only, _ = aggregate_cost(store, replay, ("kind",))
            with_cached, _ = aggregate_cost(store, replay, ("kind",), include_cached=True)
        assert sum(g.scenarios for g in with_cached.values()) >= sum(
            g.scenarios for g in ran_only.values())

    def test_unresolved_fingerprints_are_reported_not_dropped_silently(self, merged):
        _store_path, replay = merged
        empty = MemoryResultStore()
        cost, unresolved = aggregate_cost(empty, replay, ("kind",))
        assert cost == {}
        assert len(unresolved) == len(
            [r for r in replay.scenario_records if r["decision"] == "ran"])


class TestDisagreements:
    def _store_with(self, *verdicts):
        store = MemoryResultStore()
        for index, verdict in enumerate(verdicts):
            spec = ScenarioSpec(kind="probe", n=4, f=1, k=1, seed=index)
            store.put("%064x" % index, ScenarioOutcome(
                spec=spec, verdict=verdict,
                violations=("agreement",) if verdict == "violation" else (),
                error="boom" if verdict == "error" else "",
            ))
        return store

    def test_non_ok_outcomes_surface_worst_first(self):
        store = self._store_with("ok", "error", "violation", "ok")
        flagged = disagreements(store)
        assert [outcome.verdict for outcome in flagged] == ["violation", "error"]

    def test_report_drills_down_and_is_empty_safe(self):
        assert "every stored outcome is ok" in disagreement_report(self._store_with("ok"))
        report = disagreement_report(self._store_with("violation", "error"))
        assert "2 non-ok outcome(s)" in report
        assert "agreement" in report and "boom" in report


class TestStoreItems:
    def test_default_items_iterates_sorted_pairs(self):
        store = MemoryResultStore()
        spec = ScenarioSpec(kind="probe", n=4, f=1, k=1)
        store.put("f" * 64, ScenarioOutcome(spec=spec, verdict="ok"))
        store.put("0" * 64, ScenarioOutcome(spec=spec, verdict="ok"))
        digests = [digest for digest, _outcome in store.items()]
        assert digests == sorted(digests)
        assert len(digests) == 2

    def test_sqlite_items_matches_default(self, tmp_path):
        specs = theorem8_specs([4], **PINNED_KWARGS)
        with CachingRunner(open_store(tmp_path / "s.sqlite")) as runner:
            runner.run(specs)
        with open_store(tmp_path / "s.sqlite") as store:
            via_items = dict(store.items())
            via_get = {fp: store.get(fp) for fp in store.fingerprints()}
        assert via_items == via_get
