"""ResourceUsage: the per-scenario cost record."""

from __future__ import annotations

import pytest

from repro.campaign.spec import ScenarioOutcome, ScenarioSpec
from repro.provenance import ResourceUsage


def _outcome(steps=7, sent=12, delivered=9) -> ScenarioOutcome:
    return ScenarioOutcome(
        spec=ScenarioSpec(kind="any", n=4, f=1, k=1),
        verdict="ok",
        steps=steps,
        messages_sent=sent,
        messages_delivered=delivered,
    )


class TestResourceUsage:
    def test_of_outcome_lifts_the_counters(self):
        usage = ResourceUsage.of_outcome(_outcome(), seconds=1.5)
        assert usage.seconds == 1.5
        assert usage.steps == 7
        assert usage.messages_sent == 12
        assert usage.messages_delivered == 9

    def test_seconds_excluded_from_equality(self):
        # Wall time is measurement, not outcome: usage records must
        # compare equal across backends and cache replays.
        assert ResourceUsage(seconds=1.0, steps=3) == ResourceUsage(seconds=9.0, steps=3)
        assert ResourceUsage(steps=3) != ResourceUsage(steps=4)

    def test_addition_sums_every_field(self):
        total = ResourceUsage(seconds=1.0, steps=2, messages_sent=3, messages_delivered=4) \
            + ResourceUsage(seconds=0.5, steps=10, messages_sent=20, messages_delivered=30)
        assert total.seconds == pytest.approx(1.5)
        assert (total.steps, total.messages_sent, total.messages_delivered) == (12, 23, 34)

    def test_addition_rejects_foreign_types(self):
        with pytest.raises(TypeError):
            ResourceUsage() + 3  # type: ignore[operator]

    def test_dict_round_trip(self):
        usage = ResourceUsage(seconds=0.25, steps=5, messages_sent=6, messages_delivered=4)
        restored = ResourceUsage.from_dict(usage.to_dict())
        assert restored == usage
        assert restored.seconds == usage.seconds

    def test_from_dict_defaults_missing_fields_to_zero(self):
        assert ResourceUsage.from_dict({}) == ResourceUsage()
        assert ResourceUsage.from_dict({"steps": 3}).steps == 3

    def test_zero_is_the_additive_identity(self):
        usage = ResourceUsage(seconds=1.0, steps=2, messages_sent=3, messages_delivered=4)
        assert usage + ResourceUsage() == usage


class TestOutcomeCounters:
    def test_outcome_carries_message_counters(self):
        outcome = _outcome(sent=11, delivered=8)
        assert outcome.messages_sent == 11
        assert outcome.messages_delivered == 8

    def test_counters_default_to_zero(self):
        outcome = ScenarioOutcome(
            spec=ScenarioSpec(kind="any", n=4, f=1, k=1), verdict="ok")
        assert outcome.messages_sent == 0
        assert outcome.messages_delivered == 0

    def test_codec_round_trips_the_counters(self):
        from repro.campaign.codec import outcome_from_dict, outcome_to_dict

        outcome = _outcome(sent=13, delivered=10)
        assert outcome_from_dict(outcome_to_dict(outcome)) == outcome

    def test_codec_tolerates_archived_payloads_without_counters(self):
        # CampaignResult.to_json payloads written before the counters
        # existed must still decode (with zero cost), not KeyError.
        from repro.campaign.codec import outcome_from_dict, outcome_to_dict

        data = outcome_to_dict(_outcome())
        del data["messages_sent"], data["messages_delivered"]
        decoded = outcome_from_dict(data)
        assert decoded.messages_sent == 0
        assert decoded.messages_delivered == 0
