"""The journal acceptance test: SIGKILL a journaled campaign, resume.

A child process runs a process-backend campaign through
``CachingRunner`` with a SQLite store and a journal.  The parent kills
it mid-run, resumes against the same store *and the same journal*, and
asserts that the replayed ledger is equal to an uninterrupted
campaign's:

* the resumed campaign's per-scenario records sum exactly to the
  campaign size (``ran + cached == total``);
* the **merged** per-fingerprint decision map over both journal entries
  equals the uninterrupted campaign's — every scenario ``ran``
  somewhere, none vanished.

The merged map (not a strict ran-exactly-once count) is the right
equality: a kill can land between a worker's journal event and the
parent's store commit, in which case that scenario legitimately runs
again on resume.
"""

from __future__ import annotations

import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignRunner
from repro.provenance import read_journal, replay_ledger
from repro.store import CachingRunner, fingerprint_spec, open_store
from slow_kind import slow_specs  # registers the kind in this process too

HERE = Path(__file__).resolve().parent
SRC = HERE.parent.parent / "src"
STORE_TESTS = HERE.parent / "store"

SCENARIOS = 30
SLEEP_MS = 30

CHILD_SCRIPT = """
import sys
from repro.campaign import CampaignRunner
from repro.store import CachingRunner, open_store
from slow_kind import slow_specs

store_path, journal_path, count, sleep_ms = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]))
specs = slow_specs(count, sleep_ms=sleep_ms)
with CachingRunner(
    open_store(store_path),
    CampaignRunner(backend="process", workers=2, chunk_size=1),
    journal=journal_path,
) as runner:
    runner.run(specs)
print("FINISHED", flush=True)
"""


def _stored_count(path: Path) -> int:
    if not path.exists():
        return 0
    try:
        connection = sqlite3.connect(str(path))
        try:
            row = connection.execute("SELECT COUNT(*) FROM results").fetchone()
            return int(row[0])
        finally:
            connection.close()
    except sqlite3.Error:
        return 0


def _run_child_until_killed(store_path: Path, journal_path: Path, kill_after: int) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC), str(STORE_TESTS)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT,
         str(store_path), str(journal_path), str(SCENARIOS), str(SLEEP_MS)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        start_new_session=True,  # its own process group: the kill takes the pool down too
    )
    try:
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if _stored_count(store_path) >= kill_after:
                break
            if child.poll() is not None:
                stdout, stderr = child.communicate(timeout=10)
                pytest.fail(
                    f"campaign child exited before the kill "
                    f"(rc={child.returncode}):\n{stderr.decode(errors='replace')}"
                )
            time.sleep(0.02)
        else:
            pytest.fail(f"store never reached {kill_after} outcomes within the deadline")
        os.killpg(os.getpgid(child.pid), signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            try:
                os.killpg(os.getpgid(child.pid), signal.SIGKILL)
            except ProcessLookupError:
                pass
            child.wait(timeout=30)
    assert child.returncode != 0  # it really was killed, not finished


def test_killed_campaign_journal_replays_to_the_uninterrupted_ledger(tmp_path):
    store_path = tmp_path / "killed.sqlite"
    journal_path = tmp_path / "killed-journal.jsonl"
    _run_child_until_killed(store_path, journal_path, kill_after=4)

    specs = slow_specs(SCENARIOS, sleep_ms=SLEEP_MS)
    expected_fps = {fingerprint_spec(spec) for spec in specs}

    # The killed campaign left a valid (possibly torn-tailed) journal
    # with an unfinished campaign in it.
    partial = replay_ledger(read_journal(journal_path))
    assert len(partial.campaigns) == 1
    (killed_ledger,) = partial.campaigns.values()
    assert not killed_ledger.finished
    assert 0 < killed_ledger.recorded < SCENARIOS

    # Resume into the SAME journal and store.
    with CachingRunner(
        open_store(store_path),
        CampaignRunner(backend="process", workers=2, chunk_size=1),
        journal=journal_path,
    ) as runner:
        resumed = runner.run(specs)
    assert resumed == CampaignRunner().run(specs)

    # An uninterrupted reference campaign, journaled separately.
    reference_journal = tmp_path / "reference-journal.jsonl"
    with CachingRunner(
        open_store(tmp_path / "reference.sqlite"),
        CampaignRunner(backend="process", workers=2, chunk_size=1),
        journal=reference_journal,
    ) as reference_runner:
        reference_runner.run(specs)

    merged = replay_ledger(read_journal(journal_path))
    reference = replay_ledger(read_journal(reference_journal))

    # The resumed campaign's own ledger sums exactly to the size ...
    resumed_ledger = merged.campaigns[runner.last_campaign_id]
    assert resumed_ledger.finished
    assert resumed_ledger.ran + resumed_ledger.cached == resumed_ledger.total == SCENARIOS
    assert resumed_ledger.skipped == 0
    # ... nothing the kill persisted was recomputed ...
    assert resumed_ledger.cached >= 4

    # ... and the merged decision map equals the uninterrupted one:
    # every scenario of the campaign ran somewhere, none vanished.
    assert merged.decisions == reference.decisions
    assert set(merged.decisions) == expected_fps
    assert set(merged.decisions.values()) == {"ran"}

    # Simulated work in the merged journal covers every scenario at
    # least once (a kill may legitimately re-run in-flight scenarios).
    reference_steps = reference.total_usage().steps
    assert merged.total_usage().steps >= reference_steps > 0


def test_uninterrupted_journal_ledger_sums_and_is_all_ran(tmp_path):
    specs = slow_specs(8, sleep_ms=1)
    journal_path = tmp_path / "journal.jsonl"
    with CachingRunner(
        open_store(tmp_path / "store.sqlite"),
        CampaignRunner(backend="process", workers=2, chunk_size=1),
        journal=journal_path,
    ) as runner:
        runner.run(specs)
    replay = replay_ledger(read_journal(journal_path))
    ledger = replay.campaigns[runner.last_campaign_id]
    assert ledger.finished
    assert ledger.ran == ledger.total == len(specs)
    assert ledger.cached == ledger.skipped == 0
    assert {record["worker_pid"] for record in replay.scenario_records} != set()
