"""The campaign journal: writing, torn-tail reading, ledger replay."""

from __future__ import annotations

import json
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.provenance import (
    JOURNAL_SCHEMA_VERSION,
    CampaignJournal,
    ResourceUsage,
    read_journal,
    replay_ledger,
)

FP_A = "a" * 64
FP_B = "b" * 64
FP_C = "c" * 64


def _write_campaign(journal: CampaignJournal, campaign: str, decisions) -> None:
    journal.campaign_started(campaign, len(decisions), backend="serial")
    for fingerprint, decision in decisions:
        journal.scenario(
            campaign, fingerprint, decision,
            verdict="ok", usage=ResourceUsage(seconds=0.1, steps=5),
        )
    journal.campaign_finished(campaign, {"total": len(decisions)})


class TestJournalRoundTrip:
    def test_records_replay_to_a_summing_ledger(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            _write_campaign(journal, "c1", [(FP_A, "ran"), (FP_B, "cached"), (FP_C, "skipped")])
        replay = replay_ledger(read_journal(path))
        ledger = replay.campaigns["c1"]
        assert (ledger.ran, ledger.cached, ledger.skipped) == (1, 1, 1)
        assert ledger.recorded == ledger.total == 3
        assert ledger.finished
        assert ledger.usage.steps == 15

    def test_merged_decisions_prefer_ran_over_cached_over_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            _write_campaign(journal, "c1", [(FP_A, "ran"), (FP_B, "skipped")])
            _write_campaign(journal, "c2", [(FP_A, "cached"), (FP_B, "cached")])
        replay = replay_ledger(read_journal(path))
        assert replay.decisions == {FP_A: "ran", FP_B: "cached"}
        assert replay.ran_fingerprints == {FP_A}
        assert replay.ran_counts == {FP_A: 1}

    def test_early_stop_records_land_on_their_ledger(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.campaign_started("c1", 1)
            journal.scenario("c1", FP_A, "ran", verdict="violation")
            journal.early_stop("c1", ("kind", 4, 1, 1), "violation")
            journal.campaign_finished("c1")
        ledger = replay_ledger(read_journal(path)).campaigns["c1"]
        assert ledger.early_stops == ((["kind", 4, 1, 1], "violation"),)

    def test_total_usage_counts_ran_only_by_default(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            journal.campaign_started("c1", 2)
            journal.scenario("c1", FP_A, "ran", usage=ResourceUsage(steps=10))
            journal.scenario("c1", FP_B, "cached", usage=ResourceUsage(steps=7))
            journal.campaign_finished("c1")
        replay = replay_ledger(read_journal(path))
        assert replay.total_usage().steps == 10
        assert replay.total_usage(include_cached=True).steps == 17

    def test_append_reopen_append(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            _write_campaign(journal, "c1", [(FP_A, "ran")])
        with CampaignJournal(path) as journal:
            _write_campaign(journal, "c2", [(FP_A, "cached")])
        replay = replay_ledger(read_journal(path))
        assert set(replay.campaigns) == {"c1", "c2"}
        assert all(ledger.finished for ledger in replay.campaigns.values())


class TestJournalWriter:
    def test_unknown_decision_is_rejected_at_write_time(self, tmp_path):
        with CampaignJournal(tmp_path / "journal.jsonl") as journal:
            journal.campaign_started("c1", 1)
            with pytest.raises(ConfigurationError, match="unknown scenario decision"):
                journal.scenario("c1", FP_A, "maybe")

    def test_close_is_idempotent(self, tmp_path):
        journal = CampaignJournal(tmp_path / "journal.jsonl")
        journal.close()
        journal.close()  # must not raise

    def test_concurrent_appends_never_interleave(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        per_thread = 50
        with CampaignJournal(path) as journal:
            journal.campaign_started("c1", 4 * per_thread)

            def append_many(tag: int) -> None:
                for index in range(per_thread):
                    digest = f"{tag}{index:063d}"[:64].rjust(64, "0")
                    journal.scenario(
                        "c1", digest, "ran",
                        usage=ResourceUsage(seconds=0.001, steps=1),
                    )

            threads = [threading.Thread(target=append_many, args=(t,)) for t in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            journal.campaign_finished("c1")
        # Every line parses (no interleaved writes) and the ledger sums.
        replay = replay_ledger(read_journal(path))
        ledger = replay.campaigns["c1"]
        assert ledger.ran == 4 * per_thread
        assert ledger.usage.steps == 4 * per_thread


class TestJournalTornTail:
    def _valid_lines(self, tmp_path) -> tuple:
        path = tmp_path / "journal.jsonl"
        with CampaignJournal(path) as journal:
            _write_campaign(journal, "c1", [(FP_A, "ran"), (FP_B, "ran")])
        return path, path.read_bytes()

    def test_torn_final_line_is_dropped(self, tmp_path):
        path, data = self._valid_lines(tmp_path)
        path.write_bytes(data + b'{"v": 1, "type": "scenario", "camp')
        records = read_journal(path)
        assert len(records) == 4  # start + 2 scenarios + finish
        # ... and opening a writer on it heals the file.
        CampaignJournal(path).close()
        assert path.read_bytes() == data

    def test_mid_file_corruption_raises(self, tmp_path):
        path, data = self._valid_lines(tmp_path)
        lines = data.split(b"\n")
        lines[1] = b"{torn garbage"
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(ConfigurationError, match="corrupt campaign journal"):
            read_journal(path)
        with pytest.raises(ConfigurationError, match="corrupt campaign journal"):
            CampaignJournal(path)

    def test_fully_written_garbage_final_line_raises(self, tmp_path):
        # A garbage line WITH its trailing newline cannot be a torn
        # append — it was written whole, so it is real corruption.
        path, data = self._valid_lines(tmp_path)
        path.write_bytes(data + b"not json at all\n")
        with pytest.raises(ConfigurationError, match="corrupt campaign journal"):
            read_journal(path)

    def test_other_version_rows_are_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        rows = [
            {"v": JOURNAL_SCHEMA_VERSION + 1, "type": "campaign-start",
             "campaign": "old", "total": 1},
            {"v": JOURNAL_SCHEMA_VERSION, "type": "campaign-start",
             "campaign": "new", "total": 0},
            {"v": JOURNAL_SCHEMA_VERSION, "type": "campaign-finish",
             "campaign": "new"},
        ]
        path.write_text("".join(json.dumps(row) + "\n" for row in rows))
        replay = replay_ledger(read_journal(path))
        assert set(replay.campaigns) == {"new"}

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no campaign journal"):
            read_journal(tmp_path / "absent.jsonl")

    def test_empty_file_loads_empty_and_is_untouched(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_bytes(b"")
        assert read_journal(path) == ()
        CampaignJournal(path).close()
        assert path.read_bytes() == b""


class TestLedgerValidation:
    def test_scenario_before_campaign_start_raises(self):
        with pytest.raises(ConfigurationError, match="before its campaign-start"):
            replay_ledger([
                {"v": 1, "type": "scenario", "campaign": "ghost",
                 "fp": FP_A, "decision": "ran", "usage": {}},
            ])

    def test_unknown_record_type_raises(self):
        with pytest.raises(ConfigurationError, match="unknown journal record type"):
            replay_ledger([{"v": 1, "type": "telemetry", "campaign": "c1"}])

    def test_unknown_decision_raises(self):
        with pytest.raises(ConfigurationError, match="unknown scenario decision"):
            replay_ledger([
                {"v": 1, "type": "campaign-start", "campaign": "c1", "total": 1},
                {"v": 1, "type": "scenario", "campaign": "c1",
                 "fp": FP_A, "decision": "perhaps", "usage": {}},
            ])

    def test_finished_campaign_must_sum_to_total(self):
        with pytest.raises(ConfigurationError, match="journal is incomplete"):
            replay_ledger([
                {"v": 1, "type": "campaign-start", "campaign": "c1", "total": 2},
                {"v": 1, "type": "scenario", "campaign": "c1",
                 "fp": FP_A, "decision": "ran", "usage": {}},
                {"v": 1, "type": "campaign-finish", "campaign": "c1"},
            ])

    def test_killed_campaign_is_exempt_from_the_sum_check(self):
        replay = replay_ledger([
            {"v": 1, "type": "campaign-start", "campaign": "c1", "total": 10},
            {"v": 1, "type": "scenario", "campaign": "c1",
             "fp": FP_A, "decision": "ran", "usage": {}},
        ])
        ledger = replay.campaigns["c1"]
        assert not ledger.finished
        assert ledger.recorded == 1 < ledger.total
