"""Provenance suite fixtures.

The kill/resume journal test reuses the slow scenario kind that the
store suite registers (``tests/store/slow_kind.py``); make it importable
from here too.
"""

from __future__ import annotations

import sys
from pathlib import Path

STORE_TESTS = Path(__file__).resolve().parent.parent / "store"
if str(STORE_TESTS) not in sys.path:
    sys.path.insert(0, str(STORE_TESTS))
