"""The report CLI: the CI honesty check for the journal format."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.campaign import theorem8_specs
from repro.provenance import CampaignJournal, ResourceUsage
from repro.store import CachingRunner, open_store

SRC = Path(__file__).resolve().parent.parent.parent / "src"


def _report(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return subprocess.run(
        [sys.executable, "-m", "repro.provenance.report", *args],
        env=env, capture_output=True, text=True, timeout=120,
    )


def test_valid_journal_reports_and_exits_zero(tmp_path):
    journal_path = tmp_path / "journal.jsonl"
    store_path = tmp_path / "store.sqlite"
    with CachingRunner(open_store(store_path), journal=journal_path) as runner:
        runner.run(theorem8_specs([4], seeds=(1,), max_steps=4_000))
    result = _report(str(journal_path), "--store", str(store_path))
    assert result.returncode == 0, result.stderr
    assert "campaigns: 1" in result.stdout
    assert "finished" in result.stdout
    assert "theorem8" in result.stdout  # the by-dimension table rendered


def test_malformed_journal_fails_loudly(tmp_path):
    journal_path = tmp_path / "journal.jsonl"
    journal_path.write_text(
        '{"v": 1, "type": "scenario", "campaign": "ghost", '
        '"fp": "' + "a" * 64 + '", "decision": "ran", "usage": {}}\n'
    )
    result = _report(str(journal_path))
    assert result.returncode == 1
    assert "error:" in result.stderr
    assert "before its campaign-start" in result.stderr


def test_missing_journal_fails_loudly(tmp_path):
    result = _report(str(tmp_path / "absent.jsonl"))
    assert result.returncode == 1
    assert "no campaign journal" in result.stderr


def test_incomplete_finished_campaign_fails(tmp_path):
    journal_path = tmp_path / "journal.jsonl"
    with CampaignJournal(journal_path) as journal:
        journal.campaign_started("c1", 5)
        journal.scenario("c1", "a" * 64, "ran", usage=ResourceUsage(steps=1))
        journal.campaign_finished("c1")
    result = _report(str(journal_path))
    assert result.returncode == 1
    assert "incomplete" in result.stderr


def test_killed_campaign_is_reported_not_rejected(tmp_path):
    # An unfinished campaign is a valid journal state (a kill), flagged
    # in the summary but not an error — CI must not fail on it.
    journal_path = tmp_path / "journal.jsonl"
    with CampaignJournal(journal_path) as journal:
        journal.campaign_started("c1", 5)
        journal.scenario("c1", "a" * 64, "ran", usage=ResourceUsage(steps=1))
    result = _report(str(journal_path))
    assert result.returncode == 0, result.stderr
    assert "INCOMPLETE" in result.stdout


def test_bench_history_section(tmp_path):
    journal_path = tmp_path / "journal.jsonl"
    with CampaignJournal(journal_path) as journal:
        journal.campaign_started("c1", 0)
        journal.campaign_finished("c1")
    run_dir = tmp_path / "run-1"
    run_dir.mkdir()
    (run_dir / "BENCH_sweep.json").write_text(json.dumps({"name": "sweep", "seconds": 1.0}))
    result = _report(str(journal_path), "--bench", str(run_dir))
    assert result.returncode == 0, result.stderr
    assert "bench history" in result.stdout
    assert "sweep" in result.stdout

    (run_dir / "BENCH_bad.json").write_text("{nope")
    result = _report(str(journal_path), "--bench", str(run_dir))
    assert result.returncode == 1
    assert "malformed benchmark artifact" in result.stderr
