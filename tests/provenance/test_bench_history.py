"""Bench-history ingestion of BENCH_*.json artifacts."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.provenance import bench_history, load_bench_dir, metric_trajectory


def _write_artifacts(directory, records) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    for name, payload in records.items():
        (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


class TestLoadBenchDir:
    def test_loads_every_artifact_with_the_run_label(self, tmp_path):
        run = tmp_path / "run-1"
        _write_artifacts(run, {
            "sweep": {"name": "sweep", "seconds": 1.5, "scenarios": 100},
            "border": {"name": "border", "seconds": 0.4},
        })
        records = load_bench_dir(run)
        assert {record.experiment for record in records} == {"sweep", "border"}
        assert all(record.run == "run-1" for record in records)
        sweep = next(r for r in records if r.experiment == "sweep")
        assert sweep.metric("seconds") == 1.5
        assert sweep.metric("scenarios") == 100
        assert sweep.metric("absent", default=-1) == -1

    def test_experiment_falls_back_to_the_filename(self, tmp_path):
        run = tmp_path / "run-1"
        _write_artifacts(run, {"unnamed": {"seconds": 2.0}})
        (record,) = load_bench_dir(run)
        assert record.experiment == "unnamed"

    def test_empty_directory_loads_empty(self, tmp_path):
        run = tmp_path / "run-1"
        run.mkdir()
        assert load_bench_dir(run) == ()

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no benchmark artifact directory"):
            load_bench_dir(tmp_path / "absent")

    def test_malformed_json_raises(self, tmp_path):
        run = tmp_path / "run-1"
        run.mkdir()
        (run / "BENCH_bad.json").write_text("{not json")
        with pytest.raises(ConfigurationError, match="malformed benchmark artifact"):
            load_bench_dir(run)

    def test_non_object_payload_raises(self, tmp_path):
        run = tmp_path / "run-1"
        run.mkdir()
        (run / "BENCH_list.json").write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="expected an object"):
            load_bench_dir(run)


class TestTrajectory:
    def test_metric_trajectory_across_runs(self, tmp_path):
        _write_artifacts(tmp_path / "run-1", {"sweep": {"name": "sweep", "seconds": 2.0}})
        _write_artifacts(tmp_path / "run-2", {"sweep": {"name": "sweep", "seconds": 1.5}})
        _write_artifacts(tmp_path / "run-3", {"other": {"name": "other", "seconds": 9.0}})
        history = bench_history([tmp_path / "run-1", tmp_path / "run-2", tmp_path / "run-3"])
        trajectory = metric_trajectory(history, "sweep", "seconds")
        assert trajectory == (("run-1", 2.0), ("run-2", 1.5))

    def test_missing_metric_never_fabricates_points(self, tmp_path):
        _write_artifacts(tmp_path / "run-1", {"sweep": {"name": "sweep", "seconds": 2.0}})
        _write_artifacts(tmp_path / "run-2", {"sweep": {"name": "sweep", "steps": 10}})
        history = bench_history([tmp_path / "run-1", tmp_path / "run-2"])
        assert metric_trajectory(history, "sweep", "seconds") == (("run-1", 2.0),)
