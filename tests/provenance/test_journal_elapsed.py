"""The journal's monotonic ``elapsed`` stamp and its tolerant decoder.

Journal records carry two timestamps: wall-clock ``ts`` (``time.time``,
human-joinable but steppable by NTP) and monotonic ``elapsed``
(``time.perf_counter`` seconds since the journal handle opened, safe
for duration arithmetic).  Old journals predate ``elapsed`` entirely;
:func:`repro.provenance.record_elapsed` is the decoder that keeps them
replaying.
"""

from __future__ import annotations

import json

from repro.provenance import (
    CampaignJournal,
    read_journal,
    record_elapsed,
    replay_ledger,
)


def _write_journal(path, campaign="cafe00000001", scenarios=3):
    with CampaignJournal(path) as journal:
        journal.campaign_started(campaign, scenarios)
        for i in range(scenarios):
            journal.scenario(campaign, f"fp{i}", "ran", verdict="ok")
        journal.campaign_finished(campaign)
    return path


class TestElapsedStamps:
    def test_every_record_carries_a_monotonic_elapsed(self, tmp_path):
        path = _write_journal(tmp_path / "journal.jsonl")
        records = read_journal(path)
        assert records  # sanity
        for record in records:
            elapsed = record_elapsed(record)
            assert isinstance(elapsed, float)
            assert elapsed >= 0.0

    def test_elapsed_is_monotone_in_append_order(self, tmp_path):
        path = _write_journal(tmp_path / "journal.jsonl", scenarios=10)
        stamps = [record_elapsed(r) for r in read_journal(path)]
        assert stamps == sorted(stamps)

    def test_elapsed_and_ts_coexist(self, tmp_path):
        # ``elapsed`` is an addition, not a replacement: wall-clock ``ts``
        # stays for cross-host joins.
        path = _write_journal(tmp_path / "journal.jsonl")
        for record in read_journal(path):
            assert "ts" in record
            assert "elapsed" in record

    def test_reopened_journal_restarts_its_elapsed_origin(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        _write_journal(path, campaign="cafe00000001")
        with CampaignJournal(path) as journal:
            journal.campaign_started("cafe00000002", 0)
            journal.campaign_finished("cafe00000002")
        records = read_journal(path)
        second_session = [r for r in records if r["campaign"] == "cafe00000002"]
        # The second handle's stamps restart near zero; they are session-
        # relative, not file-relative.
        assert record_elapsed(second_session[0]) < record_elapsed(records[3])


class TestTolerantDecode:
    def test_missing_elapsed_decodes_to_none(self):
        assert record_elapsed({"v": 1, "ts": 123.0, "type": "scenario"}) is None

    def test_malformed_elapsed_decodes_to_none(self):
        assert record_elapsed({"elapsed": "soon"}) is None
        assert record_elapsed({"elapsed": None}) is None
        assert record_elapsed({"elapsed": True}) is None

    def test_numeric_elapsed_decodes_to_float(self):
        assert record_elapsed({"elapsed": 3}) == 3.0
        assert record_elapsed({"elapsed": 0.25}) == 0.25

    def test_old_journal_without_elapsed_still_replays(self, tmp_path):
        # Simulate a journal written before the field existed by
        # stripping ``elapsed`` from every record on disk.
        path = _write_journal(tmp_path / "journal.jsonl")
        stripped = []
        for record in read_journal(path):
            record = dict(record)
            record.pop("elapsed", None)
            stripped.append(json.dumps(record, sort_keys=True))
        old = tmp_path / "old.jsonl"
        old.write_text("\n".join(stripped) + "\n", encoding="utf-8")

        records = read_journal(old)
        assert all(record_elapsed(r) is None for r in records)
        replay = replay_ledger(records)
        ledger = replay.campaigns["cafe00000001"]
        assert ledger.finished
        assert ledger.ran == 3
