"""End-to-end integration tests: one per reproduced theorem.

Each test assembles the full pipeline the corresponding benchmark runs —
closed-form verdict, proof-scenario construction, simulation, certificate —
and checks that the pieces agree, which is the library-level statement of
"the paper's result is reproduced".
"""

from __future__ import annotations

import pytest

from repro import (
    FlawedQuorumKSet,
    ImpossibilityCertificate,
    KSetAgreementProblem,
    KSetInitialCrash,
    PossibilityCertificate,
    SigmaK,
    SigmaKSetAgreement,
    SigmaOmegaConsensus,
    Theorem2Scenario,
    Theorem8BorderScenario,
    Theorem10Scenario,
    asynchronous_model,
    corollary13_verdict,
    execute,
    sigma_omega_k,
    theorem2_verdict,
    theorem8_verdict,
)
from repro.analysis.border_sweep import observe_impossible, observe_solvable


class TestTheorem2EndToEnd:
    @pytest.mark.parametrize("n,f,k", [(4, 2, 1), (7, 4, 2), (10, 7, 3)])
    def test_impossible_points_fully_witnessed(self, n, f, k):
        claim = theorem2_verdict(n, f, k)
        assert claim.is_impossible
        scenario = Theorem2Scenario(n=n, f=f, k=k, max_steps=8_000)
        witness = scenario.apply(KSetInitialCrash(n, f))
        assert witness.holds
        _run, report = scenario.crash_during_run_report(
            KSetInitialCrash(n, f)
        )
        certificate = ImpossibilityCertificate(
            claim=claim, witness=witness, violation_reports=(report,)
        )
        certificate.verify()


class TestTheorem8EndToEnd:
    @pytest.mark.parametrize("n,f,k", [(5, 2, 1), (6, 3, 2), (7, 5, 3)])
    def test_solvable_points_certified(self, n, f, k):
        claim = theorem8_verdict(n, f, k)
        assert claim.is_solvable
        ok, reports = observe_solvable(n, f, k, seeds=(1,), max_steps=8_000)
        assert ok
        PossibilityCertificate(
            claim=claim,
            algorithm_name=f"kset-initial-crash(n={n}, f={f})",
            reports=tuple(reports),
        ).verify()

    @pytest.mark.parametrize("n,f,k", [(4, 2, 1), (6, 4, 2), (8, 6, 3)])
    def test_impossible_points_certified(self, n, f, k):
        claim = theorem8_verdict(n, f, k)
        assert claim.is_impossible
        violated, report = observe_impossible(n, f, k, max_steps=8_000)
        assert violated
        ImpossibilityCertificate(claim=claim, violation_reports=(report,)).verify()

    def test_border_case_pasting(self):
        scenario = Theorem8BorderScenario(n=6, f=4, k=2)
        pasted, check = scenario.pasted_run(KSetInitialCrash(6, 4))
        assert check["holds"]
        assert check["distinct_decisions"] == 3


class TestTheorem10AndCorollary13EndToEnd:
    def test_impossible_region_witnessed(self):
        n, k = 7, 3
        claim = corollary13_verdict(n, k)
        assert claim.is_impossible
        scenario = Theorem10Scenario(n=n, k=k)
        witness = scenario.apply(FlawedQuorumKSet(n, k))
        run, report = scenario.violation_run(FlawedQuorumKSet(n, k))
        assert len(run.distinct_decisions()) > k
        ImpossibilityCertificate(
            claim=claim, witness=witness, violation_reports=(report,)
        ).verify()

    def test_k_equals_one_solvable(self):
        n = 6
        claim = corollary13_verdict(n, 1)
        assert claim.is_solvable
        model = asynchronous_model(n, n - 1, failure_detector=sigma_omega_k(1, gst=0))
        run = execute(SigmaOmegaConsensus(n), model, {p: p for p in model.processes})
        report = KSetAgreementProblem(1).evaluate(run)
        PossibilityCertificate(
            claim=claim, algorithm_name="sigma-omega-consensus", reports=(report,)
        ).verify()

    def test_k_equals_n_minus_one_solvable(self):
        n = 6
        claim = corollary13_verdict(n, n - 1)
        assert claim.is_solvable
        model = asynchronous_model(n, n - 1, failure_detector=SigmaK(n - 1))
        run = execute(SigmaKSetAgreement(n), model, {p: p for p in model.processes})
        report = KSetAgreementProblem(n - 1).evaluate(run)
        PossibilityCertificate(
            claim=claim, algorithm_name="sigma-kset", reports=(report,)
        ).verify()
