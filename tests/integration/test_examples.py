"""Smoke tests: every example script runs to completion."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs_cleanly(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert result.stdout.strip(), "examples should print a report"
