"""Tests for the named proof scenarios."""

from __future__ import annotations

import pytest

from repro.algorithms.flawed_candidate import FlawedQuorumKSet
from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.sigma_kset import SigmaKSetAgreement
from repro.core.ksetagreement import KSetAgreementProblem
from repro.exceptions import PartitionError
from repro.partitioning.scenarios import (
    Theorem2Scenario,
    Theorem8BorderScenario,
    Theorem10Scenario,
)


class TestTheorem2Scenario:
    def test_construction_and_lemma3(self):
        scenario = Theorem2Scenario(n=7, f=4, k=2)
        assert scenario.model.n == 7
        assert scenario.lemma3_report()["holds"]

    def test_infeasible_parameters_rejected(self):
        with pytest.raises(PartitionError):
            Theorem2Scenario(n=4, f=1, k=2)

    def test_partitioned_run_isolates_blocks(self):
        scenario = Theorem2Scenario(n=7, f=4, k=2, max_steps=6_000)
        run = scenario.partitioned_run(KSetInitialCrash(7, 4))
        assert run.completed
        for pid in scenario.partition.d_bar:
            assert run.received_before_decision(pid).isdisjoint(scenario.partition.d_union)

    def test_crash_during_run_breaks_termination(self):
        scenario = Theorem2Scenario(n=7, f=4, k=2, max_steps=800)
        run, report = scenario.crash_during_run_report(KSetInitialCrash(7, 4))
        assert not report.termination_ok
        assert run.truncated


class TestTheorem8BorderScenario:
    def test_groups_shape(self):
        scenario = Theorem8BorderScenario(n=9, f=6, k=2)
        assert len(scenario.groups) == 3
        assert all(len(g) == 3 for g in scenario.groups)

    def test_rejects_off_border_points(self):
        with pytest.raises(PartitionError):
            Theorem8BorderScenario(n=9, f=5, k=2)

    def test_isolation_runs_each_decide_one_value(self):
        scenario = Theorem8BorderScenario(n=6, f=4, k=2)
        runs = scenario.isolation_runs(KSetInitialCrash(6, 4))
        assert len(runs) == 3
        for run, group in zip(runs, scenario.groups):
            assert run.completed
            decided = {run.decisions()[p] for p in group}
            assert len(decided) == 1


class TestTheorem10Scenario:
    def test_construction(self):
        scenario = Theorem10Scenario(n=7, k=3)
        assert scenario.partition.d_bar == {1, 2, 3, 4, 5}
        assert scenario.detector.k == 3
        assert scenario.model.failure_detector is scenario.detector

    def test_block_runs_decide_in_isolation(self):
        scenario = Theorem10Scenario(n=6, k=3)
        runs = scenario.block_runs(FlawedQuorumKSet(6, 3))
        assert len(runs) == 3
        assert all(run.completed for run in runs)

    def test_violation_run_exceeds_k(self):
        scenario = Theorem10Scenario(n=7, k=4)
        run, report = scenario.violation_run(FlawedQuorumKSet(7, 4))
        assert not report.agreement_ok
        assert len(run.distinct_decisions()) >= 5

    def test_correct_nminus1_algorithm_survives_the_same_schedule(self):
        # Sanity check: for k = n - 1 the parameter point is solvable
        # (Corollary 13), and indeed the Sigma_{n-1} protocol keeps its
        # guarantee under the analogous k = n - 1 partitioning schedule.
        # (The partition detector with n - 1 blocks is a valid Sigma_{n-1}
        # history by Lemma 9, so this is an admissible run.)
        n = 5
        k = n - 1
        # Build the partition by hand because theorem10_partition requires
        # k <= n - 2: D-bar = {1, 2}, singleton blocks {3}, {4}, {5}.
        from repro.core.impossibility import PartitionSpec
        from repro.failure_detectors.partition import PartitionDetector
        from repro.models.asynchronous import asynchronous_model
        from repro.simulation.adversary import PartitioningAdversary
        from repro.simulation.executor import execute

        blocks = tuple(frozenset({p}) for p in range(3, n + 1))
        partition = PartitionSpec(processes=tuple(range(1, n + 1)), d_blocks=blocks)
        detector = PartitionDetector(partition.all_blocks(), gst=0)
        model = asynchronous_model(n, n - 1, failure_detector=detector)

        run = execute(
            SigmaKSetAgreement(n), model, {p: p for p in model.processes},
            adversary=PartitioningAdversary(partition.all_blocks()),
        )
        report = KSetAgreementProblem(k).evaluate(run)
        assert report.all_ok, report.violations
