"""Tests for the Lemma 11 / Lemma 12 run pasting."""

from __future__ import annotations

import pytest

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.exceptions import PartitionError
from repro.failure_detectors.base import FailurePattern
from repro.failure_detectors.transformations import verify_lemma9
from repro.models.initial_crash import initial_crash_model
from repro.partitioning.pasting import paste_runs, verify_pasting
from repro.partitioning.scenarios import Theorem8BorderScenario, Theorem10Scenario
from repro.simulation.executor import ExecutionSettings, execute, group_decided


def isolation_runs(n, f, groups):
    model = initial_crash_model(n, f)
    algorithm = KSetInitialCrash(n, f)
    proposals = {p: p for p in model.processes}
    runs = []
    for group in groups:
        dead = frozenset(model.processes) - group
        pattern = FailurePattern.initially_dead(model.processes, dead)
        runs.append(
            execute(
                algorithm, model, proposals, failure_pattern=pattern,
                settings=ExecutionSettings(stop_condition=group_decided(group)),
            )
        )
    return runs


class TestPasteRuns:
    def test_basic_pasting_preserves_block_behaviour(self):
        groups = (frozenset({1, 2, 3}), frozenset({4, 5, 6}))
        runs = isolation_runs(6, 3, groups)
        pasted = paste_runs(runs, groups)
        check = verify_pasting(pasted, runs, groups)
        assert check["holds"], check
        assert check["indistinguishable"]
        assert check["distinct_decisions"] == 2
        assert pasted.decisions()[1] == 1 and pasted.decisions()[4] == 4

    def test_times_are_consecutive(self):
        groups = (frozenset({1, 2, 3}), frozenset({4, 5, 6}))
        runs = isolation_runs(6, 3, groups)
        pasted = paste_runs(runs, groups)
        assert [event.time for event in pasted.events] == list(range(1, pasted.length + 1))

    def test_failure_pattern_merged(self):
        groups = (frozenset({1, 2, 3}), frozenset({4, 5, 6}))
        runs = isolation_runs(6, 3, groups)
        pasted = paste_runs(runs, groups)
        # in each block run the other block is dead, but in the pasted run
        # every process that took steps is alive
        assert pasted.failure_pattern.faulty == frozenset()

    def test_validation(self):
        groups = (frozenset({1, 2, 3}), frozenset({4, 5, 6}))
        runs = isolation_runs(6, 3, groups)
        with pytest.raises(PartitionError):
            paste_runs(runs, groups[:1])
        with pytest.raises(PartitionError):
            paste_runs([], [])
        with pytest.raises(PartitionError):
            paste_runs(runs, (frozenset({1, 2, 3}), frozenset({3, 4, 5, 6})))
        with pytest.raises(PartitionError):
            paste_runs(runs, (frozenset({1, 2, 3}), frozenset({4, 5})))


class TestTheorem8BorderScenario:
    def test_pasted_run_shows_k_plus_one_values(self):
        scenario = Theorem8BorderScenario(n=6, f=4, k=2)
        pasted, check = scenario.pasted_run(KSetInitialCrash(6, 4))
        assert check["holds"]
        assert check["distinct_decisions"] == 3  # k + 1

    def test_single_genuine_violation_run(self):
        scenario = Theorem8BorderScenario(n=6, f=4, k=2)
        run, report = scenario.violation_run(KSetInitialCrash(6, 4))
        assert run.completed
        assert len(run.distinct_decisions()) == 3
        assert not report.agreement_ok

    def test_larger_border_case(self):
        scenario = Theorem8BorderScenario(n=8, f=6, k=3)
        run, report = scenario.violation_run(KSetInitialCrash(8, 6))
        assert len(run.distinct_decisions()) == 4
        assert not report.agreement_ok


class TestTheorem10Pasting:
    def test_lemma12_pasted_run(self):
        from repro.algorithms.flawed_candidate import FlawedQuorumKSet

        scenario = Theorem10Scenario(n=6, k=3)
        pasted, check = scenario.pasted_run(FlawedQuorumKSet(6, 3))
        assert check["holds"], check
        # each of the k blocks contributes at least one value
        assert check["distinct_decisions"] >= 3

    def test_lemma12_history_is_admissible_for_sigma_omega_k(self):
        # Lemma 9 + Lemma 12 together: the pasted partitioning history is a
        # valid (Sigma_k, Omega_k) history for the pasted failure pattern.
        from repro.algorithms.flawed_candidate import FlawedQuorumKSet

        scenario = Theorem10Scenario(n=6, k=3)
        pasted, _check = scenario.pasted_run(FlawedQuorumKSet(6, 3))
        violations = verify_lemma9(pasted.fd_history, pasted.failure_pattern, k=3)
        assert violations == []
