"""Tests for the proof partitions (:mod:`repro.partitioning.partitions`)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.borders import theorem2_verdict, theorem8_verdict
from repro.exceptions import PartitionError
from repro.partitioning.partitions import (
    equal_groups,
    lemma3_check,
    theorem2_partition,
    theorem8_border_groups,
    theorem10_partition,
)


class TestTheorem2Partition:
    def test_paper_shape(self):
        partition = theorem2_partition(7, 4, 2)
        assert partition.d_blocks == (frozenset({1, 2, 3}),)
        assert partition.d_bar == {4, 5, 6, 7}

    def test_k3(self):
        partition = theorem2_partition(10, 7, 3)
        assert partition.d_blocks == (frozenset({1, 2, 3}), frozenset({4, 5, 6}))
        assert len(partition.d_bar) == 4

    def test_infeasible_rejected(self):
        with pytest.raises(PartitionError):
            theorem2_partition(4, 2, 2)  # 2*2+1 > 4
        with pytest.raises(PartitionError):
            theorem2_partition(4, 0, 1)
        with pytest.raises(PartitionError):
            theorem2_partition(4, 2, 0)

    def test_lemma3_check(self):
        partition = theorem2_partition(10, 7, 3)
        report = lemma3_check(partition, 10, 7)
        assert report["holds"]
        assert report["block_sizes"] == (3, 3)
        assert report["d_bar_size"] >= 4

    @given(st.integers(min_value=2, max_value=20), st.integers(min_value=1, max_value=19), st.integers(min_value=1, max_value=10))
    def test_feasible_exactly_on_impossible_side(self, n, f, k):
        if f >= n:
            return
        feasible = True
        try:
            partition = theorem2_partition(n, f, k)
        except PartitionError:
            feasible = False
        impossible = theorem2_verdict(n, f, k).is_impossible
        assert feasible == impossible
        if feasible:
            assert lemma3_check(partition, n, f)["holds"]


class TestTheorem10Partition:
    def test_paper_shape(self):
        partition = theorem10_partition(6, 3)
        assert partition.d_bar == {1, 2, 3, 4}
        assert partition.d_blocks == (frozenset({5}), frozenset({6}))

    def test_d_bar_always_at_least_three(self):
        for n in range(4, 12):
            for k in range(2, n - 1):
                assert len(theorem10_partition(n, k).d_bar) >= 3

    def test_invalid_parameters(self):
        with pytest.raises(PartitionError):
            theorem10_partition(4, 1)
        with pytest.raises(PartitionError):
            theorem10_partition(4, 3)
        with pytest.raises(PartitionError):
            theorem10_partition(3, 2)


class TestEqualGroupsAndBorderCase:
    def test_equal_groups(self):
        groups = equal_groups(6, 3)
        assert groups == (frozenset({1, 2}), frozenset({3, 4}), frozenset({5, 6}))

    def test_equal_groups_validation(self):
        with pytest.raises(PartitionError):
            equal_groups(7, 3)
        with pytest.raises(PartitionError):
            equal_groups(4, 0)

    def test_border_groups_on_the_border(self):
        groups = theorem8_border_groups(6, 4, 2)
        assert len(groups) == 3
        assert all(len(g) == 2 for g in groups)

    def test_border_groups_off_border_rejected(self):
        with pytest.raises(PartitionError):
            theorem8_border_groups(6, 3, 2)
        with pytest.raises(PartitionError):
            theorem8_border_groups(6, 4, 0)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
    def test_border_case_is_exactly_theorem8_boundary(self, k, group_size):
        n = (k + 1) * group_size
        f = n - group_size
        groups = theorem8_border_groups(n, f, k)
        assert len(groups) == k + 1
        # the border point itself is impossible, one fewer failure is solvable
        assert theorem8_verdict(n, f, k).is_impossible
        assert theorem8_verdict(n, f - 1, k).is_solvable or f == 1
