"""Tests for :mod:`repro.models.catalog`."""

from __future__ import annotations

import pytest

from repro.failure_detectors.sigma import SigmaK
from repro.models.asynchronous import asynchronous_model
from repro.models.catalog import (
    catalog_entries,
    consensus_impossible,
    consensus_verdict,
)
from repro.models.initial_crash import initial_crash_model
from repro.models.model import FailureAssumption, SystemModel
from repro.models.parameters import SystemModelSpec
from repro.models.partially_synchronous import partially_synchronous_model
from repro.types import Verdict, process_range


class TestFLPEntry:
    def test_flp_impossible_with_one_crash(self):
        model = asynchronous_model(3, 1)
        verdict, entry = consensus_verdict(model)
        assert verdict is Verdict.IMPOSSIBLE
        assert entry is not None and "Fischer" in entry.reference
        assert consensus_impossible(model)

    def test_flp_not_applicable_without_crashes(self):
        model = asynchronous_model(3, 0)
        verdict, _entry = consensus_verdict(model)
        assert verdict is not Verdict.IMPOSSIBLE


class TestDDSEntry:
    def test_theorem2_restricted_model_entry(self):
        # The exact situation of Theorem 2's condition (C): the restriction
        # <D-bar> keeps the partially synchronous spec and allows one crash.
        base = partially_synchronous_model(7, 4)
        restricted = base.restrict([4, 5, 6, 7], failures=FailureAssumption(1))
        assert consensus_impossible(restricted)
        _verdict, entry = consensus_verdict(restricted)
        assert "Dolev" in entry.reference

    def test_fully_synchronous_solvable(self):
        spec = SystemModelSpec(
            synchronous_processes=True, synchronous_communication=True
        )
        model = SystemModel(
            name="sync", processes=process_range(4), spec=spec,
            failures=FailureAssumption(2),
        )
        verdict, entry = consensus_verdict(model)
        assert verdict is Verdict.SOLVABLE
        assert not consensus_impossible(model)


class TestInitialCrashEntries:
    def test_majority_solvable(self):
        assert consensus_verdict(initial_crash_model(5, 2))[0] is Verdict.SOLVABLE

    def test_no_majority_impossible(self):
        assert consensus_verdict(initial_crash_model(4, 2))[0] is Verdict.IMPOSSIBLE

    def test_border_consistency_with_theorem8(self):
        # Consensus (k=1) with initial crashes is solvable iff n > 2f,
        # which is Theorem 8 instantiated at k = 1.
        from repro.core.borders import theorem8_verdict

        for n in range(2, 10):
            for f in range(0, n):
                catalogue = consensus_verdict(initial_crash_model(n, f))[0]
                if catalogue is Verdict.UNKNOWN:
                    continue
                border = theorem8_verdict(n, f, 1).verdict
                assert catalogue == border, (n, f)


class TestUnknownAndDetectorModels:
    def test_detector_models_are_unknown(self):
        model = asynchronous_model(4, 1, failure_detector=SigmaK(1))
        assert consensus_verdict(model)[0] is Verdict.UNKNOWN
        assert not consensus_impossible(model)

    def test_unencoded_combination_is_unknown(self):
        spec = SystemModelSpec(ordered_messages=True, broadcast_transmission=True)
        model = SystemModel(
            name="odd", processes=process_range(3), spec=spec,
            failures=FailureAssumption(1),
        )
        assert consensus_verdict(model)[0] is Verdict.UNKNOWN

    def test_catalog_entries_have_metadata(self):
        for entry in catalog_entries():
            assert entry.name and entry.reference and entry.statement
            assert entry.verdict in (Verdict.SOLVABLE, Verdict.IMPOSSIBLE)
