"""Tests for the concrete model builders (M_ASYNC, M_PSYNC, M_INIT)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.failure_detectors.sigma import SigmaK
from repro.models.asynchronous import ASYNC_SPEC, asynchronous_model
from repro.models.initial_crash import INITIAL_CRASH_SPEC, initial_crash_model
from repro.models.partially_synchronous import THEOREM2_SPEC, partially_synchronous_model


class TestAsynchronousModel:
    def test_spec_is_fully_unfavourable(self):
        assert ASYNC_SPEC.as_tuple() == (False,) * 6

    def test_basic_construction(self):
        model = asynchronous_model(5, 2)
        assert model.n == 5
        assert model.f == 2
        assert not model.failures.initial_only
        assert model.failure_detector is None

    def test_with_failure_detector(self):
        detector = SigmaK(2)
        model = asynchronous_model(4, 3, failure_detector=detector)
        assert model.failure_detector is detector
        assert model.spec.failure_detectors
        assert "Sigma_2" in model.name

    def test_rejects_f_above_n(self):
        with pytest.raises(ConfigurationError):
            asynchronous_model(3, 4)


class TestPartiallySynchronousModel:
    def test_spec_matches_theorem2(self):
        assert THEOREM2_SPEC.synchronous_processes
        assert not THEOREM2_SPEC.synchronous_communication
        assert THEOREM2_SPEC.broadcast_transmission
        assert THEOREM2_SPEC.atomic_receive_send
        assert not THEOREM2_SPEC.failure_detectors

    def test_failure_assumption_allows_one_late_crash(self):
        model = partially_synchronous_model(5, 3)
        assert model.failures.max_failures == 3
        assert model.failures.max_non_initial == 1
        assert model.failures.allows([(1, 0), (2, 0), (3, 9)])
        assert not model.failures.allows([(1, 0), (2, 5), (3, 9)])

    def test_zero_faults(self):
        model = partially_synchronous_model(4, 0)
        assert model.failures.max_non_initial == 0


class TestInitialCrashModel:
    def test_spec(self):
        assert not INITIAL_CRASH_SPEC.synchronous_processes
        assert INITIAL_CRASH_SPEC.broadcast_transmission

    def test_failures_are_initial_only(self):
        model = initial_crash_model(6, 3)
        assert model.failures.initial_only
        assert model.failures.allows([(1, 0), (2, 0)])
        assert not model.failures.allows([(1, 2)])

    def test_name_mentions_parameters(self):
        assert "n=6" in initial_crash_model(6, 2).name
