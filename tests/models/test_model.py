"""Tests for :mod:`repro.models.model`."""

from __future__ import annotations

import pytest

from repro.algorithms.trivial import DecideOwnValue
from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern
from repro.models.model import FailureAssumption, SystemModel
from repro.models.parameters import SystemModelSpec
from repro.simulation.executor import execute
from repro.types import process_range


class TestFailureAssumption:
    def test_describe_variants(self):
        assert "initial" in FailureAssumption(2, initial_only=True).describe()
        assert "after the initial" in FailureAssumption(3, max_non_initial=1).describe()
        assert "crash failures" in FailureAssumption(1).describe()

    def test_allows_basic_budget(self):
        assumption = FailureAssumption(2)
        assert assumption.allows([(1, 0), (2, 5)])
        assert not assumption.allows([(1, 0), (2, 5), (3, 9)])

    def test_initial_only(self):
        assumption = FailureAssumption(2, initial_only=True)
        assert assumption.allows([(1, 0)])
        assert not assumption.allows([(1, 3)])

    def test_max_non_initial(self):
        assumption = FailureAssumption(3, max_non_initial=1)
        assert assumption.allows([(1, 0), (2, 0), (3, 7)])
        assert not assumption.allows([(1, 0), (2, 4), (3, 7)])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            FailureAssumption(-1)
        with pytest.raises(ConfigurationError):
            FailureAssumption(1, max_non_initial=-1)

    def test_initial_only_incompatible_with_non_initial(self):
        with pytest.raises(ConfigurationError):
            FailureAssumption(2, initial_only=True, max_non_initial=1)


class TestSystemModel:
    def make(self, n=4, f=1, **kwargs):
        return SystemModel(
            name="test",
            processes=process_range(n),
            failures=FailureAssumption(f),
            **kwargs,
        )

    def test_basic_accessors(self):
        model = self.make()
        assert model.n == 4
        assert model.f == 1
        assert 3 in model and 9 not in model

    def test_failure_bound_validation(self):
        with pytest.raises(ConfigurationError):
            SystemModel(name="bad", processes=(1, 2), failures=FailureAssumption(3))

    def test_detector_requires_spec(self):
        with pytest.raises(ConfigurationError):
            SystemModel(
                name="bad",
                processes=(1, 2, 3),
                failures=FailureAssumption(1),
                failure_detector=object(),
            )

    def test_with_failure_detector_enables_spec(self):
        model = self.make().with_failure_detector("oracle")
        assert model.spec.failure_detectors
        assert model.failure_detector == "oracle"

    def test_describe_mentions_everything(self):
        text = self.make().describe()
        assert "n=4" in text and "crash" in text


class TestRestriction:
    def make(self):
        return SystemModel(
            name="base",
            processes=process_range(6),
            failures=FailureAssumption(2),
        )

    def test_restrict_subset(self):
        restricted = self.make().restrict([1, 2, 3])
        assert restricted.processes == (1, 2, 3)
        assert restricted.spec == self.make().spec

    def test_restrict_keeps_spec_but_not_detector(self):
        base = SystemModel(
            name="base",
            processes=process_range(4),
            spec=SystemModelSpec(failure_detectors=True),
            failures=FailureAssumption(1),
            failure_detector="oracle",
        )
        restricted = base.restrict([1, 2])
        assert restricted.failure_detector is None
        kept = base.restrict([1, 2], keep_failure_detector=True)
        assert kept.failure_detector == "oracle"

    def test_restrict_with_explicit_failures(self):
        restricted = self.make().restrict([1, 2, 3], failures=FailureAssumption(1))
        assert restricted.f == 1

    def test_restrict_rejects_foreign_processes(self):
        with pytest.raises(ConfigurationError):
            self.make().restrict([1, 99])

    def test_restrict_caps_inherited_failures(self):
        restricted = self.make().restrict([1, 2])
        assert restricted.f <= 1


class TestAdmissibility:
    def run_simple(self, model, pattern=None):
        return execute(
            DecideOwnValue(),
            model,
            {pid: pid for pid in model.processes},
            failure_pattern=pattern,
        )

    def test_clean_run_is_admissible(self):
        model = SystemModel(
            name="m", processes=process_range(3), failures=FailureAssumption(1)
        )
        run = self.run_simple(model)
        assert model.is_admissible(run)

    def test_crash_budget_checked_post_hoc(self):
        model = SystemModel(
            name="m", processes=process_range(3), failures=FailureAssumption(1)
        )
        generous = SystemModel(
            name="g", processes=process_range(3), failures=FailureAssumption(2)
        )
        pattern = FailurePattern(process_range(3), {1: 0, 2: 0})
        run = self.run_simple(generous, pattern)
        violations = model.admissibility_violations(run)
        assert violations and "failure assumption" in violations[0]

    def test_foreign_process_flagged(self):
        big = SystemModel(
            name="big", processes=process_range(4), failures=FailureAssumption(0)
        )
        small = SystemModel(
            name="small", processes=process_range(2), failures=FailureAssumption(0)
        )
        run = self.run_simple(big)
        violations = small.admissibility_violations(run)
        assert any("not part of model" in v for v in violations)
