"""Tests for :mod:`repro.models.parameters`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.parameters import (
    ALL_SPECS,
    Favourability,
    ModelParameter,
    SystemModelSpec,
    iter_core_specs,
)


def spec_strategy():
    return st.builds(
        SystemModelSpec,
        synchronous_processes=st.booleans(),
        synchronous_communication=st.booleans(),
        ordered_messages=st.booleans(),
        broadcast_transmission=st.booleans(),
        atomic_receive_send=st.booleans(),
        failure_detectors=st.booleans(),
    )


class TestLattice:
    def test_64_specs(self):
        assert len(ALL_SPECS) == 64
        assert len(set(ALL_SPECS)) == 64

    def test_32_core_specs(self):
        core = list(iter_core_specs())
        assert len(core) == 32
        assert all(not spec.failure_detectors for spec in core)

    def test_default_is_fully_unfavourable(self):
        spec = SystemModelSpec()
        assert spec.as_tuple() == (False,) * 6
        assert all(
            spec.value(parameter) is Favourability.UNFAVOURABLE
            for parameter in ModelParameter
        )

    def test_label(self):
        assert SystemModelSpec().label() == "UUUUU U"
        fully = SystemModelSpec(True, True, True, True, True, True)
        assert fully.label() == "FFFFF F"


class TestValueAccess:
    def test_value_per_parameter(self):
        spec = SystemModelSpec(synchronous_processes=True, broadcast_transmission=True)
        assert spec.value(ModelParameter.PROCESS_SYNCHRONY).is_favourable
        assert spec.value(ModelParameter.BROADCAST).is_favourable
        assert not spec.value(ModelParameter.COMMUNICATION_SYNCHRONY).is_favourable

    def test_strengthen_weaken(self):
        spec = SystemModelSpec()
        stronger = spec.strengthen(ModelParameter.MESSAGE_ORDER)
        assert stronger.ordered_messages
        assert stronger.weaken(ModelParameter.MESSAGE_ORDER) == spec

    @given(spec_strategy(), st.sampled_from(list(ModelParameter)))
    def test_strengthen_then_weaken_roundtrip(self, spec, parameter):
        assert spec.strengthen(parameter).weaken(parameter) == spec.weaken(parameter)


class TestPartialOrder:
    def test_fully_favourable_dominates_everything(self):
        top = SystemModelSpec(True, True, True, True, True, True)
        assert all(top.at_least_as_favourable_as(spec) for spec in ALL_SPECS)

    def test_fully_unfavourable_dominated_by_everything(self):
        bottom = SystemModelSpec()
        assert all(spec.at_least_as_favourable_as(bottom) for spec in ALL_SPECS)

    @given(spec_strategy(), spec_strategy())
    def test_antisymmetry(self, a, b):
        if a.at_least_as_favourable_as(b) and b.at_least_as_favourable_as(a):
            assert a == b

    @given(spec_strategy(), spec_strategy(), spec_strategy())
    def test_transitivity(self, a, b, c):
        if a.at_least_as_favourable_as(b) and b.at_least_as_favourable_as(c):
            assert a.at_least_as_favourable_as(c)

    @given(spec_strategy())
    def test_reflexivity(self, spec):
        assert spec.at_least_as_favourable_as(spec)
