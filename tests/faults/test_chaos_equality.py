"""The headline invariant: injected chaos never changes campaign results.

A quarantine-free :class:`FaultPlan` perturbs *scheduling* — workers
crash, tasks raise and are retried, chunks time out and are re-queued —
but the :class:`CampaignResult` must stay **equal to the fault-free
run's, bit-identical, on every backend**.  Quarantining plans change
exactly the quarantined slots and nothing else.

Every run here is also implicitly a bounded-wall-time test: the
module-level plans use tight retry policies, and a supervisor that
parked in an unbounded ``done.get()`` would hang the suite rather than
pass it; the crash test asserts an explicit wall-clock ceiling too.
"""

from __future__ import annotations

import time

import pytest

from repro.campaign import CampaignRunner, theorem8_specs
from repro.faults import FaultPlan, RetryPolicy

SPECS = theorem8_specs([4], seeds=(1,), max_steps=4_000)
BASELINE = CampaignRunner().run(SPECS)

FAST_RETRY = RetryPolicy(
    max_attempts=3,
    backoff_seconds=0.01,
    task_timeout_seconds=5.0,
    death_grace_seconds=0.5,
    wake_seconds=0.05,
    teardown_grace_seconds=1.0,
)

# Transient raise + delay chaos: recoverable by one retry on any backend.
RAISE_PLAN = FaultPlan(seed=11, raise_rate=0.25, delay_rate=0.25,
                       delay_seconds=0.001)


def _assert_equal_to_baseline(result):
    assert result == BASELINE
    assert [o.spec for o in result.outcomes] == [o.spec for o in BASELINE.outcomes]
    assert result.verdict_counts() == BASELINE.verdict_counts()


class TestTransientChaosEquality:
    @pytest.mark.parametrize("backend,workers,chunk", [
        ("serial", 1, None),
        ("chunked", 1, 8),
        ("process", 2, 4),
    ])
    def test_raise_and_delay_chaos_is_invisible_in_results(
            self, backend, workers, chunk):
        kwargs = {"backend": backend, "workers": workers,
                  "faults": RAISE_PLAN, "retry": FAST_RETRY}
        if chunk is not None:
            kwargs["chunk_size"] = chunk
        result = CampaignRunner(**kwargs).run(SPECS)
        _assert_equal_to_baseline(result)
        assert result.fault_stats.task_retries >= 1
        assert result.fault_stats.quarantined == 0

    def test_batched_kernel_under_chaos(self):
        result = CampaignRunner(batch=True, faults=RAISE_PLAN,
                                retry=FAST_RETRY).run(SPECS)
        _assert_equal_to_baseline(result)

    def test_fault_stats_do_not_perturb_result_equality(self):
        # Chaos is infrastructure: two runs with different fault plans
        # (and so different stats) still compare equal on outcomes.
        noisy = CampaignRunner(faults=RAISE_PLAN, retry=FAST_RETRY).run(SPECS)
        assert noisy.fault_stats.any()
        assert not BASELINE.fault_stats.any()
        assert noisy == BASELINE

    def test_result_json_roundtrips_fault_stats(self):
        result = CampaignRunner(faults=RAISE_PLAN, retry=FAST_RETRY).run(SPECS)
        clone = type(result).from_json(result.to_json())
        assert clone == result
        assert clone.fault_stats == result.fault_stats


class TestWorkerDeathEquality:
    def test_sigkilled_workers_are_survived_bit_identically(self):
        # ~15% of scenarios SIGKILL their worker on first attempt; the
        # supervisor must detect the deaths, re-queue the lost chunks and
        # still produce the fault-free result — within a bounded wall
        # time (an unbounded ``done.get`` would blow straight past it).
        plan = FaultPlan(seed=23, crash_rate=0.15)
        started = time.monotonic()
        result = CampaignRunner(
            backend="process", workers=2, chunk_size=4,
            faults=plan, retry=FAST_RETRY,
        ).run(SPECS)
        elapsed = time.monotonic() - started
        _assert_equal_to_baseline(result)
        assert result.fault_stats.task_retries >= 1
        assert result.fault_stats.quarantined == 0
        assert elapsed < 90.0

    def test_hung_workers_hit_the_deadline_and_work_is_requeued(self):
        plan = FaultPlan(seed=5, hang_rate=0.1, hang_seconds=3.0)
        retry = RetryPolicy(
            max_attempts=3, backoff_seconds=0.01,
            task_timeout_seconds=0.75, death_grace_seconds=0.5,
            wake_seconds=0.05, teardown_grace_seconds=0.5,
        )
        result = CampaignRunner(
            backend="process", workers=2, chunk_size=4,
            faults=plan, retry=retry,
        ).run(SPECS)
        _assert_equal_to_baseline(result)
        assert result.fault_stats.task_timeouts >= 1

    def test_crash_plans_are_noops_on_inprocess_backends(self):
        # No worker to kill: serial/chunked runs under a crash-only plan
        # are the baseline, fault stats and all.
        plan = FaultPlan(seed=23, crash_rate=0.5)
        for backend in ("serial", "chunked"):
            result = CampaignRunner(backend=backend, faults=plan,
                                    retry=FAST_RETRY).run(SPECS)
            _assert_equal_to_baseline(result)
            assert not result.fault_stats.any()


class TestQuarantine:
    def test_poisoned_spec_is_quarantined_everything_else_is_baseline(self):
        poisoned = SPECS[7]
        plan = FaultPlan(poison_labels=(poisoned.label(),))
        for kwargs in (
            {"backend": "serial"},
            {"backend": "chunked", "chunk_size": 8},
            {"backend": "process", "workers": 2, "chunk_size": 4},
        ):
            result = CampaignRunner(faults=plan, retry=FAST_RETRY,
                                    **kwargs).run(SPECS)
            assert result != BASELINE
            assert result.fault_stats.quarantined == 1
            by_spec = {o.spec: o for o in result.outcomes}
            bad = by_spec[poisoned]
            assert bad.verdict == "error"
            assert bad.error.startswith("QuarantineError")
            for baseline_outcome in BASELINE.outcomes:
                if baseline_outcome.spec != poisoned:
                    assert by_spec[baseline_outcome.spec] == baseline_outcome

    def test_quarantine_drills_through_chunks_via_bisection(self):
        poisoned = SPECS[3]
        plan = FaultPlan(poison_labels=(poisoned.label(),))
        result = CampaignRunner(backend="chunked", chunk_size=16,
                                faults=plan, retry=FAST_RETRY).run(SPECS)
        assert result.fault_stats.quarantined == 1
        assert result.fault_stats.bisections >= 1
        errors = [o for o in result.outcomes if o.verdict == "error"
                  and o.error.startswith("QuarantineError")]
        assert [o.spec for o in errors] == [poisoned]
