"""Chaos acceptance: SIGKILLed workers and killed campaigns both recover.

Two escalating kill scenarios, both under :class:`CachingRunner` so the
full persistence stack (store, journal, ledger) is in the blast radius:

* a **worker** is SIGKILLed mid-wave — externally, from outside the
  pool, without the fault plan's cooperation — and the supervised
  dispatch loop must detect the death, re-queue the lost work and finish
  with the uninterrupted campaign's result and an exact journal;
* the **whole campaign process** is SIGKILLed mid-run while *also*
  injecting worker crashes, and a resumed run against the same store
  must converge to the uninterrupted result without recomputing what
  the killed run persisted.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignRunner
from repro.faults import FaultPlan, RetryPolicy
from repro.provenance import read_journal, replay_ledger
from repro.store import CachingRunner, open_store

HERE = Path(__file__).resolve().parent
SRC = HERE.parent.parent / "src"
STORE_TESTS = HERE.parent / "store"

sys.path.insert(0, str(STORE_TESTS))
from slow_kind import slow_specs  # noqa: E402  (registers the slow kind)

FAST_RETRY = RetryPolicy(
    max_attempts=4, backoff_seconds=0.01, task_timeout_seconds=3.0,
    death_grace_seconds=0.5, wake_seconds=0.05, teardown_grace_seconds=1.0,
)


def test_externally_sigkilled_worker_mid_wave_is_survived(tmp_path):
    specs = slow_specs(24, sleep_ms=50)
    uninterrupted = CampaignRunner().run(specs)

    killed = threading.Event()

    class Assassin:
        """Reporter-shaped hook that SIGKILLs the first worker it sees.

        The first progress event from a real pool worker names the
        victim; it is killed mid-wave, from outside the pool, exactly
        once.  (Events carry the emitting worker's pid — no /proc
        scanning, which in a full test session can hit unrelated
        children like multiprocessing's resource tracker.)
        """

        def campaign_started(self, total: int) -> None: ...

        def campaign_finished(self) -> None: ...

        def __call__(self, event) -> None:
            pid = getattr(event, "worker_pid", None)
            if killed.is_set() or not pid or pid == os.getpid():
                return
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                return
            killed.set()

    journal_path = tmp_path / "journal.jsonl"
    store = open_store(tmp_path / "store.jsonl")
    runner = CachingRunner(
        store,
        CampaignRunner(backend="process", workers=2, chunk_size=2,
                       retry=FAST_RETRY),
        journal=journal_path,
        progress=Assassin(),
    )
    result = runner.run(specs)
    store.close()

    assert killed.is_set()  # the chaos actually happened
    assert result == uninterrupted
    assert [o.spec for o in result.outcomes] == [o.spec for o in uninterrupted.outcomes]

    replay = replay_ledger(read_journal(journal_path))
    ledger = replay.campaigns[runner.last_campaign_id]
    assert ledger.finished
    assert ledger.recorded == ledger.total == len(specs)


CHILD_SCRIPT = """
import sys
from repro.campaign import CampaignRunner
from repro.faults import FaultPlan, RetryPolicy
from repro.store import CachingRunner, open_store
from slow_kind import slow_specs

store_path, journal_path, count = sys.argv[1], sys.argv[2], int(sys.argv[3])
specs = slow_specs(count, sleep_ms=40)
runner = CachingRunner(
    open_store(store_path),
    CampaignRunner(
        backend="process", workers=2, chunk_size=1,
        faults=FaultPlan(seed=13, crash_rate=0.1),
        retry=RetryPolicy(max_attempts=4, backoff_seconds=0.01,
                          task_timeout_seconds=10.0, death_grace_seconds=0.5,
                          wake_seconds=0.05, teardown_grace_seconds=1.0),
    ),
    journal=journal_path,
)
runner.run(specs)
print("FINISHED", flush=True)
"""

SCENARIOS = 40


def _run_chaotic_child_until_killed(store_path: Path, journal_path: Path,
                                    kill_after: int) -> None:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC), str(STORE_TESTS)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT,
         str(store_path), str(journal_path), str(SCENARIOS)],
        env=env, cwd=str(STORE_TESTS),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        start_new_session=True,
    )
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            stored = (store_path.read_bytes().count(b"\n")
                      if store_path.exists() else 0)
            if stored >= kill_after:
                break
            if child.poll() is not None:
                _, stderr = child.communicate(timeout=10)
                pytest.fail(
                    f"chaotic campaign child exited before the kill "
                    f"(rc={child.returncode}):\n{stderr.decode(errors='replace')}"
                )
            time.sleep(0.02)
        else:
            pytest.fail(f"store never reached {kill_after} outcomes")
        os.killpg(os.getpgid(child.pid), signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            try:
                os.killpg(os.getpgid(child.pid), signal.SIGKILL)
            except ProcessLookupError:
                pass
            child.wait(timeout=30)
    assert child.returncode != 0


def test_killed_chaotic_campaign_resumes_to_identical_result(tmp_path):
    store_path = tmp_path / "resume.jsonl"
    _run_chaotic_child_until_killed(
        store_path, tmp_path / "journal-killed.jsonl", kill_after=4)

    specs = slow_specs(SCENARIOS, sleep_ms=40)
    journal_path = tmp_path / "journal-resumed.jsonl"
    with open_store(store_path) as store:
        completed = len(store)
        assert 4 <= completed < SCENARIOS  # progress, but interrupted
        resumed_runner = CachingRunner(
            store,
            CampaignRunner(backend="process", workers=2, chunk_size=1,
                           faults=FaultPlan(seed=13, crash_rate=0.1),
                           retry=FAST_RETRY),
            journal=journal_path,
        )
        resumed = resumed_runner.run(specs)

    uninterrupted = CampaignRunner().run(specs)
    assert resumed == uninterrupted
    assert [o.spec for o in resumed.outcomes] == [o.spec for o in uninterrupted.outcomes]

    stats = resumed_runner.last_stats
    assert stats.cached >= completed  # persisted work was never redone
    assert stats.cached + stats.executed == SCENARIOS

    replay = replay_ledger(read_journal(journal_path))
    ledger = replay.campaigns[resumed_runner.last_campaign_id]
    assert ledger.finished
    assert ledger.recorded == ledger.total == SCENARIOS
