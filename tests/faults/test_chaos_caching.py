"""Chaos through the full persistence stack: CachingRunner + journal +
telemetry + (faulty) stores.

Pins how infrastructure failures *surface*: quarantined specs become
``"error"`` outcomes visible in the result, the journal (whose ledger
must stay exact — ``replay_ledger`` validates it) and the telemetry
counters; store-write failures degrade to warnings and counters, never
to lost outcomes; and quarantined outcomes are **not** persisted, so a
later run re-attempts the spec instead of caching an infrastructure
accident as if it were a property of the scenario.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, theorem8_specs
from repro.exceptions import ConfigurationError
from repro.faults import FaultPlan, FaultyStore, InjectedFaultError, RetryPolicy
from repro.provenance import read_journal, replay_ledger
from repro.store import (
    CachingRunner,
    MemoryResultStore,
    fingerprint_spec,
    open_store,
)
from repro.telemetry.session import TelemetryConfig, TelemetrySession

SPECS = theorem8_specs([4], seeds=(1,), max_steps=4_000)
BASELINE = CampaignRunner().run(SPECS)

FAST_RETRY = RetryPolicy(
    max_attempts=3, backoff_seconds=0.01, task_timeout_seconds=5.0,
    death_grace_seconds=0.5, wake_seconds=0.05, teardown_grace_seconds=1.0,
)


class TestQuarantineSurfacing:
    def _run_poisoned(self, tmp_path, store):
        poisoned = SPECS[5]
        plan = FaultPlan(poison_labels=(poisoned.label(),))
        journal_path = tmp_path / "journal.jsonl"
        telemetry = TelemetrySession(TelemetryConfig(sample_threshold=0))
        runner = CachingRunner(
            store,
            CampaignRunner(faults=plan, retry=FAST_RETRY),
            journal=journal_path,
            telemetry=telemetry,
        )
        result = runner.run(SPECS)
        return poisoned, journal_path, telemetry, runner, result

    def test_quarantine_reaches_result_journal_and_telemetry(self, tmp_path):
        store = MemoryResultStore()
        poisoned, journal_path, telemetry, runner, result = (
            self._run_poisoned(tmp_path, store))

        # Result: exactly one quarantined error outcome.
        bad = [o for o in result.outcomes
               if o.verdict == "error" and o.error.startswith("QuarantineError")]
        assert [o.spec for o in bad] == [poisoned]
        assert result.fault_stats.quarantined == 1

        # Journal: the ledger is exact despite the quarantined scenario
        # never reaching a worker's event emitter.
        replay = replay_ledger(read_journal(journal_path))
        ledger = replay.campaigns[runner.last_campaign_id]
        assert ledger.finished
        assert ledger.total == len(SPECS)
        assert ledger.recorded == ledger.total
        assert ledger.stats.get("faults", {}).get("quarantined") == 1

        # Telemetry: the counter exists, flagged timing so it never
        # perturbs cross-backend deterministic snapshots.
        assert telemetry.metrics.counter("quarantined").value == 1
        assert "quarantined" not in telemetry.deterministic_snapshot()

    def test_quarantined_outcomes_are_not_persisted(self, tmp_path):
        store = MemoryResultStore()
        poisoned, _, _, _, result = self._run_poisoned(tmp_path, store)
        assert store.get(fingerprint_spec(poisoned)) is None
        for outcome in result.outcomes:
            if outcome.spec != poisoned:
                assert store.get(fingerprint_spec(outcome.spec)) == outcome

    def test_later_run_reattempts_the_quarantined_spec(self, tmp_path):
        store = MemoryResultStore()
        poisoned, *_ = self._run_poisoned(tmp_path, store)
        # Same store, fault-free runner: the quarantined spec is the one
        # cache miss, and the campaign converges to the baseline.
        runner = CachingRunner(store, CampaignRunner())
        result = runner.run(SPECS)
        assert result == BASELINE
        assert runner.last_stats.cached == len(SPECS) - 1
        assert runner.last_stats.executed == 1


class TestFaultyStoreTolerance:
    def test_write_failures_do_not_lose_outcomes(self, tmp_path):
        inner = open_store(tmp_path / "store.jsonl")
        faulty = FaultyStore(inner, FaultPlan(store_failure_rate=1.0))
        runner = CachingRunner(faulty, CampaignRunner())
        result = runner.run(SPECS)

        # Every write failed, yet the campaign result is untouched.
        assert result == BASELINE
        assert faulty.failed_writes == len(SPECS)
        assert len(inner) == 0

        # The same store instance retries on the next run (attempt 2 is
        # past the transient gate) and persistence heals.
        healed = CachingRunner(faulty, CampaignRunner()).run(SPECS)
        assert healed == BASELINE
        assert len(inner) == len(SPECS)

        replay_runner = CachingRunner(faulty)
        assert replay_runner.run(SPECS) == BASELINE
        assert replay_runner.last_stats.cached == len(SPECS)
        inner.close()

    def test_store_write_failures_are_counted_in_journal_stats(self, tmp_path):
        faulty = FaultyStore(MemoryResultStore(),
                             FaultPlan(store_failure_rate=1.0))
        journal_path = tmp_path / "journal.jsonl"
        runner = CachingRunner(faulty, CampaignRunner(), journal=journal_path)
        runner.run(SPECS)
        replay = replay_ledger(read_journal(journal_path))
        ledger = replay.campaigns[runner.last_campaign_id]
        assert ledger.stats.get("store_write_failures") == len(SPECS)

    def test_direct_puts_raise_the_injected_error(self):
        faulty = FaultyStore(MemoryResultStore(),
                             FaultPlan(store_failure_rate=1.0))
        outcome = BASELINE.outcomes[0]
        with pytest.raises(InjectedFaultError):
            faulty.put(fingerprint_spec(outcome.spec), outcome)
        # Second attempt on the same fingerprint passes the gate.
        faulty.put(fingerprint_spec(outcome.spec), outcome)
        assert faulty.get(fingerprint_spec(outcome.spec)) == outcome

    def test_configuration_errors_still_propagate(self):
        # A user mistake (unpersistable spec) must raise, not be absorbed
        # as a tolerated infrastructure failure.
        class Broken(MemoryResultStore):
            def put(self, fingerprint, outcome):
                raise ConfigurationError("unpersistable")

        runner = CachingRunner(Broken(), CampaignRunner())
        with pytest.raises(ConfigurationError):
            runner.run(SPECS[:2])


class TestChaoticCachingEquality:
    def test_process_chaos_under_caching_matches_baseline(self, tmp_path):
        plan = FaultPlan(seed=31, crash_rate=0.1, raise_rate=0.15)
        journal_path = tmp_path / "journal.jsonl"
        store = open_store(tmp_path / "store.jsonl")
        runner = CachingRunner(
            store,
            CampaignRunner(backend="process", workers=2, chunk_size=4,
                           faults=plan, retry=FAST_RETRY),
            journal=journal_path,
        )
        result = runner.run(SPECS)
        store.close()
        assert result == BASELINE
        assert result.fault_stats.task_retries >= 1

        # Retried chunks re-emit worker events; the journal ledger must
        # still be exact — one scenario record per slot.
        replay = replay_ledger(read_journal(journal_path))
        ledger = replay.campaigns[runner.last_campaign_id]
        assert ledger.finished
        assert ledger.recorded == ledger.total == len(SPECS)
        assert ledger.stats.get("faults", {}).get("task_retries", 0) >= 1
