"""FaultPlan / RetryPolicy / FaultStats unit contracts.

The chaos machinery is only trustworthy if its *decisions* are boring:
pure functions of (plan, scenario identity, attempt) that survive
pickling into pool workers unchanged.  These tests pin that, plus the
validation and the in-process execution semantics of each channel.
"""

from __future__ import annotations

import pickle
import time

import pytest

from repro.campaign import theorem8_specs
from repro.exceptions import ConfigurationError
from repro.faults import (
    FaultPlan,
    FaultStats,
    InjectedFaultError,
    RetryPolicy,
)

SPECS = theorem8_specs([4], seeds=(1,), max_steps=4_000)


class TestValidation:
    @pytest.mark.parametrize("field", [
        "crash_rate", "hang_rate", "raise_rate", "delay_rate",
        "poison_rate", "store_failure_rate",
    ])
    def test_rates_must_be_probabilities(self, field):
        with pytest.raises(ConfigurationError):
            FaultPlan(**{field: 1.5})
        with pytest.raises(ConfigurationError):
            FaultPlan(**{field: -0.1})

    def test_fault_attempts_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(fault_attempts=0)

    def test_durations_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(hang_seconds=0)
        with pytest.raises(ConfigurationError):
            FaultPlan(delay_seconds=-1)

    def test_retry_policy_validates(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(task_timeout_seconds=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_seconds=-0.1)
        RetryPolicy(backoff_seconds=0)  # zero backoff is legitimate

    def test_backoff_doubles_per_attempt(self):
        policy = RetryPolicy(backoff_seconds=0.1)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.4)


class TestDecisions:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=7, crash_rate=0.3, raise_rate=0.3, delay_rate=0.3)
        first = [plan.decide(spec) for spec in SPECS]
        second = [plan.decide(spec) for spec in SPECS]
        assert first == second
        assert any(action is not None for action in first)
        assert any(action is None for action in first)

    def test_decisions_survive_pickling(self):
        plan = FaultPlan(seed=7, crash_rate=0.3, hang_rate=0.2, raise_rate=0.3)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert [clone.decide(s) for s in SPECS] == [plan.decide(s) for s in SPECS]
        policy = pickle.loads(pickle.dumps(RetryPolicy(max_attempts=5)))
        assert policy.max_attempts == 5

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, raise_rate=0.5)
        b = FaultPlan(seed=2, raise_rate=0.5)
        assert [a.decide(s) for s in SPECS] != [b.decide(s) for s in SPECS]

    def test_rate_extremes(self):
        everything = FaultPlan(raise_rate=1.0)
        nothing = FaultPlan()
        for spec in SPECS:
            assert everything.decide(spec).kind == "raise"
            assert nothing.decide(spec) is None

    def test_poison_outranks_transient_channels(self):
        label = SPECS[0].label()
        plan = FaultPlan(crash_rate=1.0, poison_labels=(label,))
        action = plan.decide(SPECS[0])
        assert action.kind == "raise" and action.persistent
        assert plan.decide(SPECS[1]).kind == "crash"

    def test_transient_faults_respect_the_attempt_gate(self):
        plan = FaultPlan(raise_rate=1.0, fault_attempts=2)
        assert plan.decide(SPECS[0], attempt=1) is not None
        assert plan.decide(SPECS[0], attempt=2) is not None
        assert plan.decide(SPECS[0], attempt=3) is None

    def test_poison_ignores_the_attempt_gate(self):
        plan = FaultPlan(poison_labels=(SPECS[0].label(),))
        assert plan.decide(SPECS[0], attempt=99).persistent

    def test_label_targeting(self):
        plan = FaultPlan(crash_labels=(SPECS[2].label(),))
        assert plan.decide(SPECS[2]).kind == "crash"
        assert plan.decide(SPECS[3]) is None

    def test_store_write_decisions(self):
        plan = FaultPlan(store_failure_rate=1.0)
        assert plan.store_write_fails("a" * 64, attempt=1)
        assert not plan.store_write_fails("a" * 64, attempt=2)  # transient
        assert not FaultPlan().store_write_fails("a" * 64)
        mixed = FaultPlan(store_failure_rate=0.5)
        rolls = [mixed.store_write_fails(format(i, "064x")) for i in range(64)]
        assert any(rolls) and not all(rolls)


class TestPerform:
    def test_raise_channel_raises_everywhere(self):
        plan = FaultPlan(raise_rate=1.0)
        with pytest.raises(InjectedFaultError):
            plan.perform(SPECS[0], 1, in_worker=False)
        with pytest.raises(InjectedFaultError):
            plan.perform(SPECS[0], 1, in_worker=True)

    def test_crash_and_hang_are_noops_outside_workers(self):
        # If these fired in-process they would kill/stall the campaign
        # itself — the equality invariant depends on the gate.
        crash = FaultPlan(crash_rate=1.0)
        hang = FaultPlan(hang_rate=1.0, hang_seconds=30.0)
        started = time.monotonic()
        crash.perform(SPECS[0], 1, in_worker=False)
        hang.perform(SPECS[0], 1, in_worker=False)
        assert time.monotonic() - started < 1.0

    def test_delay_sleeps_but_passes(self):
        plan = FaultPlan(delay_rate=1.0, delay_seconds=0.01)
        started = time.monotonic()
        plan.perform(SPECS[0], 1, in_worker=False)
        assert time.monotonic() - started >= 0.005

    def test_clean_plan_does_nothing(self):
        FaultPlan().perform(SPECS[0], 1, in_worker=True)


class TestFaultStats:
    def test_roundtrip(self):
        stats = FaultStats(worker_deaths=2, task_retries=5, quarantined=1)
        assert stats.any()
        clone = FaultStats.from_dict(stats.as_dict())
        assert clone == stats

    def test_from_dict_tolerates_junk(self):
        stats = FaultStats.from_dict(
            {"worker_deaths": "three", "task_retries": 2, "bogus": 9,
             "quarantined": True})
        assert stats.worker_deaths == 0  # non-int ignored
        assert stats.task_retries == 2
        assert stats.quarantined == 0  # bools are not counts

    def test_fresh_stats_report_nothing(self):
        assert not FaultStats().any()
