"""Supervisor unit contracts: settle-once, retry, bisect, quarantine.

These exercise the supervision state machine in-process with scripted
task functions — no pool, no fault plan — so each transition (retry
with backoff accounting, bisection re-attribution, quarantine as an
``"error"`` outcome) is pinned in isolation from the chaos machinery.
"""

from __future__ import annotations

import pytest

from repro.campaign import theorem8_specs
from repro.campaign.spec import ScenarioOutcome
from repro.faults import FaultStats, RetryPolicy, Supervisor
from repro.faults.supervisor import QuarantineError

SPECS = theorem8_specs([4], seeds=(1,), max_steps=4_000)[:6]


def _ok(spec) -> ScenarioOutcome:
    return ScenarioOutcome(spec=spec, verdict="ok", distinct_decisions=1,
                           decided=spec.n, steps=1)


def _recorder(results):
    def record(indices, outcomes, timings):
        for index, outcome, seconds in zip(indices, outcomes, timings):
            assert index not in results, f"slot {index} settled twice"
            results[index] = outcome
    return record


def _policy(**overrides):
    defaults = dict(max_attempts=3, backoff_seconds=0.0,
                    task_timeout_seconds=5.0, death_grace_seconds=0.2,
                    wake_seconds=0.02, teardown_grace_seconds=0.5)
    defaults.update(overrides)
    return RetryPolicy(**defaults)


class TestInline:
    def test_settles_every_slot_exactly_once(self):
        results = {}
        supervisor = Supervisor(retry=_policy(), record=_recorder(results))
        supervisor.run_inline([
            (lambda specs, *a, **k: ([_ok(s) for s in specs],
                                     [0.0] * len(specs)),
             tuple(SPECS), tuple(range(len(SPECS)))),
        ])
        assert sorted(results) == list(range(len(SPECS)))
        assert all(o.verdict == "ok" for o in results.values())

    def test_transient_failure_is_retried(self):
        calls = []

        def flaky(specs, *args, attempt=1, **kwargs):
            calls.append(attempt)
            if attempt == 1:
                raise RuntimeError("transient")
            return [_ok(s) for s in specs], [0.0] * len(specs)

        results = {}
        stats = FaultStats()
        supervisor = Supervisor(retry=_policy(), stats=stats,
                                record=_recorder(results))
        supervisor.run_inline([(flaky, tuple(SPECS), tuple(range(len(SPECS))))])
        assert calls == [1, 2]
        assert stats.task_retries == 1
        assert len(results) == len(SPECS)

    def test_persistent_chunk_failure_bisects_to_the_guilty_spec(self):
        guilty = SPECS[2]

        def poisoned(specs, *args, **kwargs):
            if guilty in specs:
                raise RuntimeError("poison")
            return [_ok(s) for s in specs], [0.0] * len(specs)

        results = {}
        stats = FaultStats()
        supervisor = Supervisor(retry=_policy(max_attempts=2), stats=stats,
                                record=_recorder(results))
        supervisor.run_inline([(poisoned, tuple(SPECS), tuple(range(len(SPECS))))])

        assert stats.quarantined == 1
        assert stats.bisections >= 1
        assert len(results) == len(SPECS)  # nothing lost, nothing doubled
        bad = results[2]
        assert bad.verdict == "error"
        assert bad.error.startswith("QuarantineError")
        assert all(results[i].verdict == "ok"
                   for i in range(len(SPECS)) if i != 2)

    def test_single_spec_task_quarantines_after_max_attempts(self):
        attempts = []

        def always_fails(specs, *args, attempt=1, **kwargs):
            attempts.append(attempt)
            raise RuntimeError("never works")

        results = {}
        stats = FaultStats()
        supervisor = Supervisor(retry=_policy(max_attempts=3), stats=stats,
                                record=_recorder(results))
        supervisor.run_inline([(always_fails, (SPECS[0],), (0,))])
        assert attempts == [1, 2, 3]
        assert stats.task_retries == 2
        assert stats.quarantined == 1
        assert results[0].verdict == "error"
        assert "never works" in results[0].error

    def test_quarantine_emits_a_synthetic_event(self):
        events = []

        def always_fails(specs, *args, **kwargs):
            raise RuntimeError("boom")

        supervisor = Supervisor(retry=_policy(max_attempts=1),
                                record=_recorder({}),
                                progress=events.append)
        supervisor.run_inline([(always_fails, (SPECS[0],), (0,))])
        assert len(events) == 1
        event = events[0]
        assert event.label == SPECS[0].label()
        assert event.verdict == "error"
        assert event.fingerprint  # ledger needs the scenario identity

    def test_settled_slots_are_never_overwritten(self):
        results = {}
        supervisor = Supervisor(retry=_policy(), record=_recorder(results))
        first = _ok(SPECS[0])
        supervisor._settle([0], [first], [0.0])
        late = ScenarioOutcome.from_error(SPECS[0], RuntimeError("late"))
        supervisor._settle([0], [late], [0.0])  # the recorder asserts
        assert results[0] is first

    def test_empty_tasks_are_skipped(self):
        supervisor = Supervisor(retry=_policy(), record=_recorder({}))
        supervisor.run_inline([(lambda *a, **k: ([], []), (), ())])


class TestQuarantineError:
    def test_is_a_runtime_error_with_context(self):
        assert issubclass(QuarantineError, RuntimeError)
        outcome = ScenarioOutcome.from_error(
            SPECS[0], QuarantineError("quarantined after 3 attempt(s)"))
        assert outcome.error.startswith("QuarantineError")
        with pytest.raises(QuarantineError):
            raise QuarantineError("x")
