"""Recording-policy plumbing through specs, grids, codecs, stores and sweeps.

The acceptance property of the zero-copy executor work: a sweep's
verdicts are **identical** across all three recording policies and across
the serial/process campaign backends.  The tests below pin that on the
small Theorem 8 grid, plus the identity/seeding rules the policy has to
obey (part of the store fingerprint, absent from the RNG derivation).
"""

from __future__ import annotations

import pytest

from repro.analysis.border_sweep import sweep_theorem8
from repro.campaign import (
    CampaignRunner,
    ScenarioGrid,
    ScenarioSpec,
    corollary13_specs,
    theorem8_specs,
)
from repro.campaign.codec import spec_from_dict, spec_to_dict
from repro.exceptions import ConfigurationError
from repro.simulation.recording import RECORDING_POLICY_NAMES
from repro.store import fingerprint_spec

PINNED_GRID = [4, 5]
PINNED_KWARGS = {"seeds": (1,), "max_steps": 4_000}


class TestSpecPlumbing:
    def test_unknown_recording_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1, recording="partial")

    def test_recording_defaults_to_full(self):
        spec = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1)
        assert spec.recording == "full"
        assert spec.identity()[-1] == "full"

    def test_derived_seed_ignores_recording(self):
        base = ScenarioSpec(kind="theorem8-solvable", n=5, f=2, k=2,
                            scheduler="random", seed=3)
        seeds = {
            ScenarioSpec(
                kind=base.kind, n=base.n, f=base.f, k=base.k,
                scheduler=base.scheduler, seed=base.seed, recording=name,
            ).derived_seed()
            for name in RECORDING_POLICY_NAMES
        }
        assert seeds == {base.derived_seed()}  # identical RNG stream

    def test_fingerprint_depends_on_recording(self):
        prints = {
            fingerprint_spec(
                ScenarioSpec(kind="theorem8-solvable", n=5, f=2, k=2, recording=name)
            )
            for name in RECORDING_POLICY_NAMES
        }
        assert len(prints) == len(RECORDING_POLICY_NAMES)

    def test_codec_round_trips_recording(self):
        spec = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                            recording="verdict-only")
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_codec_defaults_missing_recording_to_full(self):
        data = spec_to_dict(ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1))
        del data["recording"]
        assert spec_from_dict(data).recording == "full"

    def test_label_names_non_full_policies_only(self):
        full = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1)
        trimmed = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                               recording="verdict-only")
        assert "rec=" not in full.label()
        assert "rec=verdict-only" in trimmed.label()

    def test_grid_applies_recording_to_every_spec(self):
        grid = ScenarioGrid(
            kinds=("theorem8-solvable",), n_values=(4,), f_values=(1,),
            k_values=(1, 2), recording="decisions-only",
        )
        specs = grid.compile()
        assert specs
        assert all(spec.recording == "decisions-only" for spec in specs)

    def test_spec_builders_plumb_recording(self):
        for spec in theorem8_specs([4], seeds=(1,), max_steps=1_000,
                                   recording="verdict-only"):
            assert spec.recording == "verdict-only"
        for spec in corollary13_specs([4], recording="verdict-only"):
            assert spec.recording == "verdict-only"


class TestOutcomeEquivalence:
    @pytest.fixture(scope="class")
    def full_result(self):
        specs = theorem8_specs(PINNED_GRID, **PINNED_KWARGS)
        return CampaignRunner().run(specs)

    @pytest.mark.parametrize("recording", ["decisions-only", "verdict-only"])
    def test_campaign_outcomes_identical_across_policies(self, full_result, recording):
        """Outcome for outcome, only the spec's recording field differs."""
        specs = theorem8_specs(PINNED_GRID, recording=recording, **PINNED_KWARGS)
        result = CampaignRunner().run(specs)
        assert len(result.outcomes) == len(full_result.outcomes)
        for trimmed, full in zip(result.outcomes, full_result.outcomes):
            assert trimmed.spec == ScenarioSpec(
                kind=full.spec.kind, n=full.spec.n, f=full.spec.f, k=full.spec.k,
                scheduler=full.spec.scheduler, seed=full.spec.seed,
                crashes=full.spec.crashes, max_steps=full.spec.max_steps,
                params=full.spec.params, recording=recording,
            )
            assert trimmed.verdict == full.verdict
            assert trimmed.agreement_ok == full.agreement_ok
            assert trimmed.validity_ok == full.validity_ok
            assert trimmed.termination_ok == full.termination_ok
            assert trimmed.distinct_decisions == full.distinct_decisions
            assert trimmed.decided == full.decided
            assert trimmed.steps == full.steps
            assert trimmed.truncated == full.truncated

    def test_corollary13_outcomes_identical_across_policies(self):
        full = CampaignRunner().run(corollary13_specs([4, 5]))
        trimmed = CampaignRunner().run(corollary13_specs([4, 5], recording="verdict-only"))
        assert [
            (o.verdict, o.distinct_decisions, o.decided, o.steps, o.truncated)
            for o in trimmed.outcomes
        ] == [
            (o.verdict, o.distinct_decisions, o.decided, o.steps, o.truncated)
            for o in full.outcomes
        ]


class TestPinnedSweepAcceptance:
    """Sweep verdicts are identical across recording policies and backends."""

    @pytest.fixture(scope="class")
    def reference_points(self):
        return sweep_theorem8(PINNED_GRID, **PINNED_KWARGS)

    @pytest.mark.parametrize("recording", RECORDING_POLICY_NAMES)
    def test_serial_sweep_identical_across_policies(self, reference_points, recording):
        points = sweep_theorem8(PINNED_GRID, recording=recording, **PINNED_KWARGS)
        assert [
            (p.n, p.f, p.k, p.predicted, p.observed, p.agrees) for p in points
        ] == [
            (p.n, p.f, p.k, p.predicted, p.observed, p.agrees)
            for p in reference_points
        ]
        assert all(p.agrees for p in points)

    @pytest.mark.parametrize("recording", RECORDING_POLICY_NAMES)
    def test_process_backend_sweep_identical_across_policies(
        self, reference_points, recording
    ):
        points = sweep_theorem8(
            PINNED_GRID,
            runner=CampaignRunner(backend="process", workers=2),
            recording=recording,
            **PINNED_KWARGS,
        )
        assert [
            (p.n, p.f, p.k, p.predicted, p.observed, p.agrees) for p in points
        ] == [
            (p.n, p.f, p.k, p.predicted, p.observed, p.agrees)
            for p in reference_points
        ]


class TestResourceUsagePlumbing:
    """The cost counters are outcome, not measurement: bit-identical
    across every recording policy and every campaign backend."""

    @staticmethod
    def _usage_triples(result):
        return sorted(
            (o.steps, o.messages_sent, o.messages_delivered) for o in result.outcomes
        )

    @pytest.fixture(scope="class")
    def reference_triples(self):
        specs = theorem8_specs(PINNED_GRID, **PINNED_KWARGS)
        result = CampaignRunner().run(specs)
        triples = self._usage_triples(result)
        assert any(sent for _steps, sent, _delivered in triples)  # non-trivial
        return triples

    @pytest.mark.parametrize("recording", RECORDING_POLICY_NAMES)
    def test_counters_identical_across_recording_policies(
        self, reference_triples, recording
    ):
        specs = theorem8_specs(PINNED_GRID, recording=recording, **PINNED_KWARGS)
        result = CampaignRunner().run(specs)
        assert self._usage_triples(result) == reference_triples

    @pytest.mark.parametrize("backend,workers", [
        ("serial", None), ("chunked", None), ("process", 2),
    ])
    def test_counters_identical_across_backends(
        self, reference_triples, backend, workers
    ):
        specs = theorem8_specs(PINNED_GRID, **PINNED_KWARGS)
        result = CampaignRunner(backend=backend, workers=workers).run(specs)
        assert self._usage_triples(result) == reference_triples

    @pytest.mark.parametrize("backend,workers", [
        ("serial", None), ("process", 2),
    ])
    def test_events_carry_usage_matching_the_outcomes(self, backend, workers):
        """Every ScenarioEvent's ResourceUsage equals its outcome's
        counters (equality ignores wall seconds), on every backend."""
        from repro.store import CollectingProgressReporter, fingerprint_spec

        specs = theorem8_specs([4], **PINNED_KWARGS)
        reporter = CollectingProgressReporter()
        result = CampaignRunner(backend=backend, workers=workers).run(
            specs, progress=reporter)
        by_fp = {fingerprint_spec(o.spec): o for o in result.outcomes}
        events = reporter.events
        assert len(events) == len(specs)
        for event in events:
            outcome = by_fp[event.fingerprint]
            assert event.usage is not None
            assert event.usage.steps == outcome.steps
            assert event.usage.messages_sent == outcome.messages_sent
            assert event.usage.messages_delivered == outcome.messages_delivered
            assert not event.cached


class TestStoreInteraction:
    def test_cached_sweep_respects_recording_fingerprints(self, tmp_path):
        """Different policies are distinct cache keys but equal verdicts."""
        from repro.store import CachingRunner, open_store

        specs_full = theorem8_specs([4], seeds=(1,), max_steps=2_000)
        specs_trim = theorem8_specs([4], seeds=(1,), max_steps=2_000,
                                    recording="verdict-only")
        with open_store(tmp_path / "rec.sqlite") as store:
            runner = CachingRunner(store)
            cold = runner.run(specs_trim)
            assert runner.last_stats.cached == 0
            warm_runner = CachingRunner(store)
            warm = warm_runner.run(specs_trim)
            assert warm_runner.last_stats.executed == 0
            assert warm == cold
            # a full-recording campaign is keyed separately (no stale hits)
            full_runner = CachingRunner(store)
            full = full_runner.run(specs_full)
            assert full_runner.last_stats.cached == 0
        assert [o.verdict for o in full.outcomes] == [o.verdict for o in cold.outcomes]
