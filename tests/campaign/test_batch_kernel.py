"""The batched verdict kernel against its oracle, the scalar executor.

The acceptance property of the batch work mirrors how PR 3 pinned the
zero-copy rewrite: over a pinned Theorem 8 grid, a ``batch=True``
campaign must produce **bit-identical** verdicts — and, at the run
level, bit-identical decision maps and volume counters — to the plain
scalar campaign, on every backend.  Alongside that, the partitioning
rules (what is batchable, what falls back) and the wiring (telemetry
``kernel:wave`` spans, ``should_skip``, ``on_outcome``, the caching
layer skimming hits before waves form) are pinned directly.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, ScenarioSpec, theorem8_specs
from repro.campaign.scenarios import execute_theorem8_solvable, theorem8_solvable_grid
from repro.simulation.batch_kernel import (
    BATCHABLE_SCHEDULERS,
    batchable_kinds,
    execute_wave,
    is_batchable,
    partition_waves,
    wave_key,
    wave_runs,
)
from repro.telemetry.spans import Tracer

PINNED_GRID = [4, 5]
PINNED_KWARGS = {"seeds": (1,), "max_steps": 4_000}


def pinned_specs(recording: str = "verdict-only"):
    """The pinned mixed grid: batchable waves plus scalar fallbacks.

    ``theorem8_specs`` includes the impossible side (partitioning
    scheduler, no batched step function), so a batched campaign over it
    exercises waves and the scalar fallback in one run.
    """
    return theorem8_specs(PINNED_GRID, recording=recording, **PINNED_KWARGS)


class TestPartitioning:
    def test_registered_kinds(self):
        assert batchable_kinds() == ("theorem8-solvable",)

    def test_verdict_only_solvable_spec_is_batchable(self):
        spec = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                            recording="verdict-only")
        assert is_batchable(spec)
        assert wave_key(spec) == ("theorem8-solvable", 4, 1)

    @pytest.mark.parametrize("recording", ["full", "decisions-only"])
    def test_non_verdict_recording_falls_back(self, recording):
        spec = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                            recording=recording)
        assert not is_batchable(spec)

    def test_unknown_kind_and_scheduler_fall_back(self):
        impossible = ScenarioSpec(kind="theorem8-impossible", n=4, f=2, k=1,
                                  scheduler="partitioning",
                                  recording="verdict-only")
        assert not is_batchable(impossible)
        isolation = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                                 scheduler="isolation", recording="verdict-only")
        assert not is_batchable(isolation)
        assert "isolation" not in BATCHABLE_SCHEDULERS

    def test_partition_covers_every_position_exactly_once(self):
        specs = pinned_specs()
        waves, scalar = partition_waves(specs)
        positions = sorted(p for wave in waves for p in wave) + sorted(scalar)
        assert sorted(positions) == list(range(len(specs)))
        assert waves and scalar  # the pinned grid exercises both paths
        for wave in waves:
            keys = {wave_key(specs[p]) for p in wave}
            assert len(keys) == 1


class TestKernelOracle:
    """Field-for-field equivalence of kernel runs with scalar runs."""

    def test_wave_runs_bit_identical_to_scalar_executor(self):
        specs = [
            spec for spec in pinned_specs() if is_batchable(spec)
        ]
        waves, _ = partition_waves(specs)
        checked = 0
        for wave in waves:
            wave_specs = [specs[p] for p in wave]
            for spec, run in zip(wave_specs, wave_runs(wave_specs)):
                assert run is not None, spec.label()
                reference, _report = execute_theorem8_solvable(spec)
                assert run.decisions() == reference.decisions(), spec.label()
                assert run.completed == reference.completed
                assert run.truncated == reference.truncated
                assert run.length == reference.length
                assert run.messages_sent() == reference.messages_sent()
                assert run.messages_delivered() == reference.messages_delivered()
                checked += 1
        assert checked == len(specs)

    def test_mixed_key_wave_rejected(self):
        from repro.exceptions import ConfigurationError

        a = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                         recording="verdict-only")
        b = ScenarioSpec(kind="theorem8-solvable", n=5, f=1, k=1,
                         recording="verdict-only")
        with pytest.raises(ConfigurationError):
            execute_wave([a, b])

    def test_non_batchable_spec_in_wave_falls_back_to_scalar(self):
        """A spec the kernel cannot set up still yields the scalar outcome."""
        from repro.campaign.runner import run_scenario

        good = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                            scheduler="random", seed=1,
                            recording="verdict-only", max_steps=4_000)
        bad = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                           scheduler="random", seed=2,
                           params={"delivery_bias": 2.0},
                           recording="verdict-only", max_steps=4_000)
        outcomes = execute_wave([good, bad])
        assert outcomes[0] == run_scenario(good)
        assert outcomes[1] == run_scenario(bad)
        assert outcomes[1].verdict == "error"


class TestBatchedCampaign:
    """CampaignRunner(batch=True) equals the scalar campaign everywhere."""

    @pytest.fixture(scope="class")
    def reference(self):
        return CampaignRunner().run(pinned_specs())

    @pytest.mark.parametrize("backend,workers", [
        ("serial", None), ("chunked", None), ("process", 2),
    ])
    def test_batched_campaign_identical_across_backends(
        self, reference, backend, workers
    ):
        result = CampaignRunner(
            backend=backend, workers=workers, batch=True).run(pinned_specs())
        assert result == reference  # outcome-for-outcome, in spec order

    def test_batched_campaign_calls_on_outcome_per_scenario(self):
        specs = pinned_specs()
        seen = []
        result = CampaignRunner(batch=True).run(
            specs, on_outcome=lambda outcome, seconds: seen.append(outcome))
        assert sorted(o.spec.label() for o in seen) == sorted(
            o.spec.label() for o in result.outcomes)

    def test_batched_campaign_honours_should_skip(self):
        specs = pinned_specs()
        kept = CampaignRunner(batch=True).run(
            specs, should_skip=lambda spec: spec.scheduler == "random")
        assert kept.outcomes
        assert all(o.spec.scheduler != "random" for o in kept.outcomes)

    def test_batched_campaign_emits_one_event_per_scenario(self):
        from repro.store import CollectingProgressReporter

        specs = pinned_specs()
        reporter = CollectingProgressReporter()
        CampaignRunner(batch=True).run(specs, progress=reporter)
        assert len(reporter.events) == len(specs)


class TestWaveTelemetry:
    def test_execute_wave_emits_kernel_wave_span(self):
        specs = [
            ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                         scheduler="round-robin", seed=s,
                         recording="verdict-only", max_steps=4_000)
            for s in (1, 2, 3)
        ]
        tracer = Tracer(trace_id="test-wave")
        execute_wave(specs, tracer=tracer)
        spans = [s for s in tracer.drain() if s.name == "kernel:wave"]
        assert len(spans) == 1
        attrs = spans[0].attrs
        assert attrs["kind"] == "theorem8-solvable"
        assert (attrs["n"], attrs["f"]) == (4, 1)
        assert attrs["size"] == 3
        assert attrs["fallbacks"] == 0

    def test_wave_span_counts_fallbacks(self):
        specs = [
            ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                         scheduler="random", seed=1,
                         recording="verdict-only", max_steps=4_000),
            ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                         scheduler="random", seed=2,
                         params={"max_delay": -1},
                         recording="verdict-only", max_steps=4_000),
        ]
        tracer = Tracer(trace_id="test-wave")
        execute_wave(specs, tracer=tracer)
        (span,) = [s for s in tracer.drain() if s.name == "kernel:wave"]
        assert span.attrs["size"] == 2
        assert span.attrs["fallbacks"] == 1

    def test_batched_campaign_ships_wave_spans_on_events(self):
        from repro.store import CollectingProgressReporter
        from repro.telemetry.session import WorkerTelemetry

        grid = theorem8_solvable_grid([4], recording="verdict-only",
                                      **PINNED_KWARGS)
        specs = grid.compile()
        reporter = CollectingProgressReporter()
        CampaignRunner(batch=True).run(
            specs, progress=reporter,
            telemetry=WorkerTelemetry(campaign="batch-test"))
        names = [s.name for e in reporter.events for s in e.spans]
        assert "kernel:wave" in names


class TestCachingComposition:
    def test_caching_runner_skims_hits_before_waves_form(self, tmp_path):
        from repro.store import CachingRunner, open_store

        specs = pinned_specs()
        with open_store(tmp_path / "batch.sqlite") as store:
            cold_runner = CachingRunner(store, runner=CampaignRunner(batch=True))
            cold = cold_runner.run(specs)
            assert cold_runner.last_stats.cached == 0
            assert cold == CampaignRunner().run(specs)  # scalar oracle
            warm_runner = CachingRunner(store, runner=CampaignRunner(batch=True))
            warm = warm_runner.run(specs)
            assert warm_runner.last_stats.executed == 0
            assert warm == cold
