"""Grid expansion: cartesian size, deduplication, early validation."""

from __future__ import annotations

import pytest

from repro.campaign import (
    ScenarioGrid,
    ScenarioSpec,
    normalize_crashes,
    theorem8_impossible_grid,
    theorem8_solvable_grid,
)
from repro.exceptions import ConfigurationError


class TestCartesianExpansion:
    def test_full_cartesian_size(self):
        grid = ScenarioGrid(
            kinds=("theorem8-solvable",),
            n_values=(4, 5),
            f_values=(1, 2),
            k_values=(1, 2, 3),
            schedulers=("random",),
            seeds=(1, 2),
        )
        specs = grid.compile()
        assert len(specs) == 2 * 2 * 3 * 1 * 2

    def test_default_axes_cover_full_ranges(self):
        grid = ScenarioGrid(kinds=("theorem8-solvable",), n_values=(4,))
        specs = grid.compile()
        # f and k both default to 1..n-1
        assert len(specs) == 3 * 3
        assert {(s.f, s.k) for s in specs} == {(f, k) for f in range(1, 4) for k in range(1, 4)}

    def test_callable_axes_depend_on_n(self):
        grid = ScenarioGrid(
            kinds=("theorem8-solvable",),
            n_values=(4, 6),
            f_values=lambda n: [n - 1],
            k_values=lambda n: range(1, n, 2),
        )
        specs = grid.compile()
        assert {(s.n, s.f) for s in specs} == {(4, 3), (6, 5)}
        assert {(s.n, s.k) for s in specs} == {(4, 1), (4, 3), (6, 1), (6, 3), (6, 5)}

    def test_point_filter_restricts_the_grid(self):
        grid = ScenarioGrid(
            kinds=("theorem8-solvable",),
            n_values=(5,),
            point_filter=lambda n, f, k: f == k,
        )
        specs = grid.compile()
        assert all(s.f == s.k for s in specs)
        assert len(specs) == 4

    def test_crash_sets_expand_every_point(self):
        grid = ScenarioGrid(
            kinds=("theorem8-solvable",),
            n_values=(4,),
            f_values=(2,),
            k_values=(2,),
            crash_sets=lambda n, f: [frozenset(), frozenset({1, 2}), {4: 0}],
        )
        specs = grid.compile()
        assert len(specs) == 3
        assert {s.crashes for s in specs} == {(), ((1, 0), (2, 0)), ((4, 0),)}

    def test_compile_preserves_first_occurrence_order(self):
        grid = ScenarioGrid(
            kinds=("theorem8-solvable",),
            n_values=(5, 4),
            f_values=(1,),
            k_values=(2, 1),
        )
        points = [(s.n, s.k) for s in grid.compile()]
        assert points == [(5, 2), (5, 1), (4, 2), (4, 1)]


class TestDeduplication:
    def test_deterministic_scheduler_collapses_the_seed_axis(self):
        grid = ScenarioGrid(
            kinds=("theorem8-solvable",),
            n_values=(4,),
            f_values=(1,),
            k_values=(1,),
            schedulers=("round-robin", "random"),
            seeds=(1, 2, 3),
        )
        specs = grid.compile()
        # round-robin ignores seeds (1 spec), random keeps all three
        assert len(specs) == 1 + 3
        round_robin = [s for s in specs if s.scheduler == "round-robin"]
        assert len(round_robin) == 1 and round_robin[0].seed == 0

    def test_duplicate_crash_schedules_are_dropped(self):
        grid = ScenarioGrid(
            kinds=("theorem8-solvable",),
            n_values=(4,),
            f_values=(2,),
            k_values=(2,),
            crash_sets=lambda n, f: [frozenset({1, 2}), {1: 0, 2: 0}, [2, 1]],
        )
        assert len(grid.compile()) == 1

    def test_specs_are_hashable_and_unique(self):
        specs = theorem8_solvable_grid([4, 5], seeds=(1,)).compile()
        assert len(set(specs)) == len(specs)


class TestEarlyValidation:
    def test_invalid_n_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioGrid(kinds=("x",), n_values=(0,), f_values=(0,), k_values=(1,)).compile()

    @pytest.mark.parametrize("f", [-1, 4, 7])
    def test_invalid_f_rejected(self, f):
        grid = ScenarioGrid(kinds=("x",), n_values=(4,), f_values=(f,), k_values=(1,))
        with pytest.raises(ConfigurationError):
            grid.compile()

    def test_invalid_k_rejected(self):
        grid = ScenarioGrid(kinds=("x",), n_values=(4,), f_values=(1,), k_values=(0,))
        with pytest.raises(ConfigurationError):
            grid.compile()

    def test_crash_schedule_outside_system_rejected(self):
        grid = ScenarioGrid(
            kinds=("x",), n_values=(4,), f_values=(1,), k_values=(1,),
            crash_sets=lambda n, f: [frozenset({n + 1})],
        )
        with pytest.raises(ConfigurationError):
            grid.compile()

    def test_empty_axes_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            ScenarioGrid(kinds=(), n_values=(4,))
        with pytest.raises(ConfigurationError):
            ScenarioGrid(kinds=("x",), n_values=())
        with pytest.raises(ConfigurationError):
            ScenarioGrid(kinds=("x",), n_values=(4,), schedulers=())
        with pytest.raises(ConfigurationError):
            ScenarioGrid(kinds=("x",), n_values=(4,), seeds=())

    def test_spec_level_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec(kind="x", n=4, f=4, k=1)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(kind="x", n=4, f=1, k=0)
        with pytest.raises(ConfigurationError):
            ScenarioSpec(kind="x", n=4, f=1, k=1, max_steps=0)

    def test_normalize_crashes_rejects_duplicates_and_bad_times(self):
        with pytest.raises(ConfigurationError):
            normalize_crashes({1: -1}, 4)
        with pytest.raises(ConfigurationError):
            normalize_crashes({5: 0}, 4)

    def test_normalize_crashes_rejects_duplicate_pids_in_iterables(self):
        # Duplicates must raise (naming the pid), never silently collapse:
        # downstream consumers build dict(spec.crashes), which would
        # quietly drop the repeated entry.
        with pytest.raises(ConfigurationError, match="p2 more than once"):
            normalize_crashes([2, 2], 4)
        with pytest.raises(ConfigurationError, match="p1.*more than once"):
            normalize_crashes(iter([1, 3, 1]), 4)
        # ... even when the duplicated entries agree on the crash time.
        with pytest.raises(ConfigurationError, match="p3 more than once"):
            normalize_crashes((3, 3), 6)

    def test_normalize_crashes_rejects_pids_colliding_after_int_coercion(self):
        # Mapping keys "1" and 1 are distinct dict keys but the same pid.
        with pytest.raises(ConfigurationError, match="p1 more than once"):
            normalize_crashes({"1": 0, 1: 5}, 4)

    def test_normalize_crashes_names_every_duplicated_pid(self):
        with pytest.raises(ConfigurationError, match="p1, p2"):
            normalize_crashes([1, 1, 2, 2, 3], 4)


class TestTheorem8Grids:
    def test_sides_partition_the_parameter_space(self):
        solvable = theorem8_solvable_grid([4, 5], seeds=(1,)).compile()
        impossible = theorem8_impossible_grid([4, 5]).compile()
        solvable_points = {(s.n, s.f, s.k) for s in solvable}
        impossible_points = {(s.n, s.f, s.k) for s in impossible}
        assert not solvable_points & impossible_points
        full_grid = {(n, f, k) for n in (4, 5) for f in range(1, n) for k in range(1, n)}
        assert solvable_points | impossible_points == full_grid

    def test_impossible_side_has_one_scenario_per_point(self):
        impossible = theorem8_impossible_grid([4, 5]).compile()
        points = [(s.n, s.f, s.k) for s in impossible]
        assert len(points) == len(set(points))
