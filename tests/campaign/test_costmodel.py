"""Cost-model scheduling: plan purity, ordering, and the determinism hammer."""

from __future__ import annotations

import threading

import pytest

from repro.campaign import (
    CampaignRunner,
    CostModel,
    OnlineCostModel,
    ScenarioSpec,
    cost_key,
    plan_chunks,
    theorem8_specs,
)
from repro.exceptions import ConfigurationError
from repro.faults.plan import FaultPlan, RetryPolicy


def spec_at(n, f, seed=0, kind="theorem8-solvable", k=1):
    return ScenarioSpec(kind=kind, n=n, f=f, k=k, scheduler="random",
                        seed=seed, max_steps=4_000, recording="verdict-only")


class TestCostModel:
    def test_estimate_uses_history_then_default(self):
        model = CostModel.from_samples(
            [(("theorem8-solvable", 4, 1), 0.010),
             (("theorem8-solvable", 4, 1), 0.030),
             (("theorem8-solvable", 8, 3), 0.100)])
        assert model.estimate(spec_at(4, 1)) == pytest.approx(0.020)
        assert model.estimate(spec_at(8, 3)) == pytest.approx(0.100)
        # Unknown key: the default is the mean of the known means.
        assert model.estimate(spec_at(16, 7)) == pytest.approx(0.060)

    def test_estimate_never_nonpositive(self):
        model = CostModel.from_samples([(("theorem8-solvable", 4, 1), 0.0)])
        assert model.estimate(spec_at(4, 1)) > 0

    def test_snapshot_is_canonical_and_hashable(self):
        a = CostModel(costs=((("x", 4, 1), 0.5), (("a", 2, 0), 0.1)))
        b = CostModel(costs=((("a", 2, 0), 0.1), (("x", 4, 1), 0.5)))
        assert a == b
        assert hash(a) == hash(b)
        assert a.known_keys() == (("a", 2, 0), ("x", 4, 1))

    def test_from_result_keys_by_kind_n_f(self):
        specs = theorem8_specs([4], seeds=(1,), max_steps=4_000)
        result = CampaignRunner().run(specs)
        model = CostModel.from_result(result)
        assert model.known_keys() == tuple(sorted(
            {cost_key(spec) for spec in specs}))
        assert all(key[1] == 4 for key in model.known_keys())
        assert model.estimate(specs[0]) > 0

    def test_invalid_default_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(default_seconds=0.0)


class TestPlanChunks:
    MODEL = CostModel.from_samples(
        [(("theorem8-solvable", 4, 1), 0.01),
         (("theorem8-solvable", 8, 3), 0.08)])

    def test_pure_function_of_inputs(self):
        specs = [spec_at(4, 1, s) for s in range(9)] + \
                [spec_at(8, 3, s) for s in range(5)]
        first = plan_chunks(specs, self.MODEL, target_seconds=0.05)
        for _ in range(5):
            assert plan_chunks(specs, self.MODEL, target_seconds=0.05) == first

    def test_every_position_exactly_once(self):
        specs = [spec_at(4, 1, s) for s in range(7)] + \
                [spec_at(8, 3, s) for s in range(7)]
        plan = plan_chunks(specs, self.MODEL, target_seconds=0.05)
        flat = sorted(p for group in plan for p in group)
        assert flat == list(range(len(specs)))

    def test_chunks_sized_by_cost_not_count(self):
        # 0.01s specs fill to ~5 per chunk at a 0.05s target; 0.08s specs
        # go one per chunk.
        cheap = [spec_at(4, 1, s) for s in range(10)]
        dear = [spec_at(8, 3, s) for s in range(3)]
        plan = plan_chunks(cheap + dear, self.MODEL, target_seconds=0.05)
        sizes = {len(group) for group in plan
                 if all(p >= len(cheap) for p in group)}
        assert sizes == {1}
        cheap_sizes = [len(group) for group in plan
                       if all(p < len(cheap) for p in group)]
        assert max(cheap_sizes) == 5

    def test_longest_expected_first(self):
        cheap = [spec_at(4, 1, s) for s in range(5)]
        dear = [spec_at(8, 3, s) for s in range(2)]
        plan = plan_chunks(cheap + dear, self.MODEL, target_seconds=1.0,
                           max_chunk=2)
        costs = [sum(self.MODEL.estimate((cheap + dear)[p]) for p in group)
                 for group in plan]
        assert costs == sorted(costs, reverse=True)

    def test_max_chunk_caps_free_scenarios(self):
        model = CostModel(costs=(), default_seconds=1e-9)
        specs = [spec_at(4, 1, s) for s in range(700)]
        plan = plan_chunks(specs, model, target_seconds=10.0, max_chunk=256)
        assert max(len(group) for group in plan) <= 256
        assert len(plan) >= 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            plan_chunks([], self.MODEL, target_seconds=0.0)
        with pytest.raises(ConfigurationError):
            plan_chunks([], self.MODEL, max_chunk=0)


class TestOnlineCostModel:
    def test_running_mean_and_snapshot(self):
        online = OnlineCostModel()
        online.observe(spec_at(4, 1), 0.010)
        online.observe(spec_at(4, 1), 0.030)
        assert online.observations() == 2
        snap = online.snapshot()
        assert snap.estimate(spec_at(4, 1)) == pytest.approx(0.020)
        # The snapshot is frozen: later observations don't move it.
        online.observe(spec_at(4, 1), 10.0)
        assert snap.estimate(spec_at(4, 1)) == pytest.approx(0.020)

    def test_thread_hammer(self):
        online = OnlineCostModel()
        spec = spec_at(4, 1)

        def feed():
            for _ in range(500):
                online.observe(spec, 0.002)

        threads = [threading.Thread(target=feed) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert online.observations() == 4_000
        assert online.snapshot().estimate(spec) == pytest.approx(0.002)


HAMMER_SPECS = theorem8_specs([4, 5], seeds=(1,), max_steps=4_000)

#: Deliberately different histories: empty, uniform, wildly skewed, and
#: one learned from a real run — the plan changes, the result must not.
def history_snapshots():
    real = CostModel.from_result(CampaignRunner().run(HAMMER_SPECS))
    skewed = CostModel.from_samples(
        [(cost_key(spec), 10.0 if spec.n == 4 else 1e-5)
         for spec in HAMMER_SPECS])
    return [None, CostModel(), skewed, real]


class TestDeterminismHammer:
    @pytest.fixture(scope="class")
    def reference(self):
        return CampaignRunner(backend="serial").run(HAMMER_SPECS)

    @pytest.mark.parametrize("workers", [2, 3])
    def test_all_backends_agree_across_histories(self, reference, workers):
        for model in history_snapshots():
            for runner in (
                CampaignRunner(backend="serial", cost_model=model),
                CampaignRunner(backend="chunked", cost_model=model,
                               target_task_seconds=0.02),
                CampaignRunner(backend="process", workers=workers,
                               cost_model=model, target_task_seconds=0.02),
                CampaignRunner(backend="process", workers=workers, batch=True,
                               cost_model=model, target_task_seconds=0.02),
            ):
                assert runner.run(HAMMER_SPECS) == reference, (
                    f"{runner.backend} batch={runner.batch} "
                    f"model={model!r} diverged")

    def test_chaos_with_cost_model_still_agrees(self, reference):
        model = history_snapshots()[2]
        faults = FaultPlan(seed=7, raise_rate=0.3)
        retry = RetryPolicy(max_attempts=3, backoff_seconds=0.0)
        chaotic = CampaignRunner(
            backend="chunked", cost_model=model, target_task_seconds=0.02,
            faults=faults, retry=retry).run(HAMMER_SPECS)
        assert chaotic == reference
        assert chaotic.fault_stats.task_retries > 0

    def test_explicit_chunk_size_wins_over_model(self):
        model = history_snapshots()[2]
        runner = CampaignRunner(backend="chunked", chunk_size=3,
                                cost_model=model)
        assert runner._plan(HAMMER_SPECS) is None

    def test_target_task_seconds_validated(self):
        with pytest.raises(ConfigurationError):
            CampaignRunner(target_task_seconds=0.0)
