"""Campaign execution: backend equivalence, determinism, aggregation."""

from __future__ import annotations

import pickle

import pytest

from repro.campaign import (
    CampaignResult,
    CampaignRunner,
    ScenarioGrid,
    ScenarioOutcome,
    ScenarioSpec,
    run_scenario,
    theorem8_specs,
)
from repro.exceptions import ConfigurationError

SPECS = theorem8_specs([4], seeds=(1,), max_steps=4_000)


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def serial_result(self):
        return CampaignRunner(backend="serial").run(SPECS)

    def test_chunked_equals_serial(self, serial_result):
        for chunk_size in (1, 3, 1000):
            chunked = CampaignRunner(backend="chunked", chunk_size=chunk_size).run(SPECS)
            assert chunked == serial_result

    def test_process_equals_serial(self, serial_result):
        parallel = CampaignRunner(backend="process", workers=2, chunk_size=5).run(SPECS)
        assert parallel == serial_result
        assert [o.spec for o in parallel.outcomes] == [o.spec for o in serial_result.outcomes]

    def test_serial_rerun_is_identical(self, serial_result):
        assert CampaignRunner(backend="serial").run(SPECS) == serial_result

    def test_equality_ignores_timing_metadata(self, serial_result):
        rerun = CampaignRunner(backend="chunked", chunk_size=2).run(SPECS)
        assert rerun == serial_result
        assert rerun.backend != serial_result.backend  # metadata still differs

    def test_grid_accepted_directly(self, serial_result):
        grid = ScenarioGrid(
            kinds=("theorem8-solvable",), n_values=(4,), f_values=(1,), k_values=(1,),
        )
        result = CampaignRunner().run(grid)
        assert len(result.outcomes) == 1
        assert result.outcomes[0].all_ok


class TestDeterministicSeeding:
    def test_derived_seed_is_stable_and_identity_based(self):
        spec = SPECS[0]
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.derived_seed() == spec.derived_seed()
        other = ScenarioSpec(
            kind=spec.kind, n=spec.n, f=spec.f, k=spec.k,
            scheduler=spec.scheduler, seed=spec.seed + 1,
            crashes=spec.crashes, max_steps=spec.max_steps, params=spec.params,
        )
        assert other.derived_seed() != spec.derived_seed()

    def test_distinct_scenarios_get_distinct_streams(self):
        seeds = [spec.derived_seed() for spec in SPECS]
        assert len(set(seeds)) == len(seeds)

    def test_outcomes_do_not_depend_on_execution_order(self):
        forward = CampaignRunner().run(SPECS)
        backward = CampaignRunner().run(tuple(reversed(SPECS)))
        by_spec_fwd = {o.spec: o for o in forward.outcomes}
        by_spec_bwd = {o.spec: o for o in backward.outcomes}
        assert by_spec_fwd == by_spec_bwd


class TestAggregation:
    @pytest.fixture(scope="class")
    def result(self):
        return CampaignRunner().run(SPECS)

    def test_verdict_counts_add_up(self, result):
        counts = result.verdict_counts()
        assert sum(counts.values()) == len(result.outcomes)
        assert counts["error"] == 0
        # n=4 has exactly 4 impossible points, each a deliberate violation
        assert counts["violation"] == 4

    def test_property_rollup(self, result):
        rollup = result.property_rollup()
        assert rollup["agreement_failures"] == 4
        assert rollup["validity_failures"] == 0
        assert rollup["termination_failures"] == 0

    def test_by_point_covers_the_grid(self, result):
        grouped = result.by_point()
        assert set(grouped) == {(4, f, k) for f in range(1, 4) for k in range(1, 4)}
        assert sum(len(v) for v in grouped.values()) == len(result.outcomes)

    def test_failures_are_the_impossible_side(self, result):
        failures = result.failures()
        assert len(failures) == 4
        assert all(o.spec.kind == "theorem8-impossible" for o in failures)
        assert all("agreement" in o.failed_properties() for o in failures)

    def test_wall_time_stats_shape(self, result):
        stats = result.wall_time_stats()
        assert stats["count"] == float(len(result.outcomes))
        assert 0 <= stats["min"] <= stats["median"] <= stats["max"]
        assert result.scenarios_per_second > 0

    def test_summary_is_json_friendly(self, result):
        import json

        assert json.loads(json.dumps(result.summary()))["scenarios"] == len(result.outcomes)


class TestResultJsonRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        return CampaignRunner(backend="chunked", chunk_size=7).run(SPECS)

    def test_round_trip_compares_equal(self, result):
        restored = CampaignResult.from_json(result.to_json())
        assert restored == result
        assert [o.spec for o in restored.outcomes] == [o.spec for o in result.outcomes]

    def test_round_trip_restores_metadata(self, result):
        restored = CampaignResult.from_json(result.to_json(indent=2))
        # Metadata is excluded from equality, so pin it separately.
        assert restored.backend == result.backend
        assert restored.workers == result.workers
        assert restored.elapsed_seconds == result.elapsed_seconds
        assert restored.scenario_seconds == result.scenario_seconds

    def test_round_trip_preserves_derived_seeds_and_rollups(self, result):
        restored = CampaignResult.from_json(result.to_json())
        assert [o.spec.derived_seed() for o in restored.outcomes] == [
            o.spec.derived_seed() for o in result.outcomes
        ]
        assert restored.verdict_counts() == result.verdict_counts()
        assert restored.property_rollup() == result.property_rollup()

    def test_unknown_format_rejected(self, result):
        import json

        payload = json.loads(result.to_json())
        payload["format"] = 999
        with pytest.raises(ConfigurationError):
            CampaignResult.from_json(json.dumps(payload))

    def test_params_with_tuples_round_trip(self):
        spec = ScenarioSpec(
            kind="theorem8-solvable", n=4, f=1, k=1,
            params=(("window", (1, 2, 3)), ("label", "x"), ("ratio", 0.5)),
        )
        result = CampaignRunner().run([spec])
        restored = CampaignResult.from_json(result.to_json())
        assert restored == result
        assert restored.outcomes[0].spec.param("window") == (1, 2, 3)


class TestRunnerHooks:
    def test_on_outcome_streams_every_outcome_in_order(self):
        seen = []
        result = CampaignRunner().run(SPECS, on_outcome=lambda o, s: seen.append(o))
        assert seen == list(result.outcomes)

    def test_process_backend_delivers_on_outcome_in_parent(self):
        import os

        pids = []
        result = CampaignRunner(backend="process", workers=2, chunk_size=5).run(
            SPECS, on_outcome=lambda o, s: pids.append(os.getpid())
        )
        assert len(pids) == len(result.outcomes)
        assert set(pids) == {os.getpid()}  # persistence happens in the caller

    def test_should_skip_drops_scenarios_on_every_backend(self):
        drop = lambda spec: spec.scheduler == "random"  # noqa: E731
        kept = [s for s in SPECS if s.scheduler != "random"]
        for runner in (
            CampaignRunner(),
            CampaignRunner(backend="chunked", chunk_size=3),
            CampaignRunner(backend="process", workers=2, chunk_size=3),
        ):
            result = runner.run(SPECS, should_skip=drop)
            assert [o.spec for o in result.outcomes] == kept

    def test_progress_events_cover_the_campaign(self):
        events = []
        result = CampaignRunner(backend="chunked", chunk_size=4).run(
            SPECS, progress=events.append
        )
        assert len(events) == len(result.outcomes)
        assert {e.verdict for e in events} == {o.verdict for o in result.outcomes}
        assert all(e.seconds >= 0 and not e.cached for e in events)


class TestRobustness:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignRunner(backend="threads")

    def test_unknown_kind_fails_fast(self):
        bogus = ScenarioSpec(kind="no-such-kind", n=4, f=1, k=1)
        with pytest.raises(ConfigurationError):
            CampaignRunner().run([bogus])

    def test_infeasible_scenario_becomes_error_outcome(self):
        # (4, 1, 1) is on the solvable side: the impossible construction
        # cannot build 2 disjoint groups of size 3 out of 4 processes.
        infeasible = ScenarioSpec(kind="theorem8-impossible", n=4, f=1, k=1)
        result = CampaignRunner().run([infeasible])
        (outcome,) = result.outcomes
        assert outcome.verdict == "error"
        assert "ConfigurationError" in outcome.error
        assert not result.all_ok

    def test_run_scenario_outcomes_are_picklable(self):
        outcome = run_scenario(SPECS[0])
        assert pickle.loads(pickle.dumps(outcome)) == outcome

    def test_empty_campaign(self):
        result = CampaignRunner(backend="process", workers=2).run([])
        assert result.outcomes == ()
        assert result.all_ok
        assert result.verdict_counts() == {"ok": 0, "violation": 0, "error": 0}
