"""Wire codec: round-trip equality, memoised decode, byte reduction."""

from __future__ import annotations

import pickle

import pytest

from repro.campaign import (
    CampaignRunner,
    ScenarioSpec,
    theorem8_specs,
)
from repro.campaign.wire import (
    SPEC_FIELDS,
    WIRE_FORMAT,
    WireChunk,
    decode_chunk,
    encode_chunk,
    ensure_specs,
    raw_bytes,
    wire_bytes,
)
from repro.simulation.batch_kernel import is_batchable


def mixed_specs():
    """A deliberately heterogeneous spec set: every recording policy,
    crash schedules, params, several kinds — including specs the batched
    kernel cannot execute (mixed batchable/non-batchable matters because
    both ``_run_wave`` and ``_run_batch`` tasks ship as descriptors)."""
    specs = list(theorem8_specs([4, 5], seeds=(1, 2), max_steps=4_000))[:12]
    specs += [
        ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                     recording="full"),
        ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                     recording="decisions-only"),
        ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=1,
                     recording="verdict-only"),
        ScenarioSpec(kind="theorem8-solvable", n=5, f=2, k=2,
                     scheduler="random", seed=77,
                     crashes=((1, 0), (3, 5)), max_steps=2_000,
                     params=(("alpha", 3), ("beta", (1, 2))),
                     recording="verdict-only"),
        ScenarioSpec(kind="corollary13-middle", n=6, f=3, k=2, seed=5,
                     recording="verdict-only"),
    ]
    return tuple(specs)


class TestRoundTrip:
    def test_mixed_grid_round_trips_exactly(self):
        specs = mixed_specs()
        assert decode_chunk(encode_chunk(specs)) == specs

    def test_includes_non_batchable_specs(self):
        specs = mixed_specs()
        batchable = [is_batchable(s) for s in specs]
        assert any(batchable) and not all(batchable)
        assert decode_chunk(encode_chunk(specs)) == specs

    def test_single_spec_and_empty(self):
        spec = mixed_specs()[0]
        assert decode_chunk(encode_chunk([spec])) == (spec,)
        assert decode_chunk(encode_chunk([])) == ()

    def test_decoded_specs_share_fingerprint_and_seed(self):
        from repro.store.fingerprint import fingerprint_spec

        specs = mixed_specs()
        decoded = decode_chunk(encode_chunk(specs))
        for original, clone in zip(specs, decoded):
            assert clone.derived_seed() == original.derived_seed()
            assert fingerprint_spec(clone) == fingerprint_spec(original)

    def test_first_spec_delta_is_empty(self):
        chunk = encode_chunk(mixed_specs())
        assert chunk.deltas[0] == ()
        assert len(chunk) == len(mixed_specs())

    def test_template_covers_every_field(self):
        chunk = encode_chunk(mixed_specs())
        assert len(chunk.template) == len(SPEC_FIELDS)

    def test_ensure_specs_passes_sequences_through(self):
        specs = mixed_specs()
        assert ensure_specs(specs) is specs
        assert tuple(ensure_specs(encode_chunk(specs))) == specs

    def test_unknown_format_raises(self):
        chunk = encode_chunk(mixed_specs()[:2])
        alien = WireChunk(template=chunk.template, deltas=chunk.deltas,
                          format=WIRE_FORMAT + 1)
        with pytest.raises(ValueError, match="format"):
            decode_chunk(alien)

    def test_descriptor_survives_pickling(self):
        specs = mixed_specs()
        chunk = pickle.loads(pickle.dumps(encode_chunk(specs), -1))
        assert decode_chunk(chunk) == specs


class TestMemoisedDecode:
    def test_equal_descriptors_decode_once(self):
        specs = mixed_specs()
        first = decode_chunk(encode_chunk(specs))
        again = decode_chunk(encode_chunk(specs))
        # lru_cache returns the very same tuple for an equal descriptor —
        # a retried or re-shipped task costs no re-expansion.
        assert again is first


class TestByteReduction:
    def test_homogeneous_chunk_shrinks_at_least_3x(self):
        # A 32-spec seed sweep at one parameter point — the shape a
        # kernel wave ships.  The E15 benchmark gates the same floor.
        specs = [
            ScenarioSpec(kind="theorem8-solvable", n=32, f=16, k=2,
                         scheduler="random", seed=seed, max_steps=20_000,
                         recording="verdict-only")
            for seed in range(32)
        ]
        chunk = encode_chunk(specs)
        assert raw_bytes(specs) / wire_bytes(chunk) >= 3.0

    def test_mixed_chunk_never_larger_than_raw_plus_overhead(self):
        specs = mixed_specs()
        # Worst case is bounded: deltas repeat at most what raw shipping
        # repeats, plus the small per-chunk template/format framing.
        assert wire_bytes(encode_chunk(specs)) <= raw_bytes(specs) + 512


class TestWireShippedCampaigns:
    def test_process_equals_serial_and_ships_compact(self):
        specs = theorem8_specs([4], seeds=(1,), max_steps=4_000)
        serial = CampaignRunner(backend="serial").run(specs)
        proc = CampaignRunner(backend="process", workers=2, chunk_size=5).run(specs)
        assert proc == serial
        dispatch = proc.dispatch_stats
        assert dispatch.tasks_shipped > 0
        assert dispatch.scenarios_shipped == len(specs)
        assert 0 < dispatch.wire_bytes < raw_bytes(specs)
        # The in-process reference run ships nothing.
        assert not serial.dispatch_stats.any()

    def test_dispatch_stats_survive_json_round_trip(self):
        specs = theorem8_specs([4], seeds=(1,), max_steps=4_000)
        proc = CampaignRunner(backend="process", workers=2).run(specs)
        restored = type(proc).from_json(proc.to_json())
        assert restored == proc
        assert restored.dispatch_stats.as_dict() == proc.dispatch_stats.as_dict()
