"""Scenario kinds: registry behaviour and the shipped kind semantics."""

from __future__ import annotations

import pytest

from repro.campaign import (
    CampaignRunner,
    ScenarioOutcome,
    ScenarioSpec,
    build_adversary,
    corollary13_specs,
    get_kind,
    registered_kinds,
    scenario_kind,
)
from repro.campaign.scenarios import _KINDS
from repro.exceptions import ConfigurationError
from repro.simulation.scheduler import RandomScheduler, RoundRobinScheduler


class TestRegistry:
    def test_shipped_kinds_are_registered(self):
        kinds = registered_kinds()
        for name in (
            "theorem8-solvable",
            "theorem8-impossible",
            "corollary13-k1",
            "corollary13-kmax",
            "corollary13-middle",
        ):
            assert name in kinds
            assert callable(get_kind(name))

    def test_unknown_kind_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            get_kind("definitely-not-registered")

    def test_duplicate_registration_rejected(self):
        @scenario_kind("test-temporary-kind")
        def temporary(spec):  # pragma: no cover - never executed
            raise AssertionError

        try:
            with pytest.raises(ConfigurationError):
                scenario_kind("test-temporary-kind")(temporary)
        finally:
            del _KINDS["test-temporary-kind"]

    def test_custom_kind_runs_through_the_campaign(self):
        @scenario_kind("test-always-ok")
        def always_ok(spec):
            return ScenarioOutcome(spec=spec, verdict="ok")

        try:
            spec = ScenarioSpec(kind="test-always-ok", n=3, f=1, k=1)
            result = CampaignRunner().run([spec])
            assert result.all_ok
        finally:
            del _KINDS["test-always-ok"]


class TestBuildAdversary:
    def test_round_robin(self):
        spec = ScenarioSpec(kind="x", n=4, f=1, k=1, scheduler="round-robin")
        assert isinstance(build_adversary(spec), RoundRobinScheduler)

    def test_random_uses_derived_seed_and_params(self):
        spec = ScenarioSpec(
            kind="x", n=4, f=1, k=1, scheduler="random", seed=7,
            params=(("delivery_bias", 0.25), ("max_delay", 6)),
        )
        adversary = build_adversary(spec)
        assert isinstance(adversary, RandomScheduler)
        assert adversary.delivery_bias == 0.25
        assert adversary.max_delay == 6

    def test_unknown_scheduler_rejected(self):
        spec = ScenarioSpec(kind="x", n=4, f=1, k=1, scheduler="quantum")
        with pytest.raises(ConfigurationError):
            build_adversary(spec)


class TestCorollary13Specs:
    def test_regimes_cover_every_point(self):
        specs = corollary13_specs([5])
        regimes = {(s.kind, s.k) for s in specs}
        assert ("corollary13-k1", 1) in regimes
        assert ("corollary13-kmax", 4) in regimes
        assert {k for kind, k in regimes if kind == "corollary13-middle"} == {2, 3}

    def test_campaign_matches_the_paper(self):
        result = CampaignRunner().run(corollary13_specs([5]))
        assert result.verdict_counts()["error"] == 0
        for outcome in result.outcomes:
            if outcome.spec.kind == "corollary13-middle":
                assert not outcome.agreement_ok
                assert outcome.distinct_decisions > outcome.spec.k
            else:
                assert outcome.all_ok, outcome.describe()
