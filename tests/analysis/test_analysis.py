"""Tests for the analysis helpers (run properties, statistics, reporting, bivalence)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.flp_consensus import FLPConsensus
from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.trivial import DecideOwnValue
from repro.analysis.bivalence import explore
from repro.analysis.reporting import format_sweep, format_table
from repro.analysis.run_properties import decision_histogram, evaluate_kset, run_statistics
from repro.analysis.statistics import summarize
from repro.models.initial_crash import initial_crash_model
from repro.simulation.adversary import PartitioningAdversary
from repro.simulation.executor import execute


@pytest.fixture(scope="module")
def sample_run():
    model = initial_crash_model(6, 3)
    return execute(
        KSetInitialCrash(6, 3), model, {p: p for p in model.processes},
        adversary=PartitioningAdversary([[1, 2, 3], [4, 5, 6]]),
    )


class TestRunProperties:
    def test_evaluate_kset(self, sample_run):
        assert not evaluate_kset(sample_run, 1).agreement_ok
        assert evaluate_kset(sample_run, 2).all_ok

    def test_decision_histogram(self, sample_run):
        histogram = decision_histogram(sample_run)
        assert histogram == {1: 3, 4: 3}

    def test_run_statistics(self, sample_run):
        stats = run_statistics(sample_run)
        assert stats["steps"] == sample_run.length
        assert stats["decided_processes"] == 6.0
        assert stats["distinct_decisions"] == 2.0
        assert stats["decision_latency"] <= stats["steps"]


class TestStatistics:
    def test_summarize_basic(self):
        stats = summarize([4.0, 1.0, 3.0, 2.0])
        assert stats["count"] == 4
        assert stats["mean"] == 2.5
        assert stats["min"] == 1.0 and stats["max"] == 4.0
        assert stats["median"] == 2.5

    def test_summarize_odd_length(self):
        assert summarize([3, 1, 2])["median"] == 2.0

    def test_summarize_empty(self):
        assert summarize([])["count"] == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1))
    def test_summarize_bounds(self, values):
        stats = summarize(values)
        assert stats["min"] <= stats["median"] <= stats["max"]
        assert stats["min"] <= stats["mean"] <= stats["max"]


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(("name", "value"), [("a", 1), ("long-name", 22)])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert all("|" in line for line in lines if line and "-+-" not in line)

    def test_format_table_handles_short_rows(self):
        table = format_table(("a", "b"), [(1,)])
        assert "1" in table

    def test_format_sweep(self):
        from repro.analysis.border_sweep import SweepPoint
        from repro.types import Verdict

        points = [
            SweepPoint(4, 2, 1, Verdict.IMPOSSIBLE, "partitioning forces a violation", True),
            SweepPoint(4, 1, 1, Verdict.SOLVABLE, "all properties hold", True),
        ]
        rendered = format_sweep(points)
        assert "paper verdict" in rendered
        assert "impossible" in rendered and "solvable" in rendered


class TestBivalenceExploration:
    def test_trivial_algorithm_reaches_all_n_values(self):
        report = explore(DecideOwnValue(), {1: "a", 2: "b", 3: "c"}, max_configs=500)
        assert report.exhausted
        assert report.max_distinct_decisions == 3
        assert report.violates_agreement(2)
        assert not report.violates_agreement(3)

    def test_flp_consensus_never_exceeds_one_value(self):
        report = explore(FLPConsensus(3, 1), {1: "a", 2: "b", 3: "c"}, max_configs=1_500)
        assert report.max_distinct_decisions <= 1

    def test_flp_consensus_initial_config_is_bivalent(self):
        # Different schedules can lead to different decided values — the
        # seed of the FLP bivalence argument, observable even in the
        # initial-crash protocol when the exploration favours different
        # processes.
        report = explore(FLPConsensus(3, 1), {1: "a", 2: "b", 3: "c"}, max_configs=4_000)
        assert report.looks_bivalent
        assert len(report.univalent_values()) >= 2

    def test_budget_reported(self):
        report = explore(KSetInitialCrash(3, 1), {1: 1, 2: 2, 3: 3}, max_configs=10)
        assert not report.exhausted
        assert report.configurations_visited == 10
