"""Tests for the Theorem 8 border sweep (:mod:`repro.analysis.border_sweep`)."""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

import pytest

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.analysis.border_sweep import (
    observe_impossible,
    observe_solvable,
    sweep_theorem8,
)
from repro.campaign import CampaignRunner
from repro.core.borders import theorem8_verdict
from repro.core.ksetagreement import KSetAgreementProblem
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.simulation.adversary import PartitioningAdversary
from repro.simulation.executor import ExecutionSettings, execute
from repro.simulation.scheduler import RandomScheduler, RoundRobinScheduler
from repro.types import Verdict


class TestObservations:
    def test_solvable_point(self):
        ok, reports = observe_solvable(5, 2, 2, seeds=(1,), max_steps=4_000)
        assert ok
        assert all(report.all_ok for report in reports)
        assert len(reports) >= 4

    def test_impossible_point(self):
        violated, report = observe_impossible(6, 4, 2, max_steps=4_000)
        assert violated
        assert not report.agreement_ok or not report.termination_ok

    def test_impossible_point_strictly_inside_region(self):
        # f larger than the border value: groups of size n-f leave leftover
        # processes that are declared initially dead.
        violated, _report = observe_impossible(7, 5, 2, max_steps=4_000)
        assert violated

    def test_consensus_with_majority_is_solvable(self):
        ok, _reports = observe_solvable(5, 2, 1, seeds=(3,), max_steps=4_000)
        assert ok


class TestSweep:
    def test_small_sweep_agrees_everywhere(self):
        points = sweep_theorem8([4, 5], seeds=(1,), max_steps=4_000)
        assert points
        disagreements = [p for p in points if not p.agrees]
        assert disagreements == []
        # both sides of the border appear in the sweep
        assert any(p.predicted is Verdict.SOLVABLE for p in points)
        assert any(p.predicted is Verdict.IMPOSSIBLE for p in points)

    def test_sweep_covers_full_grid(self):
        points = sweep_theorem8([4], seeds=(1,), max_steps=4_000)
        assert len(points) == 3 * 3  # f in 1..3, k in 1..3


class TestDetails:
    def test_agreeing_solvable_point_summarises_the_evidence(self):
        points = sweep_theorem8([4], seeds=(1,), max_steps=4_000)
        solvable = [p for p in points if p.predicted is Verdict.SOLVABLE]
        for point in solvable:
            assert point.agrees
            assert len(point.details) == 1
            assert "runs, all properties hold" in point.details[0]

    def test_impossible_point_names_the_violated_property(self):
        points = sweep_theorem8([4], seeds=(1,), max_steps=4_000)
        impossible = [p for p in points if p.predicted is Verdict.IMPOSSIBLE]
        assert impossible
        for point in impossible:
            assert point.agrees
            assert point.details
            assert any(
                "agreement" in detail or "termination" in detail
                for detail in point.details
            ), point.details

    def test_failing_runs_surface_schedule_seed_and_crash_pattern(self):
        # The sweep's detail lines come from ScenarioOutcome.describe();
        # a failing run must name the violated property, the scheduler,
        # the grid seed and the planned crash pattern it failed under —
        # and passing runs must not clutter the details.
        from repro.analysis.border_sweep import _solvable_point
        from repro.campaign import ScenarioOutcome, ScenarioSpec

        spec = ScenarioSpec(
            kind="theorem8-solvable", n=6, f=2, k=2,
            scheduler="random", seed=3, crashes=((5, 0), (6, 0)), max_steps=2_000,
        )
        failing = ScenarioOutcome(
            spec=spec, verdict="violation", agreement_ok=False,
            distinct_decisions=3, decided=4, steps=123,
            violations=("k-agreement violated: 3 distinct decision values for k=2",),
        )
        ok = ScenarioOutcome(
            spec=ScenarioSpec(kind="theorem8-solvable", n=6, f=2, k=2),
            verdict="ok", distinct_decisions=1, decided=6, steps=50,
        )
        observed, agrees, details = _solvable_point([ok, failing])
        assert observed == "violation observed"
        assert not agrees
        (detail,) = details  # only the failing run is listed
        assert "agreement violated" in detail
        assert "random/s3" in detail
        assert "p5@0" in detail and "p6@0" in detail
        assert "n=6,f=2,k=2" in detail

    def test_error_outcome_on_the_solvable_side_is_a_disagreement(self):
        from repro.analysis.border_sweep import _solvable_point
        from repro.campaign import ScenarioOutcome, ScenarioSpec

        spec = ScenarioSpec(kind="theorem8-solvable", n=5, f=1, k=2)
        ok = ScenarioOutcome(spec=spec, verdict="ok", distinct_decisions=1, decided=5)
        error = ScenarioOutcome.from_error(spec, RuntimeError("executor broke"))
        observed, agrees, details = _solvable_point([ok, error])
        assert observed == "execution error"
        assert not agrees
        assert any("executor broke" in detail for detail in details)

    def test_error_outcome_on_the_impossible_side_is_a_disagreement(self):
        # A crashed execution is evidence of nothing: it must never be
        # reported as the violation the paper predicts.
        from repro.analysis.border_sweep import _impossible_point
        from repro.campaign import ScenarioOutcome, ScenarioSpec

        spec = ScenarioSpec(kind="theorem8-impossible", n=6, f=4, k=2,
                            scheduler="partitioning")
        error = ScenarioOutcome.from_error(spec, RuntimeError("executor broke"))
        observed, agrees, details = _impossible_point([error])
        assert observed == "execution error"
        assert not agrees
        assert any("executor broke" in detail for detail in details)

    def test_missing_point_fails_loudly(self, monkeypatch):
        # If the campaign never executes a point the sweep must disagree
        # on it rather than vacuously report agreement.
        import repro.analysis.border_sweep as border_sweep

        monkeypatch.setattr(
            border_sweep, "theorem8_specs", lambda *args, **kwargs: ()
        )
        points = border_sweep.sweep_theorem8([4], seeds=(1,), max_steps=1_000)
        assert points
        assert all(not p.agrees for p in points)
        assert all(p.observed == "no scenarios executed" for p in points)


# -- regression against the pre-campaign implementation ----------------------


def _legacy_initial_crash_patterns(n: int, f: int, seeds: Sequence[int]) -> List[frozenset]:
    processes = tuple(range(1, n + 1))
    patterns = [frozenset(), frozenset(processes[-f:]) if f else frozenset(),
                frozenset(processes[:f]) if f else frozenset()]
    for seed in seeds:
        rng = random.Random(seed)
        patterns.append(frozenset(rng.sample(processes, f)) if f else frozenset())
    unique: List[frozenset] = []
    for pattern in patterns:
        if pattern not in unique:
            unique.append(pattern)
    return unique


def _legacy_observe_solvable(n, f, k, *, seeds, max_steps):
    """The pre-refactor observe_solvable, frozen for regression testing."""
    algorithm = KSetInitialCrash(n, f)
    model = initial_crash_model(n, f)
    proposals = {pid: pid for pid in model.processes}
    problem = KSetAgreementProblem(k)
    reports = []
    for dead in _legacy_initial_crash_patterns(n, f, seeds):
        pattern = FailurePattern.initially_dead(model.processes, dead)
        schedules = [RoundRobinScheduler()] + [RandomScheduler(seed) for seed in seeds]
        for adversary in schedules:
            run = execute(
                algorithm, model, proposals,
                adversary=adversary, failure_pattern=pattern,
                settings=ExecutionSettings(max_steps=max_steps),
            )
            reports.append(problem.evaluate(run, proposals=proposals))
    return all(report.all_ok for report in reports), reports


def _legacy_observe_impossible(n, f, k, *, max_steps):
    """The pre-refactor observe_impossible, frozen for regression testing."""
    group_size = n - f
    groups = [
        frozenset(range(i * group_size + 1, (i + 1) * group_size + 1))
        for i in range(k + 1)
    ]
    covered = frozenset().union(*groups)
    model = initial_crash_model(n, f)
    leftover = frozenset(model.processes) - covered
    pattern = FailurePattern.initially_dead(model.processes, leftover)
    run = execute(
        KSetInitialCrash(n, f), model, {pid: pid for pid in model.processes},
        adversary=PartitioningAdversary(groups), failure_pattern=pattern,
        settings=ExecutionSettings(max_steps=max_steps),
    )
    report = KSetAgreementProblem(k).evaluate(run)
    return (not report.agreement_ok or not report.termination_ok), report


def _legacy_sweep(n_values, *, seeds, max_steps) -> List[Tuple[int, int, int, Verdict, bool]]:
    """The pre-refactor sweep loop, reduced to its comparable signature."""
    points = []
    for n in n_values:
        for f in range(1, n):
            for k in range(1, n):
                verdict = theorem8_verdict(n, f, k)
                if verdict.is_solvable:
                    agrees, _ = _legacy_observe_solvable(n, f, k, seeds=seeds, max_steps=max_steps)
                else:
                    agrees, _ = _legacy_observe_impossible(n, f, k, max_steps=max_steps)
                points.append((n, f, k, verdict.verdict, agrees))
    return points


PINNED_GRID = [4, 5]
PINNED_KWARGS = {"seeds": (1,), "max_steps": 4_000}


class TestCampaignRegression:
    def test_sweep_agrees_with_the_prerefactor_implementation(self):
        """Point-for-point agreement with the frozen legacy sweep."""
        legacy = _legacy_sweep(PINNED_GRID, **PINNED_KWARGS)
        current = sweep_theorem8(PINNED_GRID, **PINNED_KWARGS)
        assert [(p.n, p.f, p.k, p.predicted, p.agrees) for p in current] == legacy

    def test_serial_and_parallel_backends_produce_identical_points(self):
        serial = sweep_theorem8(PINNED_GRID, **PINNED_KWARGS)
        parallel = sweep_theorem8(
            PINNED_GRID,
            runner=CampaignRunner(backend="process", workers=2),
            **PINNED_KWARGS,
        )
        chunked = sweep_theorem8(
            PINNED_GRID,
            runner=CampaignRunner(backend="chunked", chunk_size=7),
            **PINNED_KWARGS,
        )
        assert parallel == serial
        assert chunked == serial

    def test_observe_helpers_match_legacy_verdicts(self):
        for (n, f, k) in [(5, 2, 2), (5, 2, 1), (6, 3, 2)]:
            legacy_ok, _ = _legacy_observe_solvable(n, f, k, seeds=(1,), max_steps=4_000)
            current_ok, _ = observe_solvable(n, f, k, seeds=(1,), max_steps=4_000)
            assert current_ok == legacy_ok
        for (n, f, k) in [(6, 4, 2), (7, 5, 2)]:
            legacy_violated, _ = _legacy_observe_impossible(n, f, k, max_steps=4_000)
            current_violated, _ = observe_impossible(n, f, k, max_steps=4_000)
            assert current_violated == legacy_violated
