"""Tests for the Theorem 8 border sweep (:mod:`repro.analysis.border_sweep`)."""

from __future__ import annotations

import pytest

from repro.analysis.border_sweep import (
    observe_impossible,
    observe_solvable,
    sweep_theorem8,
)
from repro.types import Verdict


class TestObservations:
    def test_solvable_point(self):
        ok, reports = observe_solvable(5, 2, 2, seeds=(1,), max_steps=4_000)
        assert ok
        assert all(report.all_ok for report in reports)
        assert len(reports) >= 4

    def test_impossible_point(self):
        violated, report = observe_impossible(6, 4, 2, max_steps=4_000)
        assert violated
        assert not report.agreement_ok or not report.termination_ok

    def test_impossible_point_strictly_inside_region(self):
        # f larger than the border value: groups of size n-f leave leftover
        # processes that are declared initially dead.
        violated, _report = observe_impossible(7, 5, 2, max_steps=4_000)
        assert violated

    def test_consensus_with_majority_is_solvable(self):
        ok, _reports = observe_solvable(5, 2, 1, seeds=(3,), max_steps=4_000)
        assert ok


class TestSweep:
    def test_small_sweep_agrees_everywhere(self):
        points = sweep_theorem8([4, 5], seeds=(1,), max_steps=4_000)
        assert points
        disagreements = [p for p in points if not p.agrees]
        assert disagreements == []
        # both sides of the border appear in the sweep
        assert any(p.predicted is Verdict.SOLVABLE for p in points)
        assert any(p.predicted is Verdict.IMPOSSIBLE for p in points)

    def test_sweep_covers_full_grid(self):
        points = sweep_theorem8([4], seeds=(1,), max_steps=4_000)
        assert len(points) == 3 * 3  # f in 1..3, k in 1..3
