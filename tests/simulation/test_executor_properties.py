"""Property-based tests of the simulation core (seeded, no new deps).

Randomises over the parameter point ``(n, f, k)``, the initially dead
set and the schedule, and asserts the executor invariants the rest of
the library relies on:

* the write-once output ``y_p`` is never overwritten,
* no process takes a step at or after its planned crash time,
* messages are only sent to processes of the executed system,
* two runs of ``RoundRobinScheduler``/``RandomScheduler`` with the same
  seed are byte-identical.

Uses the ``repro`` hypothesis profile from ``tests/conftest.py`` (fixed
example budget, no deadline) so the suite stays fast and deterministic.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import ExecutionSettings, execute
from repro.simulation.scheduler import RandomScheduler, RoundRobinScheduler


@st.composite
def executions(draw):
    """A random initial-crash execution: point, dead set and schedule."""
    n = draw(st.integers(min_value=3, max_value=7))
    f = draw(st.integers(min_value=1, max_value=n - 1))
    dead_size = draw(st.integers(min_value=0, max_value=f))
    dead = frozenset(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=n),
                min_size=dead_size, max_size=dead_size, unique=True,
            )
        )
    )
    seed = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1)))
    return n, f, dead, seed


def run_execution(n, f, dead, seed, *, max_steps=4_000):
    model = initial_crash_model(n, f)
    if seed is None:
        adversary = RoundRobinScheduler()
    else:
        adversary = RandomScheduler(seed, max_delay=10)
    return execute(
        KSetInitialCrash(n, f),
        model,
        {p: p for p in model.processes},
        adversary=adversary,
        failure_pattern=FailurePattern.initially_dead(model.processes, dead),
        settings=ExecutionSettings(max_steps=max_steps),
    )


class TestExecutorInvariants:
    @given(executions())
    def test_write_once_output_is_never_overwritten(self, case):
        run = run_execution(*case)
        for pid in run.processes:
            decisions = []
            for event in run.steps_of(pid):
                if event.state_after.has_decided:
                    decisions.append(event.state_after.decision)
            # once set, y_p keeps the same value in every later state
            assert len(set(decisions)) <= 1
            newly = [e for e in run.steps_of(pid) if e.newly_decided]
            assert len(newly) <= 1

    @given(executions())
    def test_no_steps_at_or_after_crash_time(self, case):
        run = run_execution(*case)
        crash_times = run.failure_pattern.crash_times
        for event in run.events:
            crash_time = crash_times.get(event.pid)
            assert crash_time is None or event.time < crash_time, (
                f"p{event.pid} stepped at {event.time}, crash time {crash_time}"
            )
        dead = run.failure_pattern.initially_dead_set
        assert all(event.pid not in dead for event in run.events)

    @given(executions())
    def test_messages_only_to_processes_of_the_executed_system(self, case):
        run = run_execution(*case)
        members = set(run.processes)
        for event in run.events:
            for message in event.sent:
                assert message.sender == event.pid
                assert message.receiver in members
        for message in run.undelivered:
            assert message.receiver in members

    @given(executions())
    def test_delivered_messages_were_addressed_to_the_stepper(self, case):
        run = run_execution(*case)
        for event in run.events:
            assert all(m.receiver == event.pid for m in event.delivered)


class TestScheduleDeterminism:
    @given(executions())
    @settings(max_examples=15)
    def test_same_seed_runs_are_byte_identical(self, case):
        first = run_execution(*case)
        second = run_execution(*case)
        assert pickle.dumps(first.events) == pickle.dumps(second.events)
        assert pickle.dumps(first.failure_pattern) == pickle.dumps(second.failure_pattern)
        assert first.decisions() == second.decisions()
        assert first.completed == second.completed
        assert first.truncated == second.truncated

    @given(executions(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15)
    def test_repr_of_event_stream_is_reproducible(self, case, _salt):
        # repr-level identity: the textual trace is the same byte sequence
        n, f, dead, seed = case
        first = repr(run_execution(n, f, dead, seed).events)
        second = repr(run_execution(n, f, dead, seed).events)
        assert first == second
