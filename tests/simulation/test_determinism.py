"""Determinism and structural invariants of executor-produced runs.

The paper's model is deterministic once the schedule is fixed; the
executor must therefore be reproducible (same algorithm, model, proposals,
failure pattern and adversary seed give the identical run) and every
recorded run must satisfy basic structural invariants that the rest of the
library relies on.
"""

from __future__ import annotations

import pytest

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.sigma_kset import SigmaKSetAgreement
from repro.failure_detectors.base import FailurePattern
from repro.failure_detectors.sigma import SigmaK
from repro.models.asynchronous import asynchronous_model
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import ExecutionSettings, execute
from repro.simulation.scheduler import RandomScheduler, RoundRobinScheduler


def kset_run(seed=None, dead=frozenset({5, 6})):
    model = initial_crash_model(6, 3)
    pattern = FailurePattern.initially_dead(model.processes, dead)
    adversary = RandomScheduler(seed) if seed is not None else RoundRobinScheduler()
    return execute(
        KSetInitialCrash(6, 3), model, {p: p for p in model.processes},
        adversary=adversary, failure_pattern=pattern,
        settings=ExecutionSettings(max_steps=5_000),
    )


def run_signature(run):
    return (
        run.length,
        tuple((e.time, e.pid, tuple(m.msg_id for m in e.delivered)) for e in run.events),
        tuple(sorted(run.decisions().items())),
    )


class TestReproducibility:
    def test_round_robin_runs_identical(self):
        assert run_signature(kset_run()) == run_signature(kset_run())

    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_random_scheduler_same_seed_same_run(self, seed):
        assert run_signature(kset_run(seed=seed)) == run_signature(kset_run(seed=seed))

    def test_different_seeds_usually_differ(self):
        signatures = {run_signature(kset_run(seed=seed)) for seed in range(4)}
        assert len(signatures) > 1

    def test_failure_detector_runs_reproducible(self):
        def fd_run():
            model = asynchronous_model(4, 3, failure_detector=SigmaK(3))
            pattern = FailurePattern(model.processes, {2: 3})
            return execute(
                SigmaKSetAgreement(4), model, {p: p for p in model.processes},
                adversary=RandomScheduler(5), failure_pattern=pattern,
            )

        first, second = fd_run(), fd_run()
        assert run_signature(first) == run_signature(second)
        assert [r.output for r in first.fd_history] == [r.output for r in second.fd_history]


class TestStructuralInvariants:
    @pytest.fixture(scope="class")
    def runs(self):
        return [kset_run(), kset_run(seed=3), kset_run(seed=9, dead=frozenset({1}))]

    def test_event_times_are_consecutive(self, runs):
        for run in runs:
            assert [e.time for e in run.events] == list(range(1, run.length + 1))

    def test_each_process_decides_at_most_once(self, runs):
        for run in runs:
            for pid in run.processes:
                decisions = [e for e in run.steps_of(pid) if e.newly_decided]
                assert len(decisions) <= 1

    def test_delivered_messages_are_addressed_to_the_stepper(self, runs):
        for run in runs:
            for event in run.events:
                assert all(m.receiver == event.pid for m in event.delivered)
                assert all(m.sender == event.pid for m in event.sent)

    def test_no_message_delivered_twice(self, runs):
        for run in runs:
            delivered_ids = [m.msg_id for e in run.events for m in e.delivered]
            assert len(delivered_ids) == len(set(delivered_ids))

    def test_delivered_plus_pending_equals_sent(self, runs):
        for run in runs:
            assert run.messages_delivered() + len(run.undelivered) == run.messages_sent()

    def test_initially_dead_processes_never_appear(self, runs):
        for run in runs:
            dead = run.failure_pattern.initially_dead_set
            assert all(event.pid not in dead for event in run.events)

    def test_decisions_only_from_decided_states(self, runs):
        for run in runs:
            for pid, value in run.decisions().items():
                sequence = run.state_sequence(pid)
                assert sequence[-1].decision == value
