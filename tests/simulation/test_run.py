"""Tests for :mod:`repro.simulation.run` on executor-produced runs."""

from __future__ import annotations

import pytest

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.trivial import DecideOwnValue
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import execute
from repro.types import UNDECIDED


@pytest.fixture
def completed_run():
    model = initial_crash_model(5, 2)
    algorithm = KSetInitialCrash(5, 2)
    pattern = FailurePattern.initially_dead(model.processes, {5})
    return execute(algorithm, model, {p: p * 10 for p in model.processes}, failure_pattern=pattern)


class TestDecisions:
    def test_decisions_and_times(self, completed_run):
        decisions = completed_run.decisions()
        times = completed_run.decision_times()
        assert set(decisions) == set(times) == {1, 2, 3, 4}
        assert completed_run.decided_processes() == {1, 2, 3, 4}
        assert all(t >= 1 for t in times.values())

    def test_decision_of_undecided(self, completed_run):
        assert completed_run.decision_of(5) is UNDECIDED

    def test_distinct_decisions(self, completed_run):
        assert completed_run.distinct_decisions() <= {10, 20, 30, 40, 50}
        assert len(completed_run.distinct_decisions()) >= 1

    def test_last_decision_time(self, completed_run):
        assert completed_run.last_decision_time() == max(completed_run.decision_times().values())

    def test_no_decisions(self):
        model = initial_crash_model(2, 0)
        run = execute(
            DecideOwnValue(), model, {1: "a", 2: "b"},
        )
        # everyone decided here; build an artificial empty run instead
        from repro.simulation.run import Run

        empty = Run(
            algorithm_name="x",
            model_name="m",
            processes=(1, 2),
            proposals={1: "a", 2: "b"},
            events=(),
            failure_pattern=FailurePattern.all_correct((1, 2)),
        )
        assert empty.last_decision_time() is None
        assert empty.decisions() == {}


class TestBookkeeping:
    def test_correct_and_faulty(self, completed_run):
        assert completed_run.correct_processes() == {1, 2, 3, 4}
        assert completed_run.faulty_processes() == {5}

    def test_steps_of_only_that_process(self, completed_run):
        for pid in (1, 2, 3, 4):
            assert all(e.pid == pid for e in completed_run.steps_of(pid))
        assert completed_run.steps_of(5) == ()

    def test_state_sequence_until_decision_ends_decided(self, completed_run):
        for pid in (1, 2, 3, 4):
            sequence = completed_run.state_sequence(pid)
            assert sequence[-1].has_decided
            assert all(not s.has_decided for s in sequence[:-1])

    def test_state_sequence_full_is_longer_or_equal(self, completed_run):
        for pid in (1, 2, 3, 4):
            assert len(completed_run.state_sequence(pid, until_decision=False)) >= len(
                completed_run.state_sequence(pid)
            )

    def test_received_before_decision_subset_of_processes(self, completed_run):
        for pid in (1, 2, 3, 4):
            heard = completed_run.received_before_decision(pid)
            assert heard.issubset({1, 2, 3, 4})
            assert pid not in heard  # nobody sends to itself in this protocol

    def test_message_accounting(self, completed_run):
        assert completed_run.messages_sent() >= completed_run.messages_delivered()
        assert completed_run.messages_delivered() == sum(
            len(completed_run.deliveries_to(p)) for p in completed_run.processes
        )

    def test_undelivered_to_dead_process(self, completed_run):
        # Messages to the initially dead process are never delivered.
        assert all(m.receiver == 5 for m in completed_run.undelivered_to(5))
        assert len(completed_run.undelivered_to(5)) >= 1

    def test_summary_fields(self, completed_run):
        summary = completed_run.summary()
        assert summary["completed"] is True
        assert summary["decided"] == 4
        assert summary["steps"] == completed_run.length


class HaltAfterFirstDecision:
    """Adversary that abandons the run as soon as anybody decides."""

    def __init__(self):
        from repro.simulation.scheduler import RoundRobinScheduler

        self._inner = RoundRobinScheduler()

    def next_step(self, view):
        if view.decided:
            return None
        return self._inner.next_step(view)


class TestFinalTimeInvariant:
    """The run's final time bounds every recorded timestamp.

    The adversary-halt rewind (``time -= 1`` when ``next_step`` returns
    ``None``) is correct — the aborted step records nothing — but the
    invariant deserves pinning across all recording policies, and the
    event-count fallback of :attr:`Run.length` used to violate it for
    runs whose event times are non-contiguous.
    """

    @pytest.mark.parametrize(
        "recording", ["full", "decisions-only", "verdict-only"])
    def test_halted_run_final_time_bounds_decision_times(self, recording):
        from repro.simulation.executor import ExecutionSettings
        from repro.simulation.recording import RecordingPolicy

        model = initial_crash_model(4, 1)
        algorithm = KSetInitialCrash(4, 1)
        run = execute(
            algorithm, model, {p: p for p in model.processes},
            adversary=HaltAfterFirstDecision(),
            settings=ExecutionSettings(
                recording=RecordingPolicy.coerce(recording)),
        )
        assert not run.completed
        if run.recording.records_decision_times:
            times = run.decision_times()
            assert times  # somebody decided before the halt
            assert all(t <= run.length for t in times.values())
        if run.recording.records_events:
            assert all(e.time <= run.length for e in run.events)

    def test_halted_run_length_identical_across_policies(self):
        from repro.simulation.executor import ExecutionSettings
        from repro.simulation.recording import RecordingPolicy

        lengths = set()
        for name in ("full", "decisions-only", "verdict-only"):
            model = initial_crash_model(4, 1)
            run = execute(
                KSetInitialCrash(4, 1), model,
                {p: p for p in model.processes},
                adversary=HaltAfterFirstDecision(),
                settings=ExecutionSettings(
                    recording=RecordingPolicy.coerce(name)),
            )
            lengths.add(run.length)
        assert len(lengths) == 1

    def test_length_fallback_uses_last_event_time_not_event_count(self):
        """Regression: gapped event times used to make ``length`` undershoot
        recorded decision times (final time < a decision's timestamp)."""
        from repro.simulation.events import StepEvent
        from repro.simulation.run import Run

        class _State:
            has_decided = True
            decision = 7

        events = (
            StepEvent(time=2, pid=1, delivered=(), fd_output=None,
                      sent=(), state_after=_State(), newly_decided=False),
            StepEvent(time=5, pid=1, delivered=(), fd_output=None,
                      sent=(), state_after=_State(), newly_decided=True),
        )
        run = Run(
            algorithm_name="x", model_name="m", processes=(1,),
            proposals={1: 7}, events=events,
            failure_pattern=FailurePattern.all_correct((1,)),
        )
        assert run.decision_times() == {1: 5}
        assert run.length == 5  # the last step's time, not len(events) == 2
        assert all(t <= run.length for t in run.decision_times().values())

    def test_length_fallback_empty_events_is_zero(self):
        from repro.simulation.run import Run

        empty = Run(
            algorithm_name="x", model_name="m", processes=(1,),
            proposals={1: 0}, events=(),
            failure_pattern=FailurePattern.all_correct((1,)),
        )
        assert empty.length == 0
