"""Tests for :mod:`repro.simulation.run` on executor-produced runs."""

from __future__ import annotations

import pytest

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.trivial import DecideOwnValue
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import execute
from repro.types import UNDECIDED


@pytest.fixture
def completed_run():
    model = initial_crash_model(5, 2)
    algorithm = KSetInitialCrash(5, 2)
    pattern = FailurePattern.initially_dead(model.processes, {5})
    return execute(algorithm, model, {p: p * 10 for p in model.processes}, failure_pattern=pattern)


class TestDecisions:
    def test_decisions_and_times(self, completed_run):
        decisions = completed_run.decisions()
        times = completed_run.decision_times()
        assert set(decisions) == set(times) == {1, 2, 3, 4}
        assert completed_run.decided_processes() == {1, 2, 3, 4}
        assert all(t >= 1 for t in times.values())

    def test_decision_of_undecided(self, completed_run):
        assert completed_run.decision_of(5) is UNDECIDED

    def test_distinct_decisions(self, completed_run):
        assert completed_run.distinct_decisions() <= {10, 20, 30, 40, 50}
        assert len(completed_run.distinct_decisions()) >= 1

    def test_last_decision_time(self, completed_run):
        assert completed_run.last_decision_time() == max(completed_run.decision_times().values())

    def test_no_decisions(self):
        model = initial_crash_model(2, 0)
        run = execute(
            DecideOwnValue(), model, {1: "a", 2: "b"},
        )
        # everyone decided here; build an artificial empty run instead
        from repro.simulation.run import Run

        empty = Run(
            algorithm_name="x",
            model_name="m",
            processes=(1, 2),
            proposals={1: "a", 2: "b"},
            events=(),
            failure_pattern=FailurePattern.all_correct((1, 2)),
        )
        assert empty.last_decision_time() is None
        assert empty.decisions() == {}


class TestBookkeeping:
    def test_correct_and_faulty(self, completed_run):
        assert completed_run.correct_processes() == {1, 2, 3, 4}
        assert completed_run.faulty_processes() == {5}

    def test_steps_of_only_that_process(self, completed_run):
        for pid in (1, 2, 3, 4):
            assert all(e.pid == pid for e in completed_run.steps_of(pid))
        assert completed_run.steps_of(5) == ()

    def test_state_sequence_until_decision_ends_decided(self, completed_run):
        for pid in (1, 2, 3, 4):
            sequence = completed_run.state_sequence(pid)
            assert sequence[-1].has_decided
            assert all(not s.has_decided for s in sequence[:-1])

    def test_state_sequence_full_is_longer_or_equal(self, completed_run):
        for pid in (1, 2, 3, 4):
            assert len(completed_run.state_sequence(pid, until_decision=False)) >= len(
                completed_run.state_sequence(pid)
            )

    def test_received_before_decision_subset_of_processes(self, completed_run):
        for pid in (1, 2, 3, 4):
            heard = completed_run.received_before_decision(pid)
            assert heard.issubset({1, 2, 3, 4})
            assert pid not in heard  # nobody sends to itself in this protocol

    def test_message_accounting(self, completed_run):
        assert completed_run.messages_sent() >= completed_run.messages_delivered()
        assert completed_run.messages_delivered() == sum(
            len(completed_run.deliveries_to(p)) for p in completed_run.processes
        )

    def test_undelivered_to_dead_process(self, completed_run):
        # Messages to the initially dead process are never delivered.
        assert all(m.receiver == 5 for m in completed_run.undelivered_to(5))
        assert len(completed_run.undelivered_to(5)) >= 1

    def test_summary_fields(self, completed_run):
        summary = completed_run.summary()
        assert summary["completed"] is True
        assert summary["decided"] == 4
        assert summary["steps"] == completed_run.length
