"""Tests for :mod:`repro.simulation.message` and :mod:`repro.simulation.events`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms.base import ProcessState
from repro.exceptions import SimulationError
from repro.simulation.events import StepEvent
from repro.simulation.message import Message, MessageBuffer


class TestMessageBuffer:
    def test_put_assigns_unique_ids(self):
        buffer = MessageBuffer([1, 2])
        first = buffer.put(1, 2, "a", sent_at=1)
        second = buffer.put(2, 1, "b", sent_at=1)
        assert first.msg_id != second.msg_id
        assert buffer.sent_count == 2

    def test_pending_and_take(self):
        buffer = MessageBuffer([1, 2])
        message = buffer.put(1, 2, "hello", sent_at=3)
        assert buffer.pending_for(2) == (message,)
        taken = buffer.take(2, [message.msg_id])
        assert taken == (message,)
        assert buffer.pending_for(2) == ()
        assert buffer.delivered_count == 1

    def test_take_empty_is_noop(self):
        buffer = MessageBuffer([1])
        assert buffer.take(1, []) == ()

    def test_take_unknown_id_raises(self):
        buffer = MessageBuffer([1, 2])
        buffer.put(1, 2, "a", sent_at=1)
        with pytest.raises(SimulationError):
            buffer.take(2, [999])

    def test_take_foreign_message_raises(self):
        buffer = MessageBuffer([1, 2])
        message = buffer.put(1, 2, "a", sent_at=1)
        with pytest.raises(SimulationError):
            buffer.take(1, [message.msg_id])

    def test_unknown_receiver_rejected(self):
        buffer = MessageBuffer([1])
        with pytest.raises(SimulationError):
            buffer.put(1, 9, "a", sent_at=1)

    def test_in_flight_and_all_pending(self):
        buffer = MessageBuffer([1, 2, 3])
        buffer.put(1, 2, "a", 1)
        buffer.put(1, 3, "b", 1)
        assert buffer.in_flight() == 2
        assert {m.payload for m in buffer.all_pending()} == {"a", "b"}

    def test_oldest_pending(self):
        buffer = MessageBuffer([1, 2])
        first = buffer.put(1, 2, "first", 1)
        buffer.put(1, 2, "second", 2)
        assert buffer.oldest_pending(2) == first
        assert buffer.oldest_pending(1) is None

    def test_take_preserves_arrival_order_of_the_rest(self):
        buffer = MessageBuffer([1, 2])
        messages = [buffer.put(1, 2, f"m{i}", i) for i in range(5)]
        taken = buffer.take(2, [messages[1].msg_id, messages[3].msg_id])
        assert taken == (messages[1], messages[3])
        assert buffer.pending_for(2) == (messages[0], messages[2], messages[4])

    def test_rejected_take_leaves_the_buffer_unchanged(self):
        buffer = MessageBuffer([1, 2])
        messages = [buffer.put(1, 2, f"m{i}", i) for i in range(4)]
        before = buffer.pending_for(2)
        with pytest.raises(SimulationError):
            buffer.take(2, [messages[0].msg_id, messages[2].msg_id, 999])
        assert buffer.pending_for(2) == before
        assert buffer.delivered_count == 0

    def test_knows_receiver(self):
        buffer = MessageBuffer([1, 2])
        assert buffer.knows_receiver(1)
        assert not buffer.knows_receiver(9)

    @given(st.lists(st.tuples(st.integers(1, 4), st.integers(1, 4)), max_size=30))
    def test_counters_consistent(self, sends):
        buffer = MessageBuffer([1, 2, 3, 4])
        for sender, receiver in sends:
            buffer.put(sender, receiver, "x", 1)
        assert buffer.sent_count == len(sends)
        assert buffer.in_flight() == len(sends)
        # drain everything
        for receiver in (1, 2, 3, 4):
            ids = [m.msg_id for m in buffer.pending_for(receiver)]
            buffer.take(receiver, ids)
        assert buffer.in_flight() == 0
        assert buffer.delivered_count == len(sends)


class TestStepEvent:
    def make_event(self, **kwargs):
        state = ProcessState(pid=1, proposal="v").decide("v") if kwargs.pop("decided", False) else ProcessState(pid=1, proposal="v")
        message = Message(1, 2, 1, ("S1", 2), 1)
        defaults = dict(
            time=3,
            pid=1,
            delivered=(message,),
            fd_output=None,
            sent=(),
            state_after=state,
            newly_decided=state.has_decided,
        )
        defaults.update(kwargs)
        return StepEvent(**defaults)

    def test_senders_heard(self):
        event = self.make_event()
        assert event.senders_heard == (2,)

    def test_describe_mentions_decision(self):
        assert "DECIDED" in self.make_event(decided=True).describe()
        assert "DECIDED" not in self.make_event().describe()

    def test_describe_mentions_fd(self):
        event = self.make_event(fd_output={"sigma": {1}})
        assert "fd=" in event.describe()
