"""Tests for :mod:`repro.simulation.configuration` and :mod:`repro.simulation.trace`."""

from __future__ import annotations

import pytest

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.trivial import DecideOwnValue
from repro.models.initial_crash import initial_crash_model
from repro.simulation.configuration import Configuration, PendingMessage
from repro.simulation.executor import execute
from repro.simulation.trace import format_decisions, format_run, format_summary


class TestConfiguration:
    def test_initial(self):
        config = Configuration.initial(DecideOwnValue(), (1, 2), {1: "a", 2: "b"})
        assert config.processes == (1, 2)
        assert config.decisions() == {}
        assert config.in_flight == ()

    def test_apply_step_decides(self):
        config = Configuration.initial(DecideOwnValue(), (1, 2), {1: "a", 2: "b"})
        after = config.apply_step(DecideOwnValue(), 1)
        assert after.decisions() == {1: "a"}
        # the original configuration is untouched
        assert config.decisions() == {}

    def test_apply_step_with_messages(self):
        algorithm = KSetInitialCrash(2, 0)
        config = Configuration.initial(algorithm, (1, 2), {1: "a", 2: "b"})
        after = config.apply_step(algorithm, 1)
        assert len(after.in_flight) == 1
        message = after.in_flight[0]
        assert message.sender == 1 and message.receiver == 2
        final = after.apply_step(algorithm, 2, deliver=(message,))
        assert message not in final.in_flight

    def test_deliver_wrong_message_rejected(self):
        config = Configuration.initial(DecideOwnValue(), (1, 2), {1: "a", 2: "b"})
        ghost = PendingMessage(sender=1, receiver=2, payload="ghost")
        with pytest.raises(ValueError):
            config.apply_step(DecideOwnValue(), 2, deliver=(ghost,))

    def test_state_of_unknown_process(self):
        config = Configuration.initial(DecideOwnValue(), (1,), {1: "a"})
        with pytest.raises(KeyError):
            config.state_of(9)

    def test_hashable_and_equal(self):
        a = Configuration.initial(DecideOwnValue(), (1, 2), {1: "a", 2: "b"})
        b = Configuration.initial(DecideOwnValue(), (1, 2), {1: "a", 2: "b"})
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestTrace:
    @pytest.fixture
    def run(self):
        model = initial_crash_model(4, 1)
        return execute(KSetInitialCrash(4, 1), model, {p: p for p in model.processes})

    def test_format_decisions(self, run):
        text = format_decisions(run)
        assert "p1=" in text and "p4=" in text

    def test_format_summary(self, run):
        text = format_summary(run)
        assert "steps" in text and "decisions:" in text

    def test_format_run_full(self, run):
        text = format_run(run)
        assert text.count("t=") == run.length

    def test_format_run_filtered(self, run):
        text = format_run(run, processes=[1])
        assert " p1:" in text and " p2:" not in text

    def test_format_run_truncates(self, run):
        text = format_run(run, max_events=2)
        assert "omitted" in text

    def test_crashed_process_labelled(self):
        from repro.failure_detectors.base import FailurePattern

        model = initial_crash_model(3, 1)
        pattern = FailurePattern.initially_dead(model.processes, {3})
        run = execute(KSetInitialCrash(3, 1), model, {p: p for p in model.processes},
                      failure_pattern=pattern)
        assert "p3=crashed" in format_decisions(run)
