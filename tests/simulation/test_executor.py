"""Tests for :mod:`repro.simulation.executor`."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import pytest

from repro.algorithms.base import Algorithm, ProcessState, StepOutput, broadcast, send
from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.trivial import DecideOwnValue
from repro.exceptions import (
    AdmissibilityError,
    AlgorithmError,
    ConfigurationError,
    ScheduleExhaustedError,
)
from repro.failure_detectors.base import FailurePattern
from repro.failure_detectors.sigma import SigmaK
from repro.models.asynchronous import asynchronous_model
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import (
    ExecutionSettings,
    all_alive_decided,
    all_correct_decided,
    execute,
    group_decided,
)
from repro.simulation.scheduler import Adversary, RoundRobinScheduler, StepDirective


class EchoOnce(Algorithm):
    """Sends one message to its successor, decides upon first reception."""

    name = "echo-once"

    def initial_state(self, pid, processes, proposal):
        return ProcessState(pid=pid, proposal=proposal)

    def step(self, state, delivered, fd_output=None):
        successor = state.pid % 4 + 1
        if delivered and not state.has_decided:
            return StepOutput(
                state=state.decide(delivered[0].payload),
                messages=(send(successor, f"from-{state.pid}"),),
            )
        return StepOutput(state=state, messages=(send(successor, f"from-{state.pid}"),))


class MisbehavingAlgorithm(Algorithm):
    """Configurable contract violations, used to test executor enforcement."""

    name = "misbehaving"

    def __init__(self, mode: str):
        self.mode = mode

    def initial_state(self, pid, processes, proposal):
        if self.mode == "wrong-initial-pid":
            return ProcessState(pid=pid + 1, proposal=proposal)
        return ProcessState(pid=pid, proposal=proposal)

    def step(self, state, delivered, fd_output=None):
        if self.mode == "wrong-pid":
            return StepOutput(state=ProcessState(pid=state.pid + 1, proposal=state.proposal))
        if self.mode == "change-decision":
            forced = replace(state, decision="first") if not state.has_decided else replace(state, decision="second")
            return StepOutput(state=forced)
        if self.mode == "change-proposal":
            return StepOutput(state=replace(state, proposal="tampered"))
        if self.mode == "foreign-receiver":
            return StepOutput(state=state, messages=(send(99, "boo"),))
        return StepOutput(state=state)


class TestBasicExecution:
    def test_trivial_algorithm_completes(self):
        model = initial_crash_model(3, 0)
        run = execute(DecideOwnValue(), model, {1: "a", 2: "b", 3: "c"})
        assert run.completed and not run.truncated
        assert run.decisions() == {1: "a", 2: "b", 3: "c"}
        assert run.length == 3

    def test_messages_flow(self):
        model = asynchronous_model(4, 0)
        run = execute(EchoOnce(), model, {p: p for p in model.processes})
        assert run.completed
        assert all(value.startswith("from-") for value in run.decisions().values())

    def test_events_are_ordered_and_timed(self):
        model = initial_crash_model(3, 0)
        run = execute(DecideOwnValue(), model, {1: 1, 2: 2, 3: 3})
        times = [event.time for event in run.events]
        assert times == sorted(times)
        assert times[0] == 1


class TestValidation:
    def test_missing_proposal_rejected(self):
        model = initial_crash_model(3, 0)
        with pytest.raises(ConfigurationError):
            execute(DecideOwnValue(), model, {1: "a"})

    def test_extra_proposal_rejected(self):
        model = initial_crash_model(2, 0)
        with pytest.raises(ConfigurationError):
            execute(DecideOwnValue(), model, {1: "a", 2: "b", 9: "c"})

    def test_pattern_must_match_model(self):
        model = initial_crash_model(3, 1)
        pattern = FailurePattern((1, 2), {})
        with pytest.raises(ConfigurationError):
            execute(DecideOwnValue(), model, {1: 1, 2: 2, 3: 3}, failure_pattern=pattern)

    def test_pattern_must_respect_failure_assumption(self):
        model = initial_crash_model(3, 1)
        pattern = FailurePattern((1, 2, 3), {1: 0, 2: 0})
        with pytest.raises(AdmissibilityError):
            execute(DecideOwnValue(), model, {1: 1, 2: 2, 3: 3}, failure_pattern=pattern)

    def test_detector_required_when_algorithm_needs_one(self):
        from repro.algorithms.sigma_kset import SigmaKSetAgreement

        model = asynchronous_model(3, 2)
        with pytest.raises(ConfigurationError):
            execute(SigmaKSetAgreement(3), model, {1: 1, 2: 2, 3: 3})

    def test_wrong_initial_pid_rejected(self):
        model = initial_crash_model(2, 0)
        with pytest.raises(AlgorithmError):
            execute(MisbehavingAlgorithm("wrong-initial-pid"), model, {1: 1, 2: 2})

    def test_wrong_step_pid_rejected(self):
        model = initial_crash_model(2, 0)
        with pytest.raises(AlgorithmError):
            execute(MisbehavingAlgorithm("wrong-pid"), model, {1: 1, 2: 2})

    def test_decision_change_rejected(self):
        class AlwaysP1(Adversary):
            def next_step(self, view):
                return StepDirective(pid=1)

        model = initial_crash_model(2, 0)
        with pytest.raises(AlgorithmError):
            execute(
                MisbehavingAlgorithm("change-decision"),
                model,
                {1: 1, 2: 2},
                adversary=AlwaysP1(),
                settings=ExecutionSettings(max_steps=10, stop_condition=lambda s, d, c: False),
            )

    def test_proposal_change_rejected(self):
        model = initial_crash_model(2, 0)
        with pytest.raises(AlgorithmError):
            execute(MisbehavingAlgorithm("change-proposal"), model, {1: 1, 2: 2},
                    settings=ExecutionSettings(max_steps=5, stop_condition=lambda s, d, c: False))

    def test_foreign_receiver_rejected(self):
        model = initial_crash_model(2, 0)
        with pytest.raises(AlgorithmError):
            execute(MisbehavingAlgorithm("foreign-receiver"), model, {1: 1, 2: 2},
                    settings=ExecutionSettings(max_steps=5, stop_condition=lambda s, d, c: False))


class TestCrashes:
    def test_initially_dead_never_step(self):
        model = initial_crash_model(4, 2)
        pattern = FailurePattern.initially_dead(model.processes, {3, 4})
        run = execute(DecideOwnValue(), model, {p: p for p in model.processes}, failure_pattern=pattern)
        assert run.completed
        assert {event.pid for event in run.events} == {1, 2}

    def test_crash_during_run_stops_steps(self):
        model = asynchronous_model(4, 1)
        pattern = FailurePattern(model.processes, {2: 3})
        run = execute(
            EchoOnce(), model, {p: p for p in model.processes}, failure_pattern=pattern,
            settings=ExecutionSettings(max_steps=100),
        )
        assert all(event.time < 3 for event in run.events if event.pid == 2)

    def test_adversary_cannot_schedule_crashed_process(self):
        class BadAdversary(Adversary):
            def next_step(self, view):
                return StepDirective(pid=1)

        model = asynchronous_model(2, 1)
        pattern = FailurePattern(model.processes, {1: 0})
        with pytest.raises(AdmissibilityError):
            execute(DecideOwnValue(), model, {1: 1, 2: 2}, adversary=BadAdversary(),
                    failure_pattern=pattern)


class TestStopConditionsAndBudget:
    def test_group_stop_condition(self):
        model = initial_crash_model(4, 0)
        run = execute(
            DecideOwnValue(), model, {p: p for p in model.processes},
            settings=ExecutionSettings(stop_condition=group_decided({1, 2})),
        )
        assert run.completed
        assert {1, 2} <= run.decided_processes()

    def test_all_alive_decided_condition(self):
        states = {1: ProcessState(pid=1, proposal=1).decide(1)}
        assert all_alive_decided(states, frozenset({1}), frozenset({1}))
        undecided = {1: ProcessState(pid=1, proposal=1)}
        assert not all_alive_decided(undecided, frozenset(), frozenset({1}))

    def test_all_correct_decided_condition(self):
        assert all_correct_decided({}, frozenset({1, 2}), frozenset({1}))
        assert not all_correct_decided({}, frozenset(), frozenset({1}))

    def test_truncation_flag(self):
        model = initial_crash_model(4, 2)
        algorithm = KSetInitialCrash(4, 2)
        # Isolate p1 alone: it waits for one more stage-1 message forever.
        from repro.simulation.adversary import IsolationAdversary

        run = execute(
            algorithm, model, {p: p for p in model.processes},
            adversary=IsolationAdversary({1}),
            settings=ExecutionSettings(max_steps=50),
        )
        assert run.truncated and not run.completed

    def test_raise_on_exhaustion(self):
        model = initial_crash_model(4, 2)
        algorithm = KSetInitialCrash(4, 2)
        from repro.simulation.adversary import IsolationAdversary

        with pytest.raises(ScheduleExhaustedError) as excinfo:
            execute(
                algorithm, model, {p: p for p in model.processes},
                adversary=IsolationAdversary({1}),
                settings=ExecutionSettings(max_steps=20, raise_on_exhaustion=True),
            )
        assert excinfo.value.partial_run is not None
        assert excinfo.value.partial_run.length == 20


class TestFailureDetectorQueries:
    def test_history_recorded(self):
        detector = SigmaK(1)
        model = asynchronous_model(3, 2, failure_detector=detector)
        from repro.algorithms.sigma_kset import SigmaKSetAgreement

        run = execute(SigmaKSetAgreement(3), model, {p: p for p in model.processes})
        assert run.completed
        assert len(run.fd_history) == run.length
        assert detector.check_history(run.fd_history, run.failure_pattern) == []

    def test_detector_not_queried_without_one(self):
        model = initial_crash_model(3, 0)
        run = execute(DecideOwnValue(), model, {p: p for p in model.processes})
        assert len(run.fd_history) == 0
        assert all(event.fd_output is None for event in run.events)
