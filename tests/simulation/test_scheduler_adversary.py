"""Tests for schedulers and the proof-specific adversaries."""

from __future__ import annotations

import pytest

from repro.algorithms.base import ProcessState
from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.trivial import DecideOwnValue
from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.simulation.adversary import (
    IsolationAdversary,
    PartitioningAdversary,
    SilenceAdversary,
)
from repro.simulation.executor import ExecutionSettings, execute, group_decided
from repro.simulation.message import Message
from repro.simulation.scheduler import (
    AdversaryView,
    RandomScheduler,
    RoundRobinScheduler,
    StepDirective,
)


def make_view(time=1, pending=None, alive=(1, 2, 3), decided=(), states=None):
    alive = frozenset(alive)
    processes = tuple(sorted(alive | frozenset(decided)))
    states = states or {
        pid: ProcessState(pid=pid, proposal=pid) for pid in processes
    }
    return AdversaryView(
        time=time,
        processes=processes,
        states=states,
        pending=pending or {},
        alive=alive,
        correct=alive,
        decided=frozenset(decided),
    )


class TestRoundRobin:
    def test_cycles_in_id_order(self):
        scheduler = RoundRobinScheduler()
        order = [scheduler.next_step(make_view()).pid for _ in range(6)]
        assert order == [1, 2, 3, 1, 2, 3]

    def test_skips_decided(self):
        scheduler = RoundRobinScheduler()
        view = make_view(decided=(2,))
        order = [scheduler.next_step(view).pid for _ in range(4)]
        assert 2 not in order

    def test_returns_none_when_everyone_decided(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.next_step(make_view(alive=(1, 2), decided=(1, 2))) is None

    def test_delivers_all_pending(self):
        message = Message(1, 2, 1, "x", 0)
        view = make_view(pending={1: (message,)})
        directive = RoundRobinScheduler().next_step(view)
        assert directive == StepDirective(pid=1, deliver=(message.msg_id,))


class TestRandomScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            RandomScheduler(delivery_bias=2.0)
        with pytest.raises(ValueError):
            RandomScheduler(max_delay=-1)

    def test_deterministic_for_seed(self):
        view = make_view()
        a = [RandomScheduler(7).next_step(make_view()).pid for _ in range(5)]
        b = [RandomScheduler(7).next_step(make_view()).pid for _ in range(5)]
        assert a == b

    def test_overdue_messages_always_delivered(self):
        old = Message(1, 2, 1, "x", sent_at=0)
        scheduler = RandomScheduler(0, delivery_bias=0.0, max_delay=5)
        view = make_view(time=10, pending={1: (old,)}, alive=(1,))
        directive = scheduler.next_step(view)
        assert old.msg_id in directive.deliver

    def test_fresh_messages_can_be_withheld(self):
        fresh = Message(1, 2, 1, "x", sent_at=9)
        scheduler = RandomScheduler(0, delivery_bias=0.0, max_delay=5)
        view = make_view(time=10, pending={1: (fresh,)}, alive=(1,))
        assert scheduler.next_step(view).deliver == ()

    def test_none_when_all_decided(self):
        assert RandomScheduler(1).next_step(make_view(alive=(1,), decided=(1,))) is None


class TestPartitioningAdversary:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitioningAdversary([[1], []])
        with pytest.raises(ConfigurationError):
            PartitioningAdversary([[1, 2], [2]])

    def test_blocks_cross_block_messages(self):
        adversary = PartitioningAdversary([[1, 2], [3]], release_when_all_decided=False)
        cross = Message(1, 3, 1, "x", 0)
        intra = Message(2, 2, 1, "x", 0)
        view = make_view(pending={1: (cross, intra)})
        directive = adversary.next_step(view)
        assert directive.pid == 1
        assert directive.deliver == (intra.msg_id,)

    def test_release_after_everyone_decided(self):
        adversary = PartitioningAdversary([[1, 2], [3]])
        cross = Message(1, 3, 1, "x", 0)
        # p1 still undecided -> blocked
        view = make_view(pending={1: (cross,)}, decided=(2, 3))
        assert adversary.next_step(view).deliver == ()
        # everyone alive decided -> released (though nobody steps any more,
        # the blocking predicate itself must lift)
        done = make_view(pending={1: (cross,)}, alive=(1, 2, 3), decided=(1, 2, 3))
        assert adversary._blocked(cross, done) is False

    def test_uncovered_processes_act_as_singletons(self):
        adversary = PartitioningAdversary([[1, 2]], release_when_all_decided=False)
        to_uncovered = Message(1, 1, 3, "x", 0)
        view = make_view(pending={3: (to_uncovered,)})
        # step p3: its only pending message comes from another block -> blocked
        directive = None
        while directive is None or directive.pid != 3:
            directive = adversary.next_step(view)
        assert directive.deliver == ()


class TestIsolationAdversary:
    def test_only_active_processes_step(self):
        adversary = IsolationAdversary([2, 3])
        pids = {adversary.next_step(make_view()).pid for _ in range(4)}
        assert pids <= {2, 3}

    def test_requires_nonempty(self):
        with pytest.raises(ConfigurationError):
            IsolationAdversary([])

    def test_blocks_messages_from_outside(self):
        adversary = IsolationAdversary([2, 3])
        outside = Message(1, 1, 2, "x", 0)
        inside = Message(2, 3, 2, "y", 0)
        view = make_view(pending={2: (outside, inside)})
        directive = adversary.next_step(view)
        assert directive.pid in {2, 3}
        if directive.pid == 2:
            assert directive.deliver == (inside.msg_id,)


class TestSilenceAdversary:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SilenceAdversary([], [1])
        with pytest.raises(ConfigurationError):
            SilenceAdversary([1], [1])

    def test_blocks_only_the_silenced_direction(self):
        adversary = SilenceAdversary([1], [3], release_when_listeners_decided=False)
        blocked = Message(1, 1, 3, "x", 0)
        allowed = Message(2, 2, 3, "y", 0)
        reverse = Message(3, 3, 1, "z", 0)
        view = make_view(pending={3: (blocked, allowed), 1: (reverse,)})
        assert adversary._blocked(blocked, view) is True
        assert adversary._blocked(allowed, view) is False
        assert adversary._blocked(reverse, view) is False

    def test_release_when_listeners_decided(self):
        adversary = SilenceAdversary([1], [3])
        blocked = Message(1, 1, 3, "x", 0)
        view = make_view(decided=(3,), pending={3: (blocked,)})
        assert adversary._blocked(blocked, view) is False


class TestAdversariesEndToEnd:
    def test_partitioning_forces_extra_decisions(self):
        n, f = 6, 3
        model = initial_crash_model(n, f)
        algorithm = KSetInitialCrash(n, f)
        blocks = [frozenset({1, 2, 3}), frozenset({4, 5, 6})]
        run = execute(
            algorithm,
            model,
            {p: p for p in model.processes},
            adversary=PartitioningAdversary(blocks),
        )
        assert run.completed
        assert len(run.distinct_decisions()) == 2

    def test_isolation_lets_one_group_decide_alone(self):
        n, f = 6, 3
        model = initial_crash_model(n, f)
        algorithm = KSetInitialCrash(n, f)
        group = frozenset({4, 5, 6})
        run = execute(
            algorithm,
            model,
            {p: p for p in model.processes},
            adversary=IsolationAdversary(group),
            settings=ExecutionSettings(stop_condition=group_decided(group)),
        )
        assert run.completed
        assert run.decided_processes() == group
        for pid in group:
            assert run.received_before_decision(pid) <= group

    def test_silence_keeps_listeners_ignorant(self):
        n, f = 6, 3
        model = initial_crash_model(n, f)
        algorithm = KSetInitialCrash(n, f)
        silenced, listeners = frozenset({1, 2, 3}), frozenset({4, 5, 6})
        run = execute(
            algorithm,
            model,
            {p: p for p in model.processes},
            adversary=SilenceAdversary(silenced, listeners),
        )
        assert run.completed
        for pid in listeners:
            assert run.received_before_decision(pid).isdisjoint(silenced)
