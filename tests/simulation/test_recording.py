"""Recording policies and the lazy-view contract of the executor.

The recording policy must never change *what happens* — only what the
returned :class:`Run` retains.  The property tests below randomise over
parameter points, crash sets and schedules (the same strategy the
executor-invariant tests use) and assert that trimmed runs report exactly
the same verdict-relevant facts as full ones.  The lazy-view tests pin
the loud-failure contract: a view (or anything it exposes lazily) used
after its step raises :class:`repro.exceptions.StaleViewError`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.trivial import DecideOwnValue
from repro.exceptions import StaleViewError, TraceUnavailableError
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import ExecutionSettings, execute
from repro.simulation.recording import RECORDING_POLICY_NAMES, RecordingPolicy
from repro.simulation.scheduler import (
    Adversary,
    RandomScheduler,
    RoundRobinScheduler,
    StepDirective,
)


@st.composite
def executions(draw):
    """A random initial-crash execution: point, dead set and schedule."""
    n = draw(st.integers(min_value=3, max_value=7))
    f = draw(st.integers(min_value=1, max_value=n - 1))
    dead_size = draw(st.integers(min_value=0, max_value=f))
    dead = frozenset(
        draw(
            st.lists(
                st.integers(min_value=1, max_value=n),
                min_size=dead_size, max_size=dead_size, unique=True,
            )
        )
    )
    seed = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=2**32 - 1)))
    return n, f, dead, seed


def run_execution(n, f, dead, seed, *, recording, max_steps=4_000):
    model = initial_crash_model(n, f)
    adversary = RoundRobinScheduler() if seed is None else RandomScheduler(seed, max_delay=10)
    return execute(
        KSetInitialCrash(n, f),
        model,
        {p: p for p in model.processes},
        adversary=adversary,
        failure_pattern=FailurePattern.initially_dead(model.processes, dead),
        settings=ExecutionSettings(max_steps=max_steps, recording=recording),
    )


class TestPolicyEquivalence:
    @given(executions())
    def test_trimmed_runs_report_identical_facts(self, case):
        """DECISIONS_ONLY/VERDICT_ONLY agree with FULL on everything a verdict needs."""
        full = run_execution(*case, recording=RecordingPolicy.FULL)
        for policy in (RecordingPolicy.DECISIONS_ONLY, RecordingPolicy.VERDICT_ONLY):
            trimmed = run_execution(*case, recording=policy)
            assert trimmed.completed == full.completed
            assert trimmed.truncated == full.truncated
            assert trimmed.decisions() == full.decisions()
            assert trimmed.distinct_decisions() == full.distinct_decisions()
            assert trimmed.decided_processes() == full.decided_processes()
            assert trimmed.length == full.length
            assert trimmed.messages_sent() == full.messages_sent()
            assert trimmed.messages_delivered() == full.messages_delivered()
            assert trimmed.recording is policy

    @given(executions())
    @settings(max_examples=10)
    def test_decision_times_match_between_full_and_decisions_only(self, case):
        full = run_execution(*case, recording=RecordingPolicy.FULL)
        decisions_only = run_execution(*case, recording=RecordingPolicy.DECISIONS_ONLY)
        assert decisions_only.decision_times() == full.decision_times()
        assert decisions_only.last_decision_time() == full.last_decision_time()

    def test_full_directly_recorded_maps_agree_with_the_event_stream(self):
        # The executor records decisions incrementally even under FULL;
        # they must coincide with what replaying the events yields.
        model = initial_crash_model(5, 2)
        run = execute(KSetInitialCrash(5, 2), model, {p: p for p in model.processes})
        from_events = {}
        times = {}
        for event in run.events:
            if event.newly_decided:
                from_events[event.pid] = event.state_after.decision
                times.setdefault(event.pid, event.time)
        assert run.decisions() == from_events
        assert run.decision_times() == times
        assert run.messages_sent() == sum(len(e.sent) for e in run.events)
        assert run.messages_delivered() == sum(len(e.delivered) for e in run.events)


class TestTrimmedRunSurface:
    @pytest.fixture(scope="class")
    def runs(self):
        return {
            policy: run_execution(
                6, 3, frozenset({6}), None, recording=RecordingPolicy(policy)
            )
            for policy in RECORDING_POLICY_NAMES
        }

    def test_events_skipped_on_trimmed_runs(self, runs):
        assert runs["full"].events
        assert runs["decisions-only"].events == ()
        assert runs["verdict-only"].events == ()

    def test_fd_history_skipped_on_trimmed_runs(self):
        from repro.algorithms.sigma_kset import SigmaKSetAgreement
        from repro.failure_detectors.sigma import SigmaK
        from repro.models.asynchronous import asynchronous_model

        model = asynchronous_model(3, 2, failure_detector=SigmaK(1))
        full = execute(SigmaKSetAgreement(3), model, {1: 1, 2: 2, 3: 3})
        trimmed = execute(
            SigmaKSetAgreement(3), model, {1: 1, 2: 2, 3: 3},
            settings=ExecutionSettings(recording=RecordingPolicy.VERDICT_ONLY),
        )
        assert len(full.fd_history) == full.length
        assert len(trimmed.fd_history) == 0
        assert trimmed.decisions() == full.decisions()

    def test_event_queries_raise_on_trimmed_runs(self, runs):
        for policy in ("decisions-only", "verdict-only"):
            run = runs[policy]
            with pytest.raises(TraceUnavailableError):
                run.steps_of(1)
            with pytest.raises(TraceUnavailableError):
                run.state_sequence(1)
            with pytest.raises(TraceUnavailableError):
                run.received_before_decision(1)

    def test_decision_times_raise_only_on_verdict_only(self, runs):
        assert runs["decisions-only"].decision_times()
        with pytest.raises(TraceUnavailableError):
            runs["verdict-only"].decision_times()

    def test_undelivered_raise_only_on_verdict_only(self, runs):
        assert runs["decisions-only"].undelivered_to(6) == runs["full"].undelivered_to(6)
        with pytest.raises(TraceUnavailableError):
            runs["verdict-only"].undelivered_to(6)

    def test_admissibility_check_refuses_trimmed_runs(self, runs):
        model = initial_crash_model(6, 3)
        assert model.is_admissible(runs["full"])
        for policy in ("decisions-only", "verdict-only"):
            with pytest.raises(TraceUnavailableError):
                model.admissibility_violations(runs[policy])

    def test_summary_works_under_every_policy(self, runs):
        summaries = {policy: run.summary() for policy, run in runs.items()}
        assert summaries["decisions-only"] == summaries["full"]
        assert summaries["verdict-only"] == summaries["full"]

    def test_settings_accept_policy_names_via_coerce(self):
        assert RecordingPolicy.coerce("verdict-only") is RecordingPolicy.VERDICT_ONLY
        assert RecordingPolicy.coerce(RecordingPolicy.FULL) is RecordingPolicy.FULL
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            RecordingPolicy.coerce("everything")


class ViewStashingAdversary(Adversary):
    """Round-robin-ish adversary that retains views across steps."""

    def __init__(self):
        self.stashed = []
        self.stale_error_at_step = None

    def next_step(self, view):
        if self.stashed and self.stale_error_at_step is None:
            try:
                self.stashed[-1].undecided_alive()
            except StaleViewError:
                self.stale_error_at_step = view.time
        self.stashed.append(view)
        candidates = view.undecided_alive()
        if not candidates:
            return None
        pid = candidates[0]
        return StepDirective(pid=pid, deliver=tuple(m.msg_id for m in view.pending_for(pid)))


class TestLazyViewExpiry:
    def test_view_accessed_after_its_step_raises(self):
        adversary = ViewStashingAdversary()
        model = initial_crash_model(3, 0)
        run = execute(DecideOwnValue(), model, {1: "a", 2: "b", 3: "c"}, adversary=adversary)
        assert run.completed
        # the previous step's view raised as soon as step 2 touched it
        assert adversary.stale_error_at_step == 2
        # and every retained view is dead after the run, attribute by attribute
        for view in adversary.stashed:
            for access in (
                lambda: view.time,
                lambda: view.states,
                lambda: view.pending,
                lambda: view.alive,
                lambda: view.correct,
                lambda: view.decided,
                lambda: view.processes,
                lambda: view.undecided_alive(),
                lambda: view.pending_for(1),
            ):
                with pytest.raises(StaleViewError):
                    access()

    def test_lazily_exposed_mappings_expire_with_their_view(self):
        captured = {}

        class MappingStasher(Adversary):
            def next_step(self, view):
                if "states" not in captured:
                    captured["states"] = view.states
                    captured["pending"] = view.pending
                    # live reads work while the view is current
                    assert captured["states"][1] is not None
                    assert list(captured["pending"][1]) == list(view.pending_for(1))
                candidates = view.undecided_alive()
                if not candidates:
                    return None
                return StepDirective(pid=candidates[0])

        model = initial_crash_model(2, 0)
        execute(DecideOwnValue(), model, {1: 1, 2: 2}, adversary=MappingStasher())
        with pytest.raises(StaleViewError):
            captured["states"][1]
        with pytest.raises(StaleViewError):
            len(captured["states"])
        with pytest.raises(StaleViewError):
            captured["pending"][1]
        with pytest.raises(StaleViewError):
            list(captured["pending"])

    def test_snapshot_view_still_constructible_and_cached(self):
        from repro.algorithms.base import ProcessState
        from repro.simulation.scheduler import AdversaryView

        view = AdversaryView(
            time=1,
            processes=(1, 2, 3),
            states={p: ProcessState(pid=p, proposal=p) for p in (1, 2, 3)},
            pending={},
            alive=frozenset({1, 2, 3}),
            correct=frozenset({1, 2, 3}),
            decided=frozenset({2}),
        )
        first = view.undecided_alive()
        assert first == (1, 3)
        assert view.undecided_alive() is first  # cached tuple, no re-sort


class TestIncrementalStopTracking:
    def test_builtin_conditions_advertise_required_deciders(self):
        from repro.simulation.executor import (
            all_alive_decided,
            all_correct_decided,
            group_decided,
        )

        correct = frozenset({1, 2, 3})
        assert all_correct_decided.required_deciders(correct) == correct
        assert all_alive_decided.required_deciders(correct) == correct
        assert group_decided({2, 9}).required_deciders(correct) == frozenset({2})

    def test_custom_condition_equals_fast_path(self):
        # A plain lambda with the same semantics as group_decided must
        # produce the identical run through the per-step fallback.
        from repro.simulation.executor import group_decided

        model = initial_crash_model(4, 0)
        members = frozenset({1, 2})
        fast = execute(
            DecideOwnValue(), model, {p: p for p in model.processes},
            settings=ExecutionSettings(stop_condition=group_decided(members)),
        )
        slow = execute(
            DecideOwnValue(), model, {p: p for p in model.processes},
            settings=ExecutionSettings(
                stop_condition=lambda s, d, c: (members & c).issubset(d)
            ),
        )
        assert fast.decisions() == slow.decisions()
        assert fast.length == slow.length
        assert fast.completed == slow.completed

    def test_custom_condition_still_called_per_step(self):
        calls = []

        def condition(states, decided, correct):
            calls.append((len(decided), frozenset(decided)))
            return False

        model = initial_crash_model(2, 0)
        run = execute(
            DecideOwnValue(), model, {1: 1, 2: 2},
            settings=ExecutionSettings(max_steps=5, stop_condition=condition),
        )
        assert not run.completed
        assert len(calls) == run.length + 1  # once before the loop + once per step
        assert isinstance(calls[-1][1], frozenset)
