"""Telemetry through the whole campaign stack.

The acceptance properties of the unified telemetry layer:

* the **deterministic metric fields** (counts, integer sums, bins) are
  bit-identical across all recording policies and all campaign
  backends — the telemetry mirror of the recording-plumbing pins;
* a traced **process-backend** campaign collects spans from the worker
  processes (worker pids, not the parent's) under the correct campaign
  correlation id, shipped back on the scenario events;
* **sampling** is a deterministic function of scenario identity, so the
  same scenarios are traced whatever the backend;
* with **telemetry off** the executor records nothing (and the ambient
  tracer is absent), which is the zero-overhead default;
* the exported trace validates and summarises through
  ``python -m repro.telemetry.report``, joining the provenance journal.
"""

from __future__ import annotations

import os

import pytest

from repro.campaign import CampaignRunner, theorem8_specs
from repro.simulation.recording import RECORDING_POLICY_NAMES
from repro.store import CachingRunner, MemoryResultStore
from repro.telemetry import (
    TelemetryConfig,
    TelemetrySession,
    Tracer,
    WorkerTelemetry,
    activated,
    current_tracer,
    read_trace,
)
from repro.telemetry.report import main as report_main

PINNED_GRID = [4]
PINNED_KWARGS = {"seeds": (1,), "max_steps": 4_000}
BACKENDS = ("serial", "chunked", "process")


def _run_with_telemetry(recording: str, backend: str, **config):
    session = TelemetrySession(TelemetryConfig(**config))
    runner = CachingRunner(
        MemoryResultStore(),
        CampaignRunner(backend=backend, workers=2, chunk_size=5),
        telemetry=session,
    )
    specs = theorem8_specs(PINNED_GRID, recording=recording, **PINNED_KWARGS)
    result = runner.run(specs)
    return session, result


class TestDeterministicMetrics:
    def test_metrics_identical_across_policies_and_backends(self):
        # The ResourceUsage design pattern, applied to the registry: the
        # deterministic snapshot must be equal with ``==`` across the
        # full policy x backend matrix.  Wall-clock metrics are excluded
        # by deterministic_snapshot itself.
        snapshots = {}
        verdicts = {}
        for recording in RECORDING_POLICY_NAMES:
            for backend in BACKENDS:
                session, result = _run_with_telemetry(recording, backend)
                snapshots[(recording, backend)] = session.deterministic_snapshot()
                verdicts[(recording, backend)] = result.verdict_counts()
        baseline = snapshots[("full", "serial")]
        assert baseline["scenarios_completed"]["value"] > 0
        for key, snapshot in snapshots.items():
            assert snapshot == baseline, f"diverged: {key}"
        baseline_verdicts = verdicts[("full", "serial")]
        assert all(v == baseline_verdicts for v in verdicts.values())

    def test_deterministic_snapshot_excludes_wall_clock(self):
        session, _ = _run_with_telemetry("full", "serial")
        det = session.deterministic_snapshot()
        assert "scenario_seconds" not in det
        assert "queue_depth" not in det
        full = session.metrics.snapshot()
        assert "scenario_seconds" in full


class TestWorkerSpans:
    def test_process_campaign_collects_worker_side_spans(self):
        session, result = _run_with_telemetry("full", "process")
        spans = session.spans()
        assert spans, "traced campaign produced no spans"
        campaign = session.campaign
        assert campaign == "%s" % session.campaign
        assert {s.trace_id for s in spans} == {campaign}
        if result.workers > 1:
            worker_pids = {s.pid for s in spans if s.name == "scenario"}
            assert os.getpid() not in worker_pids

    def test_span_hierarchy_covers_the_stack(self):
        session, _ = _run_with_telemetry("full", "serial")
        names = {s.name for s in session.spans()}
        assert {"scenario", "execute", "decision"} <= names
        assert any(n.startswith("phase:") for n in names)

    def test_execute_spans_carry_deterministic_counters(self):
        session, _ = _run_with_telemetry("full", "serial")
        executes = [s for s in session.spans() if s.name == "execute"]
        det = session.deterministic_snapshot()
        assert sum(s.attrs["steps"] for s in executes) == \
            det["steps_total"]["value"]
        assert sum(s.attrs["messages_sent"] for s in executes) == \
            det["messages_sent_total"]["value"]

    def test_phase_capture_can_be_disabled(self):
        session, _ = _run_with_telemetry(
            "full", "serial", capture_phases=False)
        names = {s.name for s in session.spans()}
        assert "execute" in names
        assert not any(n.startswith("phase:") for n in names)


class TestSampling:
    def test_stride_derives_from_threshold(self):
        session = TelemetrySession(TelemetryConfig(sample_threshold=10))
        session.begin("c" * 12, total=44)
        assert session.worker_telemetry().stride == 5  # ceil(44/10)

    def test_zero_threshold_traces_everything(self):
        session = TelemetrySession(TelemetryConfig(sample_threshold=0))
        session.begin("c" * 12, total=10_000)
        assert session.worker_telemetry().stride == 1

    def test_sampled_scenarios_identical_across_backends(self):
        labels = {}
        for backend in BACKENDS:
            session, _ = _run_with_telemetry(
                "verdict-only", backend, sample_threshold=10)
            labels[backend] = sorted(
                s.attrs["label"] for s in session.spans()
                if s.name == "scenario"
            )
        assert labels["serial"] == labels["chunked"] == labels["process"]
        total = len(theorem8_specs(PINNED_GRID, **PINNED_KWARGS))
        assert 0 < len(labels["serial"]) < total

    def test_sampling_is_a_pure_function_of_identity(self):
        specs = theorem8_specs(PINNED_GRID, **PINNED_KWARGS)
        telem = WorkerTelemetry(campaign="c" * 12, stride=5)
        first = [telem.samples(spec) for spec in specs]
        assert first == [telem.samples(spec) for spec in specs]
        assert any(first) and not all(first)


class TestOffByDefault:
    def test_no_ambient_tracer_without_telemetry(self):
        assert current_tracer() is None
        runner = CampaignRunner()
        runner.run(theorem8_specs(PINNED_GRID, **PINNED_KWARGS)[:5])
        assert current_tracer() is None

    def test_execute_records_nothing_without_a_tracer(self):
        from repro.campaign.scenarios import execute_theorem8_solvable
        from repro.campaign.spec import ScenarioSpec

        spec = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=2)
        run, report = execute_theorem8_solvable(spec)
        assert run.completed  # behaviour unchanged, nothing traced

    def test_execute_is_traced_under_an_ambient_tracer(self):
        from repro.campaign.scenarios import execute_theorem8_solvable
        from repro.campaign.spec import ScenarioSpec

        spec = ScenarioSpec(kind="theorem8-solvable", n=4, f=1, k=2)
        tracer = Tracer(trace_id="t", capture_phases=True)
        with activated(tracer):
            execute_theorem8_solvable(spec)
        names = [r.name for r in tracer.records()]
        assert "execute" in names
        assert "decision" in names
        assert "phase:transition" in names

    def test_runner_ignores_telemetry_without_a_progress_sink(self):
        # Spans travel on ScenarioEvents; without a progress sink there
        # is no event stream, so telemetry must be dropped, not crash.
        runner = CampaignRunner()
        telem = WorkerTelemetry(campaign="c" * 12)
        result = runner.run(
            theorem8_specs(PINNED_GRID, **PINNED_KWARGS)[:5], telemetry=telem)
        assert len(result.outcomes) == 5


class TestCacheInteraction:
    def test_cached_rerun_reports_full_hit_rate(self):
        store = MemoryResultStore()
        specs = theorem8_specs(PINNED_GRID, **PINNED_KWARGS)
        CachingRunner(store).run(specs)

        session = TelemetrySession(TelemetryConfig())
        CachingRunner(store, telemetry=session).run(specs)
        assert session.cache_hit_rate() == 1.0
        det = session.deterministic_snapshot()
        assert det["scenarios_cached"]["value"] == len(specs)
        # Nothing executed -> no scenario/execute spans from workers.
        assert not [s for s in session.spans() if s.name == "execute"]


class TestEndToEndExport:
    def test_trace_and_report_roundtrip_with_journal(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.jsonl"
        journal_path = tmp_path / "journal.jsonl"
        session = TelemetrySession(TelemetryConfig(
            trace_path=trace_path, metrics_path=metrics_path))
        specs = theorem8_specs(PINNED_GRID, **PINNED_KWARGS)
        with CachingRunner(
            MemoryResultStore(),
            CampaignRunner(backend="process", workers=2, chunk_size=5),
            journal=journal_path,
            telemetry=session,
        ) as runner:
            runner.run(specs)
            campaign = runner.last_campaign_id

        summary = session.finish()  # idempotent: run() already finished it
        assert summary["trace_path"] == str(trace_path)

        events = read_trace(trace_path)
        assert events
        campaign_ids = {e["args"]["trace_id"] for e in events}
        assert campaign_ids == {campaign}

        assert report_main([
            str(trace_path),
            "--metrics", str(metrics_path),
            "--journal", str(journal_path),
        ]) == 0

    def test_finish_is_idempotent_per_begin(self, tmp_path):
        metrics_path = tmp_path / "metrics.jsonl"
        session = TelemetrySession(TelemetryConfig(metrics_path=metrics_path))
        with CachingRunner(
            MemoryResultStore(), telemetry=session
        ) as runner:
            runner.run(theorem8_specs(PINNED_GRID, **PINNED_KWARGS)[:5])
        first = session.finish()
        second = session.finish()
        assert first is second
        from repro.telemetry import read_metrics
        assert len(read_metrics(metrics_path)) == 1
