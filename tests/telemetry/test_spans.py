"""Span tracer semantics: hierarchy, ambient activation, phase laps."""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.telemetry import (
    PhaseAccumulator,
    SpanRecord,
    Tracer,
    activate,
    activated,
    current_tracer,
    deactivate,
    span,
)


class TestHierarchy:
    def test_nested_spans_record_parent_child_ids(self):
        tracer = Tracer(trace_id="t1")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert by_name["outer"].parent_id is None

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer(trace_id="t1")
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["a"].parent_id == by_name["b"].parent_id
        assert by_name["a"].parent_id == by_name["root"].span_id

    def test_span_ids_are_unique_within_a_tracer(self):
        tracer = Tracer()
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        ids = [r.span_id for r in tracer.records()]
        assert len(set(ids)) == len(ids)

    def test_attrs_are_recorded(self):
        tracer = Tracer()
        with tracer.span("s", n=4, label="demo"):
            pass
        (record,) = tracer.records()
        assert record.attrs == {"n": 4, "label": "demo"}

    def test_exception_inside_span_still_records_it(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert [r.name for r in tracer.records()] == ["doomed"]

    def test_ending_an_ancestor_discards_abandoned_children(self):
        # The executor does not wrap its loop in try/finally; if it
        # raises, its open "execute" span is abandoned and must be
        # discarded when the scenario root closes — not mis-parent later
        # spans.
        tracer = Tracer()
        root = tracer.start_span("scenario")
        tracer.start_span("execute")  # abandoned on purpose
        tracer.end_span(root)
        assert [r.name for r in tracer.records()] == ["scenario"]
        with tracer.span("next"):
            pass
        assert tracer.records()[-1].parent_id is None

    def test_per_thread_stacks_do_not_interleave(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def traced(name: str) -> None:
            barrier.wait()
            with tracer.span(name):
                with tracer.span(f"{name}-child"):
                    pass

        threads = [
            threading.Thread(target=traced, args=(n,)) for n in ("t1", "t2")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        by_name = {r.name: r for r in tracer.records()}
        assert by_name["t1-child"].parent_id == by_name["t1"].span_id
        assert by_name["t2-child"].parent_id == by_name["t2"].span_id


class TestAmbient:
    def test_no_tracer_by_default(self):
        assert current_tracer() is None

    def test_activate_and_deactivate(self):
        tracer = Tracer()
        activate(tracer)
        try:
            assert current_tracer() is tracer
        finally:
            deactivate()
        assert current_tracer() is None

    def test_activated_restores_the_previous_tracer(self):
        outer, inner = Tracer(), Tracer()
        with activated(outer):
            with activated(inner):
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is None

    def test_module_span_is_a_noop_without_a_tracer(self):
        with span("anything", key="value"):
            pass  # must not raise, must not record anywhere

    def test_module_span_records_on_the_ambient_tracer(self):
        tracer = Tracer()
        with activated(tracer):
            with span("ambient", k=3):
                pass
        (record,) = tracer.records()
        assert record.name == "ambient"
        assert record.attrs == {"k": 3}

    def test_ambient_tracer_is_thread_local(self):
        tracer = Tracer()
        seen = []

        def other_thread() -> None:
            seen.append(current_tracer())

        with activated(tracer):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen == [None]


class TestPhases:
    def test_laps_accumulate_per_phase(self):
        acc = PhaseAccumulator()
        for _ in range(3):
            acc.lap("a")
            acc.lap("b")
        totals = dict((name, laps) for name, _, laps in acc.totals())
        assert totals == {"a": 3, "b": 3}
        assert all(seconds >= 0.0 for _, seconds, _ in acc.totals())

    def test_finish_with_phases_emits_child_spans(self):
        tracer = Tracer(trace_id="t", capture_phases=True)
        opened = tracer.start_span("execute")
        acc = tracer.phase_accumulator()
        acc.lap("scheduling")
        acc.lap("delivery")
        record = tracer.finish_with_phases(opened, acc, steps=1)
        names = [r.name for r in tracer.records()]
        assert names[0] == "execute"
        assert set(names[1:]) == {"phase:scheduling", "phase:delivery"}
        for child in tracer.records()[1:]:
            assert child.parent_id == record.span_id
            assert child.attrs["laps"] == 1

    def test_phase_capture_off_yields_no_accumulator(self):
        tracer = Tracer(capture_phases=False)
        assert tracer.phase_accumulator() is None
        opened = tracer.start_span("execute")
        tracer.finish_with_phases(opened, None, steps=0)
        assert [r.name for r in tracer.records()] == ["execute"]


class TestRecords:
    def test_span_records_are_picklable(self):
        tracer = Tracer(trace_id="t")
        with tracer.span("s", n=4):
            pass
        (record,) = tracer.records()
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record

    def test_drain_empties_the_tracer(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.records() == ()
        assert tracer.drain() == ()

    def test_durations_are_non_negative(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        for record in tracer.records():
            assert isinstance(record, SpanRecord)
            assert record.duration >= 0.0
