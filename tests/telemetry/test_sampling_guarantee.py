"""The never-empty sampling guarantee.

The stride filter keeps a scenario iff ``derived_seed() % stride == 0``
— a property no seed of a small campaign is obliged to have, so a
strided campaign used to be able to trace *zero* scenarios, and the
report CLI would summarise the empty trace as if tracing had been off.
``WorkerTelemetry.ensure_samples`` (applied by ``CampaignRunner.run``)
closes the hole: when the stride filter comes up empty, the first
spec's derived seed is force-sampled — deterministically, so every
backend traces the same scenario.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignRunner, theorem8_specs
from repro.store import CollectingProgressReporter
from repro.telemetry import WorkerTelemetry

PINNED_KWARGS = {"seeds": (1,), "max_steps": 4_000}


def _specs():
    return theorem8_specs([4], **PINNED_KWARGS)


def _empty_stride(specs) -> int:
    """A stride > 1 under which the plain filter samples nothing."""
    for stride in range(2, 1000):
        if all(spec.derived_seed() % stride for spec in specs):
            return stride
    raise AssertionError("no empty stride below 1000; pick other specs")


class TestEnsureSamples:
    def test_stride_filter_can_come_up_empty(self):
        # The premise of the bug: a legal stride that samples nothing.
        specs = _specs()
        stride = _empty_stride(specs)
        bare = WorkerTelemetry(campaign="c", stride=stride)
        assert not any(bare.samples(spec) for spec in specs)

    def test_ensure_samples_forces_the_first_spec(self):
        specs = _specs()
        stride = _empty_stride(specs)
        fixed = WorkerTelemetry(campaign="c", stride=stride).ensure_samples(specs)
        assert fixed.force_seed == specs[0].derived_seed()
        assert fixed.samples(specs[0])
        assert sum(1 for spec in specs if fixed.samples(spec)) >= 1

    def test_ensure_samples_is_a_noop_when_stride_already_hits(self):
        specs = _specs()
        telemetry = WorkerTelemetry(campaign="c", stride=1)
        assert telemetry.ensure_samples(specs) is telemetry
        stride = _empty_stride(specs)
        hitting = WorkerTelemetry(
            campaign="c", stride=stride,
            force_seed=specs[-1].derived_seed())
        assert hitting.ensure_samples(specs) is hitting

    def test_ensure_samples_handles_empty_spec_list(self):
        telemetry = WorkerTelemetry(campaign="c", stride=7)
        assert telemetry.ensure_samples([]) is telemetry


class TestCampaignNeverTracesZero:
    @pytest.mark.parametrize("backend,workers,batch", [
        ("serial", None, False),
        ("process", 2, False),
        ("serial", None, True),
    ])
    def test_strided_campaign_traces_at_least_one_scenario(
        self, backend, workers, batch
    ):
        specs = _specs()
        stride = _empty_stride(specs)
        reporter = CollectingProgressReporter()
        CampaignRunner(backend=backend, workers=workers, batch=batch).run(
            specs, progress=reporter,
            telemetry=WorkerTelemetry(campaign="strided", stride=stride))
        traced = [event for event in reporter.events if event.spans]
        assert traced, "a strided campaign must still trace >= 1 scenario"

    def test_forced_scenario_identical_across_backends(self):
        specs = _specs()
        stride = _empty_stride(specs)

        def traced_labels(backend, workers):
            reporter = CollectingProgressReporter()
            CampaignRunner(backend=backend, workers=workers).run(
                specs, progress=reporter,
                telemetry=WorkerTelemetry(campaign="strided", stride=stride))
            return sorted(e.label for e in reporter.events if e.spans)

        assert traced_labels("serial", None) == traced_labels("process", 2)
