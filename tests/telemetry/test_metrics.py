"""Metrics registry semantics: types, bounds, determinism, concurrency."""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.metrics import DEFAULT_LATENCY_BOUNDS


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = MetricsRegistry().counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_integer_increments_stay_integers(self):
        counter = MetricsRegistry().counter("c")
        counter.inc(2)
        counter.inc(3)
        assert counter.value == 5
        assert isinstance(counter.value, int)


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_bins_partition_by_inclusive_upper_edges(self):
        hist = MetricsRegistry().histogram("h", bounds=(10, 100))
        for value in (1, 10, 11, 100, 101, 5000):
            hist.observe(value)
        # bucket 0: <= 10 -> {1, 10}; bucket 1: <= 100 -> {11, 100};
        # overflow: {101, 5000}
        assert hist.bins == [2, 2, 2]
        assert hist.count == 6
        assert hist.sum == 1 + 10 + 11 + 100 + 101 + 5000
        assert hist.min == 1
        assert hist.max == 5000

    def test_rejects_unsorted_or_empty_bounds(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", bounds=(5, 1))
        with pytest.raises(ConfigurationError):
            registry.histogram("empty", bounds=())

    def test_snapshot_shape(self):
        hist = MetricsRegistry().histogram("h", bounds=(1, 2))
        hist.observe(1)
        snap = hist.snapshot()
        assert snap["type"] == "histogram"
        assert snap["bounds"] == [1, 2]
        assert snap["bins"] == [1, 0, 0]
        assert snap["count"] == 1


class TestRegistry:
    def test_get_or_create_returns_the_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ConfigurationError):
            registry.gauge("name")
        with pytest.raises(ConfigurationError):
            registry.histogram("name")

    def test_names_are_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zebra")
        registry.counter("alpha")
        assert registry.names() == ("alpha", "zebra")

    def test_full_snapshot_includes_timing_metrics(self):
        registry = MetricsRegistry()
        registry.counter("det").inc()
        registry.histogram(
            "lat", bounds=DEFAULT_LATENCY_BOUNDS, timing=True).observe(0.02)
        snap = registry.snapshot()
        assert set(snap) == {"det", "lat"}
        assert snap["lat"]["timing"] is True

    def test_deterministic_snapshot_excludes_timing_metrics(self):
        registry = MetricsRegistry()
        registry.counter("det").inc()
        registry.gauge("depth", timing=True).set(7)
        registry.histogram(
            "lat", bounds=DEFAULT_LATENCY_BOUNDS, timing=True).observe(0.02)
        assert set(registry.deterministic_snapshot()) == {"det"}

    def test_deterministic_snapshots_are_order_independent(self):
        # The property the campaign plumbing relies on: the same event
        # multiset in any delivery order yields equal snapshots.
        observations = [(3, 17), (1, 5), (2, 200), (4, 40)]
        snapshots = []
        for ordering in (observations, list(reversed(observations))):
            registry = MetricsRegistry()
            for steps, messages in ordering:
                registry.counter("steps_total").inc(steps)
                registry.histogram("messages").observe(messages)
            snapshots.append(registry.deterministic_snapshot())
        assert snapshots[0] == snapshots[1]

    def test_concurrent_updates_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        hist = registry.histogram("h", bounds=(10, 100))
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            for i in range(500):
                counter.inc()
                hist.observe(i % 150)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8 * 500
        assert hist.count == 8 * 500
        assert sum(hist.bins) == 8 * 500


class TestExports:
    def test_metric_classes_are_exported(self):
        # The registry hands these out; the package exports them for
        # isinstance checks and typing.
        registry = MetricsRegistry()
        assert isinstance(registry.counter("c"), Counter)
        assert isinstance(registry.gauge("g"), Gauge)
        assert isinstance(registry.histogram("h"), Histogram)
