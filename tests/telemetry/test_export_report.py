"""Exporters and the report CLI: roundtrips, torn tails, validation."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry import (
    ChromeTraceWriter,
    Tracer,
    append_metrics,
    read_metrics,
    read_trace,
    span_to_trace_event,
    write_trace,
)
from repro.telemetry.report import main as report_main, summarize_trace

SRC = Path(__file__).resolve().parents[2] / "src"


def _records(campaign="feed00000001", scenarios=2):
    tracer = Tracer(trace_id=campaign, capture_phases=True)
    for i in range(scenarios):
        with tracer.span("scenario", label=f"s{i}"):
            opened = tracer.start_span("execute")
            acc = tracer.phase_accumulator()
            acc.lap("scheduling")
            acc.lap("delivery")
            tracer.finish_with_phases(opened, acc, steps=2)
    return tracer.drain()


class TestChromeTrace:
    def test_roundtrip_preserves_every_span(self, tmp_path):
        records = _records()
        path = write_trace(tmp_path / "trace.jsonl", records)
        events = read_trace(path)
        assert len(events) == len(records)
        assert {e["name"] for e in events} == {r.name for r in records}

    def test_events_carry_trace_correlation(self):
        (record,) = _records(scenarios=1)[-1:]
        event = span_to_trace_event(record)
        assert event["ph"] == "X"
        assert event["args"]["trace_id"] == "feed00000001"
        assert event["ts"] == round(record.start_ts * 1e6, 3)
        assert event["dur"] == round(record.duration * 1e6, 3)

    def test_file_is_a_json_array_after_manual_closing(self, tmp_path):
        # The writer never writes "]" (kill-safety), but appending one
        # must yield strict JSON — what a viewer that insists on the
        # closed form would do.
        path = write_trace(tmp_path / "trace.jsonl", _records())
        text = path.read_text(encoding="utf-8")
        closed = text.rstrip().rstrip(",") + "]"
        parsed = json.loads(closed)
        assert isinstance(parsed, list) and parsed

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = write_trace(tmp_path / "trace.jsonl", _records())
        whole = read_trace(path)
        data = path.read_bytes()
        path.write_bytes(data[:-20])  # SIGKILL mid-final-line
        torn = read_trace(path)
        assert len(torn) == len(whole) - 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path = write_trace(tmp_path / "trace.jsonl", _records())
        lines = path.read_bytes().split(b"\n")
        lines[1] = b'{"garbage": tru'
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(ConfigurationError):
            read_trace(path)

    def test_non_trace_file_raises(self, tmp_path):
        path = tmp_path / "not_a_trace.jsonl"
        path.write_text('{"v": 1}\n', encoding="utf-8")
        with pytest.raises(ConfigurationError):
            read_trace(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            read_trace(tmp_path / "absent.jsonl")

    def test_writer_truncates_on_reopen(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, _records())
        with ChromeTraceWriter(path) as writer:
            assert writer.path == path
        assert read_trace(path) == ()


class TestMetricsDump:
    def test_append_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        snapshot = {"c": {"type": "counter", "timing": False, "value": 3}}
        append_metrics(path, "feed00000001", snapshot)
        append_metrics(path, "feed00000002", snapshot, extra={"stats": {"total": 9}})
        records = read_metrics(path)
        assert [r["campaign"] for r in records] == [
            "feed00000001", "feed00000002"]
        assert records[1]["stats"] == {"total": 9}
        assert records[0]["metrics"] == snapshot

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        append_metrics(path, "a", {})
        append_metrics(path, "b", {})
        path.write_bytes(path.read_bytes()[:-10])
        records = read_metrics(path)
        assert [r["campaign"] for r in records] == ["a"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        append_metrics(path, "a", {})
        append_metrics(path, "b", {})
        lines = path.read_bytes().split(b"\n")
        lines[0] = b"not json"
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(ConfigurationError):
            read_metrics(path)

    def test_unknown_versions_are_skipped(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        append_metrics(path, "a", {})
        with path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps({"v": 999, "metrics": {}}) + "\n")
        records = read_metrics(path)
        assert [r["campaign"] for r in records] == ["a"]


class TestSummarize:
    def test_groups_by_campaign_and_counts(self, tmp_path):
        records = _records(campaign="aaa") + _records(campaign="bbb", scenarios=1)
        path = write_trace(tmp_path / "trace.jsonl", records)
        summaries = summarize_trace(read_trace(path))
        assert set(summaries) == {"aaa", "bbb"}
        assert len(summaries["aaa"]["scenarios"]) == 2
        assert summaries["bbb"]["executes"] == 1
        assert set(summaries["aaa"]["phases"]) == {"scheduling", "delivery"}

    def test_phase_seconds_sum_laps(self, tmp_path):
        path = write_trace(tmp_path / "trace.jsonl", _records(scenarios=3))
        summaries = summarize_trace(read_trace(path))
        phases = summaries["feed00000001"]["phases"]
        assert phases["scheduling"][1] == 3  # one lap per scenario


class TestReportCli:
    def test_exits_zero_and_prints_summary(self, tmp_path, capsys):
        path = write_trace(tmp_path / "trace.jsonl", _records())
        assert report_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "per-phase time breakdown" in out
        assert "slowest traced scenario" in out
        assert "feed00000001" in out

    def test_exits_nonzero_on_corrupt_trace(self, tmp_path, capsys):
        path = write_trace(tmp_path / "trace.jsonl", _records())
        lines = path.read_bytes().split(b"\n")
        lines[1] = b"garbage"
        path.write_bytes(b"\n".join(lines))
        assert report_main([str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_exits_nonzero_on_missing_metrics(self, tmp_path, capsys):
        path = write_trace(tmp_path / "trace.jsonl", _records())
        assert report_main([str(path), "--metrics", str(tmp_path / "no.jsonl")]) == 1

    def test_metrics_summary_includes_cache_hit_rate(self, tmp_path, capsys):
        trace = write_trace(tmp_path / "trace.jsonl", _records())
        metrics = tmp_path / "metrics.jsonl"
        append_metrics(metrics, "feed00000001", {
            "scenarios_completed": {"type": "counter", "timing": False, "value": 4},
            "scenarios_cached": {"type": "counter", "timing": False, "value": 1},
        })
        assert report_main([str(trace), "--metrics", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "hit rate 25.0%" in out

    def test_module_entrypoint_runs(self, tmp_path):
        path = write_trace(tmp_path / "trace.jsonl", _records())
        result = subprocess.run(
            [sys.executable, "-m", "repro.telemetry.report", str(path)],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 0, result.stderr
        assert "trace:" in result.stdout
