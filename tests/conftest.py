"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.trivial import DecideOwnValue
from repro.models.asynchronous import asynchronous_model
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import ExecutionSettings, execute

# Keep property-based tests fast and deterministic in CI-like environments.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def small_async_model():
    """A 4-process asynchronous model tolerating one crash."""
    return asynchronous_model(4, 1)


@pytest.fixture
def small_initial_crash_model():
    """A 6-process asynchronous model with up to 3 initial crashes."""
    return initial_crash_model(6, 3)


@pytest.fixture
def distinct_proposals():
    """Factory: proposals {p: p} for a model."""

    def build(model):
        return {pid: pid for pid in model.processes}

    return build


@pytest.fixture
def run_factory(distinct_proposals):
    """Factory producing a completed run of an algorithm in a model."""

    def build(algorithm=None, model=None, *, proposals=None, adversary=None,
              failure_pattern=None, max_steps=5_000, stop_condition=None):
        model = model or initial_crash_model(6, 3)
        algorithm = algorithm or KSetInitialCrash(6, 3)
        proposals = proposals or distinct_proposals(model)
        return execute(
            algorithm,
            model,
            proposals,
            adversary=adversary,
            failure_pattern=failure_pattern,
            settings=ExecutionSettings(max_steps=max_steps, stop_condition=stop_condition),
        )

    return build


@pytest.fixture
def trivial_algorithm():
    """The decide-own-value baseline algorithm."""
    return DecideOwnValue()
