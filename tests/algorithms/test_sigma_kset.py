"""Tests for the ``Sigma_{n-1}`` (n-1)-set agreement protocol."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.sigma_kset import SigmaKSetAgreement
from repro.core.ksetagreement import KSetAgreementProblem
from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern
from repro.failure_detectors.sigma import SigmaK
from repro.models.asynchronous import asynchronous_model
from repro.simulation.executor import ExecutionSettings, execute
from repro.simulation.scheduler import RandomScheduler, RoundRobinScheduler


def run_sigma_kset(n, crash_times, *, seed=None, proposals=None, max_steps=8_000):
    model = asynchronous_model(n, n - 1, failure_detector=SigmaK(n - 1))
    algorithm = SigmaKSetAgreement(n)
    proposals = proposals or {p: p for p in model.processes}
    pattern = FailurePattern(model.processes, crash_times)
    adversary = RandomScheduler(seed) if seed is not None else RoundRobinScheduler()
    run = execute(
        algorithm, model, proposals,
        adversary=adversary,
        failure_pattern=pattern,
        settings=ExecutionSettings(max_steps=max_steps),
    )
    return run, proposals


class TestConfiguration:
    def test_needs_two_processes(self):
        with pytest.raises(ConfigurationError):
            SigmaKSetAgreement(1)

    def test_system_size_checked(self):
        with pytest.raises(ConfigurationError):
            SigmaKSetAgreement(4).initial_state(1, (1, 2), 1)

    def test_requires_failure_detector(self):
        assert SigmaKSetAgreement(3).requires_failure_detector

    def test_quorum_extraction_accepts_both_shapes(self):
        assert SigmaKSetAgreement._quorum(frozenset({1})) == {1}
        assert SigmaKSetAgreement._quorum({"sigma": {1, 2}}) == {1, 2}
        assert SigmaKSetAgreement._quorum(None) is None
        assert SigmaKSetAgreement._quorum({"omega": {1}}) is None


class TestCorrectness:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6])
    def test_all_correct_fair_schedule(self, n):
        run, proposals = run_sigma_kset(n, {})
        report = KSetAgreementProblem(n - 1).evaluate(run, proposals=proposals)
        assert report.all_ok, report.violations

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_single_survivor_terminates_via_singleton_quorum(self, n):
        # Everyone but the largest-identifier process crashes early: the
        # survivor never hears from a smaller process that is still relevant,
        # and must decide through the R-alone rule.
        crash_times = {p: 0 for p in range(1, n)}
        run, proposals = run_sigma_kset(n, crash_times)
        report = KSetAgreementProblem(n - 1).evaluate(run, proposals=proposals)
        assert report.all_ok, report.violations
        assert run.decisions()[n] == proposals[n]

    def test_smallest_correct_process_adopts_from_others(self):
        # p1 crashes before sending anything is impossible (it sends in its
        # first step), so kill p1 initially: p2 is the smallest correct
        # process and must adopt a DEC or use its own rules.
        run, proposals = run_sigma_kset(4, {1: 0})
        report = KSetAgreementProblem(3).evaluate(run, proposals=proposals)
        assert report.all_ok, report.violations

    @given(st.integers(min_value=2, max_value=6), st.data())
    @settings(max_examples=20, deadline=None)
    def test_any_crash_pattern_and_schedule(self, n, data):
        # Any number of crashes (up to n-1), any crash times, random schedule.
        crash_count = data.draw(st.integers(min_value=0, max_value=n - 1))
        victims = data.draw(st.permutations(range(1, n + 1)))[:crash_count]
        crash_times = {
            p: data.draw(st.integers(min_value=0, max_value=20)) for p in victims
        }
        seed = data.draw(st.integers(min_value=0, max_value=10_000))
        run, proposals = run_sigma_kset(n, crash_times, seed=seed)
        report = KSetAgreementProblem(n - 1).evaluate(run, proposals=proposals)
        assert report.all_ok, (crash_times, seed, report.violations)

    def test_never_n_distinct_decisions(self):
        # Core of the (n-1)-agreement argument: even under schedules trying
        # to isolate everyone, at most n-1 distinct values are decided.
        from repro.simulation.adversary import PartitioningAdversary

        n = 5
        model = asynchronous_model(n, n - 1, failure_detector=SigmaK(n - 1))
        algorithm = SigmaKSetAgreement(n)
        run = execute(
            algorithm, model, {p: p for p in model.processes},
            adversary=PartitioningAdversary([[p] for p in model.processes]),
            settings=ExecutionSettings(max_steps=8_000),
        )
        assert len(run.distinct_decisions()) <= n - 1


class TestDecisionRules:
    def test_dec_adoption_prefers_received_decision(self):
        from repro.algorithms.sigma_kset import SigmaKSetState

        state = SigmaKSetState(pid=3, proposal=3, dec_received="adopted",
                               smaller_values=frozenset({(1, "one")}))
        decision, fresh = SigmaKSetAgreement._decide(state, frozenset({3}))
        assert decision == "adopted" and not fresh

    def test_smaller_rule_takes_minimum_id(self):
        from repro.algorithms.sigma_kset import SigmaKSetState

        state = SigmaKSetState(pid=4, proposal=4,
                               smaller_values=frozenset({(2, "two"), (1, "one")}))
        decision, fresh = SigmaKSetAgreement._decide(state, None)
        assert decision == "one" and fresh

    def test_alone_rule_requires_exact_singleton(self):
        from repro.algorithms.sigma_kset import SigmaKSetState

        state = SigmaKSetState(pid=2, proposal="mine")
        assert SigmaKSetAgreement._decide(state, frozenset({2}))[0] == "mine"
        assert SigmaKSetAgreement._decide(state, frozenset({2, 3}))[0] is None
        assert SigmaKSetAgreement._decide(state, frozenset({1, 2}))[0] is None
