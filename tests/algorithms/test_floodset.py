"""Tests for the synchronous FloodSet consensus protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.floodset import FloodSetConsensus
from repro.core.ksetagreement import KSetAgreementProblem
from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern
from repro.models.model import FailureAssumption, SystemModel
from repro.models.parameters import SystemModelSpec
from repro.simulation.executor import execute
from repro.types import process_range


def synchronous_model(n: int, f: int) -> SystemModel:
    return SystemModel(
        name=f"sync(n={n}, f={f})",
        processes=process_range(n),
        spec=SystemModelSpec(synchronous_processes=True, synchronous_communication=True),
        failures=FailureAssumption(f),
    )


def run_floodset(n, f, crash_times, proposals=None):
    model = synchronous_model(n, f)
    proposals = proposals or {p: p for p in model.processes}
    pattern = FailurePattern(model.processes, crash_times)
    run = execute(FloodSetConsensus(n, f), model, proposals, failure_pattern=pattern)
    return run, proposals


class TestConfiguration:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FloodSetConsensus(0, 0)
        with pytest.raises(ConfigurationError):
            FloodSetConsensus(3, 3)
        with pytest.raises(ConfigurationError):
            FloodSetConsensus(3, 1).initial_state(1, (1, 2), 1)

    def test_round_count(self):
        assert FloodSetConsensus(5, 2).rounds == 3
        assert "rounds" in FloodSetConsensus(5, 2).describe()


class TestCorrectness:
    @pytest.mark.parametrize("n,f", [(2, 1), (3, 2), (5, 3), (7, 6)])
    def test_no_crashes(self, n, f):
        run, proposals = run_floodset(n, f, {})
        report = KSetAgreementProblem(1).evaluate(run, proposals=proposals)
        assert report.all_ok, report.violations
        assert set(run.decisions().values()) == {min(proposals.values())}

    @pytest.mark.parametrize(
        "n,f,crashes",
        [
            (4, 3, {1: 0, 2: 0, 3: 0}),
            (5, 4, {1: 3, 2: 7, 3: 11, 4: 15}),
            (6, 5, {1: 0, 2: 5, 3: 9}),
        ],
    )
    def test_with_crashes_beyond_any_majority(self, n, f, crashes):
        # Unlike the asynchronous initial-crash protocol, FloodSet tolerates
        # any number of crashes f < n in the synchronous model.
        run, proposals = run_floodset(n, f, crashes)
        report = KSetAgreementProblem(1).evaluate(run, proposals=proposals)
        assert report.all_ok, report.violations

    @given(st.integers(min_value=2, max_value=6), st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_crash_schedules(self, n, data):
        f = n - 1
        crash_count = data.draw(st.integers(min_value=0, max_value=f))
        victims = data.draw(st.permutations(range(1, n + 1)))[:crash_count]
        crashes = {p: data.draw(st.integers(min_value=0, max_value=3 * n)) for p in victims}
        run, proposals = run_floodset(n, f, crashes)
        report = KSetAgreementProblem(1).evaluate(run, proposals=proposals)
        assert report.all_ok, (crashes, report.violations)

    def test_validity_with_string_values(self):
        proposals = {1: "cherry", 2: "apple", 3: "banana"}
        run, _ = run_floodset(3, 2, {}, proposals=proposals)
        assert set(run.decisions().values()) <= set(proposals.values())
        assert len(set(run.decisions().values())) == 1

    def test_supports_fully_synchronous_catalogue_entry(self):
        # Executable evidence for the catalogue's SOLVABLE verdict.
        from repro.models.catalog import consensus_verdict
        from repro.types import Verdict

        model = synchronous_model(5, 4)
        assert consensus_verdict(model)[0] is Verdict.SOLVABLE
        run, proposals = run_floodset(5, 4, {2: 0, 3: 4, 4: 8, 5: 12})
        assert KSetAgreementProblem(1).evaluate(run, proposals=proposals).all_ok
