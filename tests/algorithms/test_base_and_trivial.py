"""Tests for the algorithm interface, restriction (Definition 1) and the baseline."""

from __future__ import annotations

import pytest

from repro.algorithms.base import (
    Outgoing,
    ProcessState,
    RestrictedAlgorithm,
    StepOutput,
    broadcast,
    send,
)
from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.trivial import DecideOwnValue
from repro.exceptions import AlgorithmError, ConfigurationError
from repro.models.initial_crash import initial_crash_model
from repro.simulation.adversary import PartitioningAdversary
from repro.simulation.executor import execute
from repro.types import UNDECIDED


class TestProcessState:
    def test_initially_undecided(self):
        state = ProcessState(pid=1, proposal="v")
        assert not state.has_decided
        assert state.decision is UNDECIDED

    def test_decide_once(self):
        state = ProcessState(pid=1, proposal="v").decide("w")
        assert state.has_decided and state.decision == "w"

    def test_decide_same_value_idempotent(self):
        state = ProcessState(pid=1, proposal="v").decide("w")
        assert state.decide("w") is state

    def test_decide_conflicting_value_rejected(self):
        state = ProcessState(pid=1, proposal="v").decide("w")
        with pytest.raises(AlgorithmError):
            state.decide("x")


class TestMessageHelpers:
    def test_send(self):
        assert send(3, "hi") == Outgoing(receiver=3, payload="hi")

    def test_broadcast_excludes(self):
        messages = broadcast((1, 2, 3, 4), "x", exclude=(2,))
        assert [m.receiver for m in messages] == [1, 3, 4]
        assert all(m.payload == "x" for m in messages)

    def test_broadcast_empty(self):
        assert broadcast((), "x") == ()


class TestDecideOwnValue:
    def test_decides_in_first_step(self):
        algorithm = DecideOwnValue()
        state = algorithm.initial_state(2, (1, 2, 3), "mine")
        output = algorithm.step(state, ())
        assert output.state.decision == "mine"
        assert output.messages == ()

    def test_idempotent_after_decision(self):
        algorithm = DecideOwnValue()
        state = algorithm.initial_state(2, (1, 2, 3), "mine")
        decided = algorithm.step(state, ()).state
        assert algorithm.step(decided, ()).state is decided

    def test_solves_n_set_agreement_wait_free(self):
        model = initial_crash_model(5, 4)
        run = execute(
            DecideOwnValue(), model, {p: p for p in model.processes},
            adversary=PartitioningAdversary([[p] for p in model.processes]),
        )
        assert run.completed
        assert len(run.distinct_decisions()) == 5


class TestRestrictedAlgorithm:
    def test_rejects_bad_subsets(self):
        inner = DecideOwnValue()
        with pytest.raises(ConfigurationError):
            RestrictedAlgorithm(inner, (1, 2, 3), ())
        with pytest.raises(ConfigurationError):
            RestrictedAlgorithm(inner, (1, 2, 3), (4,))

    def test_keeps_original_system_size(self):
        # Definition 1: the restricted algorithm still uses |Pi| internally.
        inner = KSetInitialCrash(6, 3)
        restricted = RestrictedAlgorithm(inner, tuple(range(1, 7)), {4, 5, 6})
        state = restricted.initial_state(4, (4, 5, 6), proposal=4)
        assert isinstance(state, type(inner.initial_state(4, tuple(range(1, 7)), 4)))

    def test_initial_state_outside_subset_rejected(self):
        inner = DecideOwnValue()
        restricted = RestrictedAlgorithm(inner, (1, 2, 3), {1, 2})
        with pytest.raises(ConfigurationError):
            restricted.initial_state(3, (1, 2, 3), 3)

    def test_messages_outside_subset_dropped(self):
        inner = KSetInitialCrash(6, 3)
        restricted = RestrictedAlgorithm(inner, tuple(range(1, 7)), {4, 5, 6})
        state = restricted.initial_state(4, (4, 5, 6), proposal=4)
        output = restricted.step(state, ())
        receivers = {m.receiver for m in output.messages}
        assert receivers <= {5, 6}
        # the unrestricted algorithm would have sent to all other five processes
        unrestricted = inner.step(inner.initial_state(4, tuple(range(1, 7)), 4), ())
        assert {m.receiver for m in unrestricted.messages} == {1, 2, 3, 5, 6}

    def test_name_and_detector_flag(self):
        inner = KSetInitialCrash(4, 1)
        restricted = RestrictedAlgorithm(inner, (1, 2, 3, 4), {1, 2})
        assert restricted.name.endswith("|D")
        assert restricted.requires_failure_detector == inner.requires_failure_detector

    def test_restricted_execution_runs_in_subsystem(self):
        # A|D run in <D> behaves like the protocol among D only.
        n, f = 6, 3
        inner = KSetInitialCrash(n, f)
        model = initial_crash_model(n, f)
        subset = (4, 5, 6)
        restricted_model = model.restrict(subset)
        restricted = RestrictedAlgorithm(inner, model.processes, subset)
        run = execute(restricted, restricted_model, {p: p for p in subset})
        assert run.completed
        assert run.decided_processes() == set(subset)
        assert run.distinct_decisions() == {4}
