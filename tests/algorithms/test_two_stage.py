"""Tests for the two-stage protocol, FLP consensus and the Section VI algorithm."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.flp_consensus import FLPConsensus
from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.two_stage import TwoStageKnowledgeProtocol
from repro.core.ksetagreement import KSetAgreementProblem
from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import ExecutionSettings, execute
from repro.simulation.scheduler import RandomScheduler, RoundRobinScheduler


class TestConfigurationValidation:
    def test_threshold_bounds(self):
        with pytest.raises(ConfigurationError):
            TwoStageKnowledgeProtocol(4, 0)
        with pytest.raises(ConfigurationError):
            TwoStageKnowledgeProtocol(4, 5)
        with pytest.raises(ConfigurationError):
            TwoStageKnowledgeProtocol(0, 1)

    def test_flp_requires_majority(self):
        with pytest.raises(ConfigurationError):
            FLPConsensus(4, 2)
        FLPConsensus(5, 2)  # fine

    def test_kset_requires_f_below_n(self):
        with pytest.raises(ConfigurationError):
            KSetInitialCrash(4, 4)
        with pytest.raises(ConfigurationError):
            KSetInitialCrash(4, -1)

    def test_system_size_mismatch_rejected(self):
        algorithm = KSetInitialCrash(4, 1)
        with pytest.raises(ConfigurationError):
            algorithm.initial_state(1, (1, 2, 3), 1)

    def test_max_distinct_decisions(self):
        assert KSetInitialCrash(6, 3).max_distinct_decisions() == 2
        assert KSetInitialCrash(6, 4).max_distinct_decisions() == 3
        assert FLPConsensus(5, 2).max_distinct_decisions() == 1
        assert KSetInitialCrash(7, 4).achieved_k == 2

    def test_describe(self):
        assert "L=n-f=3" in KSetInitialCrash(6, 3).describe()
        assert "majority" in FLPConsensus(5, 2).describe()


def run_protocol(n, f, dead, adversary=None, proposals=None, max_steps=8_000):
    model = initial_crash_model(n, f)
    algorithm = KSetInitialCrash(n, f)
    proposals = proposals or {p: p for p in model.processes}
    pattern = FailurePattern.initially_dead(model.processes, dead)
    return execute(
        algorithm, model, proposals,
        adversary=adversary or RoundRobinScheduler(),
        failure_pattern=pattern,
        settings=ExecutionSettings(max_steps=max_steps),
    ), proposals


class TestFLPConsensus:
    @pytest.mark.parametrize("n,f", [(3, 1), (5, 2), (7, 3), (9, 4)])
    def test_consensus_with_majority(self, n, f):
        model = initial_crash_model(n, f)
        algorithm = FLPConsensus(n, f)
        dead = set(range(n - f + 1, n + 1))
        pattern = FailurePattern.initially_dead(model.processes, dead)
        run = execute(algorithm, model, {p: p * 7 for p in model.processes},
                      failure_pattern=pattern)
        report = KSetAgreementProblem(1).evaluate(run)
        assert report.all_ok, report.violations

    def test_consensus_under_random_schedules(self):
        n, f = 5, 2
        model = initial_crash_model(n, f)
        for seed in range(4):
            rng = random.Random(seed)
            dead = set(rng.sample(range(1, n + 1), rng.randint(0, f)))
            pattern = FailurePattern.initially_dead(model.processes, dead)
            run = execute(
                FLPConsensus(n, f), model, {p: p for p in model.processes},
                adversary=RandomScheduler(seed),
                failure_pattern=pattern,
            )
            report = KSetAgreementProblem(1).evaluate(run)
            assert report.all_ok, (seed, report.violations)


class TestKSetInitialCrash:
    @pytest.mark.parametrize(
        "n,f,k",
        [(4, 1, 1), (4, 2, 2), (6, 3, 2), (6, 4, 3), (8, 4, 2), (9, 6, 3), (10, 5, 2)],
    )
    def test_properties_hold_on_solvable_side(self, n, f, k):
        # k = floor(n / (n - f)) is exactly the guarantee of the protocol.
        assert k == n // (n - f)
        run, proposals = run_protocol(n, f, dead=set(range(n - f + 1, n + 1)))
        report = KSetAgreementProblem(k).evaluate(run, proposals=proposals)
        assert report.all_ok, report.violations

    def test_no_crash_run_decides_single_value(self):
        run, _ = run_protocol(6, 3, dead=set())
        assert run.completed
        assert len(run.distinct_decisions()) == 1

    def test_validity_with_non_identity_proposals(self):
        proposals = {1: "a", 2: "b", 3: "c", 4: "d", 5: "e", 6: "f"}
        run, _ = run_protocol(6, 3, dead={5, 6}, proposals=proposals)
        assert run.distinct_decisions() <= set(proposals.values())

    @given(
        st.integers(min_value=3, max_value=8),
        st.data(),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_crashes_and_schedules_respect_bound(self, n, data):
        f = data.draw(st.integers(min_value=1, max_value=n - 1))
        dead_count = data.draw(st.integers(min_value=0, max_value=f))
        dead = set(data.draw(st.permutations(range(1, n + 1)))[:dead_count])
        seed = data.draw(st.integers(min_value=0, max_value=100))
        run, proposals = run_protocol(n, f, dead, adversary=RandomScheduler(seed))
        k = n // (n - f)
        report = KSetAgreementProblem(k).evaluate(run, proposals=proposals)
        assert report.all_ok, report.violations

    def test_decisions_trace_back_to_source_components(self):
        run, _ = run_protocol(6, 4, dead={5, 6})
        # threshold is 2, four alive processes: at most 2 source components
        assert 1 <= len(run.distinct_decisions()) <= 2
