"""Tests for the ``(Sigma, Omega)`` Paxos-style consensus protocol."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.sigma_omega_consensus import (
    ZERO_BALLOT,
    SigmaOmegaConsensus,
    SigmaOmegaState,
)
from repro.core.ksetagreement import KSetAgreementProblem
from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern
from repro.failure_detectors.combined import sigma_omega_k
from repro.models.asynchronous import asynchronous_model
from repro.simulation.executor import ExecutionSettings, execute
from repro.simulation.scheduler import RandomScheduler, RoundRobinScheduler


def run_consensus(n, crash_times, *, gst=0, seed=None, proposals=None, max_steps=20_000):
    model = asynchronous_model(n, n - 1, failure_detector=sigma_omega_k(1, gst=gst))
    algorithm = SigmaOmegaConsensus(n)
    proposals = proposals or {p: p * 11 for p in model.processes}
    pattern = FailurePattern(model.processes, crash_times)
    adversary = RandomScheduler(seed, max_delay=8) if seed is not None else RoundRobinScheduler()
    run = execute(
        algorithm, model, proposals,
        adversary=adversary,
        failure_pattern=pattern,
        settings=ExecutionSettings(max_steps=max_steps),
    )
    return run, proposals


class TestConfiguration:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SigmaOmegaConsensus(0)
        with pytest.raises(ConfigurationError):
            SigmaOmegaConsensus(3).initial_state(1, (1, 2), 1)

    def test_detector_output_extraction(self):
        sigma, omega = SigmaOmegaConsensus._detector_outputs(
            {"sigma": {1, 2}, "omega": {1}}
        )
        assert sigma == {1, 2} and omega == {1}
        sigma, omega = SigmaOmegaConsensus._detector_outputs(frozenset({1}))
        assert sigma == {1} and omega is None
        assert SigmaOmegaConsensus._detector_outputs(None) == (None, None)


class TestCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7])
    def test_all_correct_stable_leader(self, n):
        run, proposals = run_consensus(n, {})
        report = KSetAgreementProblem(1).evaluate(run, proposals=proposals)
        assert report.all_ok, report.violations
        # with an immediately stable leader p1, the decided value is p1's
        assert set(run.decisions().values()) == {proposals[1]}

    @pytest.mark.parametrize("n,crashes", [(3, {3: 0}), (4, {1: 0}), (5, {1: 0, 2: 7}), (4, {2: 5, 3: 5, 4: 5})])
    def test_with_crashes(self, n, crashes):
        run, proposals = run_consensus(n, crashes)
        report = KSetAgreementProblem(1).evaluate(run, proposals=proposals)
        assert report.all_ok, report.violations

    def test_unstable_leader_before_gst(self):
        run, proposals = run_consensus(4, {}, gst=30)
        report = KSetAgreementProblem(1).evaluate(run, proposals=proposals)
        assert report.all_ok, report.violations

    @given(st.integers(min_value=1, max_value=5), st.data())
    @settings(max_examples=15, deadline=None)
    def test_random_schedules_and_crashes(self, n, data):
        crash_count = data.draw(st.integers(min_value=0, max_value=n - 1))
        victims = data.draw(st.permutations(range(1, n + 1)))[:crash_count]
        crash_times = {p: data.draw(st.integers(min_value=0, max_value=15)) for p in victims}
        gst = data.draw(st.integers(min_value=0, max_value=20))
        seed = data.draw(st.integers(min_value=0, max_value=1000))
        run, proposals = run_consensus(n, crash_times, gst=gst, seed=seed)
        report = KSetAgreementProblem(1).evaluate(run, proposals=proposals)
        assert report.all_ok, (crash_times, gst, seed, report.violations)

    def test_uniformity_binds_faulty_deciders(self):
        # A process that decides and later crashes must agree with the rest.
        run, proposals = run_consensus(4, {2: 40})
        decisions = run.decisions()
        assert len(set(decisions.values())) == 1


class TestProtocolInternals:
    def test_ballots_order_lexicographically(self):
        assert (1, 2) > ZERO_BALLOT
        assert (2, 1) > (1, 9)

    def test_prepare_generates_promise_or_nack(self):
        algorithm = SigmaOmegaConsensus(3)
        state = algorithm.initial_state(2, (1, 2, 3), "v")

        class Msg:
            def __init__(self, payload):
                self.payload = payload
                self.sender = 1

        promoted, replies = algorithm._handle_message(state, Msg(("PREPARE", (1, 1), 1)))
        assert promoted.promised == (1, 1)
        assert replies[0].payload[0] == "PROMISE"
        demoted, replies2 = algorithm._handle_message(promoted, Msg(("PREPARE", (0, 1), 1)))
        assert replies2[0].payload[0] == "NACK"

    def test_accept_updates_accepted_value(self):
        algorithm = SigmaOmegaConsensus(3)
        state = algorithm.initial_state(2, (1, 2, 3), "v")

        class Msg:
            def __init__(self, payload):
                self.payload = payload
                self.sender = 1

        accepted, replies = algorithm._handle_message(state, Msg(("ACCEPT", (1, 1), "w", 1)))
        assert accepted.accepted_value == "w"
        assert replies[0].payload[0] == "ACCEPTED"

    def test_decide_message_adopted(self):
        algorithm = SigmaOmegaConsensus(2)
        state = algorithm.initial_state(2, (1, 2), "v")

        class Msg:
            def __init__(self, payload):
                self.payload = payload
                self.sender = 1

        output = algorithm.step(state, (Msg(("DECIDE", "w")),), {"sigma": {1, 2}, "omega": {1}})
        assert output.state.decision == "w"
