"""Tests for the deliberately flawed ``(Sigma_k, Omega_k)`` candidate."""

from __future__ import annotations

import pytest

from repro.algorithms.flawed_candidate import FlawedQuorumKSet, FlawedQuorumKSetState
from repro.core.ksetagreement import KSetAgreementProblem
from repro.exceptions import ConfigurationError
from repro.failure_detectors.combined import sigma_omega_k
from repro.models.asynchronous import asynchronous_model
from repro.partitioning.scenarios import Theorem10Scenario
from repro.simulation.executor import execute


class TestConfiguration:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlawedQuorumKSet(1, 1)
        with pytest.raises(ConfigurationError):
            FlawedQuorumKSet(4, 0)
        with pytest.raises(ConfigurationError):
            FlawedQuorumKSet(4, 4)
        with pytest.raises(ConfigurationError):
            FlawedQuorumKSet(4, 2).initial_state(1, (1, 2), 1)

    def test_relaxed_rule(self):
        state = FlawedQuorumKSetState(pid=3, proposal="mine")
        # quorum without smaller identifiers triggers the (flawed) decision
        assert FlawedQuorumKSet._decide(state, frozenset({3, 4, 5}))[0] == "mine"
        # a smaller trusted identifier blocks it
        assert FlawedQuorumKSet._decide(state, frozenset({2, 3}))[0] is None


class TestBehaviour:
    def test_terminates_and_looks_correct_on_benign_runs(self):
        # The candidate is "promising": with the genuine (Sigma_k, Omega_k)
        # detector and a fair schedule it terminates and all three
        # properties hold — which is exactly why vetting matters.
        n, k = 6, 3
        model = asynchronous_model(n, n - 1, failure_detector=sigma_omega_k(k, gst=0))
        algorithm = FlawedQuorumKSet(n, k)
        run = execute(algorithm, model, {p: p for p in model.processes})
        report = KSetAgreementProblem(k).evaluate(run)
        assert run.completed
        assert report.all_ok

    def test_violates_k_agreement_under_partition_detector(self):
        # The Theorem 10 schedule drives it to k+1 distinct decisions.
        n, k = 6, 3
        scenario = Theorem10Scenario(n=n, k=k)
        run, report = scenario.violation_run(FlawedQuorumKSet(n, k))
        assert run.completed
        assert len(run.distinct_decisions()) == k + 1
        assert not report.agreement_ok

    def test_violation_scales_with_k(self):
        for n, k in [(5, 2), (7, 4), (8, 3)]:
            scenario = Theorem10Scenario(n=n, k=k)
            run, report = scenario.violation_run(FlawedQuorumKSet(n, k))
            assert not report.agreement_ok, (n, k)
            assert len(run.distinct_decisions()) >= k + 1

    def test_satisfies_condition_a_of_theorem1(self):
        # The vetting tool: condition (A) is constructible for the candidate.
        n, k = 6, 3
        scenario = Theorem10Scenario(n=n, k=k)
        witness = scenario.apply(FlawedQuorumKSet(n, k))
        assert witness.report("A").satisfied
        assert witness.holds
