"""Tests for :mod:`repro.graphs.knowledge_graph`."""

from __future__ import annotations

import pytest

from repro.graphs.knowledge_graph import KnowledgeGraph


class TestRecording:
    def test_record_and_query(self):
        view = KnowledgeGraph(owner=1)
        view.record(1, [2, 3], "a")
        assert view.known_processes == {1}
        assert view.values[1] == "a"

    def test_conflicting_report_rejected(self):
        view = KnowledgeGraph(owner=1)
        view.record(2, [1], "b")
        with pytest.raises(ValueError):
            view.record(2, [3], "b")

    def test_identical_report_is_idempotent(self):
        view = KnowledgeGraph(owner=1)
        view.record(2, [1], "b")
        view.record(2, [1], "b")
        assert view.known_processes == {2}


class TestClosure:
    def test_missing_own_report(self):
        view = KnowledgeGraph(owner=1)
        assert not view.is_complete() or view.required_processes() == {1}
        # Without the owner's own report the graph has no node for the owner.
        assert view.decision_component() is None or 1 in view.heard_from

    def test_requires_transitive_reports(self):
        view = KnowledgeGraph(owner=1)
        view.record(1, [2], "a")
        assert view.missing_processes() == {2}
        view.record(2, [3], "b")
        assert view.missing_processes() == {3}
        view.record(3, [2], "c")
        assert view.is_complete()

    def test_required_ignores_unrelated(self):
        view = KnowledgeGraph(owner=1)
        view.record(1, [2], "a")
        view.record(2, [1], "b")
        view.record(9, [8], "z")
        assert view.required_processes() == {1, 2}
        assert view.is_complete()


class TestDecision:
    def test_decision_none_until_complete(self):
        view = KnowledgeGraph(owner=1)
        view.record(1, [2], "a")
        assert view.decision_value() is None

    def test_decision_minimum_id_of_source_component(self):
        view = KnowledgeGraph(owner=3)
        view.record(1, [2], "v1")
        view.record(2, [1], "v2")
        view.record(3, [1, 2], "v3")
        assert view.decision_component() == frozenset({1, 2})
        assert view.decision_value() == "v1"

    def test_decision_deterministic_across_owners(self):
        reports = {1: ([2], "v1"), 2: ([1], "v2"), 3: ([1, 2], "v3"), 4: ([1, 2], "v4")}
        decisions = set()
        for owner in reports:
            view = KnowledgeGraph(owner=owner)
            for process, (preds, value) in reports.items():
                view.record(process, preds, value)
            decisions.add(view.decision_value())
        assert decisions == {"v1"}

    def test_two_source_components_give_two_decisions(self):
        # Group {1,2} and group {3,4} never heard from each other.
        reports = {1: ([2], "v1"), 2: ([1], "v2"), 3: ([4], "v3"), 4: ([3], "v4")}
        values = set()
        for owner in reports:
            view = KnowledgeGraph(owner=owner)
            for process, (preds, value) in reports.items():
                view.record(process, preds, value)
            values.add(view.decision_value())
        assert values == {"v1", "v3"}

    def test_summary(self):
        view = KnowledgeGraph(owner=2)
        view.record(2, [1], "b")
        summary = view.summary()
        assert summary["owner"] == 2
        assert summary["complete"] is False
        assert summary["missing"] == (1,)
