"""Tests for :mod:`repro.graphs.source_components` (Lemma 6 / Lemma 7)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.digraph import DiGraph
from repro.graphs.source_components import (
    initial_cliques,
    lemma6_bound,
    min_in_degree,
    reachable_source_components,
    source_component_of,
    source_components,
    verify_lemma6,
    verify_lemma7,
)


def random_min_indegree_graph(n: int, delta: int, seed: int) -> DiGraph:
    """A random simple digraph on 1..n where every vertex has in-degree >= delta."""
    rng = random.Random(seed)
    graph = DiGraph(nodes=range(1, n + 1))
    for v in range(1, n + 1):
        candidates = [u for u in range(1, n + 1) if u != v]
        for u in rng.sample(candidates, delta):
            graph.add_edge(u, v)
    # sprinkle extra edges
    for _ in range(n):
        u, v = rng.randrange(1, n + 1), rng.randrange(1, n + 1)
        if u != v:
            graph.add_edge(u, v)
    return graph


class TestSourceComponents:
    def test_empty(self):
        assert source_components(DiGraph()) == ()

    def test_single_cycle_is_source(self):
        graph = DiGraph([(1, 2), (2, 1), (2, 3)])
        assert source_components(graph) == (frozenset({1, 2}),)

    def test_two_sources(self):
        graph = DiGraph([(1, 2), (2, 1), (3, 4), (4, 3), (2, 5), (4, 5)])
        assert set(source_components(graph)) == {frozenset({1, 2}), frozenset({3, 4})}

    def test_singleton_source(self):
        graph = DiGraph([(1, 2), (2, 3)])
        assert source_components(graph) == (frozenset({1}),)

    def test_source_components_have_no_incoming_edges(self):
        graph = random_min_indegree_graph(12, 2, seed=1)
        for component in source_components(graph):
            for node in component:
                assert set(graph.predecessors(node)).issubset(component)


class TestReachability:
    def test_source_component_of_member(self):
        graph = DiGraph([(1, 2), (2, 1), (2, 3)])
        assert source_component_of(graph, 1) == frozenset({1, 2})

    def test_source_component_of_downstream(self):
        graph = DiGraph([(1, 2), (2, 1), (2, 3)])
        assert source_component_of(graph, 3) == frozenset({1, 2})

    def test_unknown_node(self):
        assert source_component_of(DiGraph([(1, 2)]), 99) is None

    def test_multiple_reaching_sources(self):
        graph = DiGraph([(1, 3), (2, 3)])
        reaching = reachable_source_components(graph, 3)
        assert set(reaching) == {frozenset({1}), frozenset({2})}

    def test_every_node_reached_by_some_source(self):
        graph = random_min_indegree_graph(15, 3, seed=7)
        for node in graph.nodes:
            assert reachable_source_components(graph, node)


class TestLemma6:
    def test_bound_function(self):
        assert lemma6_bound(10, 4) == 2
        assert lemma6_bound(6, 2) == 2
        assert lemma6_bound(5, 0) == 5

    def test_bound_rejects_negative(self):
        with pytest.raises(ValueError):
            lemma6_bound(-1, 2)
        with pytest.raises(ValueError):
            lemma6_bound(3, -1)

    def test_complete_graph(self):
        n = 5
        graph = DiGraph([(u, v) for u in range(1, n + 1) for v in range(1, n + 1) if u != v])
        evidence = verify_lemma6(graph)
        assert evidence["delta"] == n - 1
        assert evidence["holds"]
        assert evidence["count"] == 1

    @pytest.mark.parametrize("n,delta,seed", [(6, 1, 0), (10, 2, 1), (12, 3, 2), (20, 4, 3), (30, 5, 4)])
    def test_random_graphs_satisfy_lemma6(self, n, delta, seed):
        graph = random_min_indegree_graph(n, delta, seed)
        assert min_in_degree(graph) >= delta
        evidence = verify_lemma6(graph)
        assert evidence["holds"], evidence
        assert evidence["largest_source_size"] >= delta + 1
        assert evidence["count"] <= lemma6_bound(n, delta)

    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=1000),
    )
    def test_lemma6_property(self, n, delta, seed):
        delta = min(delta, n - 1)
        graph = random_min_indegree_graph(n, delta, seed)
        evidence = verify_lemma6(graph)
        assert evidence["holds"]
        # The number of source components never exceeds floor(n / (delta+1)).
        assert evidence["count"] <= max(n // (delta + 1), 1)


class TestLemma7:
    def test_disconnected_components_each_have_source(self):
        left = [(1, 2), (2, 1)]
        right = [(3, 4), (4, 5), (5, 3)]
        graph = DiGraph(left + right)
        report = verify_lemma7(graph)
        assert report["holds"]
        assert len(report["components"]) == 2

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=1000),
    )
    def test_lemma7_property(self, n, seed):
        delta = max(1, n // 4)
        graph = random_min_indegree_graph(n, min(delta, n - 1), seed)
        assert verify_lemma7(graph)["holds"]


class TestInitialCliques:
    def test_complete_source_is_clique(self):
        graph = DiGraph([(1, 2), (2, 1), (1, 3), (2, 3)])
        assert initial_cliques(graph) == (frozenset({1, 2}),)

    def test_non_clique_source_excluded(self):
        # {1,2,3} strongly connected via a cycle but not a complete clique.
        graph = DiGraph([(1, 2), (2, 3), (3, 1), (3, 4)])
        assert initial_cliques(graph) == ()

    def test_majority_threshold_gives_single_clique(self):
        # Emulate an FLP stage-1 graph with L-1 = 3 of n = 5: everyone heard
        # from the first four processes.
        graph = DiGraph(nodes=range(1, 6))
        for receiver in range(1, 6):
            for sender in range(1, 5):
                if sender != receiver:
                    graph.add_edge(sender, receiver)
        cliques = initial_cliques(graph)
        assert cliques == (frozenset({1, 2, 3, 4}),)
