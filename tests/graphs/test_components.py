"""Tests for :mod:`repro.graphs.components`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.components import (
    condensation,
    strongly_connected_components,
    weakly_connected_components,
)
from repro.graphs.digraph import DiGraph

networkx = pytest.importorskip("networkx", reason="networkx used only for cross-checks")


def edges_strategy(max_nodes: int = 9):
    node = st.integers(min_value=1, max_value=max_nodes)
    return st.lists(st.tuples(node, node), max_size=40)


class TestStronglyConnectedComponents:
    def test_empty_graph(self):
        assert strongly_connected_components(DiGraph()) == ()

    def test_single_node(self):
        assert strongly_connected_components(DiGraph(nodes=[1])) == (frozenset({1}),)

    def test_cycle_is_one_component(self):
        graph = DiGraph([(1, 2), (2, 3), (3, 1)])
        assert strongly_connected_components(graph) == (frozenset({1, 2, 3}),)

    def test_chain_is_singletons(self):
        graph = DiGraph([(1, 2), (2, 3)])
        components = strongly_connected_components(graph)
        assert set(components) == {frozenset({1}), frozenset({2}), frozenset({3})}

    def test_two_cycles_bridge(self):
        graph = DiGraph([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)])
        components = set(strongly_connected_components(graph))
        assert components == {frozenset({1, 2}), frozenset({3, 4})}

    def test_deep_chain_does_not_recurse(self):
        # An iterative implementation must handle paths longer than the
        # default Python recursion limit.
        edges = [(i, i + 1) for i in range(1, 3000)]
        graph = DiGraph(edges)
        assert len(strongly_connected_components(graph)) == 3000

    @given(edges_strategy())
    def test_matches_networkx(self, edges):
        graph = DiGraph(edges)
        ours = {frozenset(c) for c in strongly_connected_components(graph)}
        nx_graph = networkx.DiGraph()
        nx_graph.add_nodes_from(graph.nodes)
        nx_graph.add_edges_from(graph.edges)
        theirs = {frozenset(c) for c in networkx.strongly_connected_components(nx_graph)}
        assert ours == theirs

    @given(edges_strategy())
    def test_components_partition_nodes(self, edges):
        graph = DiGraph(edges)
        components = strongly_connected_components(graph)
        seen = [node for component in components for node in component]
        assert sorted(seen) == sorted(graph.nodes)
        assert len(seen) == len(set(seen))


class TestWeaklyConnectedComponents:
    def test_disconnected(self):
        graph = DiGraph([(1, 2), (3, 4)])
        assert set(weakly_connected_components(graph)) == {
            frozenset({1, 2}),
            frozenset({3, 4}),
        }

    def test_direction_is_ignored(self):
        graph = DiGraph([(1, 2), (3, 2)])
        assert weakly_connected_components(graph) == (frozenset({1, 2, 3}),)

    @given(edges_strategy())
    def test_matches_networkx(self, edges):
        graph = DiGraph(edges)
        ours = {frozenset(c) for c in weakly_connected_components(graph)}
        nx_graph = networkx.DiGraph()
        nx_graph.add_nodes_from(graph.nodes)
        nx_graph.add_edges_from(graph.edges)
        theirs = {frozenset(c) for c in networkx.weakly_connected_components(nx_graph)}
        assert ours == theirs


class TestCondensation:
    def test_is_dag(self):
        graph = DiGraph([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3), (4, 1)])
        # 4 -> 1 merges everything into one component.
        dag, membership = condensation(graph)
        assert len(dag) == 1
        assert membership[1] == frozenset({1, 2, 3, 4})

    def test_edges_between_components(self):
        graph = DiGraph([(1, 2), (2, 1), (2, 3)])
        dag, membership = condensation(graph)
        assert dag.has_edge(membership[1], membership[3])

    @given(edges_strategy())
    def test_condensation_is_acyclic(self, edges):
        graph = DiGraph(edges)
        dag, _membership = condensation(graph)
        # A DAG's strongly connected components are all singletons.
        assert all(len(c) == 1 for c in strongly_connected_components(dag))

    @given(edges_strategy())
    def test_membership_consistent(self, edges):
        graph = DiGraph(edges)
        _dag, membership = condensation(graph)
        for node in graph.nodes:
            assert node in membership[node]
