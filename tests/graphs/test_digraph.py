"""Tests for :mod:`repro.graphs.digraph`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graphs.digraph import DiGraph


def edges_strategy(max_nodes: int = 8):
    node = st.integers(min_value=1, max_value=max_nodes)
    return st.lists(st.tuples(node, node), max_size=30)


class TestConstruction:
    def test_empty(self):
        graph = DiGraph()
        assert len(graph) == 0
        assert graph.edges == ()

    def test_add_edge_creates_nodes(self):
        graph = DiGraph()
        graph.add_edge(1, 2)
        assert set(graph.nodes) == {1, 2}
        assert graph.has_edge(1, 2)
        assert not graph.has_edge(2, 1)

    def test_no_parallel_edges(self):
        graph = DiGraph([(1, 2), (1, 2)])
        assert graph.number_of_edges() == 1

    def test_self_loop_allowed(self):
        graph = DiGraph([(1, 1)])
        assert graph.has_edge(1, 1)
        assert graph.in_degree(1) == 1

    def test_isolated_nodes(self):
        graph = DiGraph(nodes=[1, 2, 3])
        assert len(graph) == 3
        assert graph.number_of_edges() == 0


class TestQueries:
    def test_degrees(self):
        graph = DiGraph([(1, 2), (3, 2), (2, 4)])
        assert graph.in_degree(2) == 2
        assert graph.out_degree(2) == 1
        assert graph.in_degree(1) == 0

    def test_successors_predecessors(self):
        graph = DiGraph([(1, 2), (1, 3), (3, 2)])
        assert set(graph.successors(1)) == {2, 3}
        assert set(graph.predecessors(2)) == {1, 3}

    def test_undirected_neighbours(self):
        graph = DiGraph([(1, 2), (3, 1)])
        assert set(graph.undirected_neighbours(1)) == {2, 3}

    def test_contains(self):
        graph = DiGraph([(1, 2)])
        assert 1 in graph and 5 not in graph


class TestMutation:
    def test_remove_node(self):
        graph = DiGraph([(1, 2), (2, 3), (3, 1)])
        graph.remove_node(2)
        assert 2 not in graph
        assert graph.edges == ((3, 1),)

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            DiGraph().remove_node(1)


class TestDerivedGraphs:
    def test_subgraph(self):
        graph = DiGraph([(1, 2), (2, 3), (3, 4)])
        sub = graph.subgraph([2, 3])
        assert set(sub.nodes) == {2, 3}
        assert sub.edges == ((2, 3),)

    def test_subgraph_ignores_unknown(self):
        graph = DiGraph([(1, 2)])
        sub = graph.subgraph([1, 99])
        assert set(sub.nodes) == {1}

    def test_reverse(self):
        graph = DiGraph([(1, 2), (2, 3)])
        rev = graph.reverse()
        assert rev.has_edge(2, 1) and rev.has_edge(3, 2)
        assert not rev.has_edge(1, 2)

    def test_copy_is_independent(self):
        graph = DiGraph([(1, 2)])
        clone = graph.copy()
        clone.add_edge(2, 3)
        assert not graph.has_edge(2, 3)

    def test_equality(self):
        assert DiGraph([(1, 2)]) == DiGraph([(1, 2)])
        assert DiGraph([(1, 2)]) != DiGraph([(2, 1)])

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(DiGraph())


class TestProperties:
    @given(edges_strategy())
    def test_degree_sums_match_edge_count(self, edges):
        graph = DiGraph(edges)
        total_in = sum(graph.in_degree(v) for v in graph.nodes)
        total_out = sum(graph.out_degree(v) for v in graph.nodes)
        assert total_in == total_out == graph.number_of_edges()

    @given(edges_strategy())
    def test_reverse_twice_is_identity(self, edges):
        graph = DiGraph(edges)
        assert graph.reverse().reverse() == graph

    @given(edges_strategy())
    def test_subgraph_of_all_nodes_is_same(self, edges):
        graph = DiGraph(edges)
        assert graph.subgraph(graph.nodes) == graph
