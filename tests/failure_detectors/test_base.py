"""Tests for :mod:`repro.failure_detectors.base`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern, QueryRecord, RecordedHistory


def pattern_strategy(max_n: int = 8):
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=1, max_value=max_n))
        processes = tuple(range(1, n + 1))
        faulty = draw(st.sets(st.sampled_from(processes), max_size=n))
        crash_times = {p: draw(st.integers(min_value=0, max_value=30)) for p in faulty}
        return FailurePattern(processes, crash_times)

    return build()


class TestFailurePatternConstruction:
    def test_all_correct(self):
        pattern = FailurePattern.all_correct((1, 2, 3))
        assert pattern.faulty == frozenset()
        assert pattern.correct == {1, 2, 3}

    def test_initially_dead(self):
        pattern = FailurePattern.initially_dead((1, 2, 3), {2})
        assert pattern.initially_dead_set == {2}
        assert pattern.crash_times[2] == 0

    def test_unknown_process_rejected(self):
        with pytest.raises(ConfigurationError):
            FailurePattern((1, 2), {3: 0})

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FailurePattern((1,), {1: -1})


class TestFailurePatternQueries:
    def test_crashed_at(self):
        pattern = FailurePattern((1, 2, 3), {1: 0, 2: 5})
        assert pattern.crashed_at(0) == {1}
        assert pattern.crashed_at(4) == {1}
        assert pattern.crashed_at(5) == {1, 2}
        assert pattern.alive_at(5) == {3}

    def test_is_crashed(self):
        pattern = FailurePattern((1, 2), {2: 3})
        assert not pattern.is_crashed(2, 2)
        assert pattern.is_crashed(2, 3)
        assert not pattern.is_crashed(1, 100)

    def test_last_crash_time(self):
        assert FailurePattern((1, 2), {}).last_crash_time == 0
        assert FailurePattern((1, 2), {1: 7}).last_crash_time == 7

    def test_restricted_to(self):
        pattern = FailurePattern((1, 2, 3, 4), {1: 0, 3: 5})
        restricted = pattern.restricted_to([1, 2])
        assert restricted.processes == (1, 2)
        assert restricted.faulty == {1}

    def test_describe(self):
        assert FailurePattern((1,), {}).describe() == "no failures"
        assert "p1@init" in FailurePattern((1, 2), {1: 0}).describe()

    @given(pattern_strategy(), st.integers(min_value=0, max_value=40))
    def test_alive_and_crashed_partition(self, pattern, t):
        assert pattern.alive_at(t) | pattern.crashed_at(t) == frozenset(pattern.processes)
        assert pattern.alive_at(t).isdisjoint(pattern.crashed_at(t))

    @given(pattern_strategy())
    def test_correct_and_faulty_partition(self, pattern):
        assert pattern.correct | pattern.faulty == frozenset(pattern.processes)
        assert pattern.correct.isdisjoint(pattern.faulty)

    @given(pattern_strategy(), st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=20))
    def test_crashed_monotone_in_time(self, pattern, t1, t2):
        early, late = sorted((t1, t2))
        assert pattern.crashed_at(early).issubset(pattern.crashed_at(late))


class TestFailurePatternMerge:
    def test_merge_disjoint(self):
        left = FailurePattern((1, 2), {1: 0})
        right = FailurePattern((3, 4), {4: 6})
        merged = left.merge(right)
        assert merged.processes == (1, 2, 3, 4)
        assert merged.faulty == {1, 4}

    def test_merge_agreeing_overlap(self):
        left = FailurePattern((1, 2), {1: 3})
        right = FailurePattern((1, 3), {1: 3})
        merged = left.merge(right)
        assert merged.crash_times[1] == 3

    def test_merge_conflicting_overlap_rejected(self):
        left = FailurePattern((1, 2), {1: 3})
        right = FailurePattern((1, 3), {1: 5})
        with pytest.raises(ConfigurationError):
            left.merge(right)


class TestRecordedHistory:
    def test_record_and_query(self):
        history = RecordedHistory()
        history.record(1, 3, "a")
        history.record(1, 5, "b")
        history.record(2, 4, "c")
        assert len(history) == 3
        assert history.processes() == {1, 2}
        assert [r.output for r in history.records_of(1)] == ["a", "b"]
        assert history.last_output(1) == "b"
        assert history.last_output(9) is None

    def test_outputs_after(self):
        history = RecordedHistory([QueryRecord(1, 2, "x"), QueryRecord(1, 9, "y")])
        assert [r.output for r in history.outputs_after(5)] == ["y"]

    def test_project(self):
        history = RecordedHistory([QueryRecord(1, 1, {"sigma": {1}, "omega": {2}})])
        sigma = history.project(lambda out: out["sigma"])
        assert list(sigma)[0].output == {1}
