"""Tests for P, <>P, the loneliness detector, transformations and the registry."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern, QueryRecord, RecordedHistory
from repro.failure_detectors.loneliness import LonelinessDetector
from repro.failure_detectors.perfect import EventuallyPerfectDetector, PerfectDetector
from repro.failure_detectors.registry import (
    available_detectors,
    make_detector,
    register_detector,
)
from repro.failure_detectors.sigma import SigmaK
from repro.failure_detectors.transformations import identity_transformation


def record_all(detector, pattern, horizon=8):
    history = RecordedHistory()
    for t in range(1, horizon):
        for pid in pattern.processes:
            history.record(pid, t, detector.output(pid, t, pattern))
    return history


class TestPerfectDetector:
    def test_output_is_crashed_set(self):
        pattern = FailurePattern((1, 2, 3), {2: 4})
        detector = PerfectDetector()
        assert detector.output(1, 3, pattern) == frozenset()
        assert detector.output(1, 4, pattern) == {2}

    def test_constructive_history_valid(self):
        pattern = FailurePattern((1, 2, 3), {2: 4})
        detector = PerfectDetector()
        assert detector.check_history(record_all(detector, pattern), pattern) == []

    def test_premature_suspicion_flagged(self):
        pattern = FailurePattern((1, 2), {})
        history = RecordedHistory([QueryRecord(1, 1, frozenset({2}))])
        assert any("accuracy" in v for v in PerfectDetector().check_history(history, pattern))

    def test_missing_suspicion_flagged(self):
        pattern = FailurePattern((1, 2), {2: 1})
        history = RecordedHistory([QueryRecord(1, 5, frozenset())])
        assert any("completeness" in v for v in PerfectDetector().check_history(history, pattern))


class TestEventuallyPerfect:
    def test_wrong_before_gst_right_after(self):
        pattern = FailurePattern((1, 2, 3), {})
        detector = EventuallyPerfectDetector(gst=5)
        assert detector.output(1, 1, pattern) == {2, 3}
        assert detector.output(1, 5, pattern) == frozenset()

    def test_constructive_history_valid(self):
        pattern = FailurePattern((1, 2, 3), {3: 2})
        detector = EventuallyPerfectDetector(gst=4)
        assert detector.check_history(record_all(detector, pattern, 10), pattern) == []

    def test_gst_validation(self):
        with pytest.raises(ConfigurationError):
            EventuallyPerfectDetector(gst=-1)

    def test_late_mistake_flagged(self):
        pattern = FailurePattern((1, 2), {})
        detector = EventuallyPerfectDetector(gst=0)
        history = RecordedHistory([QueryRecord(1, 9, frozenset({2}))])
        assert detector.check_history(history, pattern)


class TestLoneliness:
    def test_true_only_when_alone(self):
        pattern = FailurePattern((1, 2, 3), {2: 0, 3: 4})
        detector = LonelinessDetector()
        assert detector.output(1, 2, pattern) is False
        assert detector.output(1, 4, pattern) is True

    def test_constructive_history_valid(self):
        pattern = FailurePattern((1, 2, 3), {2: 0, 3: 4})
        detector = LonelinessDetector()
        assert detector.check_history(record_all(detector, pattern), pattern) == []

    def test_safety_violation_flagged(self):
        pattern = FailurePattern((1, 2), {})
        history = RecordedHistory([QueryRecord(1, 1, True), QueryRecord(2, 2, True)])
        assert any("safety" in v for v in LonelinessDetector().check_history(history, pattern))

    def test_liveness_violation_flagged(self):
        pattern = FailurePattern((1, 2), {2: 1})
        history = RecordedHistory([QueryRecord(1, 5, False)])
        assert any("liveness" in v for v in LonelinessDetector().check_history(history, pattern))


class TestTransformations:
    def test_identity_transformation_passes_through(self):
        transformation = identity_transformation(
            "noop", "X", "Y", verify=lambda history, pattern: []
        )
        history = RecordedHistory([QueryRecord(1, 1, "anything")])
        pattern = FailurePattern((1,), {})
        assert transformation.emulate(history, pattern) is history
        assert transformation.apply_and_verify(history, pattern) == []

    def test_verification_failures_surface(self):
        transformation = identity_transformation(
            "bad", "X", "Y", verify=lambda history, pattern: ["broken"]
        )
        assert transformation.apply_and_verify(
            RecordedHistory(), FailurePattern((1,), {})
        ) == ["broken"]


class TestRegistry:
    def test_available_names(self):
        names = available_detectors()
        assert "sigma_k" in names and "partition" in names and "loneliness" in names

    def test_make_detector(self):
        assert make_detector("sigma_k", k=2).name == "Sigma_2"
        assert make_detector("omega_k", k=2, gst=3).gst == 3
        assert make_detector("sigma_omega_k", k=2).name == "(Sigma_2, Omega_2)"
        assert make_detector("partition", blocks=[[1, 2], [3]]).k == 2
        assert make_detector("perfect").name == "P"
        assert make_detector("eventually_perfect", gst=4).gst == 4
        assert make_detector("loneliness").name == "L"

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_detector("does-not-exist")

    def test_register_custom_and_reject_duplicates(self):
        register_detector("custom-sigma-test", lambda **kw: SigmaK(1))
        assert make_detector("custom-sigma-test").name == "Sigma"
        with pytest.raises(ConfigurationError):
            register_detector("custom-sigma-test", lambda **kw: SigmaK(1))
