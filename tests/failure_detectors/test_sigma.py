"""Tests for :mod:`repro.failure_detectors.sigma` (Definition 4)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern, QueryRecord, RecordedHistory
from repro.failure_detectors.sigma import SigmaK, check_sigma_history


def pattern_and_queries(max_n: int = 6):
    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=2, max_value=max_n))
        processes = tuple(range(1, n + 1))
        faulty = draw(st.sets(st.sampled_from(processes), max_size=n - 1))
        crash_times = {p: draw(st.integers(min_value=0, max_value=15)) for p in faulty}
        pattern = FailurePattern(processes, crash_times)
        queries = draw(
            st.lists(
                st.tuples(st.sampled_from(processes), st.integers(min_value=1, max_value=40)),
                min_size=1,
                max_size=25,
            )
        )
        return pattern, queries

    return build()


class TestSigmaOutputs:
    def test_k_validation(self):
        with pytest.raises(ConfigurationError):
            SigmaK(0)

    def test_name(self):
        assert SigmaK(1).name == "Sigma"
        assert SigmaK(3).name == "Sigma_3"

    def test_output_is_alive_set(self):
        pattern = FailurePattern((1, 2, 3), {3: 5})
        detector = SigmaK(2)
        assert detector.output(1, 2, pattern) == {1, 2, 3}
        assert detector.output(1, 6, pattern) == {1, 2}

    def test_crashed_querier_gets_full_set(self):
        pattern = FailurePattern((1, 2, 3), {1: 2})
        assert SigmaK(1).output(1, 4, pattern) == {1, 2, 3}

    def test_singleton_when_alone(self):
        pattern = FailurePattern((1, 2, 3), {1: 0, 2: 0})
        assert SigmaK(2).output(3, 1, pattern) == {3}


class TestSigmaChecker:
    def make_history(self, detector, pattern, queries):
        history = RecordedHistory()
        for pid, t in queries:
            history.record(pid, t, detector.output(pid, t, pattern))
        return history

    @given(pattern_and_queries(), st.integers(min_value=1, max_value=4))
    def test_constructive_histories_are_valid(self, data, k):
        pattern, queries = data
        detector = SigmaK(k)
        history = self.make_history(detector, pattern, queries)
        assert detector.check_history(history, pattern) == []

    def test_disjoint_singletons_violate_intersection(self):
        pattern = FailurePattern.all_correct((1, 2, 3))
        history = RecordedHistory(
            [
                QueryRecord(1, 1, frozenset({1})),
                QueryRecord(2, 2, frozenset({2})),
                QueryRecord(3, 3, frozenset({3})),
            ]
        )
        violations = check_sigma_history(history, pattern, k=2)
        assert any("intersection" in v for v in violations)

    def test_pairwise_disjoint_required_for_violation(self):
        # With k = 2 and three queriers, two intersecting quorums suffice.
        pattern = FailurePattern.all_correct((1, 2, 3))
        history = RecordedHistory(
            [
                QueryRecord(1, 1, frozenset({1, 2})),
                QueryRecord(2, 2, frozenset({2})),
                QueryRecord(3, 3, frozenset({3})),
            ]
        )
        assert check_sigma_history(history, pattern, k=2) == []

    def test_k1_requires_every_pair_to_intersect(self):
        pattern = FailurePattern.all_correct((1, 2))
        history = RecordedHistory(
            [QueryRecord(1, 1, frozenset({1})), QueryRecord(2, 2, frozenset({2}))]
        )
        assert check_sigma_history(history, pattern, k=1)

    def test_liveness_violation_detected(self):
        pattern = FailurePattern((1, 2, 3), {3: 2})
        history = RecordedHistory(
            [QueryRecord(1, 10, frozenset({1, 3}))]  # trusts crashed p3 after t=2
        )
        violations = check_sigma_history(history, pattern, k=1)
        assert any("liveness" in v for v in violations)

    def test_liveness_allows_trusting_before_crash(self):
        pattern = FailurePattern((1, 2, 3), {3: 20})
        history = RecordedHistory([QueryRecord(1, 10, frozenset({1, 2, 3}))])
        assert check_sigma_history(history, pattern, k=1) == []

    def test_non_set_output_flagged(self):
        pattern = FailurePattern.all_correct((1, 2))
        history = RecordedHistory([QueryRecord(1, 1, "not a set")])
        assert check_sigma_history(history, pattern, k=1)

    def test_invalid_k_rejected(self):
        pattern = FailurePattern.all_correct((1,))
        with pytest.raises(ConfigurationError):
            check_sigma_history(RecordedHistory(), pattern, k=0)
