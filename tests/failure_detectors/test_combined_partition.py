"""Tests for product detectors and the partition detector (Definition 7)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern, RecordedHistory
from repro.failure_detectors.combined import ProductDetector, sigma_omega_k
from repro.failure_detectors.omega import OmegaK
from repro.failure_detectors.partition import PartitionDetector
from repro.failure_detectors.sigma import SigmaK
from repro.failure_detectors.transformations import verify_lemma9


class TestProductDetector:
    def test_requires_components(self):
        with pytest.raises(ConfigurationError):
            ProductDetector({})

    def test_output_combines_components(self):
        pattern = FailurePattern((1, 2, 3), {})
        detector = sigma_omega_k(2, gst=0)
        output = detector.output(1, 1, pattern)
        assert set(output) == {"sigma", "omega"}
        assert output["sigma"] == {1, 2, 3}
        assert len(output["omega"]) == 2

    def test_component_access(self):
        detector = sigma_omega_k(1)
        assert isinstance(detector.component("sigma"), SigmaK)
        assert isinstance(detector.component("omega"), OmegaK)

    def test_name(self):
        assert sigma_omega_k(3).name == "(Sigma_3, Omega_3)"

    def test_check_history_delegates(self):
        pattern = FailurePattern((1, 2, 3), {})
        detector = sigma_omega_k(1, gst=0)
        history = RecordedHistory()
        for t in range(1, 5):
            for p in (1, 2, 3):
                history.record(p, t, detector.output(p, t, pattern))
        assert detector.check_history(history, pattern) == []


class TestPartitionDetectorConstruction:
    def test_requires_nonempty_disjoint_blocks(self):
        with pytest.raises(ConfigurationError):
            PartitionDetector([])
        with pytest.raises(ConfigurationError):
            PartitionDetector([[]])
        with pytest.raises(ConfigurationError):
            PartitionDetector([[1, 2], [2, 3]])

    def test_k_is_number_of_blocks(self):
        detector = PartitionDetector([[1, 2, 3], [4], [5]])
        assert detector.k == 3
        assert detector.block_of(4) == {4}

    def test_unknown_process_rejected(self):
        detector = PartitionDetector([[1, 2]])
        with pytest.raises(ConfigurationError):
            detector.block_of(7)


class TestPartitionDetectorOutputs:
    def test_sigma_prime_stays_in_block(self):
        detector = PartitionDetector([[1, 2, 3], [4, 5]], gst=0)
        pattern = FailurePattern((1, 2, 3, 4, 5), {2: 4})
        assert detector.output(1, 1, pattern)["sigma"] == {1, 2, 3}
        assert detector.output(1, 9, pattern)["sigma"] == {1, 3}
        assert detector.output(4, 1, pattern)["sigma"] == {4, 5}

    def test_crashed_querier_gets_pi(self):
        detector = PartitionDetector([[1, 2], [3]], gst=0)
        pattern = FailurePattern((1, 2, 3), {1: 2})
        assert detector.output(1, 5, pattern)["sigma"] == {1, 2, 3}

    def test_omega_component_matches_omega_k(self):
        detector = PartitionDetector([[1], [2], [3, 4]], gst=0)
        pattern = FailurePattern((1, 2, 3, 4), {})
        assert detector.output(1, 3, pattern)["omega"] == {1, 2, 3}


class TestPartitionDetectorChecker:
    def build_history(self, detector, pattern, horizon=6):
        history = RecordedHistory()
        for t in range(1, horizon):
            for pid in pattern.processes:
                if not pattern.is_crashed(pid, t):
                    history.record(pid, t, detector.output(pid, t, pattern))
        return history

    def test_constructive_history_valid_for_definition7(self):
        detector = PartitionDetector([[1, 2, 3], [4], [5]], gst=0)
        pattern = FailurePattern((1, 2, 3, 4, 5), {3: 2})
        history = self.build_history(detector, pattern)
        assert detector.check_history(history, pattern) == []

    def test_lemma9_partitioning_history_is_sigma_omega_history(self):
        # The executable content of Lemma 9: every partitioning history also
        # satisfies the (Sigma_k, Omega_k) properties.
        detector = PartitionDetector([[1, 2, 3], [4], [5]], gst=0)
        pattern = FailurePattern((1, 2, 3, 4, 5), {2: 3})
        history = self.build_history(detector, pattern)
        assert verify_lemma9(history, pattern, k=3) == []

    @given(st.integers(min_value=4, max_value=8), st.integers(min_value=2, max_value=4))
    def test_lemma9_property(self, n, k):
        k = min(k, n - 2)
        blocks = [list(range(1, n - k + 2))] + [[p] for p in range(n - k + 2, n + 1)]
        detector = PartitionDetector(blocks, gst=0)
        pattern = FailurePattern(tuple(range(1, n + 1)), {})
        history = self.build_history(detector, pattern)
        assert verify_lemma9(history, pattern, k=k) == []

    def test_cross_block_quorum_flagged(self):
        detector = PartitionDetector([[1, 2], [3]], gst=0)
        pattern = FailurePattern((1, 2, 3), {})
        history = RecordedHistory()
        history.record(1, 1, {"sigma": frozenset({1, 3}), "omega": frozenset({1, 2})})
        violations = detector.check_history(history, pattern)
        assert any("leaves its block" in v for v in violations)
