"""Tests for :mod:`repro.failure_detectors.omega` (Definition 5)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern, QueryRecord, RecordedHistory
from repro.failure_detectors.omega import OmegaK, check_omega_history


class TestConfiguration:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            OmegaK(0)
        with pytest.raises(ConfigurationError):
            OmegaK(1, gst=-1)
        with pytest.raises(ConfigurationError):
            OmegaK(1, rotation_period=0)

    def test_name(self):
        assert OmegaK(1).name == "Omega"
        assert OmegaK(2).name == "Omega_2"


class TestFinalLeaders:
    def test_default_is_smallest_correct(self):
        pattern = FailurePattern((1, 2, 3, 4), {1: 0})
        assert OmegaK(2).final_leaders(pattern) == {2, 3}

    def test_padded_with_faulty_when_needed(self):
        pattern = FailurePattern((1, 2, 3), {1: 0, 2: 0})
        assert OmegaK(2).final_leaders(pattern) == {3, 1}

    def test_explicit_leaders_validated(self):
        pattern = FailurePattern((1, 2, 3), {3: 0})
        detector = OmegaK(2, leaders={1, 2})
        assert detector.final_leaders(pattern) == {1, 2}
        with pytest.raises(ConfigurationError):
            OmegaK(1, leaders={1, 2}).final_leaders(pattern)
        with pytest.raises(ConfigurationError):
            OmegaK(1, leaders={9}).final_leaders(pattern)
        with pytest.raises(ConfigurationError):
            OmegaK(1, leaders={3}).final_leaders(pattern)  # only faulty member

    def test_too_few_processes(self):
        pattern = FailurePattern((1, 2), {})
        with pytest.raises(ConfigurationError):
            OmegaK(3).final_leaders(pattern)


class TestOutputs:
    def test_stable_after_gst(self):
        pattern = FailurePattern((1, 2, 3), {})
        detector = OmegaK(1, gst=10)
        outputs = {detector.output(p, t, pattern) for p in (1, 2, 3) for t in (10, 20, 99)}
        assert outputs == {frozenset({1})}

    def test_rotates_before_gst(self):
        pattern = FailurePattern((1, 2, 3, 4), {})
        detector = OmegaK(2, gst=100, rotation_period=1)
        early = {detector.output(1, t, pattern) for t in range(0, 8)}
        assert len(early) > 1
        assert all(len(o) == 2 for o in early)

    def test_output_size_always_k(self):
        pattern = FailurePattern((1, 2, 3, 4, 5), {2: 0})
        detector = OmegaK(3, gst=5)
        for t in range(0, 12):
            assert len(detector.output(1, t, pattern)) == 3


class TestChecker:
    def record_history(self, detector, pattern, queries):
        history = RecordedHistory()
        for pid, t in queries:
            history.record(pid, t, detector.output(pid, t, pattern))
        return history

    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=10),
    )
    def test_constructive_histories_are_valid(self, n, k, gst):
        k = min(k, n - 1)
        pattern = FailurePattern(tuple(range(1, n + 1)), {})
        detector = OmegaK(k, gst=gst)
        queries = [(p, t) for p in range(1, n + 1) for t in range(gst, gst + 4)]
        history = self.record_history(detector, pattern, queries)
        assert detector.check_history(history, pattern) == []

    def test_validity_violation_detected(self):
        pattern = FailurePattern((1, 2, 3), {})
        history = RecordedHistory([QueryRecord(1, 1, frozenset({1, 2}))])
        violations = check_omega_history(history, pattern, k=1)
        assert any("validity" in v for v in violations)

    def test_unknown_process_in_output(self):
        pattern = FailurePattern((1, 2), {})
        history = RecordedHistory([QueryRecord(1, 1, frozenset({9}))])
        assert check_omega_history(history, pattern, k=1)

    def test_leadership_violation_when_final_set_faulty(self):
        pattern = FailurePattern((1, 2, 3), {3: 0})
        history = RecordedHistory(
            [QueryRecord(1, 5, frozenset({3})), QueryRecord(2, 6, frozenset({3}))]
        )
        violations = check_omega_history(history, pattern, k=1)
        assert any("leadership" in v for v in violations)

    def test_non_set_output_flagged(self):
        pattern = FailurePattern((1, 2), {})
        history = RecordedHistory([QueryRecord(1, 1, 42)])
        assert check_omega_history(history, pattern, k=1)

    def test_empty_history_is_fine(self):
        pattern = FailurePattern((1, 2), {})
        assert check_omega_history(RecordedHistory(), pattern, k=1) == []
