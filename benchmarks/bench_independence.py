"""E11 — T-independence (Section IV): classic progress conditions measured.

For a 6-process system the benchmark checks which of the Section IV
progress-condition families the two reference algorithms satisfy
constructively:

* the decide-own-value protocol is wait-free: every nonempty subset of
  processes can decide in isolation (2^n - 1 witnesses);
* the Section VI protocol with ``f`` initial crashes is f-resilient but not
  wait-free: exactly the subsets of size at least ``n - f`` decide in
  isolation.
"""

from __future__ import annotations

import pytest

from repro import DecideOwnValue, KSetInitialCrash, initial_crash_model
from repro.analysis.reporting import format_table
from repro.core.independence import (
    check_independence,
    f_resilient_family,
    obstruction_free_family,
    wait_free_family,
)
from benchmarks.conftest import emit

N, F = 6, 3


def run_families():
    model = initial_crash_model(N, F)
    proposals = {p: p for p in model.processes}
    results = {}
    results["trivial / wait-free"] = check_independence(
        DecideOwnValue(), model, wait_free_family(model.processes), proposals, max_steps=200,
    )
    results["section6 / f-resilient"] = check_independence(
        KSetInitialCrash(N, F), model, f_resilient_family(model.processes, F),
        proposals, max_steps=2_000,
    )
    results["section6 / obstruction-free"] = check_independence(
        KSetInitialCrash(N, F), model, obstruction_free_family(model.processes),
        proposals, max_steps=300,
    )
    results["section6 / wait-free"] = check_independence(
        KSetInitialCrash(N, F), model, wait_free_family(model.processes),
        proposals, max_steps=500,
    )
    return results


def test_independence_families(benchmark):
    results = benchmark.pedantic(run_families, iterations=1, rounds=1)
    rows = []
    for label, witnesses in results.items():
        holding = sum(w.holds for w in witnesses)
        rows.append((label, len(witnesses), holding))
    emit(
        "E11 T-independence of the reference algorithms (n=6, f=3)",
        format_table(("algorithm / family", "sets checked", "sets independent"), rows),
    )
    table = dict((row[0], row) for row in rows)
    # wait-freedom of the trivial protocol: all 63 subsets
    assert table["trivial / wait-free"][1] == table["trivial / wait-free"][2] == 63
    # f-resilience of the Section VI protocol: all subsets of size >= n - f
    assert table["section6 / f-resilient"][1] == table["section6 / f-resilient"][2]
    # but not obstruction-freedom / wait-freedom: singletons cannot decide alone
    assert table["section6 / obstruction-free"][2] == 0
    assert table["section6 / wait-free"][2] < table["section6 / wait-free"][1]
    # precisely the large-enough subsets are independent
    section6_waitfree = results["section6 / wait-free"]
    for witness in section6_waitfree:
        assert witness.holds == (len(witness.subset) >= N - F), witness.subset
    benchmark.extra_info.update({label: f"{row[2]}/{row[1]}" for label, row in table.items()})
