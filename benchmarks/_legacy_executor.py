"""The seed's executor + decision hot path, frozen as a regression reference.

The zero-copy executor PR rebuilt two hot paths:

* the executor's per-step loop (eager ``AdversaryView`` snapshots,
  per-step ``frozenset`` rebuilds, unconditional ``StepEvent`` and
  fd-history recording), and
* the Section VI decision attempt (a :class:`KnowledgeGraph` rebuilt per
  stage-2 step, with a ``DiGraph``-materialise/induce/condense pipeline
  per deciding process).

This module keeps both *pre-refactor* implementations verbatim — the same
idiom ``tests/analysis/test_border_sweep.py`` uses for the pre-campaign
sweep — so the scalability benchmark can assert the measured speedup of
the current engine against the code it replaced, inside one checkout, on
the same machine and interpreter.  ``legacy_execute`` + ``LegacyKSet``
produce bit-identical runs to the current engine (the benchmark asserts
that too); only their cost differs.  Not part of the library: benchmarks
only.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.two_stage import TwoStageState
from repro.exceptions import (
    AdmissibilityError,
    AlgorithmError,
    ConfigurationError,
    ScheduleExhaustedError,
)
from repro.failure_detectors.base import FailurePattern, RecordedHistory
from repro.graphs.knowledge_graph import KnowledgeGraph
from repro.graphs.source_components import reachable_source_components
from repro.simulation.events import StepEvent
from repro.simulation.executor import (
    ExecutionSettings,
    _validate_initial_states,
    _validate_pattern,
    _validate_proposals,
    _validate_transition,
    all_correct_decided,
)
from repro.simulation.message import MessageBuffer
from repro.simulation.run import Run
from repro.simulation.scheduler import AdversaryView, RoundRobinScheduler

__all__ = ["legacy_execute", "LegacyKSet"]


def legacy_execute(algorithm, model, proposals, *, adversary=None,
                   failure_pattern=None, settings=None) -> Run:
    """The seed `execute`: eager snapshot views, full recording, O(n)/step."""
    settings = settings or ExecutionSettings()
    adversary = adversary or RoundRobinScheduler()
    stop_condition = settings.stop_condition or all_correct_decided

    processes = model.processes
    _validate_proposals(proposals, processes)
    pattern = failure_pattern or FailurePattern.all_correct(processes)
    _validate_pattern(pattern, model)

    detector = model.failure_detector
    if algorithm.requires_failure_detector and detector is None:
        raise ConfigurationError(
            f"algorithm {algorithm.name} queries a failure detector but model "
            f"{model.name} provides none"
        )

    states: Dict = {
        pid: algorithm.initial_state(pid, processes, proposals[pid]) for pid in processes
    }
    _validate_initial_states(states)

    buffer = MessageBuffer(processes)
    history = RecordedHistory()
    events = []
    decided = {pid for pid, s in states.items() if s.has_decided}
    correct = pattern.correct & frozenset(processes)

    completed = stop_condition(states, frozenset(decided), correct)
    time = 0
    while not completed and time < settings.max_steps:
        time += 1
        view = AdversaryView(
            time=time,
            processes=processes,
            states=dict(states),
            pending={pid: buffer.pending_for(pid) for pid in processes},
            alive=pattern.alive_at(time),
            correct=correct,
            decided=frozenset(decided),
        )
        directive = adversary.next_step(view)
        if directive is None:
            time -= 1
            break
        pid = directive.pid
        if pid not in states:
            raise AdmissibilityError(f"adversary scheduled unknown process p{pid}")
        if pattern.is_crashed(pid, time):
            raise AdmissibilityError(
                f"adversary scheduled p{pid} at time {time}, but it crashes at "
                f"time {pattern.crash_times.get(pid)}"
            )

        fd_output = None
        if detector is not None:
            fd_output = detector.output(pid, time, pattern)
            history.record(pid, time, fd_output)

        delivered = buffer.take(pid, directive.deliver)

        old_state = states[pid]
        output = algorithm.step(old_state, delivered, fd_output)
        new_state = output.state
        _validate_transition(pid, old_state, new_state)

        sent = []
        for outgoing in output.messages:
            if outgoing.receiver not in states:
                raise AlgorithmError(
                    f"p{pid} sent a message to p{outgoing.receiver}, which is not "
                    f"part of the executed system"
                )
            sent.append(buffer.put(pid, outgoing.receiver, outgoing.payload, time))

        states[pid] = new_state
        newly_decided = new_state.has_decided and not old_state.has_decided
        if newly_decided:
            decided.add(pid)
        events.append(
            StepEvent(
                time=time,
                pid=pid,
                delivered=delivered,
                fd_output=fd_output,
                sent=tuple(sent),
                state_after=new_state,
                newly_decided=newly_decided,
            )
        )
        completed = stop_condition(states, frozenset(decided), correct)

    truncated = not completed and time >= settings.max_steps
    run = Run(
        algorithm_name=algorithm.name,
        model_name=model.name,
        processes=processes,
        proposals=dict(proposals),
        events=tuple(events),
        failure_pattern=pattern,
        fd_history=history,
        completed=completed,
        truncated=truncated,
        undelivered=buffer.all_pending(),
    )
    if truncated and settings.raise_on_exhaustion:
        raise ScheduleExhaustedError(
            f"run of {algorithm.name} in {model.name} exhausted its budget",
            partial_run=run,
        )
    return run


class LegacyKSet(KSetInitialCrash):
    """Section VI protocol with the seed's per-step decision attempt.

    The seed ``step`` attempted a decision on *every* stage-2 step (no
    progress guard), rebuilding a :class:`KnowledgeGraph` from the report
    set each time and deciding through the DiGraph materialise/induce
    pipeline.  The decision rule is unchanged, so runs are identical to
    :class:`KSetInitialCrash`; only the cost model is the old one.
    """

    def step(self, state: TwoStageState, delivered, fd_output=None):
        from dataclasses import replace

        from repro.algorithms.base import StepOutput, broadcast

        if state.has_decided:
            return StepOutput(state=state)

        processes = tuple(range(1, self.n + 1))
        outgoing = []
        heard = set(state.heard_stage1)
        reports = set(state.reports)

        for message in delivered:
            payload = message.payload
            kind = payload[0]
            if kind == "S1":
                heard.add(payload[1])
            elif kind == "S2":
                _kind, sender, predecessors, value = payload
                reports.add((sender, tuple(predecessors), value))

        new_state = replace(
            state, heard_stage1=frozenset(heard), reports=frozenset(reports)
        )

        if not new_state.sent_stage1:
            outgoing.extend(
                broadcast(processes, ("S1", state.pid), exclude=(state.pid,))
            )
            new_state = replace(new_state, sent_stage1=True)

        if new_state.stage == 1 and new_state.sent_stage1:
            if len(new_state.heard_stage1 - {state.pid}) >= self.threshold - 1:
                predecessors = tuple(sorted(new_state.heard_stage1 - {state.pid}))
                own_report = (state.pid, predecessors, state.proposal)
                reports = set(new_state.reports)
                reports.add(own_report)
                outgoing.extend(
                    broadcast(
                        processes,
                        ("S2", state.pid, predecessors, state.proposal),
                        exclude=(state.pid,),
                    )
                )
                new_state = replace(
                    new_state,
                    stage=2,
                    sent_stage2=True,
                    predecessors=predecessors,
                    reports=frozenset(reports),
                )

        if new_state.stage == 2:
            decision = self._try_decide(new_state)
            if decision is not None:
                new_state = new_state.decide(decision)

        return StepOutput(state=new_state, messages=tuple(outgoing))

    def _try_decide(self, state: TwoStageState):
        knowledge = KnowledgeGraph(owner=state.pid)
        for process, predecessors, value in state.reports:
            knowledge.record(process, predecessors, value)
        if state.pid not in knowledge.heard_from:
            return None
        if not knowledge.is_complete():
            return None
        required = knowledge.required_processes()
        graph = knowledge.to_digraph().subgraph(required)
        candidates = reachable_source_components(graph, state.pid)
        if not candidates:
            return None
        chosen = min(candidates, key=lambda comp: min(comp))
        representative = min(chosen)
        return knowledge.values.get(representative)
