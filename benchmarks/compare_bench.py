#!/usr/bin/env python
"""Diff current ``BENCH_*.json`` artifacts against the committed baseline.

CI runs the benchmarks with ``REPRO_BENCH_JSON`` pointing at an artifact
directory, then invokes::

    python benchmarks/compare_bench.py --current bench-artifacts

For every baseline file in ``benchmarks/baselines/`` the corresponding
current artifact must exist, and every numeric metric the baseline pins
must be within the regression threshold (default 25%):

* keys containing ``speedup`` are **higher-is-better** — the run fails
  when the current value drops more than the threshold below baseline;
* keys ending in ``_seconds`` are machine-dependent and are skipped
  (speedup ratios, not absolute wall-clock, are what the gate pins);
* every other numeric key (steps, message counts, ...) is
  **lower-is-better** — the run fails when the current value grows more
  than the threshold above baseline.  The executor is deterministic, so
  these normally match exactly; the tolerance only absorbs deliberate
  workload changes small enough not to matter;
* a gated (non-``_seconds``) numeric metric present in the **current**
  artifact but absent from the baseline also fails the run: a benchmark
  that grows a new metric must commit its baseline in the same change,
  so new kernel metrics can never silently go ungated.

Exit status 0 when everything holds, 1 on any regression or missing
artifact — wired as a failing step into the GitHub Actions workflow.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

DEFAULT_THRESHOLD = 0.25
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"


def is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def classify(key: str) -> str:
    """``skip`` (wall-clock), ``higher`` (speedups) or ``lower`` (volumes)."""
    if key.endswith("_seconds") or "_seconds_" in key:
        return "skip"
    if "speedup" in key:
        return "higher"
    return "lower"


def compare_payloads(
    name: str, baseline: dict, current: dict, threshold: float
) -> Tuple[List[str], List[str]]:
    """Return ``(report_lines, regressions)`` for one benchmark file."""
    lines: List[str] = []
    regressions: List[str] = []
    for key in sorted(baseline):
        base_value = baseline[key]
        if not is_number(base_value):
            continue
        direction = classify(key)
        if direction == "skip":
            continue
        if key not in current:
            regressions.append(f"{name}: metric {key!r} missing from current artifact")
            continue
        now = current[key]
        if not is_number(now):
            regressions.append(f"{name}: metric {key!r} is not numeric: {now!r}")
            continue
        if direction == "higher":
            floor = base_value * (1.0 - threshold)
            ok = now >= floor
            verdict = "OK" if ok else f"REGRESSED (floor {floor:.3f})"
        else:
            ceiling = base_value * (1.0 + threshold)
            ok = now <= ceiling
            verdict = "OK" if ok else f"REGRESSED (ceiling {ceiling:.3f})"
        lines.append(
            f"  {key:<32} baseline={base_value:<12g} current={now:<12g} {verdict}"
        )
        if not ok:
            regressions.append(
                f"{name}: {key} {'fell' if direction == 'higher' else 'grew'} "
                f"beyond {threshold:.0%} of baseline "
                f"(baseline {base_value!r}, current {now!r})"
            )
    for key in sorted(current):
        if key in baseline or not is_number(current[key]):
            continue
        if classify(key) == "skip":
            continue
        lines.append(f"  {key:<32} baseline=<absent>    "
                     f"current={current[key]:<12g} UNGATED")
        regressions.append(
            f"{name}: metric {key!r} present in current artifact but missing "
            f"from the baseline; commit it to benchmarks/baselines/{name}"
        )
    return lines, regressions


def compare_directories(
    baseline_dir: Path, current_dir: Path, threshold: float
) -> Iterable[str]:
    """Yield regression messages; print a per-metric report as a side effect."""
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        yield f"no baseline files found under {baseline_dir}"
        return
    for baseline_path in baselines:
        name = baseline_path.name
        current_path = current_dir / name
        print(f"== {name} ==")
        if not current_path.exists():
            print(f"  current artifact missing: {current_path}")
            yield f"{name}: current artifact missing ({current_path})"
            continue
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
        current = json.loads(current_path.read_text(encoding="utf-8"))
        lines, regressions = compare_payloads(name, baseline, current, threshold)
        for line in lines:
            print(line)
        yield from regressions


def main(argv: Iterable[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current", type=Path, default=Path("bench-artifacts"),
        help="directory holding the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline", type=Path, default=BASELINE_DIR,
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed relative regression (default 0.25 = 25%%)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    regressions = list(
        compare_directories(args.baseline, args.current, args.threshold)
    )
    if regressions:
        print("\nbenchmark regressions detected:")
        for regression in regressions:
            print(f"  - {regression}")
        return 1
    print("\nno benchmark regressions (threshold "
          f"{args.threshold:.0%}, baselines: {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
