"""E13 — simulator scalability: substrate cost as the system grows.

Not a result of the paper, but the sanity check every simulation-based
reproduction needs: how the executor's cost (steps, messages, wall-clock
per run) scales with the system size for the Section VI protocol under the
fair schedule.  ``pytest-benchmark`` measures the wall-clock; the table
reports the volume counters.

On top of the absolute scaling curve, ``test_recording_policy_speedup``
measures the zero-copy engine against the seed hot path, frozen verbatim
in :mod:`benchmarks._legacy_executor` (eager snapshot views, per-step
knowledge-graph rebuilds): at every ``n >= 32`` the current engine under
``VERDICT_ONLY`` recording must be at least 3x faster while producing the
bit-identical run.  The headline numbers land in
``BENCH_E13_simulator_scaling.json`` (see ``$REPRO_BENCH_JSON``), which
``benchmarks/compare_bench.py`` diffs against the committed baseline in
CI — a >25% regression of the speedup or of the volume counters fails the
workflow.

``test_batch_kernel_speedup`` (E14) measures the next tier up: the
struct-of-arrays wave kernel of :mod:`repro.simulation.batch_kernel`
against the scalar executor it treats as its oracle.  A VERDICT_ONLY
wave of same-``(n, f)`` scenarios must run at least 3x faster than the
same scenarios through the scalar campaign path at every ``n >= 32``,
while producing bit-identical outcomes (asserted inline — the benchmark
doubles as an equivalence check at sizes the pinned-grid test does not
reach).  Headlines land in ``BENCH_E14_batch_kernel.json``, gated by
``compare_bench.py`` exactly like E13.

``test_telemetry_overhead`` guards both sides of the telemetry layer's
hot-path promise.  *Telemetry off* costs one ``current_tracer()`` call
per execution and a ``None`` check per step — any creep there erodes
``speedup_verdict_only_n*`` against its committed baseline, so the
disabled path is regression-guarded by the floor above without a
separate metric.  *Telemetry on* (full phase capture, the worst case)
is measured here as ``telemetry_enabled_overhead_x_n{n}`` — the traced
/ untraced wall-clock ratio for the identical run — and baselined in
``BENCH_E13_telemetry_overhead.json``, where ``compare_bench.py``
classifies it lower-is-better.
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.analysis.reporting import format_table
from repro.analysis.run_properties import run_statistics
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import ExecutionSettings, RecordingPolicy, execute
from repro.telemetry import Tracer, activated
from benchmarks.conftest import emit, emit_json
from benchmarks._legacy_executor import LegacyKSet, legacy_execute

SIZES = [8, 16, 24, 32, 48, 64]
SPEEDUP_SIZES = [32, 48]
#: The acceptance floor: current engine (verdict-only) vs the seed hot path.
SPEEDUP_FLOOR = 3.0
#: Hard ceiling for the traced/untraced ratio under full phase capture.
#: Tracing laps a perf counter four times per step, so it cannot be free;
#: it must stay within a small constant factor of the measured loop.
TELEMETRY_OVERHEAD_CEILING = 4.0


def run_once(n: int, recording: RecordingPolicy = RecordingPolicy.FULL):
    f = n // 2
    model = initial_crash_model(n, f)
    algorithm = KSetInitialCrash(n, f)
    return execute(
        algorithm, model, {p: p for p in model.processes},
        settings=ExecutionSettings(recording=recording),
    )


def run_once_legacy(n: int):
    f = n // 2
    model = initial_crash_model(n, f)
    algorithm = LegacyKSet(n, f)
    return legacy_execute(algorithm, model, {p: p for p in model.processes})


def _best_of(fn, *args, reps=3):
    best, result = float("inf"), None
    for _ in range(reps):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.mark.parametrize("n", SIZES)
def test_simulator_scaling_point(benchmark, n):
    run = benchmark(run_once, n)
    assert run.completed
    benchmark.extra_info.update({"n": n, **run_statistics(run)})


def test_simulator_scaling_table(benchmark):
    def build():
        rows = []
        for n in SIZES:
            run = run_once(n)
            stats = run_statistics(run)
            rows.append((n, int(stats["steps"]), int(stats["messages_sent"]),
                         int(stats["messages_delivered"])))
        return rows

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    emit(
        "E13 simulator scaling (Section VI protocol, fair schedule, f = n/2)",
        format_table(("n", "steps", "messages sent", "messages delivered"), rows),
    )
    # steps grow roughly linearly with n (each process needs a constant
    # number of scheduling rounds), messages quadratically.
    assert rows[-1][1] < 20 * SIZES[-1]


def test_recording_policy_speedup(benchmark):
    """Zero-copy + verdict-only vs the frozen seed hot path: >= 3x at n >= 32."""

    def measure():
        rows = []
        payload = {}
        for n in SPEEDUP_SIZES:
            legacy_seconds, legacy_run = _best_of(run_once_legacy, n)
            full_seconds, full_run = _best_of(run_once, n, RecordingPolicy.FULL)
            verdict_seconds, verdict_run = _best_of(
                run_once, n, RecordingPolicy.VERDICT_ONLY)
            # identical executions, whatever the engine or policy
            assert verdict_run.completed and full_run.completed and legacy_run.completed
            assert verdict_run.decisions() == full_run.decisions() == legacy_run.decisions()
            assert verdict_run.length == full_run.length == legacy_run.length
            assert (verdict_run.messages_sent() == full_run.messages_sent()
                    == legacy_run.messages_sent())
            speedup = legacy_seconds / verdict_seconds if verdict_seconds else 0.0
            rows.append((n, round(legacy_seconds * 1e3, 2), round(full_seconds * 1e3, 2),
                         round(verdict_seconds * 1e3, 2), round(speedup, 2)))
            payload.update({
                f"steps_n{n}": verdict_run.length,
                f"messages_sent_n{n}": verdict_run.messages_sent(),
                f"legacy_seconds_n{n}": round(legacy_seconds, 6),
                f"full_seconds_n{n}": round(full_seconds, 6),
                f"verdict_seconds_n{n}": round(verdict_seconds, 6),
                f"speedup_verdict_only_n{n}": round(speedup, 3),
            })
        return rows, payload

    rows, payload = benchmark.pedantic(measure, iterations=1, rounds=1)
    emit(
        "E13 recording-policy speedup (seed hot path vs zero-copy engine)",
        format_table(
            ("n", "seed ms", "full ms", "verdict-only ms", "speedup"), rows
        ),
    )
    benchmark.extra_info.update(payload)
    emit_json("E13_simulator_scaling", payload)
    for n, _legacy_ms, _full_ms, _verdict_ms, speedup in rows:
        assert speedup >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x over the seed hot path at n={n}, "
            f"measured {speedup:.2f}x"
        )


#: Scenarios per benchmark wave: enough to amortise wave setup, small
#: enough that the scalar reference stays a few hundred milliseconds.
BATCH_WAVE_SEEDS = 8
#: The acceptance floor: batched kernel vs the scalar campaign path.
BATCH_SPEEDUP_FLOOR = 3.0


def batch_wave_specs(n: int):
    """One VERDICT_ONLY wave: both schedulers x BATCH_WAVE_SEEDS seeds."""
    from repro.campaign.spec import ScenarioSpec

    f = n // 2
    k = n // (n - f)
    return [
        ScenarioSpec(
            kind="theorem8-solvable", n=n, f=f, k=k, scheduler=scheduler,
            seed=seed, max_steps=20_000, recording="verdict-only",
        )
        for seed in range(1, BATCH_WAVE_SEEDS + 1)
        for scheduler in ("round-robin", "random")
    ]


def test_batch_kernel_speedup(benchmark):
    """Batched SoA wave kernel vs the scalar path: >= 3x at n >= 32."""
    from repro.campaign.runner import run_scenario
    from repro.simulation.batch_kernel import execute_wave

    def measure():
        rows = []
        payload = {}
        for n in SPEEDUP_SIZES:
            specs = batch_wave_specs(n)
            scalar_seconds, scalar_outcomes = _best_of(
                lambda s=specs: [run_scenario(spec) for spec in s])
            batch_seconds, batch_outcomes = _best_of(
                lambda s=specs: execute_wave(s))
            # The scalar executor is the oracle: bit-identical outcomes,
            # not merely equal verdicts.
            assert batch_outcomes == scalar_outcomes
            assert all(outcome.verdict == "ok" for outcome in batch_outcomes)
            speedup = scalar_seconds / batch_seconds if batch_seconds else 0.0
            rows.append((n, len(specs), round(scalar_seconds * 1e3, 2),
                         round(batch_seconds * 1e3, 2), round(speedup, 2)))
            payload.update({
                f"wave_size_n{n}": len(specs),
                f"wave_steps_total_n{n}": sum(o.steps for o in batch_outcomes),
                f"wave_messages_sent_total_n{n}": sum(
                    o.messages_sent for o in batch_outcomes),
                f"scalar_seconds_n{n}": round(scalar_seconds, 6),
                f"batch_seconds_n{n}": round(batch_seconds, 6),
                f"batch_speedup_n{n}": round(speedup, 3),
            })
        return rows, payload

    rows, payload = benchmark.pedantic(measure, iterations=1, rounds=1)
    emit(
        "E14 batched verdict kernel vs scalar path (VERDICT_ONLY waves)",
        format_table(
            ("n", "wave size", "scalar ms", "batched ms", "speedup"), rows
        ),
    )
    benchmark.extra_info.update(payload)
    emit_json("E14_batch_kernel", payload)
    for n, _size, _scalar_ms, _batch_ms, speedup in rows:
        assert speedup >= BATCH_SPEEDUP_FLOOR, (
            f"expected >= {BATCH_SPEEDUP_FLOOR}x over the scalar path at "
            f"n={n}, measured {speedup:.2f}x"
        )


def run_once_traced(n: int):
    """One verdict-only run under an active tracer with full phase capture."""
    tracer = Tracer(trace_id="bench", capture_phases=True)
    with activated(tracer):
        run = run_once(n, RecordingPolicy.VERDICT_ONLY)
    return run, tracer.drain()


def test_telemetry_overhead(benchmark):
    """Tracing-enabled cost stays a bounded factor of the measured loop."""

    def measure():
        rows = []
        payload = {}
        for n in SPEEDUP_SIZES:
            verdict_seconds, verdict_run = _best_of(
                run_once, n, RecordingPolicy.VERDICT_ONLY)
            traced_seconds, (traced_run, spans) = _best_of(run_once_traced, n)
            # Telemetry observes; it must never influence the schedule.
            assert traced_run.decisions() == verdict_run.decisions()
            assert traced_run.length == verdict_run.length
            assert traced_run.messages_sent() == verdict_run.messages_sent()
            # One execute span plus its four phase children were recorded.
            names = [s.name for s in spans]
            assert names.count("execute") == 1
            assert sum(1 for name in names if name.startswith("phase:")) == 4
            overhead = traced_seconds / verdict_seconds if verdict_seconds else 0.0
            rows.append((n, round(verdict_seconds * 1e3, 2),
                         round(traced_seconds * 1e3, 2), round(overhead, 2)))
            payload.update({
                f"verdict_seconds_n{n}": round(verdict_seconds, 6),
                f"traced_seconds_n{n}": round(traced_seconds, 6),
                f"telemetry_enabled_overhead_x_n{n}": round(overhead, 3),
            })
        return rows, payload

    rows, payload = benchmark.pedantic(measure, iterations=1, rounds=1)
    emit(
        "E13 telemetry overhead (verdict-only, full phase capture)",
        format_table(("n", "untraced ms", "traced ms", "overhead x"), rows),
    )
    benchmark.extra_info.update(payload)
    emit_json("E13_telemetry_overhead", payload)
    for n, _untraced_ms, _traced_ms, overhead in rows:
        assert overhead <= TELEMETRY_OVERHEAD_CEILING, (
            f"tracing-enabled run at n={n} cost {overhead:.2f}x the untraced "
            f"run (ceiling {TELEMETRY_OVERHEAD_CEILING}x)"
        )
