"""E13 — simulator scalability: substrate cost as the system grows.

Not a result of the paper, but the sanity check every simulation-based
reproduction needs: how the executor's cost (steps, messages, wall-clock
per run) scales with the system size for the Section VI protocol under the
fair schedule.  ``pytest-benchmark`` measures the wall-clock; the table
reports the volume counters.
"""

from __future__ import annotations

import pytest

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.analysis.reporting import format_table
from repro.analysis.run_properties import run_statistics
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import execute
from benchmarks.conftest import emit

SIZES = [8, 16, 24, 32, 48, 64]


def run_once(n: int):
    f = n // 2
    model = initial_crash_model(n, f)
    algorithm = KSetInitialCrash(n, f)
    return execute(algorithm, model, {p: p for p in model.processes})


@pytest.mark.parametrize("n", SIZES)
def test_simulator_scaling_point(benchmark, n):
    run = benchmark(run_once, n)
    assert run.completed
    benchmark.extra_info.update({"n": n, **run_statistics(run)})


def test_simulator_scaling_table(benchmark):
    def build():
        rows = []
        for n in SIZES:
            run = run_once(n)
            stats = run_statistics(run)
            rows.append((n, int(stats["steps"]), int(stats["messages_sent"]),
                         int(stats["messages_delivered"])))
        return rows

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    emit(
        "E13 simulator scaling (Section VI protocol, fair schedule, f = n/2)",
        format_table(("n", "steps", "messages sent", "messages delivered"), rows),
    )
    # steps grow roughly linearly with n (each process needs a constant
    # number of scheduling rounds), messages quadratically.
    assert rows[-1][1] < 20 * SIZES[-1]
