"""E15 — dispatch overhead: compact shipping, planned chunks, bulk store I/O.

PR 8's batch kernel made the compute inside a wave cheap; this benchmark
measures everything *around* it and gates that the orchestration stays
cheap too.  One 32-scenario seed sweep at ``n = 32`` (the same wave
shape E14 times) runs three ways:

* **serial** — the reference: bit-identical outcomes and the in-worker
  compute baseline;
* **process** — the supervised pool (2 workers, one 16-spec wave per
  worker), shipping tasks as compact
  :class:`~repro.campaign.wire.WireChunk` descriptors;
* **process + cost model** — the same pool with chunks sized by a
  :class:`~repro.campaign.costmodel.CostModel` learned from the serial
  run, longest-expected tasks first.

The headline gates, baselined in ``BENCH_E15_dispatch_overhead.json``
and diffed by ``benchmarks/compare_bench.py`` in CI:

* ``wire_bytes_reduction_speedup_n32`` — raw pickled bytes over wire
  bytes **at the same task boundaries** (what the pool pipe would carry
  without the codec vs what it does carry), floor
  :data:`WIRE_REDUCTION_FLOOR`.  Byte counts are deterministic, so the
  committed baseline pins them exactly.
* ``dispatch_overhead_ratio_n32`` (and ``..._planned_``) — campaign
  wall-clock over the sum of in-worker scenario seconds (the ratio a
  perfectly overhead-free 2-worker pool would drive toward 0.5),
  ceiling :data:`OVERHEAD_CEILING`: pool startup, wire encode/decode,
  queue wait and result return together must not eat the parallelism.
  The ratio is machine- and load-dependent, so the committed baseline
  deliberately pins a conservative ``0.9`` rather than one machine's
  measurement — the hard inline ceiling is what gates the claim; the
  baseline only catches runaway regressions on slow shared runners.
* ``store_commits_n32`` — SQLite commits for persisting the campaign
  through a ``commit_batch=16`` store (bulk I/O actually batching).

The cost-model run's chunk boundaries depend on measured timings, so
its byte metrics are printed but not baselined (they would flake across
machines); its overhead ratio is gated like the even-split run's.

Outcome equality across all three runs is asserted inline, so the
benchmark doubles as a dispatch-equivalence check at a size the pinned
grids do not reach.
"""

from __future__ import annotations

import pickle

from repro.analysis.reporting import format_table
from repro.campaign import CampaignRunner, CostModel, ScenarioSpec, plan_chunks
from repro.store import CachingRunner, open_store
from benchmarks.conftest import emit, emit_json

#: The measured point: one wave-shaped seed sweep at n = 32, f = n/2.
SIZE_N = 32
WAVE_SEEDS = 32
WORKERS = 2
#: Even-split wave size: one wave per worker, the shape E14's kernel eats.
WAVE_SIZE = WAVE_SEEDS // WORKERS
#: Acceptance floor: raw pickled task bytes / wire task bytes.
WIRE_REDUCTION_FLOOR = 3.0
#: Acceptance ceiling: wall time / sum of in-worker scenario seconds.
OVERHEAD_CEILING = 1.15
#: Store batching for the persistence leg of the measurement.
COMMIT_BATCH = 16


def dispatch_specs():
    f = SIZE_N // 2
    return tuple(
        ScenarioSpec(
            kind="theorem8-solvable", n=SIZE_N, f=f, k=SIZE_N // (SIZE_N - f),
            scheduler="random", seed=seed, max_steps=20_000,
            recording="verdict-only",
        )
        for seed in range(1, WAVE_SEEDS + 1)
    )


def raw_task_bytes(task_specs) -> int:
    """What the pipe would carry for these tasks without the wire codec."""
    return sum(len(pickle.dumps(tuple(task), pickle.HIGHEST_PROTOCOL))
               for task in task_specs)


def overhead_ratio(result) -> float:
    worker_seconds = sum(result.scenario_seconds)
    return result.elapsed_seconds / worker_seconds if worker_seconds else 0.0


def _best_run(runner, specs, reps=2):
    """The rep with the lowest overhead ratio (absorbs pool-fork jitter)."""
    best = None
    for _ in range(reps):
        result = runner.run(specs)
        if best is None or overhead_ratio(result) < overhead_ratio(best):
            best = result
    return best


def test_dispatch_overhead(benchmark, tmp_path):
    """Wire shipping >= 3x smaller, pool overhead ratio <= 1.15 at n=32."""

    def measure():
        specs = dispatch_specs()
        serial = CampaignRunner(backend="serial").run(specs)
        plain = _best_run(
            CampaignRunner(backend="process", workers=WORKERS,
                           chunk_size=WAVE_SIZE), specs)
        model = CostModel.from_result(serial)
        planned = _best_run(
            CampaignRunner(backend="process", workers=WORKERS,
                           cost_model=model), specs)
        # Dispatch is pure plumbing: every configuration must produce the
        # bit-identical campaign.
        assert plain == serial
        assert planned == serial
        assert all(outcome.verdict == "ok" for outcome in serial.outcomes)

        # Persist the same campaign through a batched store: commits
        # collapse to one per drain batch while every row lands.
        with open_store(tmp_path / "e15.sqlite",
                        commit_batch=COMMIT_BATCH) as store:
            cached = CachingRunner(store, CampaignRunner()).run(specs)
            assert cached == serial
            io = store.io_stats()
        assert io["committed_rows"] == len(specs)
        assert io["commits"] <= -(-len(specs) // COMMIT_BATCH) + 1

        # Raw references at the exact task boundaries each run shipped
        # (plan_chunks is pure, so the planned boundaries re-derive).
        plain_tasks = [specs[i:i + WAVE_SIZE]
                       for i in range(0, len(specs), WAVE_SIZE)]
        plan = plan_chunks(specs, model)
        planned_tasks = [[specs[p] for p in group] for group in plan]

        rows = []
        payload = {
            f"store_commits_n{SIZE_N}": io["commits"],
            f"store_committed_rows_n{SIZE_N}": io["committed_rows"],
        }
        for label, result, tasks in (
            ("process", plain, plain_tasks),
            ("process+model", planned, planned_tasks),
        ):
            dispatch = result.dispatch_stats
            assert dispatch.tasks_shipped == len(tasks)
            raw_per = raw_task_bytes(tasks) / len(specs)
            wire_per = dispatch.wire_bytes / dispatch.scenarios_shipped
            ratio = overhead_ratio(result)
            rows.append((
                label, dispatch.tasks_shipped,
                round(result.elapsed_seconds * 1e3, 1),
                round(sum(result.scenario_seconds) * 1e3, 1),
                round(ratio, 3), round(raw_per, 1), round(wire_per, 1),
                round(raw_per / wire_per, 2),
            ))
            suffix = "_planned" if result is planned else ""
            payload[f"dispatch_overhead_ratio{suffix}_n{SIZE_N}"] = round(
                ratio, 3)
            payload[f"encode_seconds{suffix}_n{SIZE_N}"] = round(
                dispatch.encode_seconds, 6)
            payload[f"queue_seconds{suffix}_n{SIZE_N}"] = round(
                dispatch.queue_seconds, 6)
            if not suffix:
                # Deterministic boundaries only: the planned run's chunk
                # sizes follow measured timings and would flake a baseline.
                payload.update({
                    f"tasks_shipped_n{SIZE_N}": dispatch.tasks_shipped,
                    f"raw_bytes_per_scenario_n{SIZE_N}": round(raw_per, 1),
                    f"wire_bytes_per_scenario_n{SIZE_N}": round(wire_per, 1),
                    f"wire_bytes_reduction_speedup_n{SIZE_N}": round(
                        raw_per / wire_per, 3),
                })
        return rows, payload

    rows, payload = benchmark.pedantic(measure, iterations=1, rounds=1)
    emit(
        "E15 dispatch overhead (wire-shipped pool vs in-worker compute, "
        f"n={SIZE_N}, {WORKERS} workers)",
        format_table(
            ("config", "tasks", "wall ms", "worker ms", "overhead ratio",
             "raw B/scenario", "wire B/scenario", "reduction"),
            rows,
        ),
    )
    benchmark.extra_info.update(payload)
    emit_json("E15_dispatch_overhead", payload)
    reduction = payload[f"wire_bytes_reduction_speedup_n{SIZE_N}"]
    assert reduction >= WIRE_REDUCTION_FLOOR, (
        f"wire shipping only {reduction:.2f}x smaller than raw task "
        f"pickles (floor {WIRE_REDUCTION_FLOOR}x)"
    )
    for suffix in ("", "_planned"):
        ratio = payload[f"dispatch_overhead_ratio{suffix}_n{SIZE_N}"]
        assert ratio <= OVERHEAD_CEILING, (
            f"dispatch overhead{suffix or ' (even split)'} at "
            f"{ratio:.3f}x the in-worker compute "
            f"(ceiling {OVERHEAD_CEILING}x)"
        )
