"""Shared helpers for the benchmark harness.

Every benchmark reproduces one experiment of DESIGN.md (E1-E14): it runs
the corresponding construction under ``pytest-benchmark`` timing, asserts
that the simulated outcome matches the paper's claim, records the headline
numbers in ``benchmark.extra_info`` and prints the reproduced table so that
``pytest benchmarks/ --benchmark-only -s`` shows the same rows the paper
reports (EXPERIMENTS.md archives one such printout).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pytest


def emit(title: str, table: str) -> None:
    """Print a reproduced table under a recognisable header."""
    print(f"\n=== {title} ===")
    print(table)


@pytest.fixture
def record(request):
    """Return a callable that stores key/value pairs in the benchmark report."""

    def _record(benchmark, **values):
        for key, value in values.items():
            benchmark.extra_info[key] = value

    return _record
