"""Shared helpers for the benchmark harness.

Every benchmark reproduces one experiment of DESIGN.md (E1-E14): it runs
the corresponding construction under ``pytest-benchmark`` timing, asserts
that the simulated outcome matches the paper's claim, records the headline
numbers in ``benchmark.extra_info`` and prints the reproduced table so that
``pytest benchmarks/ --benchmark-only -s`` shows the same rows the paper
reports (EXPERIMENTS.md archives one such printout).

When ``REPRO_BENCH_JSON`` names a directory, :func:`emit_json`
additionally writes each benchmark's headline numbers as
``BENCH_<name>.json`` there — CI uploads those files as workflow
artifacts, giving the performance trajectory a machine-readable feed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence

import pytest


def emit(title: str, table: str) -> None:
    """Print a reproduced table under a recognisable header."""
    print(f"\n=== {title} ===")
    print(table)


def emit_json(name: str, payload: Mapping[str, object]) -> Optional[Path]:
    """Write ``BENCH_<name>.json`` into ``$REPRO_BENCH_JSON`` (no-op unset).

    ``name`` should be a stable experiment identifier (``E5_theorem8_sweep``)
    so that artifacts from successive CI runs are comparable file-by-file.
    Values that are not JSON-native are stringified rather than dropped.
    """
    directory = os.environ.get("REPRO_BENCH_JSON")
    if not directory:
        return None
    target_dir = Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    target = target_dir / f"BENCH_{name}.json"
    target.write_text(
        json.dumps(dict(payload), indent=2, sort_keys=True, default=str) + "\n",
        encoding="utf-8",
    )
    return target


@pytest.fixture
def record(request):
    """Return a callable that stores key/value pairs in the benchmark report."""

    def _record(benchmark, **values):
        for key, value in values.items():
            benchmark.extra_info[key] = value

    return _record
