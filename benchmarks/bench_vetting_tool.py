"""E14 — Theorem 1 as a design-vetting tool (Remarks after Theorem 1).

The benchmark vets three candidate algorithms that might be proposed for
3-set agreement with ``(Sigma_3, Omega_3)`` in a 6-process system, by
checking whether condition (A) — the partitioning runs of Theorem 1 — is
constructible for them:

* the flawed quorum candidate: condition (A) holds, and indeed an
  adversarial schedule produces 4 distinct decisions;
* the (over-qualified) ``(Sigma, Omega)`` consensus protocol: condition (A)
  fails — it never decides without cross-block communication;
* the trivial decide-own-value protocol (which only claims n-set
  agreement): condition (A) holds, flagging that it cannot be used for any
  smaller k.
"""

from __future__ import annotations

import pytest

from repro import DecideOwnValue, FlawedQuorumKSet, SigmaOmegaConsensus, Theorem10Scenario
from repro.analysis.reporting import format_table
from benchmarks.conftest import emit

N, K = 6, 3


def vet_candidates():
    scenario = Theorem10Scenario(n=N, k=K, max_steps=3_000)
    candidates = [
        ("flawed-quorum-kset", FlawedQuorumKSet(N, K), True),
        ("sigma-omega-consensus", SigmaOmegaConsensus(N), False),
        ("decide-own-value", DecideOwnValue(), True),
    ]
    rows = []
    for name, algorithm, expected_flag in candidates:
        application = scenario.application(algorithm)
        report = application.check_condition_a()
        flagged = report.satisfied
        if flagged:
            run, property_report = scenario.violation_run(algorithm)
            evidence = f"{len(run.distinct_decisions())} distinct decisions"
            violation = not property_report.agreement_ok
        else:
            evidence = "blocks never decide in isolation"
            violation = False
        rows.append((name, "yes" if flagged else "no", evidence,
                     "yes" if violation else "no", expected_flag == flagged))
    return rows


def test_vetting_tool(benchmark):
    rows = benchmark.pedantic(vet_candidates, iterations=1, rounds=1)
    emit(
        "E14 Theorem 1 vetting of candidate algorithms (n=6, k=3)",
        format_table(
            ("candidate", "condition (A) constructible", "adversarial evidence",
             "k-agreement violated", "as expected"),
            rows,
        ),
    )
    assert all(row[4] for row in rows)
    flagged = {row[0]: row[1] for row in rows}
    assert flagged["flawed-quorum-kset"] == "yes"
    assert flagged["sigma-omega-consensus"] == "no"
    benchmark.extra_info["candidates"] = len(rows)
