"""E1/E2 — Theorem 2: impossibility with partially synchronous processes.

Reproduces the quantitative content of Theorem 2 / Corollary 5 and its
Lemma 3/Lemma 4 ingredients:

* for every swept ``(n, f, k)`` on the impossible side
  (``k <= (n-1)/(n-f)``), the Theorem 1 conditions (A)-(D) are established
  for the Section VI algorithm in the Theorem 2 model, and the single
  allowed non-initial crash is shown to destroy termination;
* the partition sizes match Lemma 3 and the partition blocks are
  T-independent (Lemma 4).
"""

from __future__ import annotations

import pytest

from repro import KSetInitialCrash, Theorem2Scenario, theorem2_verdict
from repro.analysis.reporting import format_table
from repro.core.certificates import ImpossibilityCertificate
from repro.core.independence import check_independence
from benchmarks.conftest import emit

#: The impossible-side parameter points swept by E1.
POINTS = [(4, 2, 1), (5, 3, 1), (6, 4, 2), (7, 4, 2), (9, 6, 2), (10, 7, 3)]


def reproduce_theorem2_point(n: int, f: int, k: int):
    scenario = Theorem2Scenario(n=n, f=f, k=k, max_steps=1_500)
    algorithm = KSetInitialCrash(n, f)
    witness = scenario.apply(algorithm)
    _run, crash_report = scenario.crash_during_run_report(algorithm)
    claim = theorem2_verdict(n, f, k)
    certificate = ImpossibilityCertificate(
        claim=claim, witness=witness, violation_reports=(crash_report,)
    ).verify()
    return scenario, witness, crash_report, certificate


@pytest.mark.parametrize("n,f,k", POINTS)
def test_theorem2_point(benchmark, n, f, k):
    scenario, witness, crash_report, _certificate = benchmark.pedantic(
        reproduce_theorem2_point, args=(n, f, k), iterations=1, rounds=1,
    )
    assert witness.holds
    assert not crash_report.termination_ok
    benchmark.extra_info.update(
        {
            "n": n,
            "f": f,
            "k": k,
            "conditions": "ABCD",
            "lemma3_holds": scenario.lemma3_report()["holds"],
        }
    )


def test_theorem2_table(benchmark):
    """The reproduced Theorem 2 border table (one row per swept point)."""

    def build_rows():
        rows = []
        for n, f, k in POINTS:
            scenario, witness, crash_report, _cert = reproduce_theorem2_point(n, f, k)
            rows.append(
                (
                    n,
                    f,
                    k,
                    str(theorem2_verdict(n, f, k).verdict),
                    "yes" if witness.holds else "NO",
                    "lost" if not crash_report.termination_ok else "kept",
                    scenario.lemma3_report()["d_bar_size"],
                )
            )
        return rows

    rows = benchmark.pedantic(build_rows, iterations=1, rounds=1)
    emit(
        "E1 Theorem 2: k <= (n-1)/(n-f) is impossible",
        format_table(
            ("n", "f", "k", "paper verdict", "Theorem 1 witness", "termination under 1 late crash", "|D-bar|"),
            rows,
        ),
    )
    assert all(row[4] == "yes" and row[5] == "lost" for row in rows)


def test_lemma4_independence(benchmark):
    """E2 — Lemma 4: the Theorem 2 blocks are {D_1..D_{k-1}, D-bar}-independent."""

    def check():
        n, f, k = 7, 4, 2
        scenario = Theorem2Scenario(n=n, f=f, k=k)
        family = list(scenario.partition.all_blocks())
        witnesses = check_independence(
            KSetInitialCrash(n, f), scenario.model, family,
            scenario.proposals, max_steps=2_000,
        )
        return witnesses

    witnesses = benchmark.pedantic(check, iterations=1, rounds=1)
    assert all(w.holds for w in witnesses)
    emit(
        "E2 Lemma 4: block independence (n=7, f=4, k=2)",
        format_table(
            ("block", "independent"),
            [(sorted(w.subset), "yes" if w.holds else "NO") for w in witnesses],
        ),
    )
