"""E8/E9 — Theorem 10: (Sigma_k, Omega_k) is too weak for 2 <= k <= n-2.

E8 reproduces the proof's mechanics for swept ``(n, k)`` points in the
impossible region: the partition detector admits partitioning histories
under which the ``k-1`` singleton blocks and the remainder block decide in
isolation (Lemma 12 pasting), the Theorem 1 conditions are established for
a representative candidate algorithm, and an explicit adversarial schedule
drives the candidate to ``k+1`` distinct decisions.

E9 verifies Lemma 9: every recorded partitioning history used in E8 is
admissible for the weaker ``(Sigma_k, Omega_k)`` class — zero property
violations.
"""

from __future__ import annotations

import pytest

from repro import FlawedQuorumKSet, Theorem10Scenario, corollary13_verdict, verify_lemma9
from repro.analysis.reporting import format_table
from repro.core.certificates import ImpossibilityCertificate
from benchmarks.conftest import emit

POINTS = [(5, 2), (6, 3), (7, 3), (8, 5), (9, 4)]


def reproduce_theorem10_point(n: int, k: int):
    scenario = Theorem10Scenario(n=n, k=k, max_steps=6_000)
    algorithm = FlawedQuorumKSet(n, k)
    witness = scenario.apply(algorithm)
    run, report = scenario.violation_run(algorithm)
    pasted, pasting_check = scenario.pasted_run(algorithm)
    lemma9_violations = verify_lemma9(pasted.fd_history, pasted.failure_pattern, k=k)
    certificate = ImpossibilityCertificate(
        claim=corollary13_verdict(n, k), witness=witness, violation_reports=(report,)
    ).verify()
    return witness, run, report, pasting_check, lemma9_violations, certificate


@pytest.mark.parametrize("n,k", POINTS)
def test_theorem10_point(benchmark, n, k):
    witness, run, report, pasting_check, lemma9_violations, _cert = benchmark.pedantic(
        reproduce_theorem10_point, args=(n, k), iterations=1, rounds=1,
    )
    assert witness.holds
    assert len(run.distinct_decisions()) >= k + 1
    assert not report.agreement_ok
    assert pasting_check["holds"]
    assert lemma9_violations == []
    benchmark.extra_info.update(
        {"n": n, "k": k, "distinct_decisions": len(run.distinct_decisions())}
    )


def test_theorem10_table(benchmark):
    def build():
        rows = []
        for n, k in POINTS:
            witness, run, _report, check, lemma9_violations, _cert = reproduce_theorem10_point(n, k)
            rows.append(
                (
                    n,
                    k,
                    str(corollary13_verdict(n, k).verdict),
                    "yes" if witness.holds else "NO",
                    len(run.distinct_decisions()),
                    check["distinct_decisions"],
                    len(lemma9_violations),
                )
            )
        return rows

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    emit(
        "E8/E9 Theorem 10: (Sigma_k, Omega_k) insufficient for 2 <= k <= n-2",
        format_table(
            ("n", "k", "paper verdict", "Theorem 1 witness", "decisions (adversarial run)",
             "decisions (Lemma 12 pasting)", "Lemma 9 violations"),
            rows,
        ),
    )
    for row in rows:
        assert row[2] == "impossible" and row[3] == "yes"
        assert row[4] >= row[1] + 1
        assert row[6] == 0
