"""E4 — Section VI algorithm correctness (the possibility half of Theorem 8).

For a range of ``(n, f)`` points the Section VI protocol is executed with
worst-case and random initial-crash sets under fair and random schedules;
every run must satisfy k-agreement (for ``k = floor(n/(n-f))``), validity
and termination, and the benchmark reports the observed number of distinct
decisions and the message/step volume.
"""

from __future__ import annotations

import pytest

from repro.analysis.border_sweep import observe_solvable
from repro.analysis.reporting import format_table
from repro.analysis.run_properties import run_statistics
from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import execute
from benchmarks.conftest import emit

POINTS = [(4, 1), (6, 3), (8, 4), (10, 5), (12, 8), (16, 8)]


@pytest.mark.parametrize("n,f", POINTS)
def test_section6_algorithm_point(benchmark, n, f):
    k = n // (n - f)
    ok, reports = benchmark.pedantic(
        observe_solvable, args=(n, f, k), kwargs={"seeds": (1, 2), "max_steps": 20_000},
        iterations=1, rounds=1,
    )
    assert ok, [r.violations for r in reports if not r.all_ok]
    benchmark.extra_info.update(
        {
            "n": n,
            "f": f,
            "k": k,
            "runs": len(reports),
            "max_distinct": max(len(r.distinct_decisions) for r in reports),
        }
    )


def test_section6_volume_table(benchmark):
    """Steps and messages of a single fair run per point (volume series)."""

    def build():
        rows = []
        for n, f in POINTS:
            model = initial_crash_model(n, f)
            algorithm = KSetInitialCrash(n, f)
            dead = set(range(n - f + 1, n + 1))
            pattern = FailurePattern.initially_dead(model.processes, dead)
            run = execute(algorithm, model, {p: p for p in model.processes},
                          failure_pattern=pattern)
            stats = run_statistics(run)
            rows.append(
                (n, f, n // (n - f), int(stats["steps"]), int(stats["messages_sent"]),
                 int(stats["distinct_decisions"]))
            )
        return rows

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    emit(
        "E4 Section VI protocol: volume under the worst-case initial-crash set",
        format_table(("n", "f", "k guaranteed", "steps", "messages", "distinct decisions"), rows),
    )
    for row in rows:
        assert row[5] <= row[2]
