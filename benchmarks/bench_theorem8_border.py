"""E5/E6 — Theorem 8: the exact solvability border for initial crashes.

E5 sweeps the full ``(n, f, k)`` grid for small ``n`` and checks that the
simulated outcome (Section VI protocol satisfies all properties / the
partitioning construction forces a violation) coincides with the paper's
closed form ``k*n > (k+1)*f`` at every point.

E6 reproduces the border-case argument (``k*n = (k+1)*f``): the system is
split into ``k+1`` groups of size ``n-f``; both the single genuine run
under the partitioning adversary and the Lemma 12-style pasting of ``k+1``
isolation runs exhibit ``k+1`` distinct decision values.
"""

from __future__ import annotations

import pytest

from repro import KSetInitialCrash, Theorem8BorderScenario, theorem8_verdict
from repro.analysis.border_sweep import sweep_theorem8
from repro.analysis.reporting import format_sweep, format_table
from benchmarks.conftest import emit

SWEEP_N = [4, 5, 6]
BORDER_POINTS = [(4, 2, 1), (6, 4, 2), (8, 6, 3), (9, 6, 2), (10, 8, 4)]


def test_theorem8_sweep(benchmark):
    """E5: prediction vs. simulation over the full small-n grid."""
    points = benchmark.pedantic(
        sweep_theorem8, args=(SWEEP_N,), kwargs={"seeds": (1,), "max_steps": 8_000},
        iterations=1, rounds=1,
    )
    emit("E5 Theorem 8 border sweep (solvable iff k*n > (k+1)*f)", format_sweep(points))
    disagreements = [p for p in points if not p.agrees]
    assert not disagreements, disagreements
    benchmark.extra_info.update(
        {
            "points": len(points),
            "solvable_points": sum(p.predicted.value == "solvable" for p in points),
            "impossible_points": sum(p.predicted.value == "impossible" for p in points),
            "disagreements": len(disagreements),
        }
    )


@pytest.mark.parametrize("n,f,k", BORDER_POINTS)
def test_theorem8_border_case(benchmark, n, f, k):
    """E6: the k*n = (k+1)*f border case produces exactly k+1 values."""
    assert k * n == (k + 1) * f

    def construct():
        scenario = Theorem8BorderScenario(n=n, f=f, k=k)
        algorithm = KSetInitialCrash(n, f)
        run, report = scenario.violation_run(algorithm)
        pasted, check = scenario.pasted_run(algorithm)
        return run, report, pasted, check

    run, report, pasted, check = benchmark.pedantic(construct, iterations=1, rounds=1)
    assert len(run.distinct_decisions()) == k + 1
    assert not report.agreement_ok
    assert check["holds"]
    assert check["distinct_decisions"] == k + 1
    assert theorem8_verdict(n, f, k).is_impossible
    benchmark.extra_info.update({"n": n, "f": f, "k": k, "distinct": k + 1})


def test_theorem8_border_table(benchmark):
    def build():
        rows = []
        for n, f, k in BORDER_POINTS:
            scenario = Theorem8BorderScenario(n=n, f=f, k=k)
            run, report = scenario.violation_run(KSetInitialCrash(n, f))
            rows.append(
                (n, f, k, str(theorem8_verdict(n, f, k).verdict),
                 len(run.distinct_decisions()), "violated" if not report.agreement_ok else "held")
            )
        return rows

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    emit(
        "E6 Theorem 8 border case: k+1 isolated groups",
        format_table(("n", "f", "k", "paper verdict", "distinct decisions", "k-agreement"), rows),
    )
    assert all(row[4] == row[2] + 1 and row[5] == "violated" for row in rows)
