"""E5/E6 — Theorem 8: the exact solvability border for initial crashes.

E5 sweeps the full ``(n, f, k)`` grid for small ``n`` and checks that the
simulated outcome (Section VI protocol satisfies all properties / the
partitioning construction forces a violation) coincides with the paper's
closed form ``k*n > (k+1)*f`` at every point.

E6 reproduces the border-case argument (``k*n = (k+1)*f``): the system is
split into ``k+1`` groups of size ``n-f``; both the single genuine run
under the partitioning adversary and the Lemma 12-style pasting of ``k+1``
isolation runs exhibit ``k+1`` distinct decision values.
"""

from __future__ import annotations

import os
import time

import pytest

from repro import KSetInitialCrash, Theorem8BorderScenario, theorem8_verdict
from repro.analysis.border_sweep import sweep_theorem8
from repro.analysis.reporting import format_sweep, format_table
from repro.campaign import CampaignRunner, theorem8_specs
from repro.store import CachingRunner, open_store
from benchmarks.conftest import emit, emit_json

# REPRO_SWEEP_N overrides the swept sizes (comma-separated), which lets
# CI smoke-test the campaign-backed sweep on a tiny grid.
SWEEP_N = [int(x) for x in os.environ.get("REPRO_SWEEP_N", "4,5,6").split(",")]
BORDER_POINTS = [(4, 2, 1), (6, 4, 2), (8, 6, 3), (9, 6, 2), (10, 8, 4)]
# The sweep consumes verdicts only, so the benchmarks run verdict-only
# recording — tests/campaign/test_recording_plumbing.py pins that the
# resulting points are identical to full recording.
SWEEP_KWARGS = {"seeds": (1,), "max_steps": 8_000, "recording": "verdict-only"}


def test_theorem8_sweep(benchmark):
    """E5: prediction vs. simulation over the full small-n grid."""
    points = benchmark.pedantic(
        sweep_theorem8, args=(SWEEP_N,), kwargs=SWEEP_KWARGS,
        iterations=1, rounds=1,
    )
    emit(
        "E5 Theorem 8 border sweep (solvable iff k*n > (k+1)*f)",
        format_sweep(points, include_details=True),
    )
    disagreements = [p for p in points if not p.agrees]
    assert not disagreements, disagreements
    benchmark.extra_info.update(
        {
            "points": len(points),
            "solvable_points": sum(p.predicted.value == "solvable" for p in points),
            "impossible_points": sum(p.predicted.value == "impossible" for p in points),
            "disagreements": len(disagreements),
        }
    )
    emit_json("E5_theorem8_sweep", {"n_values": SWEEP_N, **benchmark.extra_info})


def test_theorem8_sweep_parallel_matches_serial(benchmark):
    """E5 via the campaign engine: the parallel backend is a pure speedup.

    One serial and one 4-worker parallel `sweep_theorem8` over the E5
    grid must produce identical points, verdict for verdict.  Both runs
    are timed symmetrically (a bare perf_counter around each sweep call)
    and the observed speedup is recorded; on hosts with at least 4 CPUs
    *and* a workload large enough to amortise pool startup the parallel
    run must be at least 1.5x faster.
    """
    specs = theorem8_specs(SWEEP_N, **SWEEP_KWARGS)
    parallel_runner = CampaignRunner(backend="process", workers=4)
    timings = {}

    def timed_sweep(label, runner=None):
        started = time.perf_counter()
        points = sweep_theorem8(SWEEP_N, runner=runner, **SWEEP_KWARGS)
        timings[label] = time.perf_counter() - started
        return points

    serial_points = timed_sweep("serial")
    parallel_points = benchmark.pedantic(
        timed_sweep, args=("parallel", parallel_runner), iterations=1, rounds=1
    )
    assert parallel_points == serial_points  # identical verdicts, point for point
    assert not any(p.observed == "execution error" for p in serial_points)

    serial_seconds, parallel_seconds = timings["serial"], timings["parallel"]
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    cpus = os.cpu_count() or 1
    benchmark.extra_info.update(
        {
            "scenarios": len(specs),
            "serial_seconds": round(serial_seconds, 4),
            "parallel_seconds": round(parallel_seconds, 4),
            "speedup": round(speedup, 3),
            "cpus": cpus,
        }
    )
    # The runner degrades to serial execution on hosts that forbid
    # forking; a probe campaign detects that, and tiny grids (e.g. the CI
    # smoke run with REPRO_SWEEP_N=4) finish in milliseconds serially, so
    # the speedup assertion only applies when a pool actually ran and the
    # workload is large enough to amortise its startup.
    pool_engaged = parallel_runner.run(specs[:8]).workers > 1
    benchmark.extra_info["pool_engaged"] = pool_engaged
    emit_json("E5_theorem8_parallel", benchmark.extra_info)
    if cpus >= 4 and serial_seconds >= 0.2 and pool_engaged:
        assert speedup > 1.5, (
            f"expected >1.5x speedup on a {cpus}-CPU host, got {speedup:.2f}x"
        )


def test_theorem8_sweep_cached_resume(benchmark, tmp_path):
    """E5 on the persistent store: a warm sweep is pure cache replay.

    A cold campaign populates a SQLite store incrementally; the timed
    warm campaign must execute *zero* scenarios, serve every outcome
    from cache, and still produce a `CampaignResult` equal to the cold
    run — the property that makes killing and resuming a long sweep
    free of recomputation.  Both campaigns append to one provenance
    journal, whose replayed ledger must show exactly that: first
    campaign all ran, second all cached, each summing to the size.
    """
    from repro.provenance import read_journal, replay_ledger

    specs = theorem8_specs(SWEEP_N, **SWEEP_KWARGS)
    journal_path = tmp_path / "theorem8_journal.jsonl"
    with open_store(tmp_path / "theorem8.sqlite") as store:
        cold_runner = CachingRunner(store, journal=journal_path)
        cold_started = time.perf_counter()
        cold = cold_runner.run(specs)
        cold_seconds = time.perf_counter() - cold_started
        assert cold_runner.last_stats.cached == 0

        warm_runner = CachingRunner(store, journal=journal_path)
        warm_started = time.perf_counter()
        warm = benchmark.pedantic(warm_runner.run, args=(specs,), iterations=1, rounds=1)
        warm_seconds = time.perf_counter() - warm_started

    assert warm == cold  # resumed == uninterrupted, outcome for outcome
    assert warm_runner.last_stats.executed == 0
    assert warm_runner.last_stats.cached == len(specs)

    replay = replay_ledger(read_journal(journal_path))
    cold_ledger = replay.campaigns[cold_runner.last_campaign_id]
    warm_ledger = replay.campaigns[warm_runner.last_campaign_id]
    assert cold_ledger.finished and warm_ledger.finished
    assert cold_ledger.ran == cold_ledger.total == len(specs)
    assert warm_ledger.cached == warm_ledger.total == len(specs)
    # Simulated work is deterministic: the cache replay's ledger carries
    # the same step/message totals the execution did.
    assert warm_ledger.usage.steps == cold_ledger.usage.steps
    assert warm_ledger.usage.messages_sent == cold_ledger.usage.messages_sent

    benchmark.extra_info.update(
        {
            "scenarios": len(specs),
            "cold_seconds": round(cold_seconds, 4),
            "warm_seconds": round(warm_seconds, 4),
            "replay_speedup": round(cold_seconds / warm_seconds, 3) if warm_seconds > 0 else 0.0,
            "journaled_steps": cold_ledger.usage.steps,
            "journaled_messages_sent": cold_ledger.usage.messages_sent,
            **warm_runner.last_stats.as_dict(),
        }
    )
    emit_json("E5_theorem8_cached_resume", benchmark.extra_info)


@pytest.mark.parametrize("n,f,k", BORDER_POINTS)
def test_theorem8_border_case(benchmark, n, f, k):
    """E6: the k*n = (k+1)*f border case produces exactly k+1 values."""
    assert k * n == (k + 1) * f

    def construct():
        scenario = Theorem8BorderScenario(n=n, f=f, k=k)
        algorithm = KSetInitialCrash(n, f)
        run, report = scenario.violation_run(algorithm)
        pasted, check = scenario.pasted_run(algorithm)
        return run, report, pasted, check

    run, report, pasted, check = benchmark.pedantic(construct, iterations=1, rounds=1)
    assert len(run.distinct_decisions()) == k + 1
    assert not report.agreement_ok
    assert check["holds"]
    assert check["distinct_decisions"] == k + 1
    assert theorem8_verdict(n, f, k).is_impossible
    benchmark.extra_info.update({"n": n, "f": f, "k": k, "distinct": k + 1})


def test_theorem8_border_table(benchmark):
    def build():
        rows = []
        for n, f, k in BORDER_POINTS:
            scenario = Theorem8BorderScenario(n=n, f=f, k=k)
            run, report = scenario.violation_run(KSetInitialCrash(n, f))
            rows.append(
                (n, f, k, str(theorem8_verdict(n, f, k).verdict),
                 len(run.distinct_decisions()), "violated" if not report.agreement_ok else "held")
            )
        return rows

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    emit(
        "E6 Theorem 8 border case: k+1 isolated groups",
        format_table(("n", "f", "k", "paper verdict", "distinct decisions", "k-agreement"), rows),
    )
    assert all(row[4] == row[2] + 1 and row[5] == "violated" for row in rows)
