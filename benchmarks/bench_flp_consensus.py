"""E7 — FLP consensus with initially dead processes (the k = 1 baseline).

The two-stage FLP protocol with the majority threshold is executed for a
range of system sizes with the maximum number of initial crashes it
tolerates (``f < n/2``); every run must reach consensus, and the benchmark
reports the step/message volume — the baseline the Section VI
generalisation is compared against.
"""

from __future__ import annotations

import pytest

from repro.algorithms.flp_consensus import FLPConsensus
from repro.analysis.reporting import format_table
from repro.analysis.run_properties import run_statistics
from repro.core.ksetagreement import KSetAgreementProblem
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import execute
from repro.simulation.scheduler import RandomScheduler, RoundRobinScheduler
from benchmarks.conftest import emit

POINTS = [(3, 1), (5, 2), (7, 3), (9, 4), (11, 5), (15, 7)]


def run_flp(n: int, f: int, seed=None):
    model = initial_crash_model(n, f)
    algorithm = FLPConsensus(n, f)
    dead = set(range(n - f + 1, n + 1))
    pattern = FailurePattern.initially_dead(model.processes, dead)
    adversary = RandomScheduler(seed) if seed is not None else RoundRobinScheduler()
    run = execute(algorithm, model, {p: p * 3 for p in model.processes},
                  adversary=adversary, failure_pattern=pattern)
    report = KSetAgreementProblem(1).evaluate(run)
    return run, report


@pytest.mark.parametrize("n,f", POINTS)
def test_flp_consensus_point(benchmark, n, f):
    run, report = benchmark.pedantic(run_flp, args=(n, f), iterations=1, rounds=1)
    assert report.all_ok, report.violations
    assert len(run.distinct_decisions()) == 1
    benchmark.extra_info.update({"n": n, "f": f, **run_statistics(run)})


def test_flp_consensus_table(benchmark):
    def build():
        rows = []
        for n, f in POINTS:
            run, report = run_flp(n, f)
            stats = run_statistics(run)
            rows.append((n, f, int(stats["steps"]), int(stats["messages_sent"]),
                         len(run.distinct_decisions()), "yes" if report.all_ok else "NO"))
        return rows

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    emit(
        "E7 FLP initial-crash consensus (majority correct)",
        format_table(("n", "f", "steps", "messages", "distinct decisions", "consensus"), rows),
    )
    assert all(row[4] == 1 and row[5] == "yes" for row in rows)
