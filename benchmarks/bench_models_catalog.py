"""E12 — the consensus catalogue used for Theorem 1's condition (C).

The benchmark exercises the consensus possibility/impossibility catalogue
over the restricted models the paper's applications actually construct
(``<D-bar>`` of the Theorem 2 scenarios, FLP models, fully synchronous
models, initial-crash models on both sides of the majority border) and
reports the verdicts with their bibliographic sources.
"""

from __future__ import annotations

import pytest

from repro.analysis.reporting import format_table
from repro.core.borders import theorem8_verdict
from repro.models.asynchronous import asynchronous_model
from repro.models.catalog import consensus_verdict
from repro.models.initial_crash import initial_crash_model
from repro.models.model import FailureAssumption, SystemModel
from repro.models.parameters import SystemModelSpec
from repro.models.partially_synchronous import partially_synchronous_model
from repro.types import Verdict, process_range
from benchmarks.conftest import emit


def build_cases():
    cases = []
    cases.append(("M_ASYNC(n=5, f=1)", asynchronous_model(5, 1), Verdict.IMPOSSIBLE))
    cases.append(("M_ASYNC(n=5, f=0)", asynchronous_model(5, 0), Verdict.UNKNOWN))
    for n, f in [(7, 4), (10, 7), (4, 2)]:
        base = partially_synchronous_model(n, f)
        d_bar = tuple(range(f, n + 1))  # the last n - f + 1 processes
        restricted = base.restrict(d_bar, failures=FailureAssumption(1))
        cases.append((f"<D-bar> of M_PSYNC(n={n}, f={f})", restricted, Verdict.IMPOSSIBLE))
    synchronous = SystemModel(
        name="fully-synchronous(n=5, f=3)",
        processes=process_range(5),
        spec=SystemModelSpec(synchronous_processes=True, synchronous_communication=True),
        failures=FailureAssumption(3),
    )
    cases.append((synchronous.name, synchronous, Verdict.SOLVABLE))
    for n, f in [(5, 2), (9, 4)]:
        cases.append((f"M_INIT(n={n}, f={f})", initial_crash_model(n, f), Verdict.SOLVABLE))
    for n, f in [(4, 2), (6, 3)]:
        cases.append((f"M_INIT(n={n}, f={f})", initial_crash_model(n, f), Verdict.IMPOSSIBLE))
    return cases


def evaluate_cases():
    rows = []
    agreements = True
    for name, model, expected in build_cases():
        verdict, entry = consensus_verdict(model)
        source = entry.reference if entry else "-"
        agrees = verdict is expected
        agreements = agreements and agrees
        rows.append((name, str(verdict), str(expected), source, "yes" if agrees else "NO"))
    return rows, agreements


def test_catalog_on_paper_models(benchmark):
    rows, agreements = benchmark.pedantic(evaluate_cases, iterations=1, rounds=1)
    emit(
        "E12 consensus catalogue ([11] Table I, FLP) on the models the paper uses",
        format_table(("model", "catalogue verdict", "expected", "source", "agrees"), rows),
    )
    assert agreements
    benchmark.extra_info["cases"] = len(rows)


def test_catalog_consistent_with_theorem8_at_k1(benchmark):
    def check():
        mismatches = []
        for n in range(2, 12):
            for f in range(0, n):
                catalogue = consensus_verdict(initial_crash_model(n, f))[0]
                if catalogue is Verdict.UNKNOWN:
                    continue
                if catalogue is not theorem8_verdict(n, f, 1).verdict:
                    mismatches.append((n, f))
        return mismatches

    mismatches = benchmark.pedantic(check, iterations=1, rounds=1)
    assert mismatches == []
