"""E3 — Lemma 6 / Lemma 7: source components of bounded-in-degree digraphs.

For random directed graphs in which every vertex has in-degree at least
``delta``, the benchmark measures the number and size of source components
and checks the two facts the Section VI algorithm rests on:

* some source component has size at least ``delta + 1`` (Lemma 6), in every
  weakly connected component (Lemma 7);
* the number of source components never exceeds ``floor(n / (delta + 1))``
  — which is exactly the bound on distinct decision values.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.reporting import format_table
from repro.graphs.digraph import DiGraph
from repro.graphs.source_components import lemma6_bound, verify_lemma6, verify_lemma7
from benchmarks.conftest import emit

#: (n, delta, number of random graphs) rows of the reproduced table.
GRID = [(8, 1, 20), (16, 3, 20), (32, 3, 15), (64, 7, 10), (128, 15, 5)]


def random_graph(n: int, delta: int, seed: int) -> DiGraph:
    rng = random.Random(seed)
    graph = DiGraph(nodes=range(1, n + 1))
    for v in range(1, n + 1):
        for u in rng.sample([u for u in range(1, n + 1) if u != v], delta):
            graph.add_edge(u, v)
    for _ in range(n // 2):
        u, v = rng.randrange(1, n + 1), rng.randrange(1, n + 1)
        if u != v:
            graph.add_edge(u, v)
    return graph


def measure(n: int, delta: int, samples: int):
    counts, largest, all_hold = [], [], True
    for seed in range(samples):
        graph = random_graph(n, delta, seed)
        evidence = verify_lemma6(graph)
        weak = verify_lemma7(graph)
        counts.append(evidence["count"])
        largest.append(evidence["largest_source_size"])
        if not (evidence["holds"] and weak["holds"]):
            all_hold = False
    return {
        "max_count": max(counts),
        "bound": lemma6_bound(n, delta),
        "min_largest": min(largest),
        "required_size": delta + 1,
        "all_hold": all_hold,
    }


@pytest.mark.parametrize("n,delta,samples", GRID)
def test_lemma6_point(benchmark, n, delta, samples):
    result = benchmark.pedantic(measure, args=(n, delta, samples), iterations=1, rounds=1)
    assert result["all_hold"]
    assert result["max_count"] <= result["bound"]
    assert result["min_largest"] >= result["required_size"]
    benchmark.extra_info.update({"n": n, "delta": delta, **result})


def test_lemma6_table(benchmark):
    def build():
        return [
            (n, delta, samples, r["max_count"], r["bound"], r["min_largest"], r["required_size"])
            for (n, delta, samples) in GRID
            for r in (measure(n, delta, samples),)
        ]

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    emit(
        "E3 Lemma 6/7: source components of in-degree->=delta digraphs",
        format_table(
            ("n", "delta", "graphs", "max #source comps", "floor(n/(delta+1))",
             "min largest source", "delta+1"),
            rows,
        ),
    )
    for row in rows:
        assert row[3] <= row[4] and row[5] >= row[6]
