"""Ablation — the Section VI design choice ``L = n - f``.

DESIGN.md calls out the one free parameter of the paper's algorithm: the
stage-1 waiting threshold ``L``.  The paper argues that ``L`` should be as
large as possible (fewer source components, hence fewer decision values)
but no larger than ``n - f`` (otherwise processes may wait for messages
that never come).  This ablation sweeps ``L`` for a fixed ``(n, f)`` and
measures both effects:

* *termination with f initial crashes* — holds exactly for ``L <= n - f``;
* *worst-case number of distinct decisions* — under the partitioning
  adversary that splits the system into ``n / L`` groups of size ``L``,
  the protocol decides exactly ``n / L`` values, matching the Lemma 6
  bound ``floor(n / L)``.

Together they show ``L = n - f`` is the unique optimum, i.e. the paper's
choice.
"""

from __future__ import annotations

import pytest

from repro.algorithms.two_stage import TwoStageKnowledgeProtocol
from repro.analysis.reporting import format_table
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.simulation.adversary import PartitioningAdversary
from repro.simulation.executor import ExecutionSettings, execute
from benchmarks.conftest import emit

N, F = 12, 8
#: thresholds that divide n evenly, so the partitioning construction is exact.
THRESHOLDS = [1, 2, 3, 4, 6, 12]


def measure_threshold(threshold: int):
    model = initial_crash_model(N, F)
    algorithm = TwoStageKnowledgeProtocol(N, threshold)
    proposals = {p: p for p in model.processes}

    # (a) termination with the worst-case f initial crashes
    dead = set(range(N - F + 1, N + 1))
    pattern = FailurePattern.initially_dead(model.processes, dead)
    crash_run = execute(
        algorithm, model, proposals, failure_pattern=pattern,
        settings=ExecutionSettings(max_steps=600),
    )
    terminates = crash_run.correct_processes() <= crash_run.decided_processes()

    # (b) worst-case number of distinct decisions (no crashes, partitioned)
    groups = [
        frozenset(range(i * threshold + 1, (i + 1) * threshold + 1))
        for i in range(N // threshold)
    ]
    partition_run = execute(
        algorithm, model, proposals,
        adversary=PartitioningAdversary(groups),
        settings=ExecutionSettings(max_steps=5_000),
    )
    distinct = len(partition_run.distinct_decisions())
    return terminates, distinct


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_threshold_point(benchmark, threshold):
    terminates, distinct = benchmark.pedantic(
        measure_threshold, args=(threshold,), iterations=1, rounds=1
    )
    assert terminates == (threshold <= N - F)
    assert distinct == N // threshold
    benchmark.extra_info.update(
        {"L": threshold, "terminates_with_f_crashes": terminates, "worst_case_decisions": distinct}
    )


def test_threshold_ablation_table(benchmark):
    def build():
        rows = []
        for threshold in THRESHOLDS:
            terminates, distinct = measure_threshold(threshold)
            rows.append(
                (
                    threshold,
                    "yes" if terminates else "NO",
                    distinct,
                    N // threshold,
                    "<- paper's choice" if threshold == N - F else "",
                )
            )
        return rows

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    emit(
        f"Ablation: stage-1 threshold L for n={N}, f={F} (paper chooses L = n - f = {N - F})",
        format_table(
            ("L", "terminates with f initial crashes", "worst-case distinct decisions",
             "floor(n/L)", ""),
            rows,
        ),
    )
    # The paper's choice is the largest threshold that still terminates,
    # and larger thresholds would only help if they terminated.
    terminating = [row for row in rows if row[1] == "yes"]
    best = min(terminating, key=lambda row: row[2])
    assert best[0] == N - F
