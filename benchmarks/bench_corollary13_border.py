"""E10 — Corollary 13: k-set agreement with (Sigma_k, Omega_k) iff k=1 or k=n-1.

For every ``n`` in a small range and every ``1 <= k <= n-1`` the benchmark
determines the simulated outcome:

* ``k = 1`` — the (Sigma, Omega) consensus protocol satisfies all
  properties under fair and random schedules with crashes;
* ``k = n-1`` — the Sigma_{n-1} protocol does, under the same treatment;
* ``2 <= k <= n-2`` — the Theorem 10 construction drives the
  representative candidate to more than ``k`` distinct decisions,

and checks that the outcome matches the Corollary 13 closed form at every
point.  The executions run as one campaign
(:func:`repro.campaign.corollary13_specs`), so the whole border can be
swept serially or across worker processes with identical outcomes.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro import corollary13_verdict
from repro.analysis.reporting import format_campaign, format_table
from repro.campaign import CampaignResult, CampaignRunner, ScenarioOutcome, corollary13_specs
from repro.store import CachingRunner, open_store
from benchmarks.conftest import emit, emit_json

N_VALUES = [4, 5, 6, 7]


def classify_point(n: int, k: int, outcomes: Tuple[ScenarioOutcome, ...]):
    """Compare the campaign outcomes of one ``(n, k)`` point with the paper."""
    verdict = corollary13_verdict(n, k)
    if not outcomes:
        # A point the campaign never executed is a diagnosable
        # disagreement row, not a KeyError.
        return verdict, "no scenarios executed", False
    if k in (1, n - 1):
        observed_solvable = all(o.all_ok for o in outcomes)
        observation = "all properties hold" if observed_solvable else "violation"
        agrees = observed_solvable == verdict.is_solvable
    else:
        (outcome,) = outcomes
        violated = not outcome.agreement_ok and outcome.distinct_decisions > k
        observation = "partitioning forces > k values" if violated else "no violation found"
        agrees = violated == verdict.is_impossible
    return verdict, observation, agrees


def classify_campaign(n_values, result: CampaignResult) -> List[Tuple]:
    """One classified row per ``(n, k)`` point of the swept border."""
    by_point = result.by_point()  # every corollary13 spec has f = n - 1
    rows = []
    for n in n_values:
        for k in range(1, n):
            outcomes = by_point.get((n, n - 1, k), ())
            verdict, observation, agrees = classify_point(n, k, outcomes)
            rows.append((n, k, str(verdict.verdict), observation, "yes" if agrees else "NO"))
    return rows


def test_corollary13_border(benchmark):
    # The border classification consumes verdicts only; verdict-only
    # recording skips all per-step trace allocation in the workers.
    specs = corollary13_specs(N_VALUES, recording="verdict-only")
    runner = CampaignRunner(backend="process", workers=4)

    # Serial/process equality is pinned by tests/campaign/test_runner.py;
    # the benchmark itself only times the parallel campaign.
    result = benchmark.pedantic(runner.run, args=(specs,), iterations=1, rounds=1)

    rows = classify_campaign(N_VALUES, result)
    emit(
        "E10 Corollary 13: (Sigma_k, Omega_k) solves k-set agreement iff k=1 or k=n-1",
        format_table(("n", "k", "paper verdict", "simulated observation", "agrees"), rows),
    )
    emit("E10 campaign summary", format_campaign(result))
    assert all(row[4] == "yes" for row in rows)
    benchmark.extra_info["points"] = len(rows)
    benchmark.extra_info.update(result.summary())
    emit_json("E10_corollary13_border", benchmark.extra_info)

    # The campaign result round-trips through JSON losslessly, so the
    # reproduced figure can be archived and re-classified offline.
    restored = CampaignResult.from_json(result.to_json())
    assert restored == result
    assert classify_campaign(N_VALUES, restored) == rows


def test_corollary13_store_replay(benchmark, tmp_path):
    """E10 persisted: a JSONL store replays the border without re-running.

    The classification of the replayed campaign must match the freshly
    computed one row for row — cache hits are first-class evidence.
    """
    specs = corollary13_specs(N_VALUES[:2], recording="verdict-only")
    with open_store(tmp_path / "corollary13.jsonl") as store:
        cold = CachingRunner(store).run(specs)
        warm_runner = CachingRunner(store)
        warm = benchmark.pedantic(warm_runner.run, args=(specs,), iterations=1, rounds=1)
    assert warm == cold
    assert warm_runner.last_stats.executed == 0
    assert classify_campaign(N_VALUES[:2], warm) == classify_campaign(N_VALUES[:2], cold)
    benchmark.extra_info.update(warm_runner.last_stats.as_dict())
    emit_json("E10_corollary13_store_replay", benchmark.extra_info)


@pytest.mark.parametrize("n", N_VALUES)
def test_corollary13_row(benchmark, n):
    def sweep_row():
        result = CampaignRunner().run(corollary13_specs([n]))
        return classify_campaign([n], result)

    rows = benchmark.pedantic(sweep_row, iterations=1, rounds=1)
    assert all(row[4] == "yes" for row in rows)
    benchmark.extra_info.update({"n": n, "k_points": len(rows)})
