"""E10 — Corollary 13: k-set agreement with (Sigma_k, Omega_k) iff k=1 or k=n-1.

For every ``n`` in a small range and every ``1 <= k <= n-1`` the benchmark
determines the simulated outcome:

* ``k = 1`` — the (Sigma, Omega) consensus protocol satisfies all
  properties under fair and random schedules with crashes;
* ``k = n-1`` — the Sigma_{n-1} protocol does, under the same treatment;
* ``2 <= k <= n-2`` — the Theorem 10 construction drives the
  representative candidate to more than ``k`` distinct decisions,

and checks that the outcome matches the Corollary 13 closed form at every
point.
"""

from __future__ import annotations

import pytest

from repro import (
    FailurePattern,
    FlawedQuorumKSet,
    KSetAgreementProblem,
    SigmaK,
    SigmaKSetAgreement,
    SigmaOmegaConsensus,
    Theorem10Scenario,
    asynchronous_model,
    corollary13_verdict,
    execute,
    sigma_omega_k,
)
from repro.analysis.reporting import format_table
from repro.simulation.scheduler import RandomScheduler, RoundRobinScheduler
from benchmarks.conftest import emit

N_VALUES = [4, 5, 6, 7]


def observe_k1(n: int) -> bool:
    model = asynchronous_model(n, n - 1, failure_detector=sigma_omega_k(1, gst=0))
    outcomes = []
    for pattern, adversary in [
        (FailurePattern.all_correct(model.processes), RoundRobinScheduler()),
        (FailurePattern(model.processes, {n: 0}), RandomScheduler(1, max_delay=8)),
    ]:
        run = execute(SigmaOmegaConsensus(n), model, {p: p for p in model.processes},
                      adversary=adversary, failure_pattern=pattern)
        outcomes.append(KSetAgreementProblem(1).evaluate(run).all_ok)
    return all(outcomes)


def observe_k_n_minus_1(n: int) -> bool:
    model = asynchronous_model(n, n - 1, failure_detector=SigmaK(n - 1))
    outcomes = []
    for pattern, adversary in [
        (FailurePattern.all_correct(model.processes), RoundRobinScheduler()),
        (FailurePattern(model.processes, {p: 0 for p in range(1, n)}), RoundRobinScheduler()),
        (FailurePattern(model.processes, {1: 0, 2: 5}), RandomScheduler(2)),
    ]:
        run = execute(SigmaKSetAgreement(n), model, {p: p for p in model.processes},
                      adversary=adversary, failure_pattern=pattern)
        outcomes.append(KSetAgreementProblem(n - 1).evaluate(run).all_ok)
    return all(outcomes)


def observe_middle(n: int, k: int) -> bool:
    """Return True when a violation is constructible (the impossible side)."""
    scenario = Theorem10Scenario(n=n, k=k, max_steps=6_000)
    run, report = scenario.violation_run(FlawedQuorumKSet(n, k))
    return (not report.agreement_ok) and len(run.distinct_decisions()) > k


def classify(n: int, k: int):
    verdict = corollary13_verdict(n, k)
    if k == 1:
        observed_solvable = observe_k1(n)
        observation = "all properties hold" if observed_solvable else "violation"
        agrees = observed_solvable == verdict.is_solvable
    elif k == n - 1:
        observed_solvable = observe_k_n_minus_1(n)
        observation = "all properties hold" if observed_solvable else "violation"
        agrees = observed_solvable == verdict.is_solvable
    else:
        violated = observe_middle(n, k)
        observation = "partitioning forces > k values" if violated else "no violation found"
        agrees = violated == verdict.is_impossible
    return verdict, observation, agrees


def test_corollary13_border(benchmark):
    def build():
        rows = []
        for n in N_VALUES:
            for k in range(1, n):
                verdict, observation, agrees = classify(n, k)
                rows.append((n, k, str(verdict.verdict), observation, "yes" if agrees else "NO"))
        return rows

    rows = benchmark.pedantic(build, iterations=1, rounds=1)
    emit(
        "E10 Corollary 13: (Sigma_k, Omega_k) solves k-set agreement iff k=1 or k=n-1",
        format_table(("n", "k", "paper verdict", "simulated observation", "agrees"), rows),
    )
    assert all(row[4] == "yes" for row in rows)
    benchmark.extra_info["points"] = len(rows)


@pytest.mark.parametrize("n", N_VALUES)
def test_corollary13_row(benchmark, n):
    rows = benchmark.pedantic(
        lambda: [classify(n, k) for k in range(1, n)], iterations=1, rounds=1
    )
    assert all(agrees for _verdict, _observation, agrees in rows)
    benchmark.extra_info.update({"n": n, "k_points": len(rows)})
