"""Run pasting: the constructions of Lemma 11 and Lemma 12.

Lemma 12 of the paper builds a single admissible run ``alpha`` out of
``k`` per-block executions ``alpha_1, ..., alpha_k``: in ``alpha_i`` every
process outside ``D_i`` is initially dead and the members of ``D_i`` run
to completion; ``alpha`` lets every block take exactly the steps of its
``alpha_i`` — one block after the other — while all messages between
blocks stay delayed until everyone has decided.  Each block cannot
distinguish ``alpha`` from its own ``alpha_i``, so each block decides the
same values as in isolation, and ``alpha`` therefore contains at least as
many distinct decision values as there are blocks.

:func:`paste_runs` performs this construction on recorded runs and
:func:`verify_pasting` checks the two claims that make it work:
per-block indistinguishability (Definition 2) and the resulting decision
count.  The same machinery implements Lemma 11 (replacing the behaviour of
``D-bar`` in a partitioned run by the behaviour it has in another run):
pasting the ``D-bar`` block of one run with the ``D_i`` blocks of another.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.exceptions import PartitionError
from repro.failure_detectors.base import FailurePattern, QueryRecord, RecordedHistory
from repro.simulation.events import StepEvent
from repro.simulation.run import Run
from repro.types import ProcessId, Value

__all__ = ["paste_runs", "verify_pasting"]


def paste_runs(
    block_runs: Sequence[Run],
    blocks: Sequence[Iterable[ProcessId]],
    *,
    name: str = "pasted",
) -> Run:
    """Paste per-block executions into a single run (Lemma 11 / Lemma 12).

    Parameters
    ----------
    block_runs:
        One recorded run per block; run ``i`` supplies the steps of the
        processes in ``blocks[i]`` (its other events are ignored).  All
        runs must range over the same process set.
    blocks:
        Pairwise disjoint process sets covering the process set of the
        runs.
    name:
        Model-name suffix of the produced run.

    Returns the pasted :class:`~repro.simulation.run.Run`: the events of
    block 0 (re-timed to ``1..``), then the events of block 1, and so on;
    the failure pattern agrees with each block run on that block's
    processes; the failure-detector history is the union of the per-block
    query records (re-timed the same way).
    """
    if len(block_runs) != len(blocks):
        raise PartitionError("need exactly one recorded run per block")
    if not block_runs:
        raise PartitionError("need at least one block")
    block_sets = [frozenset(b) for b in blocks]
    processes = block_runs[0].processes
    for run in block_runs:
        if run.processes != processes:
            raise PartitionError("all block runs must range over the same process set")
    covered: set[ProcessId] = set()
    for block in block_sets:
        if block & covered:
            raise PartitionError("blocks must be pairwise disjoint")
        if not block.issubset(set(processes)):
            raise PartitionError(f"block {sorted(block)} contains unknown processes")
        covered |= block
    if covered != set(processes):
        raise PartitionError("blocks must cover the whole process set")

    events: List[StepEvent] = []
    history = RecordedHistory()
    crash_times: Dict[ProcessId, int] = {}
    proposals: Dict[ProcessId, Value] = {}
    time = 0
    for run, block in zip(block_runs, block_sets):
        time_map: Dict[int, int] = {}
        for event in run.events:
            if event.pid not in block:
                continue
            time += 1
            time_map[event.time] = time
            events.append(dataclasses.replace(event, time=time))
        for record in run.fd_history:
            if record.pid in block and record.time in time_map:
                history.record(record.pid, time_map[record.time], record.output)
        for pid in block:
            proposals[pid] = run.proposals[pid]
            crash_time = run.failure_pattern.crash_times.get(pid)
            if crash_time is not None:
                crash_times[pid] = 0 if crash_time == 0 else time_map.get(crash_time, time)

    pattern = FailurePattern(processes, crash_times)
    pasted = Run(
        algorithm_name=block_runs[0].algorithm_name,
        model_name=f"{block_runs[0].model_name} [{name}]",
        processes=processes,
        proposals=proposals,
        events=tuple(events),
        failure_pattern=pattern,
        fd_history=history,
        completed=all(run.completed for run in block_runs),
        truncated=any(run.truncated for run in block_runs),
        undelivered=tuple(m for run in block_runs for m in run.undelivered),
    )
    return pasted


def verify_pasting(
    pasted: Run,
    block_runs: Sequence[Run],
    blocks: Sequence[Iterable[ProcessId]],
) -> Dict[str, object]:
    """Check the Lemma 12 claims on a pasted run.

    Returns a dictionary with

    * ``indistinguishable`` — for every block, every member's state
      sequence (until decision) in the pasted run equals the one in its
      block run (Definition 2),
    * ``distinct_decisions`` — the number of distinct decision values in
      the pasted run,
    * ``per_block_decisions`` — the decision values contributed by each
      block,
    * ``holds`` — indistinguishability holds and every block contributed
      at least one decision value.
    """
    block_sets = [frozenset(b) for b in blocks]
    indistinguishable = True
    mismatches: List[ProcessId] = []
    per_block: List[Tuple[Value, ...]] = []
    decisions = pasted.decisions()
    for run, block in zip(block_runs, block_sets):
        for pid in sorted(block):
            if pasted.state_sequence(pid) != run.state_sequence(pid):
                indistinguishable = False
                mismatches.append(pid)
        per_block.append(tuple(sorted({repr(decisions[p]) for p in block if p in decisions})))
    return {
        "indistinguishable": indistinguishable,
        "mismatches": tuple(mismatches),
        "distinct_decisions": len(pasted.distinct_decisions()),
        "per_block_decisions": tuple(per_block),
        "holds": indistinguishable and all(per_block),
    }
