"""Partition constructions and run pasting used by the paper's proofs.

* :mod:`repro.partitioning.partitions` — the concrete partitions the
  proofs of Theorem 2, Theorem 8 (border case) and Theorem 10 construct,
  together with the Lemma 3 size checks,
* :mod:`repro.partitioning.pasting` — the Lemma 11 / Lemma 12 "pasting"
  of per-block executions into a single run, and its verification,
* :mod:`repro.partitioning.scenarios` — named proof scenarios bundling a
  model, a partition and the remaining Theorem 1 ingredients.
"""

from repro.partitioning.partitions import (
    equal_groups,
    lemma3_check,
    theorem2_partition,
    theorem8_border_groups,
    theorem10_partition,
)
from repro.partitioning.pasting import paste_runs, verify_pasting
from repro.partitioning.scenarios import (
    Theorem2Scenario,
    Theorem8BorderScenario,
    Theorem10Scenario,
)

__all__ = [
    "equal_groups",
    "lemma3_check",
    "theorem2_partition",
    "theorem8_border_groups",
    "theorem10_partition",
    "paste_runs",
    "verify_pasting",
    "Theorem2Scenario",
    "Theorem8BorderScenario",
    "Theorem10Scenario",
]
