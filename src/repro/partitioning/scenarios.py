"""Named proof scenarios: Theorem 2, the Theorem 8 border case, Theorem 10.

A *scenario* bundles everything one of the paper's applications of
Theorem 1 (or of the plain partitioning argument) needs: the system model,
the partition, the failure-detector histories, the adversarial schedules,
and convenience methods that execute representative algorithms under those
schedules.  The benchmarks and examples are thin wrappers around these
classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.algorithms.base import Algorithm
from repro.core.impossibility import (
    ImpossibilityWitness,
    PartitionSpec,
    TheoremOneApplication,
)
from repro.core.ksetagreement import KSetAgreementProblem, PropertyReport
from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern
from repro.failure_detectors.partition import PartitionDetector
from repro.models.asynchronous import asynchronous_model
from repro.models.initial_crash import initial_crash_model
from repro.models.model import FailureAssumption, SystemModel
from repro.models.partially_synchronous import partially_synchronous_model
from repro.partitioning.partitions import (
    lemma3_check,
    theorem2_partition,
    theorem8_border_groups,
    theorem10_partition,
)
from repro.partitioning.pasting import paste_runs, verify_pasting
from repro.simulation.adversary import PartitioningAdversary, _BlockedDeliveryAdversary
from repro.simulation.executor import (
    ExecutionSettings,
    all_correct_decided,
    execute,
    group_decided,
)
from repro.simulation.recording import RecordingPolicy
from repro.simulation.message import Message
from repro.simulation.run import Run
from repro.simulation.scheduler import AdversaryView, RoundRobinScheduler
from repro.types import ProcessId, Value

__all__ = ["Theorem2Scenario", "Theorem8BorderScenario", "Theorem10Scenario"]


def _distinct_proposals(processes: Sequence[ProcessId]) -> Dict[ProcessId, Value]:
    return {pid: pid for pid in processes}


class _CompositeBlockingAdversary(_BlockedDeliveryAdversary):
    """Partitioning adversary with additional blocked sender/receiver pairs.

    Used by the Theorem 10 scenario: besides delaying every message that
    crosses a block boundary it also delays the messages of selected
    intra-block pairs, which is how the schedule drives two members of
    ``D-bar`` to different decisions.
    """

    def __init__(
        self,
        blocks: Sequence[FrozenSet[ProcessId]],
        blocked_pairs: Sequence[Tuple[ProcessId, ProcessId]] = (),
    ):
        super().__init__()
        self._partition = PartitioningAdversary(blocks)
        self._pairs = frozenset(blocked_pairs)

    def _released(self, view: AdversaryView) -> bool:
        return view.alive.issubset(view.decided)

    def _blocked(self, message: Message, view: AdversaryView) -> bool:
        if self._released_for(view):
            return False
        if self._partition._blocked(message, view):
            return True
        return (message.sender, message.receiver) in self._pairs

    def describe(self) -> str:
        return (
            f"{self._partition.describe()} + blocked pairs "
            f"{sorted(self._pairs)}"
        )


@dataclass
class Theorem2Scenario:
    """The Theorem 2 setting: partially synchronous processes, f faults.

    The model has synchronous processes, asynchronous communication and a
    failure budget of ``f`` crashes of which at most one may occur during
    the execution.  The scenario provides the proof's partition (``k - 1``
    blocks of size ``n - f``), the Theorem 1 application for a candidate
    algorithm, and a direct demonstration of what goes wrong for the
    Section VI algorithm when the one non-initial crash is exercised.
    """

    n: int
    f: int
    k: int
    max_steps: int = 20_000

    def __post_init__(self) -> None:
        self.model: SystemModel = partially_synchronous_model(self.n, self.f)
        self.partition: PartitionSpec = theorem2_partition(self.n, self.f, self.k)
        self.proposals: Dict[ProcessId, Value] = _distinct_proposals(self.model.processes)

    def lemma3_report(self) -> Dict[str, object]:
        """The Lemma 3 size facts for this scenario's partition."""
        return lemma3_check(self.partition, self.n, self.f)

    def application(self, algorithm: Algorithm) -> TheoremOneApplication:
        """The Theorem 1 application for ``algorithm`` in this scenario."""
        return TheoremOneApplication(
            algorithm,
            self.model,
            self.partition,
            proposals=self.proposals,
            restricted_failures=FailureAssumption(max_failures=1),
            max_steps=self.max_steps,
        )

    def apply(self, algorithm: Algorithm) -> ImpossibilityWitness:
        """Check conditions (A)-(D) for ``algorithm`` and return the witness."""
        return self.application(algorithm).apply()

    def partitioned_run(self, algorithm: Algorithm) -> Run:
        """The condition (A)/(B) witness run under the partitioning adversary."""
        adversary = PartitioningAdversary(self.partition.all_blocks())
        return execute(
            algorithm,
            self.model,
            self.proposals,
            adversary=adversary,
            settings=ExecutionSettings(max_steps=self.max_steps),
        )

    def crash_during_run_report(
        self,
        algorithm: Algorithm,
        *,
        crash_pid: Optional[ProcessId] = None,
        crash_time: Optional[int] = None,
        initial_dead: Optional[Sequence[ProcessId]] = None,
    ) -> Tuple[Run, PropertyReport]:
        """Exercise the single non-initial crash against ``algorithm``.

        By default the ``f - 1`` largest-identifier processes are initially
        dead and process ``p_1`` crashes at time 2 — right after its first
        step, in which it announced itself (sent its stage-1 message) but
        did not yet help anyone further.  Every other process then counts
        ``p_1`` among the processes it heard from and waits forever for
        ``p_1``'s stage-2 report, so the initial-crash protocol loses
        termination exactly as Theorem 2 predicts.
        """
        processes = self.model.processes
        dead = tuple(initial_dead) if initial_dead is not None else tuple(
            processes[-(self.f - 1):] if self.f > 1 else ()
        )
        crash = crash_pid if crash_pid is not None else processes[0]
        if crash_time is None:
            crash_time = 2
        crash_times = {pid: 0 for pid in dead}
        crash_times[crash] = crash_time
        pattern = FailurePattern(processes, crash_times)
        run = execute(
            algorithm,
            self.model,
            self.proposals,
            adversary=RoundRobinScheduler(),
            failure_pattern=pattern,
            settings=ExecutionSettings(max_steps=self.max_steps),
        )
        report = KSetAgreementProblem(self.k).evaluate(run, proposals=self.proposals)
        return run, report


@dataclass
class Theorem8BorderScenario:
    """The Section VI border case: ``k * n = (k + 1) * f`` with initial crashes.

    The scenario partitions the system into ``k + 1`` groups of size
    ``n - f`` and offers both readings of the argument: the single genuine
    run under the partitioning adversary in which all ``k + 1`` groups
    decide their own values, and the Lemma 12-style pasting of ``k + 1``
    isolation runs.
    """

    n: int
    f: int
    k: int
    max_steps: int = 20_000

    def __post_init__(self) -> None:
        self.groups: Tuple[FrozenSet[ProcessId], ...] = theorem8_border_groups(
            self.n, self.f, self.k
        )
        self.model: SystemModel = initial_crash_model(self.n, self.f)
        self.proposals: Dict[ProcessId, Value] = _distinct_proposals(self.model.processes)

    def violation_run(self, algorithm: Algorithm) -> Tuple[Run, PropertyReport]:
        """One genuine run in which every group decides its own value.

        Under the partitioning adversary (and with no crashes at all) every
        group of size ``n - f`` completes on its own, so ``k + 1`` distinct
        values appear — a k-agreement violation of ``algorithm``.
        """
        adversary = PartitioningAdversary(self.groups)
        run = execute(
            algorithm,
            self.model,
            self.proposals,
            adversary=adversary,
            settings=ExecutionSettings(max_steps=self.max_steps),
        )
        report = KSetAgreementProblem(self.k).evaluate(run, proposals=self.proposals)
        return run, report

    def isolation_runs(self, algorithm: Algorithm) -> List[Run]:
        """The ``k + 1`` executions in which only one group is alive."""
        runs: List[Run] = []
        for group in self.groups:
            dead = frozenset(self.model.processes) - group
            pattern = FailurePattern.initially_dead(self.model.processes, dead)
            runs.append(
                execute(
                    algorithm,
                    self.model,
                    self.proposals,
                    adversary=RoundRobinScheduler(),
                    failure_pattern=pattern,
                    settings=ExecutionSettings(
                        max_steps=self.max_steps,
                        stop_condition=group_decided(group),
                    ),
                )
            )
        return runs

    def pasted_run(self, algorithm: Algorithm) -> Tuple[Run, Dict[str, object]]:
        """The Lemma 12-style pasting of the isolation runs plus its check."""
        runs = self.isolation_runs(algorithm)
        pasted = paste_runs(runs, self.groups, name="theorem8-border")
        return pasted, verify_pasting(pasted, runs, self.groups)


@dataclass
class Theorem10Scenario:
    """The Theorem 10 setting: ``(Sigma'_k, Omega'_k)`` partitioning histories.

    The model is the asynchronous model with up to ``n - 1`` crashes,
    augmented with the partition detector for the proof's partition
    (``D-bar = {p_1 .. p_{n-k+1}}`` plus ``k - 1`` singletons).  The
    scenario provides the Theorem 1 application (condition (C) justified by
    the weakest-failure-detector argument of the paper), the Lemma 12
    pasting of per-block runs, and — for candidate algorithms that actually
    terminate under partitioning histories — a single genuine run with
    ``k + 1`` distinct decisions.
    """

    n: int
    k: int
    gst: int = 0
    max_steps: int = 20_000
    #: Recording policy of :meth:`violation_run` (the campaign plumbs the
    #: spec's policy through here).  The Lemma 12 machinery
    #: (:meth:`block_runs`, :meth:`pasted_run`) always records full traces
    #: — indistinguishability verification replays state sequences.
    recording: RecordingPolicy = RecordingPolicy.FULL

    #: Justification used for condition (C); quotes the paper's argument.
    CONDITION_C_JUSTIFICATION = (
        "Within <D-bar> the restricted detector provides (Sigma, Gamma) where "
        "Gamma eventually outputs a fixed set intersecting D-bar in exactly two "
        "processes; (Sigma, Gamma) is weaker than (Sigma, Omega_2), which is "
        "strictly weaker than (Sigma, Omega), the weakest failure detector for "
        "consensus — hence consensus is unsolvable in <D-bar> "
        "(Theorem 10, condition (C), citing Neiger 1995 and "
        "Delporte-Gallet/Fauconnier/Guerraoui 2010)"
    )

    def __post_init__(self) -> None:
        self.partition: PartitionSpec = theorem10_partition(self.n, self.k)
        self.detector = PartitionDetector(self.partition.all_blocks(), gst=self.gst)
        self.model: SystemModel = asynchronous_model(
            self.n, self.n - 1, failure_detector=self.detector
        )
        self.proposals: Dict[ProcessId, Value] = _distinct_proposals(self.model.processes)

    def application(self, algorithm: Algorithm) -> TheoremOneApplication:
        """The Theorem 1 application for ``algorithm`` in this scenario."""
        d_bar_size = len(self.partition.d_bar)
        return TheoremOneApplication(
            algorithm,
            self.model,
            self.partition,
            proposals=self.proposals,
            restricted_failures=FailureAssumption(max_failures=d_bar_size - 1),
            condition_c_justification=self.CONDITION_C_JUSTIFICATION,
            max_steps=self.max_steps,
        )

    def apply(self, algorithm: Algorithm) -> ImpossibilityWitness:
        """Check conditions (A)-(D) for ``algorithm`` and return the witness."""
        return self.application(algorithm).apply()

    def block_runs(self, algorithm: Algorithm) -> List[Run]:
        """The Lemma 12 runs ``alpha_i``: only one block alive at a time."""
        runs: List[Run] = []
        for block in self.partition.all_blocks():
            dead = frozenset(self.model.processes) - block
            pattern = FailurePattern.initially_dead(self.model.processes, dead)
            runs.append(
                execute(
                    algorithm,
                    self.model,
                    self.proposals,
                    adversary=RoundRobinScheduler(),
                    failure_pattern=pattern,
                    settings=ExecutionSettings(
                        max_steps=self.max_steps,
                        stop_condition=group_decided(block),
                    ),
                )
            )
        return runs

    def pasted_run(self, algorithm: Algorithm) -> Tuple[Run, Dict[str, object]]:
        """The Lemma 12 pasting of the block runs plus its verification."""
        runs = self.block_runs(algorithm)
        blocks = self.partition.all_blocks()
        pasted = paste_runs(runs, blocks, name="theorem10-lemma12")
        return pasted, verify_pasting(pasted, runs, blocks)

    def violation_run(
        self, algorithm: Algorithm, *, blocked_pairs: Optional[Sequence[Tuple[int, int]]] = None
    ) -> Tuple[Run, PropertyReport]:
        """Drive ``algorithm`` to more than ``k`` distinct decisions.

        The schedule isolates every block and additionally delays, inside
        ``D-bar``, the messages from ``p_1`` to ``p_3`` (configurable), so
        that a candidate that decides too eagerly produces two values
        inside ``D-bar`` on top of the ``k - 1`` singleton-block values.
        """
        d_bar = sorted(self.partition.d_bar)
        if blocked_pairs is None:
            blocked_pairs = [(d_bar[0], d_bar[2])] if len(d_bar) >= 3 else []
        adversary = _CompositeBlockingAdversary(
            self.partition.all_blocks(), blocked_pairs
        )
        run = execute(
            algorithm,
            self.model,
            self.proposals,
            adversary=adversary,
            settings=ExecutionSettings(
                max_steps=self.max_steps, recording=self.recording
            ),
        )
        report = KSetAgreementProblem(self.k).evaluate(run, proposals=self.proposals)
        return run, report
