"""The concrete partitions constructed by the paper's proofs.

* **Theorem 2** fixes ``l = n - f`` and takes ``D_i = {p_{(i-1)l+1}, ...,
  p_{il}}`` for ``1 <= i < k``; the remainder ``D-bar`` then has at least
  ``n - f + 1`` processes (Lemma 3), which is what lets one more crash
  reproduce the FLP situation inside ``<D-bar>``.
* **Theorem 10** takes ``D-bar = {p_1, ..., p_j}`` with ``j = n - k + 1 >=
  3`` and splits the remaining ``k - 1`` processes into singletons.
* The **Theorem 8 border case** (``k*n = (k+1)*f``) partitions the system
  into ``k + 1`` disjoint groups of equal size ``n / (k + 1) = n - f``,
  each of which is run in isolation and later pasted together.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.impossibility import PartitionSpec
from repro.exceptions import PartitionError
from repro.types import ProcessId, process_range

__all__ = [
    "theorem2_partition",
    "theorem10_partition",
    "equal_groups",
    "theorem8_border_groups",
    "lemma3_check",
]


def theorem2_partition(n: int, f: int, k: int) -> PartitionSpec:
    """The Theorem 2 partition: ``k - 1`` blocks of size ``l = n - f``.

    Feasibility requires ``k * (n - f) + 1 <= n``, which is exactly the
    theorem's failure bound ``k <= (n - 1) / (n - f)``; an infeasible
    parameter point raises :class:`repro.exceptions.PartitionError`.
    """
    if not 1 <= f < n:
        raise PartitionError(f"need 1 <= f < n, got f={f}, n={n}")
    if k < 1:
        raise PartitionError(f"k must be >= 1, got {k}")
    length = n - f
    if k * length + 1 > n:
        raise PartitionError(
            f"the Theorem 2 partition needs k*(n-f)+1 <= n, got "
            f"{k}*{length}+1 = {k * length + 1} > {n}"
        )
    processes = process_range(n)
    blocks: List[frozenset] = []
    for i in range(1, k):
        start = (i - 1) * length + 1
        blocks.append(frozenset(range(start, start + length)))
    return PartitionSpec(processes=processes, d_blocks=tuple(blocks))


def theorem10_partition(n: int, k: int) -> PartitionSpec:
    """The Theorem 10 partition: ``D-bar = {p_1..p_{n-k+1}}`` plus singletons.

    Requires ``2 <= k <= n - 2`` so that ``|D-bar| = n - k + 1 >= 3``.
    """
    if not 2 <= k <= n - 2:
        raise PartitionError(
            f"the Theorem 10 partition needs 2 <= k <= n-2, got k={k}, n={n}"
        )
    processes = process_range(n)
    j = n - k + 1
    blocks = tuple(frozenset({pid}) for pid in range(j + 1, n + 1))
    return PartitionSpec(processes=processes, d_blocks=blocks)


def equal_groups(n: int, groups: int) -> Tuple[frozenset, ...]:
    """Split ``{1..n}`` into ``groups`` consecutive blocks of equal size.

    Raises :class:`repro.exceptions.PartitionError` when ``groups`` does
    not divide ``n``.
    """
    if groups < 1:
        raise PartitionError(f"need at least one group, got {groups}")
    if n % groups != 0:
        raise PartitionError(f"{groups} groups do not evenly divide n={n}")
    size = n // groups
    return tuple(
        frozenset(range(i * size + 1, (i + 1) * size + 1)) for i in range(groups)
    )


def theorem8_border_groups(n: int, f: int, k: int) -> Tuple[frozenset, ...]:
    """The ``k + 1`` groups of the Theorem 8 border-case argument.

    The border case is ``k * n = (k + 1) * f``, equivalently
    ``n - f = n / (k + 1)``; the groups are ``k + 1`` blocks of exactly
    that size.  Parameter points off the border are rejected.
    """
    if k < 1 or not 0 < f < n:
        raise PartitionError(f"need k >= 1 and 0 < f < n, got k={k}, f={f}, n={n}")
    if k * n != (k + 1) * f:
        raise PartitionError(
            f"the border-case construction needs k*n = (k+1)*f, got "
            f"{k * n} != {(k + 1) * f}"
        )
    return equal_groups(n, k + 1)


def lemma3_check(partition: PartitionSpec, n: int, f: int) -> Dict[str, object]:
    """Verify the Lemma 3 size facts for a Theorem 2 partition.

    Returns a dictionary with the observed block sizes, the size of
    ``D-bar`` and the boolean conclusions ``|D_i| = n - f`` and
    ``|D-bar| >= n - f + 1``.
    """
    length = n - f
    block_sizes = tuple(len(block) for block in partition.d_blocks)
    d_bar_size = len(partition.d_bar)
    return {
        "block_sizes": block_sizes,
        "expected_block_size": length,
        "blocks_ok": all(size == length for size in block_sizes),
        "d_bar_size": d_bar_size,
        "d_bar_ok": d_bar_size >= length + 1,
        "holds": all(size == length for size in block_sizes) and d_bar_size >= length + 1,
    }
