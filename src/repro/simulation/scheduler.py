"""Adversaries and basic schedulers.

In the paper the environment — which process takes the next step, which
messages it receives, who crashes when — is chosen by an adversary subject
to the model's admissibility conditions.  The simulator mirrors this: an
:class:`Adversary` is asked, before every step, to pick the next stepping
process and the subset of its buffered messages to deliver, based on a
read-only view of the execution so far.

Two view implementations share one duck-typed API (``time``,
``processes``, ``states``, ``pending``, ``alive``, ``correct``,
``decided``, ``undecided_alive()``, ``pending_for()``):

* :class:`AdversaryView` — an eager, frozen snapshot.  Convenient for
  unit-testing adversaries in isolation, and kept for backwards
  compatibility.
* :class:`LazyAdversaryView` — the zero-copy view the executor hands out
  on its hot path.  It reads the *live* execution state (the state dict,
  the message buffer) instead of copying it, and **expires** as soon as
  the step it was issued for executes: any later access raises
  :class:`repro.exceptions.StaleViewError`, so a misbehaving adversary
  that retains views fails loudly instead of silently observing future
  state.  Custom adversaries must therefore treat views as valid only
  for the duration of the ``next_step`` call that received them, and
  must not mutate anything the view exposes.

Two general-purpose schedulers live here:

* :class:`RoundRobinScheduler` — fair, deterministic: cycles through the
  alive, undecided processes in identifier order and delivers every
  pending message to the stepping process.  This is the "benign" schedule
  the possibility results are exercised under.
* :class:`RandomScheduler` — a seeded random schedule with a built-in
  fairness bound (no message stays pending longer than ``max_delay`` steps
  once its receiver is scheduled), used for randomised testing of the
  possibility results.

The proof-specific adversaries (partitioning, isolation, selective
silence) are in :mod:`repro.simulation.adversary`.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import FrozenSet, Mapping, Optional, Tuple

from repro.algorithms.base import ProcessState
from repro.exceptions import StaleViewError
from repro.simulation.message import Message, MessageBuffer
from repro.types import ProcessId, Time

__all__ = [
    "AdversaryView",
    "LazyAdversaryView",
    "StepDirective",
    "Adversary",
    "RoundRobinScheduler",
    "RandomScheduler",
]


@dataclass(frozen=True)
class AdversaryView:
    """Read-only snapshot of the execution before one step.

    The executor itself hands out the zero-copy
    :class:`LazyAdversaryView`; this eager snapshot exists for tests and
    tools that want to probe an adversary without running an execution.

    Attributes
    ----------
    time:
        The time the next step would have (1-based global step index).
    processes:
        All processes of the executed system.
    states:
        Current local state of every process.
    pending:
        Buffered (sent, not yet received) messages per receiver.
    alive:
        Processes that have not crashed yet (according to the planned
        failure pattern).
    correct:
        Processes that never crash in the planned failure pattern.
    decided:
        Processes whose write-once output is already set.
    """

    time: Time
    processes: Tuple[ProcessId, ...]
    states: Mapping[ProcessId, ProcessState]
    pending: Mapping[ProcessId, Tuple[Message, ...]]
    alive: FrozenSet[ProcessId]
    correct: FrozenSet[ProcessId]
    decided: FrozenSet[ProcessId]

    def undecided_alive(self) -> Tuple[ProcessId, ...]:
        """Alive processes that have not decided yet, in identifier order.

        Cached per view — schedulers call this on every step, and the
        sorted tuple cannot change for a frozen snapshot.
        """
        cached = self.__dict__.get("_undecided_alive")
        if cached is None:
            cached = tuple(sorted(self.alive - self.decided))
            object.__setattr__(self, "_undecided_alive", cached)
        return cached

    def pending_for(self, pid: ProcessId) -> Tuple[Message, ...]:
        """Messages currently buffered for ``pid``."""
        return self.pending.get(pid, ())


class _LiveStates(Mapping):
    """Expiry-checked, read-only mapping over the executor's live states."""

    __slots__ = ("_view", "_states")

    def __init__(self, view: "LazyAdversaryView", states: Mapping[ProcessId, ProcessState]):
        self._view = view
        self._states = states

    def __getitem__(self, pid: ProcessId) -> ProcessState:
        self._view._check()
        return self._states[pid]

    def __iter__(self):
        self._view._check()
        return iter(self._states)

    def __len__(self) -> int:
        self._view._check()
        return len(self._states)


class _LivePending(Mapping):
    """Expiry-checked mapping ``receiver -> pending messages`` over the buffer."""

    __slots__ = ("_view", "_buffer")

    def __init__(self, view: "LazyAdversaryView", buffer: MessageBuffer):
        self._view = view
        self._buffer = buffer

    def __getitem__(self, pid: ProcessId) -> Tuple[Message, ...]:
        self._view._check()
        if not self._buffer.knows_receiver(pid):
            raise KeyError(pid)
        return self._buffer.pending_for(pid)

    def __iter__(self):
        self._view._check()
        return iter(self._buffer.receivers())

    def __len__(self) -> int:
        self._view._check()
        return len(self._buffer.receivers())


class LazyAdversaryView:
    """Zero-copy adversary view backed by the live execution state.

    Exposes the same API as :class:`AdversaryView` but without copying
    anything: ``states`` and ``pending`` read through to the executor's
    live state dict and :class:`~repro.simulation.message.MessageBuffer`,
    ``undecided_alive()`` returns a tuple the executor maintains
    incrementally, and the remaining attributes are shared immutable
    snapshots.  The executor calls :meth:`invalidate` as soon as the
    adversary's ``next_step`` returns; every access after that raises
    :class:`repro.exceptions.StaleViewError`.
    """

    __slots__ = (
        "_time",
        "_processes",
        "_states",
        "_buffer",
        "_alive",
        "_correct",
        "_decided",
        "_undecided_alive",
        "_expired",
    )

    def __init__(
        self,
        time: Time,
        processes: Tuple[ProcessId, ...],
        states: Mapping[ProcessId, ProcessState],
        buffer: MessageBuffer,
        alive: FrozenSet[ProcessId],
        correct: FrozenSet[ProcessId],
        decided: FrozenSet[ProcessId],
        undecided_alive: Tuple[ProcessId, ...],
    ):
        self._time = time
        self._processes = processes
        self._states = states
        self._buffer = buffer
        self._alive = alive
        self._correct = correct
        self._decided = decided
        self._undecided_alive = undecided_alive
        self._expired = False

    def _check(self) -> None:
        if self._expired:
            raise StaleViewError(
                f"adversary view for step t={self._time} was used after its "
                "step; lazy views expire once the step executes — query the "
                "view passed to the current next_step call instead"
            )

    def invalidate(self) -> None:
        """Expire the view (called by the executor after the step)."""
        self._expired = True

    # -- the AdversaryView API --------------------------------------------

    @property
    def time(self) -> Time:
        self._check()
        return self._time

    @property
    def processes(self) -> Tuple[ProcessId, ...]:
        self._check()
        return self._processes

    @property
    def states(self) -> Mapping[ProcessId, ProcessState]:
        self._check()
        return _LiveStates(self, self._states)

    @property
    def pending(self) -> Mapping[ProcessId, Tuple[Message, ...]]:
        self._check()
        return _LivePending(self, self._buffer)

    @property
    def alive(self) -> FrozenSet[ProcessId]:
        self._check()
        return self._alive

    @property
    def correct(self) -> FrozenSet[ProcessId]:
        self._check()
        return self._correct

    @property
    def decided(self) -> FrozenSet[ProcessId]:
        self._check()
        return self._decided

    def undecided_alive(self) -> Tuple[ProcessId, ...]:
        """Alive processes that have not decided yet, in identifier order."""
        self._check()
        return self._undecided_alive

    def pending_for(self, pid: ProcessId) -> Tuple[Message, ...]:
        """Messages currently buffered for ``pid``."""
        self._check()
        return self._buffer.pending_for(pid)


@dataclass(frozen=True)
class StepDirective:
    """The adversary's choice for the next step.

    ``deliver`` lists the identifiers of messages (currently pending for
    ``pid``) that the step consumes; an empty tuple is a legitimate step
    with no message receptions.
    """

    pid: ProcessId
    deliver: Tuple[int, ...] = ()


class Adversary(abc.ABC):
    """Chooses the schedule of a run, one step at a time."""

    @abc.abstractmethod
    def next_step(self, view: AdversaryView) -> Optional[StepDirective]:
        """Return the next step to take, or ``None`` to end the run.

        Returning ``None`` tells the executor that the adversary has no
        further steps to schedule (for example because every alive process
        already decided); the executor then stops and evaluates its stop
        condition.

        ``view`` may be a :class:`LazyAdversaryView`: it is only valid for
        the duration of this call and raises
        :class:`repro.exceptions.StaleViewError` afterwards, so do not
        retain it (or anything it returns lazily) across steps.
        """

    def describe(self) -> str:
        """Human-readable description used in traces."""
        return type(self).__name__


class RoundRobinScheduler(Adversary):
    """Deterministic fair schedule.

    Cycles through the alive, undecided processes in ascending identifier
    order; the stepping process receives *all* of its pending messages.
    Once every alive process has decided, the scheduler returns ``None``.
    """

    def __init__(self) -> None:
        self._last: Optional[ProcessId] = None

    def next_step(self, view: AdversaryView) -> Optional[StepDirective]:
        candidates = view.undecided_alive()
        if not candidates:
            return None
        pid = self._pick_next(candidates)
        self._last = pid
        deliver = tuple(m.msg_id for m in view.pending_for(pid))
        return StepDirective(pid=pid, deliver=deliver)

    def _pick_next(self, candidates: Tuple[ProcessId, ...]) -> ProcessId:
        if self._last is None:
            return candidates[0]
        for pid in candidates:
            if pid > self._last:
                return pid
        return candidates[0]


class RandomScheduler(Adversary):
    """Seeded random schedule with a fairness bound.

    Every step, a uniformly random alive undecided process is chosen.  Each
    of its pending messages is delivered with probability ``delivery_bias``
    — except that messages older than ``max_delay`` steps are always
    delivered, which keeps the schedule admissible (no message to a correct
    process is delayed forever as long as its receiver keeps being
    scheduled, which random choice over a finite set guarantees with
    probability one and the executor's step budget bounds in practice).
    """

    def __init__(self, seed: int = 0, *, delivery_bias: float = 0.5, max_delay: int = 20):
        if not 0.0 <= delivery_bias <= 1.0:
            raise ValueError("delivery_bias must be within [0, 1]")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self._rng = random.Random(seed)
        self.delivery_bias = delivery_bias
        self.max_delay = max_delay

    def next_step(self, view: AdversaryView) -> Optional[StepDirective]:
        candidates = view.undecided_alive()
        if not candidates:
            return None
        # Index the (already sorted, cached) tuple directly — copying it
        # into a list every step was pure allocation.  random.choice
        # consumes the identical RNG stream either way.
        pid = self._rng.choice(candidates)
        deliver = []
        time = view.time
        for message in view.pending_for(pid):
            overdue = (time - message.sent_at) >= self.max_delay
            if overdue or self._rng.random() < self.delivery_bias:
                deliver.append(message.msg_id)
        return StepDirective(pid=pid, deliver=tuple(deliver))

    def describe(self) -> str:
        return f"RandomScheduler(bias={self.delivery_bias}, max_delay={self.max_delay})"
