"""Adversaries and basic schedulers.

In the paper the environment — which process takes the next step, which
messages it receives, who crashes when — is chosen by an adversary subject
to the model's admissibility conditions.  The simulator mirrors this: an
:class:`Adversary` is asked, before every step, to pick the next stepping
process and the subset of its buffered messages to deliver, based on a
read-only :class:`AdversaryView` of the execution so far.

Two general-purpose schedulers live here:

* :class:`RoundRobinScheduler` — fair, deterministic: cycles through the
  alive, undecided processes in identifier order and delivers every
  pending message to the stepping process.  This is the "benign" schedule
  the possibility results are exercised under.
* :class:`RandomScheduler` — a seeded random schedule with a built-in
  fairness bound (no message stays pending longer than ``max_delay`` steps
  once its receiver is scheduled), used for randomised testing of the
  possibility results.

The proof-specific adversaries (partitioning, isolation, selective
silence) are in :mod:`repro.simulation.adversary`.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.algorithms.base import ProcessState
from repro.simulation.message import Message
from repro.types import ProcessId, Time

__all__ = [
    "AdversaryView",
    "StepDirective",
    "Adversary",
    "RoundRobinScheduler",
    "RandomScheduler",
]


@dataclass(frozen=True)
class AdversaryView:
    """Read-only snapshot handed to the adversary before every step.

    Attributes
    ----------
    time:
        The time the next step would have (1-based global step index).
    processes:
        All processes of the executed system.
    states:
        Current local state of every process.
    pending:
        Buffered (sent, not yet received) messages per receiver.
    alive:
        Processes that have not crashed yet (according to the planned
        failure pattern).
    correct:
        Processes that never crash in the planned failure pattern.
    decided:
        Processes whose write-once output is already set.
    """

    time: Time
    processes: Tuple[ProcessId, ...]
    states: Mapping[ProcessId, ProcessState]
    pending: Mapping[ProcessId, Tuple[Message, ...]]
    alive: FrozenSet[ProcessId]
    correct: FrozenSet[ProcessId]
    decided: FrozenSet[ProcessId]

    def undecided_alive(self) -> Tuple[ProcessId, ...]:
        """Alive processes that have not decided yet, in identifier order."""
        return tuple(sorted(self.alive - self.decided))

    def pending_for(self, pid: ProcessId) -> Tuple[Message, ...]:
        """Messages currently buffered for ``pid``."""
        return self.pending.get(pid, ())


@dataclass(frozen=True)
class StepDirective:
    """The adversary's choice for the next step.

    ``deliver`` lists the identifiers of messages (currently pending for
    ``pid``) that the step consumes; an empty tuple is a legitimate step
    with no message receptions.
    """

    pid: ProcessId
    deliver: Tuple[int, ...] = ()


class Adversary(abc.ABC):
    """Chooses the schedule of a run, one step at a time."""

    @abc.abstractmethod
    def next_step(self, view: AdversaryView) -> Optional[StepDirective]:
        """Return the next step to take, or ``None`` to end the run.

        Returning ``None`` tells the executor that the adversary has no
        further steps to schedule (for example because every alive process
        already decided); the executor then stops and evaluates its stop
        condition.
        """

    def describe(self) -> str:
        """Human-readable description used in traces."""
        return type(self).__name__


class RoundRobinScheduler(Adversary):
    """Deterministic fair schedule.

    Cycles through the alive, undecided processes in ascending identifier
    order; the stepping process receives *all* of its pending messages.
    Once every alive process has decided, the scheduler returns ``None``.
    """

    def __init__(self) -> None:
        self._last: Optional[ProcessId] = None

    def next_step(self, view: AdversaryView) -> Optional[StepDirective]:
        candidates = view.undecided_alive()
        if not candidates:
            return None
        pid = self._pick_next(candidates)
        self._last = pid
        deliver = tuple(m.msg_id for m in view.pending_for(pid))
        return StepDirective(pid=pid, deliver=deliver)

    def _pick_next(self, candidates: Tuple[ProcessId, ...]) -> ProcessId:
        if self._last is None:
            return candidates[0]
        for pid in candidates:
            if pid > self._last:
                return pid
        return candidates[0]


class RandomScheduler(Adversary):
    """Seeded random schedule with a fairness bound.

    Every step, a uniformly random alive undecided process is chosen.  Each
    of its pending messages is delivered with probability ``delivery_bias``
    — except that messages older than ``max_delay`` steps are always
    delivered, which keeps the schedule admissible (no message to a correct
    process is delayed forever as long as its receiver keeps being
    scheduled, which random choice over a finite set guarantees with
    probability one and the executor's step budget bounds in practice).
    """

    def __init__(self, seed: int = 0, *, delivery_bias: float = 0.5, max_delay: int = 20):
        if not 0.0 <= delivery_bias <= 1.0:
            raise ValueError("delivery_bias must be within [0, 1]")
        if max_delay < 0:
            raise ValueError("max_delay must be >= 0")
        self._rng = random.Random(seed)
        self.delivery_bias = delivery_bias
        self.max_delay = max_delay

    def next_step(self, view: AdversaryView) -> Optional[StepDirective]:
        candidates = view.undecided_alive()
        if not candidates:
            return None
        pid = self._rng.choice(list(candidates))
        deliver = []
        for message in view.pending_for(pid):
            overdue = (view.time - message.sent_at) >= self.max_delay
            if overdue or self._rng.random() < self.delivery_bias:
                deliver.append(message.msg_id)
        return StepDirective(pid=pid, deliver=tuple(deliver))

    def describe(self) -> str:
        return f"RandomScheduler(bias={self.delivery_bias}, max_delay={self.max_delay})"
