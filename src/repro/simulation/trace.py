"""Trace rendering: human-readable views of recorded runs.

These helpers never affect the semantics of a run; they only turn
:class:`~repro.simulation.run.Run` objects into text for examples, error
messages and the benchmark reports.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.simulation.run import Run
from repro.types import UNDECIDED, ProcessId

__all__ = ["format_run", "format_decisions", "format_summary"]


def format_decisions(run: Run) -> str:
    """A one-line rendering of who decided what (and who did not)."""
    parts: List[str] = []
    decisions = run.decisions()
    for pid in run.processes:
        if pid in decisions:
            parts.append(f"p{pid}={decisions[pid]!r}")
        elif pid in run.failure_pattern.faulty:
            parts.append(f"p{pid}=crashed")
        else:
            parts.append(f"p{pid}=undecided")
    return ", ".join(parts)


def format_summary(run: Run) -> str:
    """A multi-line summary with counts and the failure pattern."""
    summary = run.summary()
    lines = [
        f"run of {summary['algorithm']} in {summary['model']}",
        f"  steps: {summary['steps']}, messages sent/delivered: "
        f"{summary['messages_sent']}/{summary['messages_delivered']}",
        f"  failures: {summary['failures']}",
        f"  decided: {summary['decided']}/{len(run.processes)} processes, "
        f"{summary['distinct_decisions']} distinct value(s)",
        f"  completed: {summary['completed']}, truncated: {summary['truncated']}",
        f"  decisions: {format_decisions(run)}",
    ]
    return "\n".join(lines)


def format_run(
    run: Run,
    *,
    processes: Optional[Iterable[ProcessId]] = None,
    max_events: Optional[int] = None,
) -> str:
    """Render the step-by-step trace of a run.

    Parameters
    ----------
    processes:
        Restrict the trace to steps of these processes (default: all).
    max_events:
        Truncate the trace after this many events (default: no limit).
    """
    wanted = set(processes) if processes is not None else None
    lines = [format_summary(run), "  trace:"]
    shown = 0
    for event in run.events:
        if wanted is not None and event.pid not in wanted:
            continue
        lines.append("    " + event.describe())
        shown += 1
        if max_events is not None and shown >= max_events:
            lines.append(f"    ... ({run.length - shown} further events omitted)")
            break
    return "\n".join(lines)
