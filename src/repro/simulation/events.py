"""Step events: the recorded atoms of a run.

A run is an infinite sequence of configurations in the paper; the
simulator records the finite prefix it constructs as a sequence of
:class:`StepEvent` objects, one per atomic step.  Each event captures
everything needed to reconstruct the configuration sequence, check
indistinguishability (Definition 2) and evaluate the k-set agreement
properties: the stepping process, the delivered messages, the
failure-detector value (if any), the messages sent, and the state after
the step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.algorithms.base import ProcessState
from repro.simulation.message import Message
from repro.types import ProcessId, Time

__all__ = ["StepEvent"]


@dataclass(frozen=True)
class StepEvent:
    """One atomic step of one process.

    Attributes
    ----------
    time:
        Global step index (the paper's notion of time).
    pid:
        The process that took the step.
    delivered:
        Messages removed from the process's buffer in this step.
    fd_output:
        The failure-detector value queried at the beginning of the step
        (``None`` in detector-free models).
    sent:
        Messages placed into other processes' buffers by this step.
    state_after:
        The process's local state after the step.
    newly_decided:
        ``True`` when the write-once output was set in this very step.
    """

    time: Time
    pid: ProcessId
    delivered: Tuple[Message, ...]
    fd_output: Optional[object]
    sent: Tuple[Message, ...]
    state_after: ProcessState
    newly_decided: bool = False

    @property
    def senders_heard(self) -> Tuple[ProcessId, ...]:
        """Identifiers of the processes whose messages were delivered here."""
        return tuple(m.sender for m in self.delivered)

    def describe(self) -> str:
        """One-line human-readable rendering used by trace printers."""
        recv = ",".join(f"p{m.sender}#{m.msg_id}" for m in self.delivered) or "-"
        sent = ",".join(f"p{m.receiver}#{m.msg_id}" for m in self.sent) or "-"
        decided = f" DECIDED {self.state_after.decision!r}" if self.newly_decided else ""
        fd = f" fd={self.fd_output!r}" if self.fd_output is not None else ""
        return f"t={self.time:<5} p{self.pid}: recv[{recv}] send[{sent}]{fd}{decided}"
