"""The simulation engine.

:func:`execute` drives one execution of an algorithm in a system model
under the control of an adversary, producing a recorded
:class:`~repro.simulation.run.Run`.  The engine enforces the step contract
of Section II:

* only processes of the model take steps, and never after their planned
  crash time,
* a step consumes the chosen messages from the process's buffer, queries
  the failure detector (when the model has one) and applies the
  algorithm's transition exactly once,
* the write-once output ``y_p`` can never be overwritten,
* messages are only sent to processes of the executed system — an
  algorithm designed for a larger ``Pi`` must be wrapped in
  :class:`repro.algorithms.base.RestrictedAlgorithm` first (Definition 1).

The executor stops when its *stop condition* holds (by default: every
correct process has decided), when the adversary has nothing left to
schedule, or when the step budget is exhausted, whichever comes first.

The per-step hot path is zero-copy:

* the adversary receives a
  :class:`~repro.simulation.scheduler.LazyAdversaryView` backed by the
  live state dict and message buffer (invalidated after each step — see
  :class:`repro.exceptions.StaleViewError`) instead of an eagerly copied
  snapshot,
* ``alive``, ``decided`` and the sorted undecided-alive tuple are
  maintained incrementally (they change at most ``n`` times per run, not
  every step),
* the built-in stop conditions advertise the set of processes whose
  decisions they await (``required_deciders``), which turns the per-step
  stop check into an O(1) counter test,
* how much trace is recorded is controlled by the settings'
  :class:`~repro.simulation.recording.RecordingPolicy`: verdict-only
  campaigns skip :class:`~repro.simulation.events.StepEvent` and
  failure-detector-history construction entirely.  The recording policy
  never influences the schedule — decisions, completed/truncated flags
  and volume counters are identical across policies.
* telemetry is opt-in and ambient: the executor resolves
  :func:`repro.telemetry.spans.current_tracer` once per execution.  With
  no tracer active (the default) the per-step residue is a ``None``
  check on a local; with one active, an ``execute`` span plus aggregate
  per-phase children (scheduling / delivery / transition / recording)
  are recorded via a :class:`~repro.telemetry.spans.PhaseAccumulator`
  instead of per-step spans, so the measured loop stays the real loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional

from repro.algorithms.base import Algorithm, ProcessState
from repro.exceptions import (
    AdmissibilityError,
    AlgorithmError,
    ConfigurationError,
    ScheduleExhaustedError,
)
from repro.failure_detectors.base import FailurePattern, RecordedHistory
from repro.models.model import SystemModel
from repro.simulation.events import StepEvent
from repro.simulation.message import Message, MessageBuffer
from repro.simulation.recording import RecordingPolicy
from repro.simulation.run import Run
from repro.simulation.scheduler import Adversary, LazyAdversaryView, RoundRobinScheduler
from repro.telemetry.spans import current_tracer
from repro.types import ProcessId, Time, Value

__all__ = [
    "StopCondition",
    "all_correct_decided",
    "all_alive_decided",
    "group_decided",
    "ExecutionSettings",
    "RecordingPolicy",
    "execute",
]

#: A stop condition receives the current states, the set of processes that
#: already decided and the set of correct processes, and returns ``True``
#: when the execution may stop.
#:
#: A stop condition that only waits for a fixed set of processes to decide
#: may additionally expose a ``required_deciders(correct)`` attribute
#: returning that set; the executor then tracks it incrementally (an O(1)
#: membership update per decision) and never invokes the callable itself.
#: Conditions without the attribute are invoked after every step, exactly
#: as before.
StopCondition = Callable[
    [Mapping[ProcessId, ProcessState], FrozenSet[ProcessId], FrozenSet[ProcessId]], bool
]


def all_correct_decided(
    states: Mapping[ProcessId, ProcessState],
    decided: FrozenSet[ProcessId],
    correct: FrozenSet[ProcessId],
) -> bool:
    """Stop once every correct process has decided (the default)."""
    return correct.issubset(decided)


all_correct_decided.required_deciders = lambda correct: correct


def all_alive_decided(
    states: Mapping[ProcessId, ProcessState],
    decided: FrozenSet[ProcessId],
    correct: FrozenSet[ProcessId],
) -> bool:
    """Stop once every process that ever takes steps has decided.

    Useful for isolation runs in which the "correct" processes of the full
    model are deliberately kept out of the schedule.
    """
    undecided_with_state = {
        pid for pid, state in states.items() if not state.has_decided
    }
    return not (undecided_with_state & correct)


# Inside the executor ``states`` always covers every process, so the
# condition reduces to "every correct process decided".
all_alive_decided.required_deciders = lambda correct: correct


def group_decided(group) -> StopCondition:
    """Stop once every *correct* member of ``group`` has decided."""
    members = frozenset(group)

    def condition(
        states: Mapping[ProcessId, ProcessState],
        decided: FrozenSet[ProcessId],
        correct: FrozenSet[ProcessId],
    ) -> bool:
        return (members & correct).issubset(decided)

    condition.required_deciders = lambda correct: members & correct
    return condition


@dataclass(frozen=True)
class ExecutionSettings:
    """Tunable knobs of one execution.

    Attributes
    ----------
    max_steps:
        Step budget; reaching it marks the run as truncated.
    stop_condition:
        When to stop early (default: every correct process decided).
    raise_on_exhaustion:
        When ``True`` a truncated run raises
        :class:`repro.exceptions.ScheduleExhaustedError` instead of being
        returned; the partial run is attached to the exception.
    recording:
        How much of the execution the returned run keeps (default:
        everything).  See
        :class:`~repro.simulation.recording.RecordingPolicy`; the policy
        never changes the schedule or the verdict-relevant outputs.
    """

    max_steps: int = 10_000
    stop_condition: Optional[StopCondition] = None
    raise_on_exhaustion: bool = False
    recording: RecordingPolicy = RecordingPolicy.FULL


_DEFAULT_SETTINGS = ExecutionSettings()


def execute(
    algorithm: Algorithm,
    model: SystemModel,
    proposals: Mapping[ProcessId, Value],
    *,
    adversary: Optional[Adversary] = None,
    failure_pattern: Optional[FailurePattern] = None,
    settings: Optional[ExecutionSettings] = None,
) -> Run:
    """Execute ``algorithm`` in ``model`` and return the recorded run.

    Parameters
    ----------
    algorithm:
        The algorithm to run (possibly a
        :class:`~repro.algorithms.base.RestrictedAlgorithm`).
    model:
        The system model; its process set defines who executes.
    proposals:
        Initial value ``x_p`` for every process of the model.
    adversary:
        Schedule and delivery choices; defaults to the fair
        :class:`~repro.simulation.scheduler.RoundRobinScheduler`.
    failure_pattern:
        The planned crash schedule (defaults to "nobody crashes").  It must
        range over the model's processes and satisfy the model's failure
        assumption — violations raise
        :class:`repro.exceptions.AdmissibilityError`.
    settings:
        Step budget, stop condition and recording policy.
    """
    settings = settings or _DEFAULT_SETTINGS
    recording = settings.recording
    adversary = adversary or RoundRobinScheduler()
    stop_condition = settings.stop_condition or all_correct_decided

    processes = model.processes
    _validate_proposals(proposals, processes)
    pattern = failure_pattern or FailurePattern.all_correct(processes)
    _validate_pattern(pattern, model)

    detector = model.failure_detector
    if algorithm.requires_failure_detector and detector is None:
        raise ConfigurationError(
            f"algorithm {algorithm.name} queries a failure detector but model "
            f"{model.name} provides none"
        )

    states: Dict[ProcessId, ProcessState] = {
        pid: algorithm.initial_state(pid, processes, proposals[pid]) for pid in processes
    }
    _validate_initial_states(states)

    buffer = MessageBuffer(processes)
    history = RecordedHistory()
    record_events = recording.records_events
    record_history = recording.records_history
    events: Optional[List[StepEvent]] = [] if record_events else None

    # Decisions are tracked incrementally for every policy: the maps grow
    # by one entry per deciding step, so maintaining them costs O(1) per
    # step and Run.decisions() never has to replay the event stream.
    decisions: Dict[ProcessId, Value] = {}
    decision_times: Dict[ProcessId, Time] = {}
    decided: FrozenSet[ProcessId] = frozenset(
        pid for pid, state in states.items() if state.has_decided
    )
    correct = pattern.correct & frozenset(processes)

    # Incremental stop tracking: built-in conditions advertise the set of
    # processes whose decisions they await, reducing the per-step check to
    # "is the waiting set empty".  Custom conditions are invoked per step.
    required = getattr(stop_condition, "required_deciders", None)
    waiting: Optional[set] = None
    if required is not None:
        waiting = set(required(correct)) - decided
        completed = not waiting
    else:
        completed = stop_condition(states, decided, correct)

    # Incremental liveness tracking: the alive set shrinks only at the
    # (pre-sorted) planned crash times instead of being recomputed from
    # the failure pattern on every step.
    crash_schedule = sorted((t, pid) for pid, t in pattern.crash_times.items())
    crash_count = len(crash_schedule)
    crash_index = 0
    alive_set = set(processes)
    alive: FrozenSet[ProcessId] = frozenset(alive_set)
    undecided_alive: tuple = ()
    membership_dirty = True  # alive or decided changed since the last view

    # Telemetry: resolved once per execution.  With no ambient tracer
    # (the default) `phases` stays None and the per-step residue is four
    # `is not None` checks on a local — no allocation, no call.
    tracer = current_tracer()
    exec_span = None
    phases = None
    if tracer is not None:
        exec_span = tracer.start_span(
            "execute", {"algorithm": algorithm.name, "model": model.name}
        )
        phases = tracer.phase_accumulator()

    time = 0
    max_steps = settings.max_steps
    while not completed and time < max_steps:
        time += 1
        if crash_index < crash_count and crash_schedule[crash_index][0] <= time:
            while crash_index < crash_count and crash_schedule[crash_index][0] <= time:
                alive_set.discard(crash_schedule[crash_index][1])
                crash_index += 1
            alive = frozenset(alive_set)
            membership_dirty = True
        if membership_dirty:
            undecided_alive = tuple(sorted(alive - decided))
            membership_dirty = False

        view = LazyAdversaryView(
            time, processes, states, buffer, alive, correct, decided, undecided_alive
        )
        try:
            directive = adversary.next_step(view)
        finally:
            view.invalidate()
        if directive is None:
            time -= 1
            break
        pid = directive.pid
        if pid not in states:
            raise AdmissibilityError(f"adversary scheduled unknown process p{pid}")
        if pattern.is_crashed(pid, time):
            raise AdmissibilityError(
                f"adversary scheduled p{pid} at time {time}, but it crashes at "
                f"time {pattern.crash_times.get(pid)}"
            )
        if phases is not None:
            phases.lap("scheduling")

        fd_output = None
        if detector is not None:
            fd_output = detector.output(pid, time, pattern)
            if record_history:
                history.record(pid, time, fd_output)

        delivered = buffer.take(pid, directive.deliver)
        for message in delivered:
            if message.receiver != pid:  # pragma: no cover - defensive
                raise AdmissibilityError(
                    f"message #{message.msg_id} addressed to p{message.receiver} "
                    f"was delivered to p{pid}"
                )
        if phases is not None:
            phases.lap("delivery")

        old_state = states[pid]
        output = algorithm.step(old_state, delivered, fd_output)
        new_state = output.state
        _validate_transition(pid, old_state, new_state)

        sent: List[Message] = []
        for outgoing in output.messages:
            if outgoing.receiver not in states:
                raise AlgorithmError(
                    f"p{pid} sent a message to p{outgoing.receiver}, which is not "
                    f"part of the executed system; wrap the algorithm in "
                    f"RestrictedAlgorithm to run it on a subsystem"
                )
            message = buffer.put(pid, outgoing.receiver, outgoing.payload, time)
            if record_events:
                sent.append(message)

        states[pid] = new_state
        newly_decided = new_state.has_decided and not old_state.has_decided
        if newly_decided:
            decisions[pid] = new_state.decision
            decision_times[pid] = time
            decided = decided | {pid}
            membership_dirty = True
            if waiting is not None:
                waiting.discard(pid)
        if phases is not None:
            phases.lap("transition")
        if record_events:
            events.append(
                StepEvent(
                    time=time,
                    pid=pid,
                    delivered=delivered,
                    fd_output=fd_output,
                    sent=tuple(sent),
                    state_after=new_state,
                    newly_decided=newly_decided,
                )
            )
        if waiting is not None:
            if newly_decided:
                completed = not waiting
        else:
            completed = stop_condition(states, decided, correct)
        if phases is not None:
            phases.lap("recording")

    truncated = not completed and time >= max_steps
    if tracer is not None:
        tracer.finish_with_phases(
            exec_span,
            phases,
            steps=time,
            messages_sent=buffer.sent_count,
            messages_delivered=buffer.delivered_count,
            completed=completed,
            truncated=truncated,
        )
    run = Run(
        algorithm_name=algorithm.name,
        model_name=model.name,
        processes=processes,
        proposals=dict(proposals),
        events=tuple(events) if record_events else (),
        failure_pattern=pattern,
        fd_history=history,
        completed=completed,
        truncated=truncated,
        undelivered=buffer.all_pending() if recording.records_undelivered else (),
        recording=recording,
        final_decisions=decisions,
        final_decision_times=decision_times if recording.records_decision_times else None,
        step_count=time,
        sent_total=buffer.sent_count,
        delivered_total=buffer.delivered_count,
    )
    if truncated and settings.raise_on_exhaustion:
        raise ScheduleExhaustedError(
            f"run of {algorithm.name} in {model.name} exhausted its budget of "
            f"{settings.max_steps} steps",
            partial_run=run,
        )
    return run


# -- validation helpers ------------------------------------------------------


def _validate_proposals(proposals: Mapping[ProcessId, Value], processes) -> None:
    missing = [p for p in processes if p not in proposals]
    if missing:
        raise ConfigurationError(f"missing proposals for processes {missing}")
    extra = [p for p in proposals if p not in processes]
    if extra:
        raise ConfigurationError(f"proposals given for unknown processes {extra}")


def _validate_pattern(pattern: FailurePattern, model: SystemModel) -> None:
    if set(pattern.processes) != set(model.processes):
        raise ConfigurationError(
            "the failure pattern must range over exactly the model's processes"
        )
    crash_times = tuple(pattern.crash_times.items())
    if not model.failures.allows(crash_times):
        raise AdmissibilityError(
            f"planned crash schedule {sorted(crash_times)} violates the model's "
            f"failure assumption ({model.failures.describe()})"
        )


def _validate_initial_states(states: Mapping[ProcessId, ProcessState]) -> None:
    for pid, state in states.items():
        if state.pid != pid:
            raise AlgorithmError(
                f"initial_state({pid}) returned a state for p{state.pid}"
            )


def _validate_transition(pid: ProcessId, old: ProcessState, new: ProcessState) -> None:
    if new.pid != pid:
        raise AlgorithmError(f"step of p{pid} returned a state for p{new.pid}")
    if old.has_decided and new.decision != old.decision:
        raise AlgorithmError(
            f"p{pid} changed its write-once decision from {old.decision!r} to "
            f"{new.decision!r}"
        )
    if old.proposal != new.proposal:
        raise AlgorithmError(
            f"p{pid} modified its proposal from {old.proposal!r} to {new.proposal!r}"
        )
