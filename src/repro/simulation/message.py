"""Messages and per-process message buffers.

The communication subsystem of the paper's model is "one buffer per
process, which contains messages that have been sent to that process but
not yet received".  :class:`MessageBuffer` is exactly that: a mapping from
receivers to their pending messages, with no ordering guarantees beyond
what an adversary chooses to deliver (the unfavourable message-order
parameter); ordered-delivery models are obtained by using schedulers that
always deliver the oldest pending messages first.

The per-receiver queues are :class:`collections.deque`\\ s and
:meth:`MessageBuffer.take` removes the selected messages in a single
rotation pass — the buffer sits on the executor's hot path, where the old
select-then-rebuild implementation scanned every queue twice per step.
Queues are always ordered by message id (ids are assigned in send order),
which is what lets a rejected ``take`` restore the queue exactly.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.types import ProcessId, Time

__all__ = ["Message", "MessageBuffer"]


@dataclass(frozen=True)
class Message:
    """A single message in flight or delivered.

    Attributes
    ----------
    msg_id:
        Unique identifier within one execution (assigned by the buffer).
    sender / receiver:
        Process identifiers.
    payload:
        Arbitrary algorithm-defined content.
    sent_at:
        The time (global step index) of the sending step.
    """

    msg_id: int
    sender: ProcessId
    receiver: ProcessId
    payload: object
    sent_at: Time

    def __repr__(self) -> str:
        return (
            f"Message(#{self.msg_id} p{self.sender}->p{self.receiver} "
            f"@{self.sent_at} {self.payload!r})"
        )


class MessageBuffer:
    """The per-process buffers of the communication subsystem.

    The buffer assigns message identifiers, tracks pending (sent but not
    yet received) messages per receiver and remembers how many messages
    were ever sent/delivered — counters the benchmarks report.
    """

    def __init__(self, processes: Iterable[ProcessId]):
        self._pending: Dict[ProcessId, Deque[Message]] = {p: deque() for p in processes}
        self._ids = itertools.count(1)
        self.sent_count = 0
        self.delivered_count = 0

    # -- sending ----------------------------------------------------------

    def put(self, sender: ProcessId, receiver: ProcessId, payload: object, sent_at: Time) -> Message:
        """Place a new message into the receiver's buffer and return it."""
        queue = self._pending.get(receiver)
        if queue is None:
            raise SimulationError(f"message addressed to unknown process p{receiver}")
        message = Message(
            msg_id=next(self._ids),
            sender=sender,
            receiver=receiver,
            payload=payload,
            sent_at=sent_at,
        )
        queue.append(message)
        self.sent_count += 1
        return message

    # -- receiving ---------------------------------------------------------

    def pending_for(self, receiver: ProcessId) -> Tuple[Message, ...]:
        """All messages currently buffered for ``receiver`` (oldest first)."""
        queue = self._pending.get(receiver)
        return tuple(queue) if queue else ()

    def take(self, receiver: ProcessId, msg_ids: Iterable[int]) -> Tuple[Message, ...]:
        """Remove and return the messages with the given ids for ``receiver``.

        Requesting an id that is not pending for the receiver raises
        :class:`repro.exceptions.SimulationError` — adversaries must only
        deliver messages that exist.  A rejected ``take`` leaves the
        buffer unchanged.
        """
        wanted = set(msg_ids)
        if not wanted:
            return ()
        queue = self._pending.get(receiver)
        selected: List[Message] = []
        if queue:
            # Single rotation pass: every message is popped exactly once;
            # the ones not selected re-enter the queue in arrival order.
            for _ in range(len(queue)):
                message = queue.popleft()
                if message.msg_id in wanted:
                    selected.append(message)
                else:
                    queue.append(message)
        if len(selected) != len(wanted):
            if selected and queue is not None:
                # Queues are ordered by id, so merging by id restores the
                # exact pre-call queue before we report the failure.
                restored = sorted((*queue, *selected), key=lambda m: m.msg_id)
                queue.clear()
                queue.extend(restored)
            missing = wanted - {m.msg_id for m in selected}
            raise SimulationError(
                f"cannot deliver unknown/foreign message ids {sorted(missing)} to p{receiver}"
            )
        self.delivered_count += len(selected)
        return tuple(selected)

    # -- inspection ----------------------------------------------------------

    def in_flight(self) -> int:
        """Total number of pending messages."""
        return sum(len(queue) for queue in self._pending.values())

    def all_pending(self) -> Tuple[Message, ...]:
        """Every pending message, grouped by receiver."""
        return tuple(m for queue in self._pending.values() for m in queue)

    def receivers(self) -> Tuple[ProcessId, ...]:
        """The processes this buffer knows about."""
        return tuple(self._pending)

    def knows_receiver(self, receiver: ProcessId) -> bool:
        """``True`` when ``receiver`` is a process of this buffer."""
        return receiver in self._pending

    def oldest_pending(self, receiver: ProcessId) -> Optional[Message]:
        """The oldest pending message for ``receiver`` (or ``None``)."""
        queue = self._pending.get(receiver)
        return queue[0] if queue else None
