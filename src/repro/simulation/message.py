"""Messages and per-process message buffers.

The communication subsystem of the paper's model is "one buffer per
process, which contains messages that have been sent to that process but
not yet received".  :class:`MessageBuffer` is exactly that: a mapping from
receivers to their pending messages, with no ordering guarantees beyond
what an adversary chooses to deliver (the unfavourable message-order
parameter); ordered-delivery models are obtained by using schedulers that
always deliver the oldest pending messages first.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.types import ProcessId, Time

__all__ = ["Message", "MessageBuffer"]


@dataclass(frozen=True)
class Message:
    """A single message in flight or delivered.

    Attributes
    ----------
    msg_id:
        Unique identifier within one execution (assigned by the buffer).
    sender / receiver:
        Process identifiers.
    payload:
        Arbitrary algorithm-defined content.
    sent_at:
        The time (global step index) of the sending step.
    """

    msg_id: int
    sender: ProcessId
    receiver: ProcessId
    payload: object
    sent_at: Time

    def __repr__(self) -> str:
        return (
            f"Message(#{self.msg_id} p{self.sender}->p{self.receiver} "
            f"@{self.sent_at} {self.payload!r})"
        )


class MessageBuffer:
    """The per-process buffers of the communication subsystem.

    The buffer assigns message identifiers, tracks pending (sent but not
    yet received) messages per receiver and remembers how many messages
    were ever sent/delivered — counters the benchmarks report.
    """

    def __init__(self, processes: Iterable[ProcessId]):
        self._pending: Dict[ProcessId, List[Message]] = {p: [] for p in processes}
        self._ids = itertools.count(1)
        self.sent_count = 0
        self.delivered_count = 0

    # -- sending ----------------------------------------------------------

    def put(self, sender: ProcessId, receiver: ProcessId, payload: object, sent_at: Time) -> Message:
        """Place a new message into the receiver's buffer and return it."""
        if receiver not in self._pending:
            raise SimulationError(f"message addressed to unknown process p{receiver}")
        message = Message(
            msg_id=next(self._ids),
            sender=sender,
            receiver=receiver,
            payload=payload,
            sent_at=sent_at,
        )
        self._pending[receiver].append(message)
        self.sent_count += 1
        return message

    # -- receiving ---------------------------------------------------------

    def pending_for(self, receiver: ProcessId) -> Tuple[Message, ...]:
        """All messages currently buffered for ``receiver`` (oldest first)."""
        return tuple(self._pending.get(receiver, ()))

    def take(self, receiver: ProcessId, msg_ids: Iterable[int]) -> Tuple[Message, ...]:
        """Remove and return the messages with the given ids for ``receiver``.

        Requesting an id that is not pending for the receiver raises
        :class:`repro.exceptions.SimulationError` — adversaries must only
        deliver messages that exist.
        """
        wanted = set(msg_ids)
        if not wanted:
            return ()
        queue = self._pending.get(receiver, [])
        selected = [m for m in queue if m.msg_id in wanted]
        if len(selected) != len(wanted):
            missing = wanted - {m.msg_id for m in selected}
            raise SimulationError(
                f"cannot deliver unknown/foreign message ids {sorted(missing)} to p{receiver}"
            )
        self._pending[receiver] = [m for m in queue if m.msg_id not in wanted]
        self.delivered_count += len(selected)
        return tuple(selected)

    # -- inspection ----------------------------------------------------------

    def in_flight(self) -> int:
        """Total number of pending messages."""
        return sum(len(queue) for queue in self._pending.values())

    def all_pending(self) -> Tuple[Message, ...]:
        """Every pending message, grouped by receiver."""
        return tuple(m for queue in self._pending.values() for m in queue)

    def receivers(self) -> Tuple[ProcessId, ...]:
        """The processes this buffer knows about."""
        return tuple(self._pending)

    def oldest_pending(self, receiver: ProcessId) -> Optional[Message]:
        """The oldest pending message for ``receiver`` (or ``None``)."""
        queue = self._pending.get(receiver, [])
        return queue[0] if queue else None
