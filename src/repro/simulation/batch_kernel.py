"""The batched verdict kernel: whole waves of scenarios per interpreter loop.

ROADMAP open item 3, cashed in.  The zero-copy scalar executor
(:func:`repro.simulation.executor.execute`) pays full Python interpreter
overhead per step — a :class:`LazyAdversaryView`, a
:class:`StepDirective`, a frozen dataclass state replace and a handful of
frozenset copies per scheduled process.  For ``VERDICT_ONLY`` campaign
sweeps nothing of that per-step structure survives into the result: the
outcome consumes only the final decision map, the completed/truncated
flags and the volume counters.  This module executes a whole *wave* of
same-``(kind, n, f)`` scenarios against the struct-of-arrays state of
:mod:`repro.simulation.soa` instead — per-process knowledge as int
bitmasks, pending messages as plain ``(sent_at, is_report, sender)``
triples, one decision attempt as a bitmask closure walk.

**The scalar executor is the oracle.**  The kernel re-implements the
executor loop, the two schedulers and the two-stage protocol *exactly*:

* per-scenario RNG streams are seeded from
  :meth:`~repro.campaign.spec.ScenarioSpec.derived_seed` and consumed in
  the same order as :class:`~repro.simulation.scheduler.RandomScheduler`
  (one ``choice`` per step, then one ``random()`` per pending message
  that is not overdue — short-circuited exactly like the scalar code),
  so batching order cannot change outcomes;
* stage-2 reports are write-once, so the decision value at closure
  completion is computed by the *same*
  :func:`repro.graphs.knowledge_graph.decide_from_reports` the scalar
  protocol calls — the kernel only replaces the per-step "closure still
  incomplete" answers with a bitmask walk;
* the finished scenario is materialised as a genuine verdict-only
  :class:`~repro.simulation.run.Run` and evaluated by the same
  :class:`~repro.core.ksetagreement.KSetAgreementProblem` machinery, so
  outcomes are bit-identical by construction, not by coincidence.

Anything the kernel cannot replay faithfully falls back to the scalar
path per scenario: non-``VERDICT_ONLY`` recording, kinds without a
batched step function (the partitioning/isolation constructions, the
failure-detector protocols), unknown schedulers, and any scenario whose
wave setup raises (the scalar rerun then reproduces the identical error
outcome).  :func:`is_batchable` is the single predicate the campaign
layer consults.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.campaign.spec import ScenarioOutcome, ScenarioSpec
from repro.core.ksetagreement import KSetAgreementProblem
from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern, RecordedHistory
from repro.graphs.knowledge_graph import decide_from_reports
from repro.models.initial_crash import initial_crash_model
from repro.simulation.executor import _validate_pattern
from repro.simulation.recording import RecordingPolicy
from repro.simulation.run import Run
from repro.simulation.soa import WaveState, bits_to_pids, iter_bits

__all__ = [
    "BATCHABLE_SCHEDULERS",
    "batchable_kinds",
    "is_batchable",
    "wave_key",
    "partition_waves",
    "wave_runs",
    "execute_wave",
]

#: Schedulers the kernel replays with the exact scalar RNG stream.
BATCHABLE_SCHEDULERS = frozenset({"round-robin", "random"})

#: Kinds with a batched step function.  The two-stage Section VI protocol
#: is the only one so far; FD-querying kinds and the partitioning
#: constructions take the scalar path.
_BATCHABLE_KINDS = frozenset({"theorem8-solvable"})


def batchable_kinds() -> Tuple[str, ...]:
    """The scenario kinds the kernel can execute, sorted."""
    return tuple(sorted(_BATCHABLE_KINDS))


def is_batchable(spec: ScenarioSpec) -> bool:
    """``True`` when ``spec`` can run on the batched kernel.

    Everything else — FULL/DECISIONS_ONLY recording, kinds without a
    batched step function, schedulers the kernel cannot replay — takes
    the scalar path, which remains the oracle either way.
    """
    return (
        spec.kind in _BATCHABLE_KINDS
        and spec.recording == RecordingPolicy.VERDICT_ONLY.value
        and spec.scheduler in BATCHABLE_SCHEDULERS
    )


def wave_key(spec: ScenarioSpec) -> Tuple[str, int, int]:
    """The grouping key: same kind, system size and failure bound."""
    return (spec.kind, spec.n, spec.f)


def partition_waves(
    specs: Sequence[ScenarioSpec],
) -> Tuple[List[List[int]], List[int]]:
    """Group spec positions into waves, splitting off the scalar rest.

    Returns ``(waves, scalar)`` where each wave is a list of positions
    into ``specs`` sharing one :func:`wave_key` (in first-occurrence
    order, positions ascending) and ``scalar`` lists the positions of
    non-batchable specs in input order.  Every position appears exactly
    once, so callers can reassemble outcomes in input order.
    """
    waves: Dict[Tuple[str, int, int], List[int]] = {}
    order: List[Tuple[str, int, int]] = []
    scalar: List[int] = []
    for position, spec in enumerate(specs):
        if not is_batchable(spec):
            scalar.append(position)
            continue
        key = wave_key(spec)
        if key not in waves:
            waves[key] = []
            order.append(key)
        waves[key].append(position)
    return [waves[key] for key in order], scalar


# -- wave setup --------------------------------------------------------------


def _setup_slot(ws: WaveState, slot: int, spec: ScenarioSpec, model) -> FailurePattern:
    """Fill one scenario slot, running the scalar path's validations.

    Raises exactly where the scalar construction would (inadmissible
    crash schedules, bad scheduler parameters); the caller turns any
    raise into a per-scenario scalar fallback, which reproduces the
    identical error outcome.
    """
    pattern = FailurePattern(model.processes, dict(spec.crashes))
    _validate_pattern(pattern, model)
    if spec.scheduler == "random":
        bias = float(spec.param("delivery_bias", 0.5))
        delay = int(spec.param("max_delay", 20))
        if not 0.0 <= bias <= 1.0:
            raise ConfigurationError("delivery_bias must be within [0, 1]")
        if delay < 0:
            raise ConfigurationError("max_delay must be >= 0")
        ws.rng[slot] = random.Random(spec.derived_seed())
        ws.delivery_bias[slot] = bias
        ws.max_delay[slot] = delay
    elif spec.scheduler != "round-robin":
        raise ConfigurationError(
            f"batched kernel cannot replay scheduler {spec.scheduler!r}"
        )
    ws.max_steps[slot] = spec.max_steps
    ws.crash_schedule[slot] = tuple(
        sorted((t, pid) for pid, t in pattern.crash_times.items())
    )
    correct_mask = 0
    for pid in pattern.correct:
        correct_mask |= 1 << (pid - 1)
    ws.correct[slot] = correct_mask
    return pattern


# -- the tight loop ----------------------------------------------------------


def _run_slot(ws: WaveState, slot: int) -> None:
    """Run one scenario of the wave to completion over its SoA rows.

    A line-for-line replay of the scalar executor loop specialised to
    the two-stage protocol: crash application, membership refresh,
    scheduler pick, delivery, absorption, stage transitions, decision.
    """
    n = ws.n
    threshold_m1 = ws.threshold - 1
    heard = ws.heard[slot]
    known = ws.known[slot]
    preds = ws.report_preds[slot]
    values = ws.report_value[slot]
    queues = ws.queues[slot]
    decision_value = ws.decision_value[slot]
    crash_schedule = ws.crash_schedule[slot]
    crash_count = len(crash_schedule)
    crash_index = 0
    alive = ws.alive[slot]
    decided = 0
    correct = ws.correct[slot]
    sent_s1 = 0
    stage2 = 0
    sent = 0
    delivered_count = 0
    rng = ws.rng[slot]
    rng_random = rng.random if rng is not None else None
    rng_choice = rng.choice if rng is not None else None
    rr_last: Optional[int] = None
    bias = ws.delivery_bias[slot]
    max_delay = ws.max_delay[slot]
    max_steps = ws.max_steps[slot]
    candidates: Tuple[int, ...] = ()
    dirty = True
    time = 0
    completed = (correct & ~decided) == 0
    # Reports are write-once and shared by the whole scenario, so the
    # decision reached from a given complete closure mask is the same for
    # every owner inside it: decide_from_reports takes the minimum over
    # the source components of the closure's induced graph, which does
    # not depend on the owner.  Memoising per closure mask turns the
    # n-fold repeated graph analysis into one call per distinct closure.
    decision_cache: Dict[int, Optional[int]] = {}

    while not completed and time < max_steps:
        time += 1
        if crash_index < crash_count and crash_schedule[crash_index][0] <= time:
            while crash_index < crash_count and crash_schedule[crash_index][0] <= time:
                alive &= ~(1 << (crash_schedule[crash_index][1] - 1))
                crash_index += 1
            dirty = True
        if dirty:
            candidates = bits_to_pids(alive & ~decided)
            dirty = False
        if not candidates:
            # the scalar adversary-halt rewind: the aborted step never ran
            time -= 1
            break

        # -- scheduling (exact scalar RNG order) --------------------------
        if rng is None:
            pid = candidates[0]
            if rr_last is not None:
                for candidate in candidates:
                    if candidate > rr_last:
                        pid = candidate
                        break
            rr_last = pid
            i = pid - 1
            delivered = queues[i]
            if delivered:
                queues[i] = []
        else:
            pid = rng_choice(candidates)
            i = pid - 1
            queue = queues[i]
            if queue:
                delivered = []
                kept = []
                for entry in queue:
                    # overdue messages never consume the RNG (short-circuit)
                    if (time - entry[0]) >= max_delay or rng_random() < bias:
                        delivered.append(entry)
                    else:
                        kept.append(entry)
                queues[i] = kept
            else:
                delivered = ()

        # -- absorption ---------------------------------------------------
        heard_i = heard[i]
        known_i = known[i]
        for entry in delivered:
            if entry[1]:
                known_i |= 1 << (entry[2] - 1)
            else:
                heard_i |= 1 << (entry[2] - 1)
        delivered_count += len(delivered)
        new_reports = known_i != known[i]
        heard[i] = heard_i

        # -- stage-1 broadcast --------------------------------------------
        if not (sent_s1 >> i) & 1:
            sent_s1 |= 1 << i
            entry = (time, False, pid)
            for j in range(n):
                if j != i:
                    queues[j].append(entry)
            sent += n - 1

        # -- stage-2 entry (threshold reached) ----------------------------
        if not (stage2 >> i) & 1 and heard_i.bit_count() >= threshold_m1:
            stage2 |= 1 << i
            preds[i] = heard_i  # the frozen predecessor set
            values[i] = pid  # theorem8 proposals are {p: p}
            known_i |= 1 << i
            entry = (time, True, pid)
            for j in range(n):
                if j != i:
                    queues[j].append(entry)
            sent += n - 1
            new_reports = True
        known[i] = known_i

        # -- decision attempt ---------------------------------------------
        if new_reports and (stage2 >> i) & 1 and (known_i >> i) & 1:
            required = 0
            frontier = 1 << i
            complete = True
            while frontier:
                bit = frontier & -frontier
                frontier ^= bit
                j = bit.bit_length() - 1
                if not (known_i >> j) & 1:
                    complete = False
                    break
                required |= bit
                frontier |= preds[j] & ~required & ~frontier
            if complete:
                if required in decision_cache:
                    decision = decision_cache[required]
                else:
                    heard_from = {}
                    report_values = {}
                    for j in iter_bits(required):
                        heard_from[j + 1] = bits_to_pids(preds[j])
                        report_values[j + 1] = values[j]
                    decision = decide_from_reports(pid, heard_from, report_values)
                    decision_cache[required] = decision
                if decision is not None:
                    decision_value[i] = decision
                    decided |= 1 << i
                    dirty = True
                    completed = (correct & ~decided) == 0

    # -- write back ------------------------------------------------------
    ws.alive[slot] = alive
    ws.decided[slot] = decided
    ws.sent_stage1[slot] = sent_s1
    ws.stage2[slot] = stage2
    ws.sent[slot] = sent
    ws.delivered[slot] = delivered_count
    ws.time[slot] = time
    ws.completed[slot] = completed


# -- runs and outcomes -------------------------------------------------------


def _build_run(
    ws: WaveState, slot: int, algorithm_name: str, model, pattern, proposals
) -> Run:
    """Materialise one finished slot as a genuine verdict-only run."""
    time = ws.time[slot]
    completed = ws.completed[slot]
    return Run(
        algorithm_name=algorithm_name,
        model_name=model.name,
        processes=model.processes,
        proposals=dict(proposals),
        events=(),
        failure_pattern=pattern,
        fd_history=RecordedHistory(),
        completed=completed,
        truncated=not completed and time >= ws.max_steps[slot],
        undelivered=(),
        recording=RecordingPolicy.VERDICT_ONLY,
        final_decisions=ws.decisions_of(slot),
        final_decision_times=None,
        step_count=time,
        sent_total=ws.sent[slot],
        delivered_total=ws.delivered[slot],
    )


def _check_wave(specs: Sequence[ScenarioSpec]) -> Tuple[str, int, int]:
    if not specs:
        raise ConfigurationError("a wave needs at least one scenario")
    key = wave_key(specs[0])
    for spec in specs[1:]:
        if wave_key(spec) != key:
            raise ConfigurationError(
                f"wave mixes keys {key} and {wave_key(spec)}; group specs "
                "with partition_waves first"
            )
    return key


def wave_runs(
    specs: Sequence[ScenarioSpec],
) -> List[Optional[Run]]:
    """Execute a wave and return the per-scenario runs (oracle hook).

    Slots the kernel could not set up or run return ``None`` instead of
    a run (callers fall back to the scalar path for those).  The
    equivalence tests compare these runs field-for-field — decisions,
    flags, step and message counters — against the scalar executor.
    """
    _, runs, _ = _execute(specs)
    return runs


def execute_wave(
    specs: Sequence[ScenarioSpec], *, tracer=None
) -> List[ScenarioOutcome]:
    """Execute one wave, returning outcomes in input order.

    ``tracer`` (a :class:`repro.telemetry.spans.Tracer`, optional)
    receives one ``kernel:wave`` span carrying the wave key, wave size
    and the number of scenarios that fell back to the scalar path.
    """
    span = None
    if tracer is not None:
        kind, n, f = _check_wave(specs)
        span = tracer.start_span(
            "kernel:wave", {"kind": kind, "n": n, "f": f, "size": len(specs)}
        )
    try:
        outcomes, _, fallbacks = _execute(specs)
        if span is not None:
            span.attrs["fallbacks"] = fallbacks
        return outcomes
    finally:
        if span is not None:
            tracer.end_span(span)


def _execute(
    specs: Sequence[ScenarioSpec],
) -> Tuple[List[ScenarioOutcome], List[Optional[Run]], int]:
    """The shared wave engine: outcomes, runs and the fallback count."""
    _check_wave(specs)
    size = len(specs)
    n, f = specs[0].n, specs[0].f
    outcomes: List[Optional[ScenarioOutcome]] = [None] * size
    runs: List[Optional[Run]] = [None] * size
    fallback: List[int] = []

    try:
        model = initial_crash_model(n, f)
        algorithm_name = KSetInitialCrash(n, f).name
        proposals = {pid: pid for pid in model.processes}
        ws: Optional[WaveState] = WaveState(n, f, size)
    except Exception:  # noqa: BLE001 - whole-wave setup failure
        ws = None
        fallback.extend(range(size))

    if ws is not None:
        patterns: List[Optional[FailurePattern]] = [None] * size
        ready: List[int] = []
        for slot, spec in enumerate(specs):
            try:
                patterns[slot] = _setup_slot(ws, slot, spec, model)
                ready.append(slot)
            except Exception:  # noqa: BLE001 - scalar rerun reproduces it
                fallback.append(slot)
        for slot in ready:
            try:
                _run_slot(ws, slot)
                run = _build_run(
                    ws, slot, algorithm_name, model, patterns[slot], proposals
                )
                spec = specs[slot]
                report = KSetAgreementProblem(spec.k).evaluate(
                    run, proposals=proposals
                )
                runs[slot] = run
                outcomes[slot] = ScenarioOutcome.from_report(spec, report, run)
            except Exception:  # noqa: BLE001 - scalar rerun reproduces it
                runs[slot] = None
                fallback.append(slot)

    if fallback:
        # Function-level import: the campaign runner imports this module's
        # consumers; pulling run_scenario at the top would be circular.
        from repro.campaign.runner import run_scenario

        for slot in fallback:
            outcomes[slot] = run_scenario(specs[slot])

    return list(outcomes), runs, len(fallback)
