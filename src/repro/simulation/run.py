"""Recorded runs and the queries the paper's definitions need.

A :class:`Run` is the finite prefix of an execution produced by the
executor: the initial proposals, the sequence of step events, the failure
pattern, the recorded failure-detector history and some bookkeeping about
why the execution stopped.  On top of the raw record it offers exactly the
queries the paper's machinery needs:

* the decision of every process and the time it was made,
* the number of distinct decision values (k-agreement),
* the per-process *state sequence up to the decision*, which is what
  Definition 2's indistinguishability-until-decision compares,
* the set of processes a given process heard from before deciding, which
  is what conditions (dec-D-bar) and T-independence are about.

How much of the underlying trace exists depends on the run's
:class:`~repro.simulation.recording.RecordingPolicy`: under
``DECISIONS_ONLY``/``VERDICT_ONLY`` the executor skips the step events
(and with them the per-step message log), recording the decisions and the
volume counters directly instead.  The decision/counter queries therefore
work — and return identical values — under every policy, while queries
that genuinely need the step events raise
:class:`repro.exceptions.TraceUnavailableError` on trimmed runs.  Runs
constructed directly from events (run pasting, tests) keep working: every
directly-recorded field falls back to deriving from ``events``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.algorithms.base import ProcessState
from repro.exceptions import TraceUnavailableError
from repro.failure_detectors.base import FailurePattern, RecordedHistory
from repro.simulation.events import StepEvent
from repro.simulation.message import Message
from repro.simulation.recording import RecordingPolicy
from repro.types import UNDECIDED, ProcessId, Time, Value

__all__ = ["Run"]


@dataclass
class Run:
    """The recorded prefix of one execution.

    Attributes
    ----------
    algorithm_name / model_name:
        Names of the algorithm and model that produced the run.
    processes:
        The process identifiers of the executed system (for restricted
        executions this is the subset ``D``, not the original ``Pi``).
    proposals:
        The initial value of every executed process.
    events:
        The step events in execution order (empty when the recording
        policy skipped them).
    failure_pattern:
        The planned failure pattern of the run.
    fd_history:
        The recorded failure-detector history (empty in detector-free
        models and under trimmed recording policies).
    completed:
        ``True`` when the executor's stop condition was met (by default:
        every correct process decided).
    truncated:
        ``True`` when the step budget ran out first.
    undelivered:
        Messages still buffered when the execution stopped (not recorded
        under ``VERDICT_ONLY``).
    recording:
        The :class:`RecordingPolicy` the run was executed under.
    final_decisions / final_decision_times:
        Decision values/times recorded directly by the executor; when
        ``None`` (runs constructed from events) they are derived from
        ``events`` on demand.
    step_count / sent_total / delivered_total:
        Volume counters recorded directly by the executor; when ``None``
        they are derived from ``events``.
    """

    algorithm_name: str
    model_name: str
    processes: Tuple[ProcessId, ...]
    proposals: Mapping[ProcessId, Value]
    events: Tuple[StepEvent, ...]
    failure_pattern: FailurePattern
    fd_history: RecordedHistory = field(default_factory=RecordedHistory)
    completed: bool = False
    truncated: bool = False
    undelivered: Tuple[Message, ...] = ()
    recording: RecordingPolicy = RecordingPolicy.FULL
    final_decisions: Optional[Mapping[ProcessId, Value]] = None
    final_decision_times: Optional[Mapping[ProcessId, Time]] = None
    step_count: Optional[int] = None
    sent_total: Optional[int] = None
    delivered_total: Optional[int] = None

    # -- trace availability -------------------------------------------------

    def _require_events(self, query: str) -> None:
        if self.recording is not RecordingPolicy.FULL:
            raise TraceUnavailableError(
                f"{query} needs the step-event trace, which "
                f"RecordingPolicy.{self.recording.name} does not record; "
                "re-run with RecordingPolicy.FULL"
            )

    # -- decisions ---------------------------------------------------------

    def decisions(self) -> Dict[ProcessId, Value]:
        """Map every decided process to its decision value."""
        if self.final_decisions is not None:
            return dict(self.final_decisions)
        decided: Dict[ProcessId, Value] = {}
        for event in self.events:
            if event.newly_decided:
                decided[event.pid] = event.state_after.decision
        return decided

    def decision_times(self) -> Dict[ProcessId, Time]:
        """Map every decided process to the time of its deciding step."""
        if self.final_decision_times is not None:
            return dict(self.final_decision_times)
        if self.recording is RecordingPolicy.VERDICT_ONLY:
            raise TraceUnavailableError(
                "decision times are not recorded under "
                "RecordingPolicy.VERDICT_ONLY; use DECISIONS_ONLY or FULL"
            )
        times: Dict[ProcessId, Time] = {}
        for event in self.events:
            if event.newly_decided and event.pid not in times:
                times[event.pid] = event.time
        return times

    def decision_of(self, pid: ProcessId) -> Value:
        """The decision of ``pid``, or :data:`repro.types.UNDECIDED`."""
        return self.decisions().get(pid, UNDECIDED)

    def distinct_decisions(self) -> FrozenSet[Value]:
        """The set of decision values that appear in the run."""
        return frozenset(self.decisions().values())

    def decided_processes(self) -> FrozenSet[ProcessId]:
        """Processes that decided during the recorded prefix."""
        return frozenset(self.decisions())

    def last_decision_time(self) -> Optional[Time]:
        """The time of the latest decision, or ``None`` if nobody decided."""
        times = self.decision_times()
        return max(times.values()) if times else None

    # -- failure bookkeeping -------------------------------------------------

    def correct_processes(self) -> FrozenSet[ProcessId]:
        """Processes of this run that never crash (per the failure pattern)."""
        return frozenset(self.processes) - self.failure_pattern.faulty

    def faulty_processes(self) -> FrozenSet[ProcessId]:
        """Processes of this run that crash at some point."""
        return frozenset(self.processes) & self.failure_pattern.faulty

    # -- per-process views ----------------------------------------------------

    def steps_of(self, pid: ProcessId) -> Tuple[StepEvent, ...]:
        """All step events of one process, in execution order."""
        self._require_events("steps_of")
        return tuple(e for e in self.events if e.pid == pid)

    def state_sequence(self, pid: ProcessId, *, until_decision: bool = True) -> Tuple[ProcessState, ...]:
        """The sequence of states ``pid`` goes through.

        With ``until_decision=True`` (the default) the sequence stops at the
        first state in which the process has decided — this is precisely the
        object Definition 2 compares across runs.
        """
        states: List[ProcessState] = []
        for event in self.steps_of(pid):
            states.append(event.state_after)
            if until_decision and event.state_after.has_decided:
                break
        return tuple(states)

    def received_before_decision(self, pid: ProcessId) -> FrozenSet[ProcessId]:
        """Senders whose messages ``pid`` received up to (and incl.) its decision step.

        For processes that never decide, the whole recorded prefix counts.
        Used to check condition (dec-D-bar) of Theorem 1 and the
        T-independence property of Definition 6.
        """
        heard: set[ProcessId] = set()
        for event in self.steps_of(pid):
            heard.update(m.sender for m in event.delivered)
            if event.state_after.has_decided:
                break
        return frozenset(heard)

    def deliveries_to(self, pid: ProcessId) -> Tuple[Message, ...]:
        """Every message delivered to ``pid`` during the run."""
        return tuple(m for e in self.steps_of(pid) for m in e.delivered)

    def undelivered_to(self, pid: ProcessId) -> Tuple[Message, ...]:
        """Messages addressed to ``pid`` that were still pending at the end."""
        if not self.recording.records_undelivered:
            raise TraceUnavailableError(
                "undelivered messages are not recorded under "
                "RecordingPolicy.VERDICT_ONLY; use DECISIONS_ONLY or FULL"
            )
        return tuple(m for m in self.undelivered if m.receiver == pid)

    # -- aggregates ------------------------------------------------------------

    @property
    def length(self) -> int:
        """The run's final time — the timestamp of its last step.

        Prefer the executor's explicit step counter; without one, fall
        back to the last event's timestamp rather than the event *count*:
        the two disagree as soon as event times are non-contiguous, and
        the count can undershoot recorded decision times, breaking the
        invariant that the final time bounds every recorded timestamp.
        """
        if self.step_count is not None:
            return self.step_count
        if not self.events:
            return 0
        return self.events[-1].time

    def messages_sent(self) -> int:
        """Total number of messages sent during the run."""
        if self.sent_total is not None:
            return self.sent_total
        return sum(len(e.sent) for e in self.events)

    def messages_delivered(self) -> int:
        """Total number of messages delivered during the run."""
        if self.delivered_total is not None:
            return self.delivered_total
        return sum(len(e.delivered) for e in self.events)

    def summary(self) -> Dict[str, object]:
        """A compact dictionary used by reports and benchmarks."""
        decisions = self.decisions()
        return {
            "algorithm": self.algorithm_name,
            "model": self.model_name,
            "steps": self.length,
            "messages_sent": self.messages_sent(),
            "messages_delivered": self.messages_delivered(),
            "decided": len(decisions),
            "distinct_decisions": len(self.distinct_decisions()),
            "completed": self.completed,
            "truncated": self.truncated,
            "failures": self.failure_pattern.describe(),
        }
