"""Recording policies: how much of an execution the executor keeps.

Every result in the reproduction bottoms out in
:func:`repro.simulation.executor.execute`, but different consumers need
very different amounts of the execution back:

* the indistinguishability machinery (Definition 2, run pasting) replays
  per-process state sequences and therefore needs the full
  :class:`~repro.simulation.events.StepEvent` trace,
* most property checks (k-agreement, validity, termination) only need the
  final decisions plus the completed/truncated flags,
* a campaign sweep frequently consumes nothing but a boolean verdict per
  scenario.

A :class:`RecordingPolicy` names one of those contracts.  Under
``DECISIONS_ONLY`` and ``VERDICT_ONLY`` the executor skips ``StepEvent``
and failure-detector history construction entirely — the dominating
allocation cost of verdict-only sweeps — while still producing a
:class:`~repro.simulation.run.Run` whose ``decisions()``, ``completed``,
``truncated``, ``length`` and message counters are **bit-identical** to a
``FULL`` run of the same execution (the schedule itself never depends on
the policy).  Queries that need data the policy skipped raise
:class:`repro.exceptions.TraceUnavailableError` instead of returning an
empty trace.
"""

from __future__ import annotations

import enum
from typing import Union

from repro.exceptions import ConfigurationError

__all__ = ["RecordingPolicy", "RECORDING_POLICY_NAMES"]


class RecordingPolicy(enum.Enum):
    """What the executor records about one execution.

    ``FULL``
        Everything (the default): step events, failure-detector history,
        undelivered messages, decisions and decision times.
    ``DECISIONS_ONLY``
        No step events and no failure-detector history; decisions,
        decision times and the undelivered-message tally are kept.
    ``VERDICT_ONLY``
        Only what the k-set agreement property checkers need: the final
        decisions, completed/truncated flags, step and message counters.
    """

    FULL = "full"
    DECISIONS_ONLY = "decisions-only"
    VERDICT_ONLY = "verdict-only"

    @classmethod
    def coerce(cls, value: Union["RecordingPolicy", str]) -> "RecordingPolicy":
        """Accept a policy or its string name (``"verdict-only"`` etc.)."""
        if isinstance(value, RecordingPolicy):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ConfigurationError(
                f"unknown recording policy {value!r}; choose one of "
                f"{RECORDING_POLICY_NAMES}"
            ) from None

    # -- what each policy keeps -------------------------------------------

    @property
    def records_events(self) -> bool:
        """``True`` when per-step :class:`StepEvent` objects are recorded."""
        return self is RecordingPolicy.FULL

    @property
    def records_history(self) -> bool:
        """``True`` when the failure-detector history is recorded."""
        return self is RecordingPolicy.FULL

    @property
    def records_decision_times(self) -> bool:
        """``True`` when per-process decision times are recorded."""
        return self is not RecordingPolicy.VERDICT_ONLY

    @property
    def records_undelivered(self) -> bool:
        """``True`` when the final undelivered-message list is recorded."""
        return self is not RecordingPolicy.VERDICT_ONLY


#: The accepted string spellings, in enum order (used by spec validation).
RECORDING_POLICY_NAMES = tuple(policy.value for policy in RecordingPolicy)
