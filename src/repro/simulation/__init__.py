"""The executable message-passing substrate.

This subpackage turns the paper's abstract computation model (Section II)
into runnable code: processes are deterministic state machines
(:mod:`repro.algorithms.base`), the communication subsystem is one buffer
per process (:mod:`repro.simulation.message`), a *run* is the recorded
sequence of steps together with the failure pattern and failure-detector
history (:mod:`repro.simulation.run`), and the choice of which process
steps next, which messages it receives and who crashes when is made by an
*adversary* (:mod:`repro.simulation.scheduler`,
:mod:`repro.simulation.adversary`).  The executor
(:mod:`repro.simulation.executor`) drives the loop, enforces the step
contract and produces :class:`~repro.simulation.run.Run` objects that the
core theorem machinery and the benchmarks analyse.
"""

from repro.simulation.message import Message, MessageBuffer
from repro.simulation.events import StepEvent
from repro.simulation.recording import RecordingPolicy
from repro.simulation.run import Run
from repro.simulation.scheduler import (
    Adversary,
    AdversaryView,
    LazyAdversaryView,
    StepDirective,
    RoundRobinScheduler,
    RandomScheduler,
)
from repro.simulation.adversary import (
    PartitioningAdversary,
    IsolationAdversary,
    SilenceAdversary,
)
from repro.simulation.executor import ExecutionSettings, execute

__all__ = [
    "Message",
    "MessageBuffer",
    "StepEvent",
    "RecordingPolicy",
    "Run",
    "Adversary",
    "AdversaryView",
    "LazyAdversaryView",
    "StepDirective",
    "RoundRobinScheduler",
    "RandomScheduler",
    "PartitioningAdversary",
    "IsolationAdversary",
    "SilenceAdversary",
    "ExecutionSettings",
    "execute",
]
