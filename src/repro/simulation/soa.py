"""Struct-of-arrays state for the batched verdict kernel.

One :class:`WaveState` holds the *entire* mutable execution state of a
wave of same-``(kind, n, f)`` scenarios as parallel arrays indexed by the
scenario's slot in the wave.  Per-process facts are packed into int
bitmasks (bit ``p - 1`` stands for process ``p``), so the kernel's inner
loop works on machine integers instead of frozensets and dataclasses:

* ``alive`` / ``decided`` / ``correct`` — one bitmask row per scenario,
* ``heard`` / ``known`` — ``size x n`` matrices of bitmasks: which
  stage-1 identifiers respectively stage-2 reports each process holds,
* ``report_preds`` / ``report_value`` — the write-once stage-2 report of
  every process (its frozen predecessor bitmask and its proposal); the
  two-stage protocol broadcasts exactly one report per process, so the
  wave can store it once globally instead of once per receiver,
* ``queues`` — per-receiver pending-message lists of
  ``(sent_at, is_report, sender)`` triples in send order, mirroring the
  id-ordered deques of :class:`~repro.simulation.message.MessageBuffer`,
* ``sent`` / ``delivered`` — the dense per-wave message-count matrix,
* ``decision_value`` — flat decision arrays (``None`` = undecided).

Scenario-level control state (step clocks, budgets, crash schedules, the
per-scenario RNG stream) lives in flat arrays as well.  The container is
deliberately dumb: all semantics — and the bit-identity contract with
the scalar executor — live in :mod:`repro.simulation.batch_kernel`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

__all__ = ["WaveState", "bits_to_pids", "iter_bits"]


def iter_bits(mask: int):
    """Yield the 0-based indices of the set bits of ``mask``, ascending."""
    while mask:
        bit = mask & -mask
        yield bit.bit_length() - 1
        mask ^= bit


def bits_to_pids(mask: int) -> Tuple[int, ...]:
    """The 1-based process ids of a bitmask, in ascending (sorted) order."""
    return tuple(index + 1 for index in iter_bits(mask))


class WaveState:
    """Mutable struct-of-arrays state of one wave (see module docstring).

    The constructor only allocates; the kernel fills the per-scenario
    rows (crash schedules, RNG streams, budgets) during wave setup.
    """

    __slots__ = (
        "n", "f", "threshold", "size", "full_mask",
        # bitmask rows (one int per scenario)
        "alive", "decided", "correct", "sent_stage1", "stage2",
        # size x n matrices
        "heard", "known", "report_preds", "report_value",
        "queues", "decision_value",
        # dense per-wave counters and control arrays
        "sent", "delivered", "time", "max_steps", "completed", "halted",
        "crash_schedule", "crash_index",
        "rng", "rr_last", "delivery_bias", "max_delay",
        "candidates", "dirty",
    )

    def __init__(self, n: int, f: int, size: int):
        self.n = n
        self.f = f
        self.threshold = n - f
        self.size = size
        full = (1 << n) - 1
        self.full_mask = full

        self.alive: List[int] = [full] * size
        self.decided: List[int] = [0] * size
        self.correct: List[int] = [full] * size
        self.sent_stage1: List[int] = [0] * size
        self.stage2: List[int] = [0] * size

        self.heard: List[List[int]] = [[0] * n for _ in range(size)]
        self.known: List[List[int]] = [[0] * n for _ in range(size)]
        self.report_preds: List[List[int]] = [[0] * n for _ in range(size)]
        self.report_value: List[list] = [[None] * n for _ in range(size)]
        self.queues: List[List[list]] = [
            [[] for _ in range(n)] for _ in range(size)
        ]
        self.decision_value: List[list] = [[None] * n for _ in range(size)]

        self.sent: List[int] = [0] * size
        self.delivered: List[int] = [0] * size
        self.time: List[int] = [0] * size
        self.max_steps: List[int] = [0] * size
        self.completed: List[bool] = [False] * size
        self.halted: List[bool] = [False] * size

        self.crash_schedule: List[Tuple[Tuple[int, int], ...]] = [()] * size
        self.crash_index: List[int] = [0] * size

        self.rng: List[Optional[random.Random]] = [None] * size
        self.rr_last: List[Optional[int]] = [None] * size
        self.delivery_bias: List[float] = [0.5] * size
        self.max_delay: List[int] = [20] * size

        # cached sorted undecided-alive tuples, mirroring the executor's
        # incremental membership tracking
        self.candidates: List[Tuple[int, ...]] = [()] * size
        self.dirty: List[bool] = [True] * size

    def decisions_of(self, slot: int) -> dict:
        """The final decision map of one scenario (1-based pids)."""
        values = self.decision_value[slot]
        return {
            index + 1: values[index] for index in iter_bits(self.decided[slot])
        }
