"""Immutable configurations for exhaustive exploration.

The executor works with mutable state for speed; the bounded
model-checking utilities (:mod:`repro.analysis.bivalence`) instead need
immutable, hashable snapshots of "where the system is" so they can explore
the tree of reachable configurations.  A :class:`Configuration` captures
the local states of all processes together with the multiset of messages
in flight, exactly the paper's notion of a configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.algorithms.base import Algorithm, ProcessState
from repro.types import ProcessId, Value

__all__ = ["PendingMessage", "Configuration"]


@dataclass(frozen=True)
class PendingMessage:
    """A message in flight, identified positionally for exploration.

    Unlike :class:`repro.simulation.message.Message`, exploration messages
    carry no global identifier or timestamp: two configurations that differ
    only in such bookkeeping should compare equal.
    """

    sender: ProcessId
    receiver: ProcessId
    payload: object

    def key(self) -> Tuple[ProcessId, ProcessId, str]:
        """A canonical sort key (payloads compared by ``repr``)."""
        return (self.sender, self.receiver, repr(self.payload))


@dataclass(frozen=True)
class Configuration:
    """A snapshot of local states plus in-flight messages.

    ``states`` maps every process to its algorithm state; ``in_flight`` is
    a tuple of pending messages in canonical order (so structurally equal
    configurations compare and hash equal, which the exploration relies on
    for memoisation).
    """

    states: Tuple[Tuple[ProcessId, ProcessState], ...]
    in_flight: Tuple[PendingMessage, ...]

    @classmethod
    def initial(
        cls,
        algorithm: Algorithm,
        processes: Tuple[ProcessId, ...],
        proposals: Mapping[ProcessId, Value],
    ) -> "Configuration":
        """The initial configuration for given proposals."""
        states = tuple(
            (pid, algorithm.initial_state(pid, processes, proposals[pid]))
            for pid in processes
        )
        return cls(states=states, in_flight=())

    # -- accessors ---------------------------------------------------------

    def state_of(self, pid: ProcessId) -> ProcessState:
        """The local state of ``pid``."""
        for candidate, state in self.states:
            if candidate == pid:
                return state
        raise KeyError(pid)

    @property
    def processes(self) -> Tuple[ProcessId, ...]:
        """All process identifiers of the configuration."""
        return tuple(pid for pid, _state in self.states)

    def decisions(self) -> Dict[ProcessId, Value]:
        """Decisions present in this configuration."""
        return {
            pid: state.decision for pid, state in self.states if state.has_decided
        }

    def decided_values(self) -> FrozenSet[Value]:
        """The distinct decision values present in this configuration."""
        return frozenset(self.decisions().values())

    def pending_for(self, pid: ProcessId) -> Tuple[PendingMessage, ...]:
        """Messages currently in flight towards ``pid``."""
        return tuple(m for m in self.in_flight if m.receiver == pid)

    # -- transitions ---------------------------------------------------------

    def apply_step(
        self,
        algorithm: Algorithm,
        pid: ProcessId,
        deliver: Tuple[PendingMessage, ...] = (),
        fd_output: Optional[object] = None,
    ) -> "Configuration":
        """Apply one step of ``pid`` consuming ``deliver`` and return the successor.

        The delivered messages must currently be in flight towards ``pid``;
        they are removed, the algorithm's transition is applied (the
        delivered messages are wrapped so that ``.payload`` and ``.sender``
        behave like real messages), and the messages it sends are appended
        to the in-flight multiset.
        """
        remaining = list(self.in_flight)
        for message in deliver:
            if message.receiver != pid or message not in remaining:
                raise ValueError(f"{message} is not deliverable to p{pid}")
            remaining.remove(message)
        output = algorithm.step(self.state_of(pid), tuple(deliver), fd_output)
        new_states = tuple(
            (candidate, output.state if candidate == pid else state)
            for candidate, state in self.states
        )
        for outgoing in output.messages:
            remaining.append(
                PendingMessage(sender=pid, receiver=outgoing.receiver, payload=outgoing.payload)
            )
        return Configuration(
            states=new_states,
            in_flight=tuple(sorted(remaining, key=PendingMessage.key)),
        )
