"""Proof-specific adversaries: partitioning, isolation and selective silence.

The impossibility arguments of the paper are *constructions*: given an
algorithm, they exhibit admissible schedules in which asynchrony and
failures conspire so that the system effectively splits into blocks whose
members decide without ever hearing from the other blocks.  The three
adversaries here are those constructions made executable:

* :class:`PartitioningAdversary` — delays every message that crosses a
  block boundary of a fixed partition ``D_1, ..., D_{k-1}, D-bar`` until
  every (alive) process has decided; within a block it schedules fairly.
  This is the schedule used in Theorem 2 (condition (B)) and in the
  pasting Lemmas 11/12.
* :class:`IsolationAdversary` — only processes of one block take steps and
  only intra-block messages are delivered; the runs ``alpha_i`` of
  Lemma 12, in which every process outside ``D_i`` is initially dead, are
  produced with this adversary plus an initial-crash failure pattern.
* :class:`SilenceAdversary` — processes of a designated group ``D-bar``
  never receive messages from a designated group ``D`` until every member
  of ``D-bar`` has decided (condition (dec-D-bar) of Theorem 1); all other
  communication is unrestricted.

All three honour the lazy-view contract of
:class:`repro.simulation.scheduler.LazyAdversaryView`: they read each view
only inside the ``next_step`` call that received it and never retain it.
Per-step derived facts (the "has everyone decided?" release check) are
memoised on the view's identity, so they are computed once per step rather
than once per pending message.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.simulation.message import Message
from repro.simulation.scheduler import Adversary, AdversaryView, StepDirective
from repro.types import ProcessId

__all__ = ["PartitioningAdversary", "IsolationAdversary", "SilenceAdversary"]


class _BlockedDeliveryAdversary(Adversary):
    """Shared machinery: fair round-robin with a message-blocking predicate."""

    def __init__(self) -> None:
        self._last: Optional[ProcessId] = None
        # Subclasses that restrict who may step override _may_step; the
        # base class detects that once so the common all-may-step case
        # reuses the view's cached tuple instead of rebuilding it.
        self._filters_steppers = (
            type(self)._may_step is not _BlockedDeliveryAdversary._may_step
        )
        self._released_memo: Optional[Tuple[AdversaryView, bool]] = None

    # subclasses override ------------------------------------------------

    def _may_step(self, pid: ProcessId, view: AdversaryView) -> bool:
        return True

    def _blocked(self, message: Message, view: AdversaryView) -> bool:
        raise NotImplementedError

    def _released(self, view: AdversaryView) -> bool:
        """Whether the blocking predicate is lifted for this step."""
        return False

    # ----------------------------------------------------------------------

    def _released_for(self, view: AdversaryView) -> bool:
        """Per-view memo of :meth:`_released` (one evaluation per step).

        Keyed on the view *object* (a strong reference, so the identity
        cannot be recycled while memoised) — each step gets a fresh view,
        so this collapses the per-pending-message release checks into one.
        """
        memo = self._released_memo
        if memo is not None and memo[0] is view:
            return memo[1]
        released = self._released(view)
        self._released_memo = (view, released)
        return released

    def next_step(self, view: AdversaryView) -> Optional[StepDirective]:
        if self._filters_steppers:
            candidates: Tuple[ProcessId, ...] = tuple(
                pid for pid in view.undecided_alive() if self._may_step(pid, view)
            )
        else:
            candidates = view.undecided_alive()
        if not candidates:
            return None
        pid = self._pick_next(candidates)
        self._last = pid
        deliver = tuple(
            m.msg_id for m in view.pending_for(pid) if not self._blocked(m, view)
        )
        return StepDirective(pid=pid, deliver=deliver)

    def _pick_next(self, candidates: Tuple[ProcessId, ...]) -> ProcessId:
        if self._last is None:
            return candidates[0]
        for pid in candidates:
            if pid > self._last:
                return pid
        return candidates[0]


class PartitioningAdversary(_BlockedDeliveryAdversary):
    """Delay all communication between partition blocks.

    Parameters
    ----------
    blocks:
        Disjoint sets of processes.  Processes not covered by any block
        form an implicit extra block of their own (each such process is
        alone in it), so the adversary can be used with a partial cover.
    release_when_all_decided:
        When ``True`` (default), once every alive process has decided the
        blocking is lifted — mirroring the proofs, which delay inter-block
        messages "until every correct process has decided".
    """

    def __init__(
        self,
        blocks: Sequence[Iterable[ProcessId]],
        *,
        release_when_all_decided: bool = True,
    ):
        super().__init__()
        block_sets = [frozenset(b) for b in blocks]
        if any(not block for block in block_sets):
            raise ConfigurationError("partition blocks must be nonempty")
        members = [p for block in block_sets for p in block]
        if len(members) != len(set(members)):
            raise ConfigurationError("partition blocks must be pairwise disjoint")
        self.blocks: Tuple[FrozenSet[ProcessId], ...] = tuple(block_sets)
        self.release_when_all_decided = release_when_all_decided
        self._block_index = {p: i for i, block in enumerate(block_sets) for p in block}

    def _same_block(self, a: ProcessId, b: ProcessId) -> bool:
        ia = self._block_index.get(a)
        ib = self._block_index.get(b)
        if ia is None or ib is None:
            # Uncovered processes are singleton blocks: only messages to
            # themselves (which do not exist) would be intra-block.
            return a == b
        return ia == ib

    def _released(self, view: AdversaryView) -> bool:
        if not self.release_when_all_decided:
            return False
        return view.alive.issubset(view.decided)

    def _blocked(self, message: Message, view: AdversaryView) -> bool:
        if self._released_for(view):
            return False
        return not self._same_block(message.sender, message.receiver)

    def describe(self) -> str:
        blocks = " | ".join("{" + ",".join(f"p{p}" for p in sorted(b)) + "}" for b in self.blocks)
        return f"PartitioningAdversary({blocks})"


class IsolationAdversary(_BlockedDeliveryAdversary):
    """Only one block of processes runs; everything else stays silent.

    Used to produce the runs in which the processes of a single block
    ``D_i`` execute "on their own": only members of ``active`` are
    scheduled and only messages between members of ``active`` are
    delivered.  Whether the remaining processes are crashed or merely
    very slow is determined by the failure pattern the executor is given
    — both readings appear in the paper's constructions.
    """

    def __init__(self, active: Iterable[ProcessId]):
        super().__init__()
        self.active: FrozenSet[ProcessId] = frozenset(active)
        if not self.active:
            raise ConfigurationError("the active block must be nonempty")

    def _may_step(self, pid: ProcessId, view: AdversaryView) -> bool:
        return pid in self.active

    def _blocked(self, message: Message, view: AdversaryView) -> bool:
        return message.sender not in self.active or message.receiver not in self.active

    def describe(self) -> str:
        return "IsolationAdversary({" + ",".join(f"p{p}" for p in sorted(self.active)) + "})"


class SilenceAdversary(_BlockedDeliveryAdversary):
    """Withhold messages from ``silenced`` senders to ``listeners`` receivers.

    This is condition (dec-D-bar) of Theorem 1 made operational: a process
    of ``listeners`` (the paper's ``D-bar``) receives no message from any
    process of ``silenced`` (the paper's ``D``) until every member of
    ``listeners`` has decided.  All other messages flow freely and every
    alive process keeps taking steps.
    """

    def __init__(
        self,
        silenced: Iterable[ProcessId],
        listeners: Iterable[ProcessId],
        *,
        release_when_listeners_decided: bool = True,
    ):
        super().__init__()
        self.silenced: FrozenSet[ProcessId] = frozenset(silenced)
        self.listeners: FrozenSet[ProcessId] = frozenset(listeners)
        if not self.silenced or not self.listeners:
            raise ConfigurationError("both the silenced and the listener group must be nonempty")
        if self.silenced & self.listeners:
            raise ConfigurationError("the silenced and listener groups must be disjoint")
        self.release_when_listeners_decided = release_when_listeners_decided

    def _released(self, view: AdversaryView) -> bool:
        if not self.release_when_listeners_decided:
            return False
        alive_listeners = self.listeners & view.alive
        return alive_listeners.issubset(view.decided)

    def _blocked(self, message: Message, view: AdversaryView) -> bool:
        if self._released_for(view):
            return False
        return message.sender in self.silenced and message.receiver in self.listeners

    def describe(self) -> str:
        return (
            "SilenceAdversary(from {"
            + ",".join(f"p{p}" for p in sorted(self.silenced))
            + "} to {"
            + ",".join(f"p{p}" for p in sorted(self.listeners))
            + "})"
        )
