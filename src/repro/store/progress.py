"""Pool-wide campaign progress.

A :class:`ProgressReporter` is a callable that consumes the
:class:`~repro.campaign.runner.ScenarioEvent` stream a campaign emits —
one event per finished scenario, produced *where the scenario ran*.
Under the process backend the events cross the process boundary on a
queue and are delivered from a drain thread, so the reporter keeps its
counters under a lock and a long multiprocess campaign can be watched
live: scenarios completed out of how many, verdict counts, which worker
pids are alive, throughput.

:class:`~repro.store.caching.CachingRunner` additionally brackets the
stream with :meth:`campaign_started` / :meth:`campaign_finished` and
synthesises ``cached=True`` events for store hits, so the reporter's
totals always add up to the campaign size regardless of how much came
from cache.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, Optional, Set, TextIO

from repro.campaign.runner import ScenarioEvent

__all__ = ["ProgressReporter", "CollectingProgressReporter", "LogProgressReporter"]


class ProgressReporter:
    """Thread-safe counters over a campaign's scenario-event stream.

    Subclasses override :meth:`on_event` (called with the lock *not*
    held) for per-event behaviour; the base class keeps the aggregate
    picture available via :meth:`snapshot` at any time during the run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self.total = 0
        self.completed = 0
        self.cached = 0
        self.verdicts: Dict[str, int] = {"ok": 0, "violation": 0, "error": 0}
        self.worker_pids: Set[int] = set()

    # -- lifecycle (driven by CachingRunner; optional otherwise) -----------

    def campaign_started(self, total: int) -> None:
        with self._lock:
            self._started_at = time.perf_counter()
            self.total = total

    def campaign_finished(self) -> None:
        pass

    # -- the event stream --------------------------------------------------

    def __call__(self, event: ScenarioEvent) -> None:
        with self._lock:
            self.completed += 1
            if event.cached:
                self.cached += 1
            self.verdicts[event.verdict] = self.verdicts.get(event.verdict, 0) + 1
            self.worker_pids.add(event.worker_pid)
        self.on_event(event)

    def on_event(self, event: ScenarioEvent) -> None:
        """Per-event hook for subclasses (no-op by default)."""

    # -- inspection --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A consistent aggregate view, safe to call mid-campaign."""
        with self._lock:
            elapsed = (
                time.perf_counter() - self._started_at
                if self._started_at is not None else 0.0
            )
            return {
                "total": self.total,
                "completed": self.completed,
                "cached": self.cached,
                "executed": self.completed - self.cached,
                "workers_seen": len(self.worker_pids),
                "elapsed_seconds": elapsed,
                "scenarios_per_second": self.completed / elapsed if elapsed > 0 else 0.0,
                **dict(self.verdicts),
            }


class CollectingProgressReporter(ProgressReporter):
    """Keeps every event; the assertion-friendly reporter for tests."""

    def __init__(self) -> None:
        super().__init__()
        self._events_lock = threading.Lock()
        self.events: list = []

    def on_event(self, event: ScenarioEvent) -> None:
        with self._events_lock:
            self.events.append(event)


class LogProgressReporter(ProgressReporter):
    """Prints one line every ``every`` scenarios, plus every failure.

    The campaign-visibility default for long sweeps::

        [campaign] 120/4096 (2 cached) ok=116 violation=4 error=0 workers=8
    """

    def __init__(self, *, every: int = 50, stream: Optional[TextIO] = None):
        super().__init__()
        self._every = max(1, every)
        self._stream = stream if stream is not None else sys.stderr

    def _emit_line(self) -> None:
        snap = self.snapshot()
        print(
            f"[campaign] {snap['completed']}/{snap['total'] or '?'} "
            f"({snap['cached']} cached) ok={snap['ok']} "
            f"violation={snap['violation']} error={snap['error']} "
            f"workers={snap['workers_seen']}",
            file=self._stream,
            flush=True,
        )

    def campaign_started(self, total: int) -> None:
        super().campaign_started(total)
        print(f"[campaign] started: {total} scenarios", file=self._stream, flush=True)

    def on_event(self, event: ScenarioEvent) -> None:
        if event.verdict == "error":
            print(f"[campaign] ERROR {event.label}", file=self._stream, flush=True)
        if self.completed % self._every == 0:
            self._emit_line()

    def campaign_finished(self) -> None:
        self._emit_line()
