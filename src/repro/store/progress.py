"""Pool-wide campaign progress.

A :class:`ProgressReporter` is a callable that consumes the
:class:`~repro.campaign.runner.ScenarioEvent` stream a campaign emits —
one event per finished scenario, produced *where the scenario ran*.
Under the process backend the events cross the process boundary on a
queue and are delivered from a drain thread, so the reporter keeps its
counters under a lock and a long multiprocess campaign can be watched
live: scenarios completed out of how many, verdict counts, which worker
pids are alive, throughput.

:class:`~repro.store.caching.CachingRunner` additionally brackets the
stream with :meth:`campaign_started` / :meth:`campaign_finished` and
synthesises ``cached=True`` events for store hits, so the reporter's
totals always add up to the campaign size regardless of how much came
from cache.

:class:`LogProgressReporter` reports through the structured logging
facade (:mod:`repro.telemetry.logs`): by default it logs to the shared
``repro`` logger hierarchy (configuring the stderr handler on first
use), while the ``stream=`` escape hatch binds a private plain-format
logger to an explicit stream — same lines, no global logging state,
which is what tests and CLIs capture.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Set, TextIO, Tuple

from repro.campaign.runner import ScenarioEvent
from repro.telemetry.logs import configure, get_logger, stream_logger

__all__ = ["ProgressReporter", "CollectingProgressReporter", "LogProgressReporter"]

#: Narrowest sample window (seconds) the rate/ETA smoother trusts.  Two
#: samples closer than one microsecond are indistinguishable from clock
#: jitter; dividing by such a span manufactures absurd rates.
_MIN_RATE_WINDOW = 1e-6


class ProgressReporter:
    """Thread-safe counters over a campaign's scenario-event stream.

    Subclasses override :meth:`on_event` (called with the lock *not*
    held) for per-event behaviour; the base class keeps the aggregate
    picture available via :meth:`snapshot` at any time during the run.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self.total = 0
        self.completed = 0
        self.cached = 0
        self.verdicts: Dict[str, int] = {"ok": 0, "violation": 0, "error": 0}
        self.worker_pids: Set[int] = set()

    # -- lifecycle (driven by CachingRunner; optional otherwise) -----------

    def campaign_started(self, total: int) -> None:
        with self._lock:
            self._started_at = time.perf_counter()
            self.total = total

    def campaign_finished(self) -> None:
        pass

    # -- the event stream --------------------------------------------------

    def __call__(self, event: ScenarioEvent) -> None:
        with self._lock:
            self.completed += 1
            if event.cached:
                self.cached += 1
            self.verdicts[event.verdict] = self.verdicts.get(event.verdict, 0) + 1
            self.worker_pids.add(event.worker_pid)
        self.on_event(event)

    def on_event(self, event: ScenarioEvent) -> None:
        """Per-event hook for subclasses (no-op by default)."""

    # -- inspection --------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """A consistent aggregate view, safe to call mid-campaign."""
        with self._lock:
            elapsed = (
                time.perf_counter() - self._started_at
                if self._started_at is not None else 0.0
            )
            return {
                "total": self.total,
                "completed": self.completed,
                "cached": self.cached,
                "executed": self.completed - self.cached,
                "workers_seen": len(self.worker_pids),
                "elapsed_seconds": elapsed,
                "scenarios_per_second": self.completed / elapsed if elapsed > 0 else 0.0,
                **dict(self.verdicts),
            }


class CollectingProgressReporter(ProgressReporter):
    """Keeps every event; the assertion-friendly reporter for tests."""

    def __init__(self) -> None:
        super().__init__()
        self._events_lock = threading.Lock()
        self.events: list = []

    def on_event(self, event: ScenarioEvent) -> None:
        with self._events_lock:
            self.events.append(event)


class LogProgressReporter(ProgressReporter):
    """Logs one line every ``every`` scenarios, plus every failure.

    The campaign-visibility default for long sweeps::

        [campaign] 120/4096 (2 cached) ok=116 violation=4 error=0 workers=8 rate=41.2/s eta=96s

    Lines go through the structured logging facade.  With no ``stream``
    the reporter logs to ``repro.campaign`` (attaching the facade's
    stderr handler on first use — call
    :func:`repro.telemetry.logs.configure` yourself first to choose
    level or format); passing ``stream=`` keeps the historical
    plain-lines-to-this-stream behaviour via a private logger.

    ``rate`` and ``eta`` are smoothed over a sliding window of the last
    ``smoothing`` samples rather than computed since campaign start, so
    a sweep that begins with a burst of free cache hits converges to the
    true execution rate instead of advertising the burst forever.
    """

    def __init__(
        self,
        *,
        every: int = 50,
        stream: Optional[TextIO] = None,
        smoothing: int = 32,
    ):
        super().__init__()
        self._every = max(1, every)
        if stream is not None:
            self._log = stream_logger(stream)
        else:
            configure()
            self._log = get_logger("campaign")
        self._samples_lock = threading.Lock()
        self._samples: Deque[Tuple[float, int]] = deque(maxlen=max(2, smoothing))

    # -- rate/ETA smoothing ------------------------------------------------

    def _observe_sample(self) -> None:
        with self._samples_lock:
            self._samples.append((time.perf_counter(), self.completed))

    def _rate_eta(self) -> Tuple[float, Optional[float]]:
        """Smoothed scenarios/second and seconds remaining (or ``None``)."""
        with self._samples_lock:
            if len(self._samples) < 2:
                return 0.0, None
            (t0, c0), (t1, c1) = self._samples[0], self._samples[-1]
        span = t1 - t0
        # Same-tick samples give a zero-width window; near-same-tick ones
        # give a positive but meaningless width whose quotient is an
        # absurd rate (and ETA).  Both degrade to "no estimate yet".
        if span < _MIN_RATE_WINDOW or c1 <= c0:
            return 0.0, None
        rate = (c1 - c0) / span
        remaining = self.total - c1
        if self.total <= 0 or remaining < 0:
            return rate, None
        return rate, remaining / rate

    # -- line output -------------------------------------------------------

    def _emit_line(self) -> None:
        snap = self.snapshot()
        rate, eta = self._rate_eta()
        suffix = ""
        if rate > 0.0:
            suffix = f" rate={rate:.1f}/s"
            if eta is not None:
                suffix += f" eta={eta:.0f}s"
        self._log.info(
            "[campaign] %s/%s (%s cached) ok=%s violation=%s error=%s workers=%s%s",
            snap["completed"], snap["total"] or "?", snap["cached"],
            snap["ok"], snap["violation"], snap["error"],
            snap["workers_seen"], suffix,
        )

    def campaign_started(self, total: int) -> None:
        super().campaign_started(total)
        with self._samples_lock:
            self._samples.clear()
        self._log.info("[campaign] started: %s scenarios", total)

    def on_event(self, event: ScenarioEvent) -> None:
        self._observe_sample()
        if event.verdict == "error":
            self._log.warning("[campaign] ERROR %s", event.label)
        if self.completed % self._every == 0:
            self._emit_line()

    def campaign_finished(self) -> None:
        self._emit_line()
