"""Cache-aware campaign execution: skip, resume, early-stop, report.

:class:`CachingRunner` wraps a :class:`~repro.campaign.runner.CampaignRunner`
and a :class:`~repro.store.base.ResultStore`:

1. every compiled spec is fingerprinted and looked up in the store;
2. hits are served from cache, misses are executed by the wrapped runner
   (any backend) and **persisted incrementally** — each outcome is in
   the store before the next chunk completes, so killing the campaign
   loses at most in-flight work;
3. the merged outcomes are returned in spec order, which makes a
   resumed campaign's :class:`~repro.campaign.runner.CampaignResult`
   *equal* to an uninterrupted run's (equality ignores timing only).

An optional :class:`~repro.store.policy.EarlyStopPolicy` turns the run
adaptive (certified points stop sampling; skipped scenarios are counted
in :class:`CacheStats`, and the equality guarantee above deliberately no
longer applies), and an optional
:class:`~repro.store.progress.ProgressReporter` receives the live event
stream, cache hits included.

An optional campaign **journal**
(:class:`~repro.provenance.journal.CampaignJournal`, or a path one is
opened at) receives the full provenance record: campaign start/finish,
one per-scenario ``ran``/``cached``/``skipped`` decision with its
:class:`~repro.provenance.usage.ResourceUsage`, and the early-stop
triggers.  Journal records for executed scenarios are appended from the
same delivery path that persists outcomes — under the process backend
that includes the parent's event-drain thread, which is exactly why the
SQLite store is thread-safe.
"""

from __future__ import annotations

import os
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.campaign.grid import ScenarioGrid
from repro.campaign.runner import CampaignResult, CampaignRunner, ScenarioEvent
from repro.campaign.scenarios import get_kind
from repro.campaign.spec import ScenarioOutcome, ScenarioSpec
from repro.provenance.journal import CampaignJournal
from repro.provenance.usage import ResourceUsage
from repro.store.base import ResultStore
from repro.store.fingerprint import fingerprint_spec
from repro.store.policy import EarlyStopPolicy
from repro.store.progress import ProgressReporter
from repro.telemetry.session import TelemetrySession

__all__ = ["CacheStats", "CachingRunner"]


@dataclass(frozen=True)
class CacheStats:
    """Where each scenario of a cached campaign came from.

    Counted per input position (duplicate specs in the input count once
    each), so ``cached + executed + skipped == total`` always holds.
    Note the journal's ledger counts duplicate positions of an executed
    fingerprint as ``cached`` replays (only the position that actually
    ran is ``ran``), while ``executed`` here counts every position of an
    executed fingerprint — validate journals against their own
    ``total``, not against this dict.
    """

    total: int
    cached: int
    executed: int
    skipped: int

    @property
    def hit_rate(self) -> float:
        """Fraction of the campaign served from the store (0 when empty)."""
        return self.cached / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "cached": self.cached,
            "executed": self.executed,
            "skipped": self.skipped,
            "hit_rate": round(self.hit_rate, 4),
        }


class CachingRunner:
    """A drop-in ``.run(...)`` that remembers across invocations.

    Parameters
    ----------
    store:
        The :class:`~repro.store.base.ResultStore` to read hits from and
        persist new outcomes into.
    runner:
        The wrapped :class:`~repro.campaign.runner.CampaignRunner`
        (default: serial).  Any backend works; persistence happens in
        the calling process either way.
    policy:
        Optional :class:`~repro.store.policy.EarlyStopPolicy`.
    progress:
        Optional :class:`~repro.store.progress.ProgressReporter`.
    journal:
        Optional provenance journal: a
        :class:`~repro.provenance.journal.CampaignJournal` (caller keeps
        ownership) or a path (the runner opens and owns one there).
    telemetry:
        Optional :class:`~repro.telemetry.session.TelemetrySession`.
        Each ``run`` begins a campaign on it (same correlation id as the
        journal's), feeds it the live event stream — metrics parent-side,
        spans collected from sampled workers — and finishes it, writing
        any configured trace/metrics exports.  The caller keeps ownership
        of the session and can inspect or re-export it afterwards.

    After each ``run``, :attr:`last_stats` holds the run's
    :class:`CacheStats` and :attr:`last_campaign_id` the journal id of
    the campaign.  The runner is a context manager: leaving the ``with``
    block closes the store and any journal the runner opened itself.
    """

    def __init__(
        self,
        store: ResultStore,
        runner: Optional[CampaignRunner] = None,
        *,
        policy: Optional[EarlyStopPolicy] = None,
        progress: Optional[ProgressReporter] = None,
        journal: Optional[Union[str, Path, CampaignJournal]] = None,
        telemetry: Optional[TelemetrySession] = None,
    ):
        self.store = store
        self.runner = runner if runner is not None else CampaignRunner()
        self.policy = policy
        self.progress = progress
        self.telemetry = telemetry
        if journal is None or isinstance(journal, CampaignJournal):
            self.journal = journal
            self._owns_journal = False
        else:
            self.journal = CampaignJournal(journal)
            self._owns_journal = True
        self.last_stats: Optional[CacheStats] = None
        self.last_campaign_id: Optional[str] = None

    def run(
        self, scenarios: Union[ScenarioGrid, Iterable[ScenarioSpec]]
    ) -> CampaignResult:
        """Execute a campaign, serving every known scenario from the store."""
        if isinstance(scenarios, ScenarioGrid):
            specs: Tuple[ScenarioSpec, ...] = scenarios.compile()
        else:
            specs = tuple(scenarios)
        for spec in specs:
            # Fail fast on unknown kinds even when everything is cached —
            # a fully-cached campaign must reject the same inputs a cold
            # one would.
            get_kind(spec.kind)

        fingerprints = [fingerprint_spec(spec) for spec in specs]
        outcomes_by_fp: Dict[str, ScenarioOutcome] = self.store.get_many(fingerprints)

        campaign = uuid.uuid4().hex[:12]
        self.last_campaign_id = campaign
        if self.journal is not None:
            self.journal.campaign_started(
                campaign, len(specs),
                backend=self.runner.backend,
                workers=self.runner.workers,
            )
        if self.telemetry is not None:
            # The telemetry campaign shares the journal's correlation id,
            # which is what makes traces joinable against the ledger.
            self.telemetry.begin(campaign, len(specs))

        def emit(event: ScenarioEvent) -> None:
            # Journal first (provenance is the record), then telemetry
            # (metrics + span collection), reporter last.  Under the
            # process backend this runs on the parent's drain thread for
            # executed scenarios.
            if self.journal is not None:
                self.journal.scenario_event(campaign, event)
            if self.telemetry is not None:
                self.telemetry.on_event(event)
            if self.progress is not None:
                self.progress(event)

        inner_progress = (
            emit
            if (self.journal or self.telemetry or self.progress) is not None
            else None
        )

        if self.progress is not None:
            self.progress.campaign_started(len(specs))
        # Cached outcomes are observed first (in spec order): a violation
        # already in the store certifies its point before anything runs,
        # and the reporter sees cache hits as zero-cost events.
        for spec, fingerprint in zip(specs, fingerprints):
            outcome = outcomes_by_fp.get(fingerprint)
            if outcome is None:
                continue
            if self.policy is not None:
                self.policy.observe(outcome)
            if inner_progress is not None:
                emit(ScenarioEvent(
                    label=spec.label(), verdict=outcome.verdict,
                    seconds=0.0, worker_pid=os.getpid(), cached=True,
                    fingerprint=fingerprint,
                    usage=ResourceUsage.of_outcome(outcome),
                ))

        cached_fps = frozenset(outcomes_by_fp)
        pending: List[ScenarioSpec] = []
        pending_fps = set()
        duplicates: List[Tuple[ScenarioSpec, str]] = []
        for spec, fingerprint in zip(specs, fingerprints):
            if fingerprint in cached_fps:
                continue
            if fingerprint in pending_fps:
                # Duplicates execute once, exactly like a grid dedup; the
                # extra positions are replayed from the run's own result.
                duplicates.append((spec, fingerprint))
                continue
            pending_fps.add(fingerprint)
            pending.append(spec)

        executed_fps: set = set()

        def persist(outcome: ScenarioOutcome, seconds: float) -> None:
            fingerprint = fingerprint_spec(outcome.spec)
            self.store.put(fingerprint, outcome)
            outcomes_by_fp[fingerprint] = outcome
            executed_fps.add(fingerprint)
            if self.policy is not None:
                self.policy.observe(outcome)

        inner = self.runner.run(
            pending,
            on_outcome=persist,
            progress=inner_progress,
            should_skip=self.policy.should_skip if self.policy is not None else None,
            telemetry=(
                self.telemetry.worker_telemetry()
                if self.telemetry is not None
                else None
            ),
        )

        if inner_progress is not None:
            # Deduplicated duplicate positions completed with their first
            # occurrence; report them so totals add up to the campaign size.
            for spec, fingerprint in duplicates:
                outcome = outcomes_by_fp.get(fingerprint)
                if outcome is not None:
                    emit(ScenarioEvent(
                        label=spec.label(), verdict=outcome.verdict,
                        seconds=0.0, worker_pid=os.getpid(), cached=True,
                        fingerprint=fingerprint,
                        usage=ResourceUsage.of_outcome(outcome),
                    ))

        merged = tuple(
            outcomes_by_fp[fingerprint]
            for fingerprint in fingerprints
            if fingerprint in outcomes_by_fp
        )
        cached_positions = sum(1 for fp in fingerprints if fp in cached_fps)
        executed_positions = sum(1 for fp in fingerprints if fp in executed_fps)
        self.last_stats = CacheStats(
            total=len(specs),
            cached=cached_positions,
            executed=executed_positions,
            skipped=len(specs) - cached_positions - executed_positions,
        )
        if self.journal is not None:
            # Positions without an outcome were dropped by the policy —
            # record them so the per-scenario ledger sums to the size.
            for spec, fingerprint in zip(specs, fingerprints):
                if fingerprint not in outcomes_by_fp:
                    self.journal.scenario(
                        campaign, fingerprint, "skipped", label=spec.label(),
                    )
            if self.policy is not None:
                for point, verdict in sorted(
                    self.policy.certified_points().items(), key=repr
                ):
                    self.journal.early_stop(campaign, point, verdict)
            self.journal.campaign_finished(campaign, self.last_stats.as_dict())
        if self.telemetry is not None:
            self.telemetry.finish(stats=self.last_stats.as_dict())
        if self.progress is not None:
            self.progress.campaign_finished()

        return CampaignResult(
            outcomes=merged,
            backend=inner.backend,
            workers=inner.workers,
            elapsed_seconds=inner.elapsed_seconds,
            scenario_seconds=inner.scenario_seconds,
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the store (and the journal, when this runner opened it)."""
        if self._owns_journal and self.journal is not None:
            self.journal.close()
        self.store.close()

    def __enter__(self) -> "CachingRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
