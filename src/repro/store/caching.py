"""Cache-aware campaign execution: skip, resume, early-stop, report.

:class:`CachingRunner` wraps a :class:`~repro.campaign.runner.CampaignRunner`
and a :class:`~repro.store.base.ResultStore`:

1. every compiled spec is fingerprinted and looked up in the store;
2. hits are served from cache, misses are executed by the wrapped runner
   (any backend) and **persisted incrementally** — each outcome is in
   the store before the next chunk completes, so killing the campaign
   loses at most in-flight work;
3. the merged outcomes are returned in spec order, which makes a
   resumed campaign's :class:`~repro.campaign.runner.CampaignResult`
   *equal* to an uninterrupted run's (equality ignores timing only).

An optional :class:`~repro.store.policy.EarlyStopPolicy` turns the run
adaptive (certified points stop sampling; skipped scenarios are counted
in :class:`CacheStats`, and the equality guarantee above deliberately no
longer applies), and an optional
:class:`~repro.store.progress.ProgressReporter` receives the live event
stream, cache hits included.

An optional campaign **journal**
(:class:`~repro.provenance.journal.CampaignJournal`, or a path one is
opened at) receives the full provenance record: campaign start/finish,
one per-scenario ``ran``/``cached``/``skipped`` decision with its
:class:`~repro.provenance.usage.ResourceUsage`, and the early-stop
triggers.  Journal records for executed scenarios are appended from the
same delivery path that persists outcomes — under the process backend
that includes the parent's event-drain thread, which is exactly why the
SQLite store is thread-safe.
"""

from __future__ import annotations

import os
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.campaign.costmodel import OnlineCostModel
from repro.campaign.grid import ScenarioGrid
from repro.campaign.runner import CampaignResult, CampaignRunner, ScenarioEvent
from repro.campaign.scenarios import get_kind
from repro.campaign.spec import ScenarioOutcome, ScenarioSpec
from repro.exceptions import ConfigurationError
from repro.provenance.journal import CampaignJournal
from repro.provenance.usage import ResourceUsage
from repro.store.base import ResultStore
from repro.store.fingerprint import fingerprint_spec
from repro.store.policy import EarlyStopPolicy
from repro.store.progress import ProgressReporter
from repro.telemetry.logs import get_logger
from repro.telemetry.session import TelemetrySession

__all__ = ["CacheStats", "CachingRunner"]

_log = get_logger("store.caching")


@dataclass(frozen=True)
class CacheStats:
    """Where each scenario of a cached campaign came from.

    Counted per input position (duplicate specs in the input count once
    each), so ``cached + executed + skipped == total`` always holds.
    Note the journal's ledger counts duplicate positions of an executed
    fingerprint as ``cached`` replays (only the position that actually
    ran is ``ran``), while ``executed`` here counts every position of an
    executed fingerprint — validate journals against their own
    ``total``, not against this dict.
    """

    total: int
    cached: int
    executed: int
    skipped: int

    @property
    def hit_rate(self) -> float:
        """Fraction of the campaign served from the store (0 when empty)."""
        return self.cached / self.total if self.total else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "total": self.total,
            "cached": self.cached,
            "executed": self.executed,
            "skipped": self.skipped,
            "hit_rate": round(self.hit_rate, 4),
        }


class CachingRunner:
    """A drop-in ``.run(...)`` that remembers across invocations.

    Parameters
    ----------
    store:
        The :class:`~repro.store.base.ResultStore` to read hits from and
        persist new outcomes into.
    runner:
        The wrapped :class:`~repro.campaign.runner.CampaignRunner`
        (default: serial).  Any backend works; persistence happens in
        the calling process either way.
    policy:
        Optional :class:`~repro.store.policy.EarlyStopPolicy`.
    progress:
        Optional :class:`~repro.store.progress.ProgressReporter`.
    journal:
        Optional provenance journal: a
        :class:`~repro.provenance.journal.CampaignJournal` (caller keeps
        ownership) or a path (the runner opens and owns one there).
    telemetry:
        Optional :class:`~repro.telemetry.session.TelemetrySession`.
        Each ``run`` begins a campaign on it (same correlation id as the
        journal's), feeds it the live event stream — metrics parent-side,
        spans collected from sampled workers — and finishes it, writing
        any configured trace/metrics exports.  The caller keeps ownership
        of the session and can inspect or re-export it afterwards.
    cost_model:
        Optional :class:`~repro.campaign.costmodel.OnlineCostModel`.
        Every *executed* outcome's wall seconds are fed to it, so a
        sweep driver can snapshot it between campaigns and hand the
        snapshot to the next :class:`CampaignRunner` as its
        ``cost_model`` — scheduling learns across runs while each
        individual plan stays a frozen, reproducible function.

    After each ``run``, :attr:`last_stats` holds the run's
    :class:`CacheStats` and :attr:`last_campaign_id` the journal id of
    the campaign.  The runner is a context manager: leaving the ``with``
    block closes the store and any journal the runner opened itself.
    """

    def __init__(
        self,
        store: ResultStore,
        runner: Optional[CampaignRunner] = None,
        *,
        policy: Optional[EarlyStopPolicy] = None,
        progress: Optional[ProgressReporter] = None,
        journal: Optional[Union[str, Path, CampaignJournal]] = None,
        telemetry: Optional[TelemetrySession] = None,
        cost_model: Optional[OnlineCostModel] = None,
    ):
        self.store = store
        self.runner = runner if runner is not None else CampaignRunner()
        self.policy = policy
        self.progress = progress
        self.telemetry = telemetry
        self.cost_model = cost_model
        if journal is None or isinstance(journal, CampaignJournal):
            self.journal = journal
            self._owns_journal = False
        else:
            self.journal = CampaignJournal(journal)
            self._owns_journal = True
        self.last_stats: Optional[CacheStats] = None
        self.last_campaign_id: Optional[str] = None

    def run(
        self, scenarios: Union[ScenarioGrid, Iterable[ScenarioSpec]]
    ) -> CampaignResult:
        """Execute a campaign, serving every known scenario from the store."""
        if isinstance(scenarios, ScenarioGrid):
            specs: Tuple[ScenarioSpec, ...] = scenarios.compile()
        else:
            specs = tuple(scenarios)
        for spec in specs:
            # Fail fast on unknown kinds even when everything is cached —
            # a fully-cached campaign must reject the same inputs a cold
            # one would.
            get_kind(spec.kind)

        fingerprints = [fingerprint_spec(spec) for spec in specs]
        # Executed outcomes come back carrying *copies* of their specs
        # (they crossed the pool's pickle boundary), so the per-instance
        # fingerprint memo cannot serve them.  This map re-keys the
        # digests computed above by spec equality — a dataclass hash,
        # not a second sha256 — which is what keeps "no spec is hashed
        # twice per campaign" true end to end.
        fp_by_spec: Dict[ScenarioSpec, str] = dict(zip(specs, fingerprints))
        outcomes_by_fp: Dict[str, ScenarioOutcome] = self.store.get_many(fingerprints)

        campaign = uuid.uuid4().hex[:12]
        self.last_campaign_id = campaign
        if self.journal is not None:
            self.journal.campaign_started(
                campaign, len(specs),
                backend=self.runner.backend,
                workers=self.runner.workers,
            )
        if self.telemetry is not None:
            # The telemetry campaign shares the journal's correlation id,
            # which is what makes traces joinable against the ledger.
            self.telemetry.begin(campaign, len(specs))

        ran_fps: set = set()

        def emit(event: ScenarioEvent) -> None:
            # Journal first (provenance is the record), then telemetry
            # (metrics + span collection), reporter last.  Under the
            # process backend this runs on the parent's drain thread for
            # executed scenarios.
            if not event.cached and event.fingerprint:
                # A supervised retry re-runs scenarios whose first
                # attempt already reported (the worker died mid-chunk
                # after emitting some events, or a timed-out chunk
                # completed late).  The journal ledger demands exactly
                # one record per position, so replayed "ran" events are
                # dropped; legitimate duplicate input positions are
                # always reported as ``cached`` replays, never as a
                # second non-cached event.
                if event.fingerprint in ran_fps:
                    return
                ran_fps.add(event.fingerprint)
            if self.journal is not None:
                self.journal.scenario_event(campaign, event)
            if self.telemetry is not None:
                self.telemetry.on_event(event)
            if self.progress is not None:
                self.progress(event)

        inner_progress = (
            emit
            if (self.journal or self.telemetry or self.progress) is not None
            else None
        )

        if self.progress is not None:
            self.progress.campaign_started(len(specs))
        # Cached outcomes are observed first (in spec order): a violation
        # already in the store certifies its point before anything runs,
        # and the reporter sees cache hits as zero-cost events.
        for spec, fingerprint in zip(specs, fingerprints):
            outcome = outcomes_by_fp.get(fingerprint)
            if outcome is None:
                continue
            if self.policy is not None:
                self.policy.observe(outcome)
            if inner_progress is not None:
                emit(ScenarioEvent(
                    label=spec.label(), verdict=outcome.verdict,
                    seconds=0.0, worker_pid=os.getpid(), cached=True,
                    fingerprint=fingerprint,
                    usage=ResourceUsage.of_outcome(outcome),
                ))

        cached_fps = frozenset(outcomes_by_fp)
        pending: List[ScenarioSpec] = []
        pending_fps = set()
        duplicates: List[Tuple[ScenarioSpec, str]] = []
        for spec, fingerprint in zip(specs, fingerprints):
            if fingerprint in cached_fps:
                continue
            if fingerprint in pending_fps:
                # Duplicates execute once, exactly like a grid dedup; the
                # extra positions are replayed from the run's own result.
                duplicates.append((spec, fingerprint))
                continue
            pending_fps.add(fingerprint)
            pending.append(spec)

        executed_fps: set = set()
        executed_seconds: Dict[object, float] = {}
        store_write_failures = 0

        def persist(outcome: ScenarioOutcome, seconds: float) -> None:
            nonlocal store_write_failures
            fingerprint = fp_by_spec.get(outcome.spec)
            if fingerprint is None:  # pragma: no cover - defensive only
                fingerprint = fingerprint_spec(outcome.spec)
            executed_seconds[fingerprint] = seconds
            if self.cost_model is not None:
                self.cost_model.observe(outcome.spec, seconds)
            quarantined = (
                outcome.verdict == "error"
                and (outcome.error or "").startswith("QuarantineError")
            )
            if quarantined:
                # Quarantine is infrastructure history, not a property
                # of the scenario: keep it out of the cache so a future
                # run (or a resume) re-attempts the spec instead of
                # replaying the infrastructure failure as a hit.
                pass
            else:
                try:
                    self.store.put(fingerprint, outcome)
                except ConfigurationError:
                    # A spec the store *cannot ever* persist is a user
                    # mistake, not flaky infrastructure — fail loudly.
                    raise
                except Exception as exc:  # noqa: BLE001 - cache, not contract
                    # The store is a cache: a failed write costs a cache
                    # entry (the scenario re-runs next campaign), never
                    # the in-memory outcome or the campaign itself.
                    store_write_failures += 1
                    _log.warning(
                        "store write failed for %s (%s: %s); outcome kept "
                        "in memory only", str(fingerprint)[:12],
                        type(exc).__name__, exc)
            outcomes_by_fp[fingerprint] = outcome
            executed_fps.add(fingerprint)
            if self.policy is not None:
                self.policy.observe(outcome)

        inner = self.runner.run(
            pending,
            on_outcome=persist,
            progress=inner_progress,
            should_skip=self.policy.should_skip if self.policy is not None else None,
            telemetry=(
                self.telemetry.worker_telemetry()
                if self.telemetry is not None
                else None
            ),
        )
        # A batching store may still hold buffered rows; the campaign is
        # only as durable as its last flush, so drain before reporting.
        self.store.flush()

        if inner_progress is not None:
            # A worker SIGKILLed while holding the event queue's write
            # lock (or mid-write) silences the queue for good: the drain
            # sees nothing further, and every later worker event is lost.
            # The parent still received every outcome through the result
            # channel, so reconcile — each executed scenario whose "ran"
            # event never arrived gets a synthetic one, keeping the
            # journal ledger and telemetry exact under external kills.
            for spec, fingerprint in zip(specs, fingerprints):
                if fingerprint not in executed_fps or fingerprint in ran_fps:
                    continue
                outcome = outcomes_by_fp[fingerprint]
                emit(ScenarioEvent(
                    label=spec.label(), verdict=outcome.verdict,
                    seconds=executed_seconds.get(fingerprint, 0.0),
                    worker_pid=os.getpid(), cached=False,
                    fingerprint=fingerprint,
                    usage=ResourceUsage.of_outcome(outcome),
                ))
            # Deduplicated duplicate positions completed with their first
            # occurrence; report them so totals add up to the campaign size.
            for spec, fingerprint in duplicates:
                outcome = outcomes_by_fp.get(fingerprint)
                if outcome is not None:
                    emit(ScenarioEvent(
                        label=spec.label(), verdict=outcome.verdict,
                        seconds=0.0, worker_pid=os.getpid(), cached=True,
                        fingerprint=fingerprint,
                        usage=ResourceUsage.of_outcome(outcome),
                    ))

        merged = tuple(
            outcomes_by_fp[fingerprint]
            for fingerprint in fingerprints
            if fingerprint in outcomes_by_fp
        )
        cached_positions = sum(1 for fp in fingerprints if fp in cached_fps)
        executed_positions = sum(1 for fp in fingerprints if fp in executed_fps)
        self.last_stats = CacheStats(
            total=len(specs),
            cached=cached_positions,
            executed=executed_positions,
            skipped=len(specs) - cached_positions - executed_positions,
        )
        stats_payload = self.last_stats.as_dict()
        if store_write_failures:
            stats_payload["store_write_failures"] = store_write_failures
        if inner.fault_stats.any():
            # Surface what the supervisor survived (worker deaths,
            # retries, quarantines) in the campaign's provenance record.
            stats_payload["faults"] = inner.fault_stats.as_dict()
        if self.journal is not None:
            # Positions without an outcome were dropped by the policy —
            # record them so the per-scenario ledger sums to the size.
            for spec, fingerprint in zip(specs, fingerprints):
                if fingerprint not in outcomes_by_fp:
                    self.journal.scenario(
                        campaign, fingerprint, "skipped", label=spec.label(),
                    )
            if self.policy is not None:
                for point, verdict in sorted(
                    self.policy.certified_points().items(), key=repr
                ):
                    self.journal.early_stop(campaign, point, verdict)
            self.journal.campaign_finished(campaign, stats_payload)
        if self.telemetry is not None:
            self.telemetry.record_faults(
                inner.fault_stats.as_dict(),
                store_write_failures=store_write_failures)
            self.telemetry.record_dispatch(
                inner.dispatch_stats.as_dict(),
                store_io=self.store.io_stats())
            self.telemetry.finish(stats=stats_payload)
        if self.progress is not None:
            self.progress.campaign_finished()

        return CampaignResult(
            outcomes=merged,
            backend=inner.backend,
            workers=inner.workers,
            elapsed_seconds=inner.elapsed_seconds,
            scenario_seconds=inner.scenario_seconds,
            fault_stats=inner.fault_stats,
            dispatch_stats=inner.dispatch_stats,
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the store (and the journal, when this runner opened it)."""
        if self._owns_journal and self.journal is not None:
            self.journal.close()
        self.store.close()

    def __enter__(self) -> "CachingRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
