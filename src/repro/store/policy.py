"""Adaptive campaign budgets.

Border sweeps sample each parameter point under many schedules, but the
sweep's question per point is often binary — *is there a violation here
or not?*  Once one scenario of a point certifies the answer, the
remaining samples of that point are budget spent on a settled question.
:class:`EarlyStopPolicy` encodes that: it observes every outcome (cached
hits included) and tells the runner, at dispatch time, to skip further
scenarios of a certified point, recording exactly what was skipped.

Determinism caveat, by design: with the serial backend the skipped set
is deterministic (outcomes are observed in spec order).  With the
process backend, chunks already dispatched when a point gets certified
still run, so the *set of executed scenarios* depends on timing — every
executed outcome is still individually deterministic, but an early-stop
campaign is a sampling strategy, not a reproducible figure.  Anything
that asserts result equality (resume tests, reproduced figures) must run
without a policy.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Tuple

from repro.campaign.spec import ScenarioOutcome, ScenarioSpec
from repro.exceptions import ConfigurationError

__all__ = ["EarlyStopPolicy", "point_key"]

_VERDICTS = frozenset({"ok", "violation", "error"})


def point_key(spec: ScenarioSpec) -> Tuple[str, int, int, int]:
    """Default grouping: one budget per ``(kind, n, f, k)``.

    The kind is part of the key on purpose: the solvable and impossible
    constructions of a border sweep share parameter points but answer
    different questions, so one must never stop the other.
    """
    return (spec.kind, spec.n, spec.f, spec.k)


class EarlyStopPolicy:
    """Stop sampling a point once a certifying verdict was observed.

    Parameters
    ----------
    stop_on:
        Verdicts that certify a point (default: ``("violation",)`` — the
        border-sweep case, where one violation settles the point).
        ``"error"`` is deliberately not a certifier by default: an
        execution failure is evidence of nothing.
    key:
        Maps a spec to its budget group (default: :func:`point_key`).

    The policy is driven by the campaign machinery: ``observe`` for every
    outcome (cached and fresh, in the calling process), ``should_skip``
    once per pending scenario at dispatch time.  Both run on the
    caller's thread — no locking needed.
    """

    def __init__(
        self,
        *,
        stop_on: Iterable[str] = ("violation",),
        key: Callable[[ScenarioSpec], Hashable] = point_key,
    ):
        self._stop_on = frozenset(stop_on)
        unknown = self._stop_on - _VERDICTS
        if not self._stop_on or unknown:
            raise ConfigurationError(
                f"stop_on must be a non-empty subset of {sorted(_VERDICTS)}, "
                f"got {sorted(stop_on)!r}"
            )
        self._key = key
        self._certified: Dict[Hashable, str] = {}
        self._skipped: List[ScenarioSpec] = []

    # -- driven by the campaign machinery ----------------------------------

    def observe(self, outcome: ScenarioOutcome) -> None:
        """Record an outcome; a ``stop_on`` verdict certifies its point."""
        if outcome.verdict in self._stop_on:
            self._certified.setdefault(self._key(outcome.spec), outcome.verdict)

    def should_skip(self, spec: ScenarioSpec) -> bool:
        """Skip (and record) a scenario whose point is already certified."""
        if self._key(spec) in self._certified:
            self._skipped.append(spec)
            return True
        return False

    # -- inspection --------------------------------------------------------

    @property
    def skipped(self) -> Tuple[ScenarioSpec, ...]:
        """The scenarios this policy dropped, in dispatch order."""
        return tuple(self._skipped)

    @property
    def skipped_count(self) -> int:
        return len(self._skipped)

    def certified_points(self) -> Dict[Hashable, str]:
        """Certified budget groups and the verdict that settled each."""
        return dict(self._certified)

    def reset(self) -> None:
        """Forget all certifications and skip records (reuse across runs)."""
        self._certified.clear()
        self._skipped.clear()
