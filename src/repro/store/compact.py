"""Offline store compaction: ``python -m repro.store.compact``.

Result stores accumulate weight that reads can never see again:

* rows written under an older :data:`repro.store.SCHEMA_VERSION` — their
  fingerprints hash the version in, so no current lookup can ever match
  them (readers already skip them; compaction is where they finally go);
* superseded JSONL duplicates — the append-only backend records every
  ``put``, so a re-run that overwrites a fingerprint leaves the stale
  line in place and only the in-memory index knows the last one wins;
* a torn final line left by a campaign killed mid-append (the store
  heals this lazily on the next open; compaction heals it eagerly).

Compaction applies the *same* classification the readers use — it keeps
exactly the rows a fresh :class:`~repro.store.jsonl.JsonlResultStore` /
:class:`~repro.store.sqlite.SqliteResultStore` would index, byte-for-byte
for JSONL (kept lines are copied, never re-encoded), and raises the same
:class:`~repro.exceptions.ConfigurationError` on mid-file corruption
instead of silently discarding stored evidence.  The JSONL rewrite is
atomic (temp file + ``os.replace``), so a kill mid-compaction leaves
either the old file or the new one, never a mix.

``--dry-run`` reports what *would* happen without touching the file;
backends are picked from the path suffix exactly as
:func:`repro.store.base.open_store` does.
"""

from __future__ import annotations

import argparse
import json
import os
import sqlite3
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.campaign.codec import outcome_from_dict
from repro.exceptions import ConfigurationError
from repro.store.fingerprint import SCHEMA_VERSION

__all__ = ["CompactReport", "compact_jsonl", "compact_sqlite", "compact_store", "main"]


@dataclass(frozen=True)
class CompactReport:
    """What one compaction pass found (and, unless dry-run, did)."""

    path: str
    backend: str
    rows_kept: int
    rows_dropped_schema: int
    rows_deduped: int
    tail_bytes_healed: int
    bytes_before: int
    bytes_after: int
    dry_run: bool

    @property
    def changed(self) -> bool:
        return bool(
            self.rows_dropped_schema or self.rows_deduped or self.tail_bytes_healed
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "backend": self.backend,
            "rows_kept": self.rows_kept,
            "rows_dropped_schema": self.rows_dropped_schema,
            "rows_deduped": self.rows_deduped,
            "tail_bytes_healed": self.tail_bytes_healed,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "dry_run": self.dry_run,
        }

    def summary(self) -> str:
        verb = "would keep" if self.dry_run else "kept"
        parts = [f"{verb} {self.rows_kept} rows"]
        if self.rows_dropped_schema:
            parts.append(f"dropped {self.rows_dropped_schema} dead-schema")
        if self.rows_deduped:
            parts.append(f"deduped {self.rows_deduped}")
        if self.tail_bytes_healed:
            parts.append(f"healed {self.tail_bytes_healed}-byte torn tail")
        if not self.changed:
            parts.append("already compact")
        return (
            f"{self.path} [{self.backend}]: {', '.join(parts)} "
            f"({self.bytes_before} -> {self.bytes_after} bytes)"
        )


def compact_jsonl(path: Union[str, Path], *, dry_run: bool = False) -> CompactReport:
    """Compact one JSONL store file.

    Classification mirrors ``JsonlResultStore._load`` exactly: a torn
    final line (no data after it) is healed away, any other unreadable
    line raises, other-schema rows are dropped, and of duplicate
    current-schema rows the *last* wins (the semantics appends already
    have through the in-memory index).  Kept lines are preserved
    byte-for-byte, in their original relative order.
    """
    path = Path(path)
    data = path.read_bytes() if path.exists() else b""
    lines = data.split(b"\n")

    kept: List[bytes] = []  # raw current-schema lines, file order
    last_for_fp: Dict[str, int] = {}  # fp -> index into kept (last wins)
    dropped_schema = 0
    good_until = 0
    for line_number, raw_line in enumerate(lines, start=1):
        stripped = raw_line.strip()
        if stripped:
            try:
                record = json.loads(stripped.decode("utf-8"))
                if not isinstance(record, dict):
                    raise ConfigurationError(f"record is not an object: {record!r}")
                if record.get("v") == SCHEMA_VERSION:
                    digest = record["fp"]
                    if not isinstance(digest, str) or not digest:
                        raise ConfigurationError(
                            f"record has a non-string fingerprint: {digest!r}"
                        )
                    outcome_from_dict(record["outcome"])  # corruption check only
                    kept.append(stripped)
                    last_for_fp[digest] = len(kept) - 1
                else:
                    dropped_schema += 1
            except (ValueError, KeyError, TypeError, ConfigurationError) as exc:
                if good_until + len(raw_line) + 1 <= len(data):
                    raise ConfigurationError(
                        f"corrupt result store {path}: unreadable record "
                        f"on line {line_number} ({exc})"
                    ) from exc
                break  # torn final line: healed away below
        good_until += len(raw_line) + 1
    good_until = min(good_until, len(data))
    tail_healed = len(data) - good_until

    live = set(last_for_fp.values())
    compacted = [line for index, line in enumerate(kept) if index in live]
    deduped = len(kept) - len(compacted)

    new_data = b"".join(line + b"\n" for line in compacted)
    report = CompactReport(
        path=str(path),
        backend="jsonl",
        rows_kept=len(compacted),
        rows_dropped_schema=dropped_schema,
        rows_deduped=deduped,
        tail_bytes_healed=tail_healed,
        bytes_before=len(data),
        bytes_after=len(new_data) if (dropped_schema or deduped or tail_healed)
        else len(data),
        dry_run=dry_run,
    )
    if not dry_run and report.changed:
        # Atomic swap: a kill mid-compaction leaves old bytes or new
        # bytes, never a mix the next open would classify as corrupt.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".compact"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(new_data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    return report


def compact_sqlite(path: Union[str, Path], *, dry_run: bool = False) -> CompactReport:
    """Compact one SQLite store: drop dead-schema rows, then ``VACUUM``.

    Duplicates cannot exist (fingerprint is the primary key), so the
    whole job is deleting rows whose ``schema_version`` no current
    lookup can match, and reclaiming their pages.
    """
    path = Path(path)
    bytes_before = path.stat().st_size if path.exists() else 0
    conn = sqlite3.connect(str(path))
    try:
        kept = conn.execute(
            "SELECT COUNT(*) FROM results WHERE schema_version = ?",
            (SCHEMA_VERSION,),
        ).fetchone()[0]
        dead = conn.execute(
            "SELECT COUNT(*) FROM results WHERE schema_version != ?",
            (SCHEMA_VERSION,),
        ).fetchone()[0]
        if not dry_run and dead:
            with conn:
                conn.execute(
                    "DELETE FROM results WHERE schema_version != ?",
                    (SCHEMA_VERSION,),
                )
            conn.execute("VACUUM")
            conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
    except sqlite3.DatabaseError as exc:
        raise ConfigurationError(f"cannot compact {path}: {exc}") from exc
    finally:
        conn.close()
    bytes_after = path.stat().st_size if path.exists() else 0
    return CompactReport(
        path=str(path),
        backend="sqlite",
        rows_kept=kept,
        rows_dropped_schema=dead,
        rows_deduped=0,
        tail_bytes_healed=0,
        bytes_before=bytes_before,
        bytes_after=bytes_after if not dry_run else bytes_before,
        dry_run=dry_run,
    )


def compact_store(path: Union[str, Path], *, dry_run: bool = False) -> CompactReport:
    """Compact one store, picking the backend from the path suffix.

    The dispatch matches :func:`repro.store.base.open_store`:
    ``.sqlite`` / ``.sqlite3`` / ``.db`` is SQLite, anything else JSONL
    (``:memory:`` has nothing on disk to compact and is rejected).
    """
    text = str(path)
    if text == ":memory:":
        raise ConfigurationError("the in-memory store has no file to compact")
    if not Path(text).exists():
        raise ConfigurationError(f"no such store: {text}")
    if text.endswith((".sqlite", ".sqlite3", ".db")):
        return compact_sqlite(text, dry_run=dry_run)
    return compact_jsonl(text, dry_run=dry_run)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.compact",
        description=(
            "Compact result stores: drop rows from dead schema versions, "
            "dedupe superseded JSONL records, heal torn JSONL tails."
        ),
    )
    parser.add_argument("paths", nargs="+", metavar="STORE",
                        help="store files (.jsonl or .sqlite/.sqlite3/.db)")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what would change without rewriting")
    args = parser.parse_args(argv)

    status = 0
    for path in args.paths:
        try:
            report = compact_store(path, dry_run=args.dry_run)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 1
            continue
        print(report.summary())
    return status


if __name__ == "__main__":
    sys.exit(main())
