"""In-memory result store.

For tests and single-session campaigns that want cache/early-stop
semantics without a file.  Outcomes round-trip through the same codec as
the persistent backends on every ``put``/``get``, so anything that would
fail to persist (an unsupported ``params`` value, say) fails here too —
the memory backend is a behavioural stand-in, not a shortcut.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional

from repro.campaign.codec import outcome_from_dict, outcome_to_dict
from repro.campaign.spec import ScenarioOutcome
from repro.store.base import Fingerprintish, ResultStore, _digest

__all__ = ["MemoryResultStore"]


class MemoryResultStore(ResultStore):
    """Dict-backed store with codec-faithful semantics."""

    def __init__(self) -> None:
        self._records: Dict[str, Dict[str, Any]] = {}

    def get(self, fingerprint: Fingerprintish) -> Optional[ScenarioOutcome]:
        record = self._records.get(_digest(fingerprint))
        if record is None:
            return None
        return outcome_from_dict(record)

    def put(self, fingerprint: Fingerprintish, outcome: ScenarioOutcome) -> None:
        self._records[_digest(fingerprint)] = outcome_to_dict(outcome)

    def fingerprints(self) -> FrozenSet[str]:
        return frozenset(self._records)

    def close(self) -> None:
        self._records.clear()
