"""SQLite result store for large grids.

The JSONL backend replays its whole file on open; for campaigns in the
hundreds of thousands of scenarios an indexed, queryable store is the
better trade.  One table, primary-keyed by fingerprint, one commit per
``put`` (that commit is the durability point a resumed campaign relies
on), batched ``IN (...)`` lookups for ``get_many``.

Thread-safety: the connection is opened with ``check_same_thread=False``
and every operation runs under an internal lock.  This is load-bearing,
not cosmetic — under the process campaign backend, ``put`` is called
from the parent's event/result-delivery path while other threads (a
progress drain, the caller) may read, and sqlite3's default thread
affinity would raise ``ProgrammingError`` on the first cross-thread
call.  The store is safe to share between threads of one process; it is
*not* a multi-process store (each process opens its own).

Durability: ``PRAGMA journal_mode=WAL`` + ``synchronous=NORMAL``.  WAL
keeps readers unblocked during commits and survives process kills; with
``NORMAL``, a commit is durable against the process dying (the resume
guarantee) though the very last commits may roll back if the *host*
dies — the same trade the JSONL backend's per-record flush makes.

The schema version is stored per row: rows written under an older
schema are invisible to lookups (their fingerprints would not match
anyway — the version is hashed into the fingerprint) but are kept on
disk for forensics and pruning.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple, Union

from repro.campaign.codec import outcome_from_dict, outcome_to_dict
from repro.campaign.spec import ScenarioOutcome
from repro.exceptions import ConfigurationError
from repro.store.base import Fingerprintish, ResultStore, _digest
from repro.store.fingerprint import SCHEMA_VERSION

__all__ = ["SqliteResultStore"]

#: SQLite limits the number of bound variables; stay well under it.
_IN_BATCH = 500


class SqliteResultStore(ResultStore):
    """SQLite-backed store (one file, indexed lookups, per-put commits).

    Safe for concurrent use from multiple threads of one process; see
    the module docstring for the thread-safety and WAL guarantees.
    """

    def __init__(self, path: Union[str, Path]):
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn: Optional[sqlite3.Connection] = None
        try:
            # check_same_thread=False + self._lock: the process campaign
            # backend calls put from delivery/drain threads, which the
            # default thread affinity would reject with ProgrammingError.
            conn = sqlite3.connect(str(self._path), check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                "  fingerprint TEXT PRIMARY KEY,"
                "  schema_version INTEGER NOT NULL,"
                "  outcome TEXT NOT NULL"
                ")"
            )
            conn.commit()
        except sqlite3.DatabaseError as exc:
            raise ConfigurationError(
                f"cannot open result store {self._path}: {exc}"
            ) from exc
        self._conn = conn

    @property
    def path(self) -> Path:
        return self._path

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            raise ConfigurationError(
                f"result store {self._path} is closed"
            )
        return self._conn

    # -- ResultStore -------------------------------------------------------

    def get(self, fingerprint: Fingerprintish) -> Optional[ScenarioOutcome]:
        with self._lock:
            row = self._connection().execute(
                "SELECT outcome FROM results WHERE fingerprint = ? AND schema_version = ?",
                (_digest(fingerprint), SCHEMA_VERSION),
            ).fetchone()
        if row is None:
            return None
        return outcome_from_dict(json.loads(row[0]))

    def get_many(
        self, fingerprints: Iterable[Fingerprintish]
    ) -> Dict[str, ScenarioOutcome]:
        digests = list({_digest(fp) for fp in fingerprints})
        hits: Dict[str, ScenarioOutcome] = {}
        for start in range(0, len(digests), _IN_BATCH):
            batch = digests[start:start + _IN_BATCH]
            placeholders = ",".join("?" for _ in batch)
            with self._lock:
                rows = self._connection().execute(
                    f"SELECT fingerprint, outcome FROM results "
                    f"WHERE schema_version = ? AND fingerprint IN ({placeholders})",
                    [SCHEMA_VERSION, *batch],
                ).fetchall()
            for digest, payload in rows:
                hits[digest] = outcome_from_dict(json.loads(payload))
        return hits

    def put(self, fingerprint: Fingerprintish, outcome: ScenarioOutcome) -> None:
        payload = json.dumps(outcome_to_dict(outcome), sort_keys=True)
        with self._lock:
            conn = self._connection()
            conn.execute(
                "INSERT OR REPLACE INTO results (fingerprint, schema_version, outcome) "
                "VALUES (?, ?, ?)",
                (_digest(fingerprint), SCHEMA_VERSION, payload),
            )
            conn.commit()

    def put_many(
        self, items: Iterable[Tuple[Fingerprintish, ScenarioOutcome]]
    ) -> None:
        rows = [
            (_digest(fp), SCHEMA_VERSION, json.dumps(outcome_to_dict(o), sort_keys=True))
            for fp, o in items
        ]
        with self._lock:
            conn = self._connection()
            conn.executemany(
                "INSERT OR REPLACE INTO results (fingerprint, schema_version, outcome) "
                "VALUES (?, ?, ?)",
                rows,
            )
            conn.commit()

    def fingerprints(self) -> FrozenSet[str]:
        with self._lock:
            rows = self._connection().execute(
                "SELECT fingerprint FROM results WHERE schema_version = ?",
                (SCHEMA_VERSION,),
            ).fetchall()
        return frozenset(row[0] for row in rows)

    def items(self) -> Iterator[Tuple[str, ScenarioOutcome]]:
        with self._lock:
            rows = self._connection().execute(
                "SELECT fingerprint, outcome FROM results WHERE schema_version = ? "
                "ORDER BY fingerprint",
                (SCHEMA_VERSION,),
            ).fetchall()
        for digest, payload in rows:
            yield digest, outcome_from_dict(json.loads(payload))

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None
