"""SQLite result store for large grids.

The JSONL backend replays its whole file on open; for campaigns in the
hundreds of thousands of scenarios an indexed, queryable store is the
better trade.  One table, primary-keyed by fingerprint, one commit per
``put`` (that commit is the durability point a resumed campaign relies
on), batched ``IN (...)`` lookups for ``get_many``.

The schema version is stored per row: rows written under an older
schema are invisible to lookups (their fingerprints would not match
anyway — the version is hashed into the fingerprint) but are kept on
disk for forensics and pruning.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Optional, Tuple, Union

from repro.campaign.codec import outcome_from_dict, outcome_to_dict
from repro.campaign.spec import ScenarioOutcome
from repro.exceptions import ConfigurationError
from repro.store.base import Fingerprintish, ResultStore, _digest
from repro.store.fingerprint import SCHEMA_VERSION

__all__ = ["SqliteResultStore"]

#: SQLite limits the number of bound variables; stay well under it.
_IN_BATCH = 500


class SqliteResultStore(ResultStore):
    """SQLite-backed store (one file, indexed lookups, per-put commits)."""

    def __init__(self, path: Union[str, Path]):
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = sqlite3.connect(str(self._path))
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                "  fingerprint TEXT PRIMARY KEY,"
                "  schema_version INTEGER NOT NULL,"
                "  outcome TEXT NOT NULL"
                ")"
            )
            self._conn.commit()
        except sqlite3.DatabaseError as exc:
            raise ConfigurationError(
                f"cannot open result store {self._path}: {exc}"
            ) from exc

    @property
    def path(self) -> Path:
        return self._path

    # -- ResultStore -------------------------------------------------------

    def get(self, fingerprint: Fingerprintish) -> Optional[ScenarioOutcome]:
        row = self._conn.execute(
            "SELECT outcome FROM results WHERE fingerprint = ? AND schema_version = ?",
            (_digest(fingerprint), SCHEMA_VERSION),
        ).fetchone()
        if row is None:
            return None
        return outcome_from_dict(json.loads(row[0]))

    def get_many(
        self, fingerprints: Iterable[Fingerprintish]
    ) -> Dict[str, ScenarioOutcome]:
        digests = list({_digest(fp) for fp in fingerprints})
        hits: Dict[str, ScenarioOutcome] = {}
        for start in range(0, len(digests), _IN_BATCH):
            batch = digests[start:start + _IN_BATCH]
            placeholders = ",".join("?" for _ in batch)
            rows = self._conn.execute(
                f"SELECT fingerprint, outcome FROM results "
                f"WHERE schema_version = ? AND fingerprint IN ({placeholders})",
                [SCHEMA_VERSION, *batch],
            ).fetchall()
            for digest, payload in rows:
                hits[digest] = outcome_from_dict(json.loads(payload))
        return hits

    def put(self, fingerprint: Fingerprintish, outcome: ScenarioOutcome) -> None:
        payload = json.dumps(outcome_to_dict(outcome), sort_keys=True)
        self._conn.execute(
            "INSERT OR REPLACE INTO results (fingerprint, schema_version, outcome) "
            "VALUES (?, ?, ?)",
            (_digest(fingerprint), SCHEMA_VERSION, payload),
        )
        self._conn.commit()

    def put_many(
        self, items: Iterable[Tuple[Fingerprintish, ScenarioOutcome]]
    ) -> None:
        rows = [
            (_digest(fp), SCHEMA_VERSION, json.dumps(outcome_to_dict(o), sort_keys=True))
            for fp, o in items
        ]
        self._conn.executemany(
            "INSERT OR REPLACE INTO results (fingerprint, schema_version, outcome) "
            "VALUES (?, ?, ?)",
            rows,
        )
        self._conn.commit()

    def fingerprints(self) -> FrozenSet[str]:
        rows = self._conn.execute(
            "SELECT fingerprint FROM results WHERE schema_version = ?",
            (SCHEMA_VERSION,),
        ).fetchall()
        return frozenset(row[0] for row in rows)

    def close(self) -> None:
        self._conn.close()
