"""SQLite result store for large grids.

The JSONL backend replays its whole file on open; for campaigns in the
hundreds of thousands of scenarios an indexed, queryable store is the
better trade.  One table, primary-keyed by fingerprint, one commit per
``put`` (that commit is the durability point a resumed campaign relies
on), batched ``IN (...)`` lookups for ``get_many``.

Thread-safety: the connection is opened with ``check_same_thread=False``
and every operation runs under an internal lock.  This is load-bearing,
not cosmetic — under the process campaign backend, ``put`` is called
from the parent's event/result-delivery path while other threads (a
progress drain, the caller) may read, and sqlite3's default thread
affinity would raise ``ProgrammingError`` on the first cross-thread
call.  The store is safe to share between threads of one process; it is
*not* a multi-process store (each process opens its own).

Durability: ``PRAGMA journal_mode=WAL`` + ``synchronous=NORMAL``.  WAL
keeps readers unblocked during commits and survives process kills; with
``NORMAL``, a commit is durable against the process dying (the resume
guarantee) though the very last commits may roll back if the *host*
dies — the same trade the JSONL backend's per-record flush makes.

Batched commits: ``commit_batch > 1`` buffers puts and commits up to
that many rows in one transaction (``executemany`` + one ``COMMIT``),
which is the difference between one fsync per scenario and one per
batch on write-heavy campaigns.  The durability point then moves by **at
most one batch**: a SIGKILL loses only the buffered tail, and a resumed
campaign re-runs exactly those scenarios (pinned by
``tests/store/test_bulk_io.py``).  Three things keep the relaxation
honest — every read flushes first (the store never hides rows from
itself), an idle timer flushes a partially filled buffer without
waiting for the batch to fill, and :meth:`close` flushes before
closing.

The schema version is stored per row: rows written under an older
schema are invisible to lookups (their fingerprints would not match
anyway — the version is hashed into the fingerprint) but are kept on
disk for forensics and pruning.  A covering index on
``(schema_version, fingerprint)`` makes the bulk cache-skip pass
(``get_many``/``fingerprints``) an index-only scan instead of a table
walk.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple, Union

from repro.campaign.codec import outcome_from_dict, outcome_to_dict
from repro.campaign.spec import ScenarioOutcome
from repro.exceptions import ConfigurationError
from repro.store.base import Fingerprintish, ResultStore, _digest
from repro.store.fingerprint import SCHEMA_VERSION

__all__ = ["SqliteResultStore"]

#: SQLite limits the number of bound variables; stay well under it.
_IN_BATCH = 500

#: How long a partially filled commit buffer may sit before it is
#: flushed anyway.  Bounds the durability window in wall time the same
#: way ``commit_batch`` bounds it in rows.
_IDLE_FLUSH_SECONDS = 0.5

_INSERT = (
    "INSERT OR REPLACE INTO results (fingerprint, schema_version, outcome) "
    "VALUES (?, ?, ?)"
)


class SqliteResultStore(ResultStore):
    """SQLite-backed store (one file, indexed lookups, batched commits).

    ``commit_batch=1`` (the default) keeps the historical per-put commit
    — every outcome durable before ``put`` returns.  Larger values
    buffer writes as described in the module docstring.  Safe for
    concurrent use from multiple threads of one process; see the module
    docstring for the thread-safety and WAL guarantees.
    """

    def __init__(self, path: Union[str, Path], *, commit_batch: int = 1,
                 idle_flush_seconds: float = _IDLE_FLUSH_SECONDS):
        if commit_batch < 1:
            raise ConfigurationError(
                f"commit_batch must be >= 1, got {commit_batch}")
        if idle_flush_seconds <= 0:
            raise ConfigurationError(
                f"idle_flush_seconds must be > 0, got {idle_flush_seconds}")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn: Optional[sqlite3.Connection] = None
        self._commit_batch = commit_batch
        self._idle_flush_seconds = idle_flush_seconds
        # Pending rows, digest-keyed so a re-put of a buffered fingerprint
        # stays last-write-wins without writing the loser at all.
        self._buffer: Dict[str, str] = {}
        self._idle_timer: Optional[threading.Timer] = None
        self._io = {"puts": 0, "commits": 0, "committed_rows": 0,
                    "max_commit_batch": 0, "flushes": 0}
        try:
            # check_same_thread=False + self._lock: the process campaign
            # backend calls put from delivery/drain threads, which the
            # default thread affinity would reject with ProgrammingError.
            conn = sqlite3.connect(str(self._path), check_same_thread=False)
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                "  fingerprint TEXT PRIMARY KEY,"
                "  schema_version INTEGER NOT NULL,"
                "  outcome TEXT NOT NULL"
                ")"
            )
            # Covering index for the bulk skip pass: get_many and
            # fingerprints() filter on schema_version and read only the
            # fingerprint, so this resolves them without touching the
            # (payload-bearing) table rows.
            conn.execute(
                "CREATE INDEX IF NOT EXISTS results_schema_fingerprint "
                "ON results (schema_version, fingerprint)"
            )
            conn.commit()
        except sqlite3.DatabaseError as exc:
            raise ConfigurationError(
                f"cannot open result store {self._path}: {exc}"
            ) from exc
        self._conn = conn

    @property
    def path(self) -> Path:
        return self._path

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            raise ConfigurationError(
                f"result store {self._path} is closed"
            )
        return self._conn

    # -- write buffering ---------------------------------------------------

    def _commit_rows(self, rows: List[Tuple[str, int, str]]) -> None:
        """One transaction for ``rows`` (caller holds the lock)."""
        if not rows:
            return
        conn = self._connection()
        conn.executemany(_INSERT, rows)
        conn.commit()
        self._io["commits"] += 1
        self._io["committed_rows"] += len(rows)
        self._io["max_commit_batch"] = max(
            self._io["max_commit_batch"], len(rows))

    def _drain_buffer_locked(self) -> None:
        """Commit and clear the pending buffer (caller holds the lock)."""
        if self._idle_timer is not None:
            self._idle_timer.cancel()
            self._idle_timer = None
        if not self._buffer:
            return
        rows = [(digest, SCHEMA_VERSION, payload)
                for digest, payload in self._buffer.items()]
        self._buffer.clear()
        self._commit_rows(rows)

    def _arm_idle_timer_locked(self) -> None:
        if self._idle_timer is not None:
            return
        timer = threading.Timer(self._idle_flush_seconds, self._idle_flush)
        timer.daemon = True
        self._idle_timer = timer
        timer.start()

    def _idle_flush(self) -> None:
        with self._lock:
            self._idle_timer = None
            if self._conn is None:
                return  # closed (and therefore flushed) under the timer
            if self._buffer:
                self._io["flushes"] += 1
                self._drain_buffer_locked()

    def flush(self) -> None:
        """Commit any buffered rows now (the explicit durability point)."""
        with self._lock:
            if self._conn is None:
                return
            if self._buffer:
                self._io["flushes"] += 1
            self._drain_buffer_locked()

    def io_stats(self) -> Dict[str, int]:
        with self._lock:
            return {**self._io, "buffered": len(self._buffer),
                    "commit_batch": self._commit_batch}

    # -- ResultStore -------------------------------------------------------

    def get(self, fingerprint: Fingerprintish) -> Optional[ScenarioOutcome]:
        with self._lock:
            self._drain_buffer_locked()
            row = self._connection().execute(
                "SELECT outcome FROM results WHERE fingerprint = ? AND schema_version = ?",
                (_digest(fingerprint), SCHEMA_VERSION),
            ).fetchone()
        if row is None:
            return None
        return outcome_from_dict(json.loads(row[0]))

    def get_many(
        self, fingerprints: Iterable[Fingerprintish]
    ) -> Dict[str, ScenarioOutcome]:
        digests = list({_digest(fp) for fp in fingerprints})
        hits: Dict[str, ScenarioOutcome] = {}
        with self._lock:
            self._drain_buffer_locked()
        for start in range(0, len(digests), _IN_BATCH):
            batch = digests[start:start + _IN_BATCH]
            placeholders = ",".join("?" for _ in batch)
            with self._lock:
                rows = self._connection().execute(
                    f"SELECT fingerprint, outcome FROM results "
                    f"WHERE schema_version = ? AND fingerprint IN ({placeholders})",
                    [SCHEMA_VERSION, *batch],
                ).fetchall()
            for digest, payload in rows:
                hits[digest] = outcome_from_dict(json.loads(payload))
        return hits

    def put(self, fingerprint: Fingerprintish, outcome: ScenarioOutcome) -> None:
        payload = json.dumps(outcome_to_dict(outcome), sort_keys=True)
        digest = _digest(fingerprint)
        with self._lock:
            self._connection()  # closed-store check before buffering
            self._io["puts"] += 1
            if self._commit_batch == 1:
                self._commit_rows([(digest, SCHEMA_VERSION, payload)])
                return
            self._buffer[digest] = payload
            if len(self._buffer) >= self._commit_batch:
                self._drain_buffer_locked()
            else:
                self._arm_idle_timer_locked()

    def put_many(
        self, items: Iterable[Tuple[Fingerprintish, ScenarioOutcome]]
    ) -> None:
        rows = [
            (_digest(fp), SCHEMA_VERSION, json.dumps(outcome_to_dict(o), sort_keys=True))
            for fp, o in items
        ]
        with self._lock:
            # Buffered puts precede these rows in submission order; drain
            # them into the same transaction so last-write-wins ordering
            # is preserved across the buffering boundary.
            if self._idle_timer is not None:
                self._idle_timer.cancel()
                self._idle_timer = None
            buffered = [(digest, SCHEMA_VERSION, payload)
                        for digest, payload in self._buffer.items()]
            self._buffer.clear()
            self._io["puts"] += len(rows)
            self._commit_rows(buffered + rows)

    def fingerprints(self) -> FrozenSet[str]:
        with self._lock:
            self._drain_buffer_locked()
            rows = self._connection().execute(
                "SELECT fingerprint FROM results WHERE schema_version = ?",
                (SCHEMA_VERSION,),
            ).fetchall()
        return frozenset(row[0] for row in rows)

    def items(self) -> Iterator[Tuple[str, ScenarioOutcome]]:
        with self._lock:
            self._drain_buffer_locked()
            rows = self._connection().execute(
                "SELECT fingerprint, outcome FROM results WHERE schema_version = ? "
                "ORDER BY fingerprint",
                (SCHEMA_VERSION,),
            ).fetchall()
        for digest, payload in rows:
            yield digest, outcome_from_dict(json.loads(payload))

    def close(self) -> None:
        with self._lock:
            if self._idle_timer is not None:
                self._idle_timer.cancel()
                self._idle_timer = None
            if self._conn is not None:
                self._drain_buffer_locked()
                self._conn.close()
                self._conn = None
