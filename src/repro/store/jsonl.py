"""Append-only JSONL result store.

One JSON object per line: ``{"fp": <digest>, "v": <schema>, "outcome":
{...}}``.  The format is deliberately boring — portable, diffable,
mergeable with ``cat`` — and append-only, so a ``put`` is a single
``write + flush`` and a campaign killed mid-run loses at most the line
it was writing.

Crash-safety on open:

* a **torn final line** (the campaign was killed mid-append) is
  recognised and truncated away, so the next append starts on a clean
  line instead of corrupting the following record;
* records from **other schema versions** are skipped — their
  fingerprints can never be looked up anyway (the schema version is part
  of the hash), so they are dead weight, not an error;
* corruption *before* the final line is reported loudly: that is not a
  kill artefact but real damage, and silently dropping stored evidence
  would make a resumed campaign silently recompute — or worse, a
  half-loaded index could shadow a later duplicate record.

The classification is pinned by byte-level fixtures in the test suite:

* torn final line, **no trailing newline** → truncated away (the only
  artefact a killed single ``write(json + "\\n")`` can leave);
* unreadable final line **with a trailing newline** → raise — a fully
  written line of garbage cannot come from a torn append, so it is real
  corruption even in tail position;
* a torn line that happens to be a **valid JSON prefix** of a record
  (e.g. a bare ``{"fp": ...}`` missing its outcome) → truncated away,
  never half-loaded;
* **empty file** → loads empty and is left untouched;
* a file of only **other-schema rows** → loads empty (the rows are
  unreadable through current-version lookups anyway), file untouched.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, FrozenSet, Optional, Union

from repro.campaign.codec import outcome_from_dict, outcome_to_dict
from repro.campaign.spec import ScenarioOutcome
from repro.exceptions import ConfigurationError
from repro.store.base import Fingerprintish, ResultStore, _digest
from repro.store.fingerprint import SCHEMA_VERSION

__all__ = ["JsonlResultStore"]


class JsonlResultStore(ResultStore):
    """Append-only JSONL backend (the portable default)."""

    def __init__(self, path: Union[str, Path]):
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._index: Dict[str, ScenarioOutcome] = {}
        self._load()
        self._file = self._path.open("a", encoding="utf-8")

    @property
    def path(self) -> Path:
        return self._path

    def _load(self) -> None:
        if not self._path.exists():
            return
        data = self._path.read_bytes()
        good_until = 0
        for line_number, raw_line in enumerate(data.split(b"\n"), start=1):
            stripped = raw_line.strip()
            if stripped:
                try:
                    record = json.loads(stripped.decode("utf-8"))
                    if not isinstance(record, dict):
                        raise ConfigurationError(f"record is not an object: {record!r}")
                    if record.get("v") == SCHEMA_VERSION:
                        digest = record["fp"]
                        if not isinstance(digest, str) or not digest:
                            # A record of the right version with a broken
                            # key is corruption, not a schema mismatch.
                            raise ConfigurationError(
                                f"record has a non-string fingerprint: {digest!r}"
                            )
                        self._index[digest] = outcome_from_dict(record["outcome"])
                except (ValueError, KeyError, TypeError, ConfigurationError) as exc:
                    if good_until + len(raw_line) + 1 <= len(data):
                        # The bad line is followed by more data: this is
                        # not a torn final append but real corruption.
                        raise ConfigurationError(
                            f"corrupt result store {self._path}: unreadable record "
                            f"on line {line_number} ({exc})"
                        ) from exc
                    break  # torn final line: drop it below
            good_until += len(raw_line) + 1  # the split-away "\n"
        good_until = min(good_until, len(data))
        if good_until < len(data) or (data and not data.endswith(b"\n")):
            # Truncate the torn tail so the next append starts clean.
            clean = data[:good_until]
            if clean and not clean.endswith(b"\n"):
                clean += b"\n"
            self._path.write_bytes(clean)

    # -- ResultStore -------------------------------------------------------

    def get(self, fingerprint: Fingerprintish) -> Optional[ScenarioOutcome]:
        return self._index.get(_digest(fingerprint))

    def put(self, fingerprint: Fingerprintish, outcome: ScenarioOutcome) -> None:
        digest = _digest(fingerprint)
        record = {"fp": digest, "v": SCHEMA_VERSION, "outcome": outcome_to_dict(outcome)}
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        # Flushed to the OS per record: durable against the process being
        # killed (the resume guarantee), not against the host dying.
        self._file.flush()
        self._index[digest] = outcome

    def fingerprints(self) -> FrozenSet[str]:
        return frozenset(self._index)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
