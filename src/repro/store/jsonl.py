"""Append-only JSONL result store.

One JSON object per line: ``{"fp": <digest>, "v": <schema>, "outcome":
{...}}``.  The format is deliberately boring — portable, diffable,
mergeable with ``cat`` — and append-only, so a ``put`` is a single
``write + flush`` and a campaign killed mid-run loses at most the line
it was writing.

Crash-safety on open:

* a **torn final line** (the campaign was killed mid-append) is
  recognised and truncated away, so the next append starts on a clean
  line instead of corrupting the following record;
* records from **other schema versions** are skipped — their
  fingerprints can never be looked up anyway (the schema version is part
  of the hash), so they are dead weight, not an error;
* corruption *before* the final line is reported loudly: that is not a
  kill artefact but real damage, and silently dropping stored evidence
  would make a resumed campaign silently recompute — or worse, a
  half-loaded index could shadow a later duplicate record.

The classification is pinned by byte-level fixtures in the test suite:

* torn final line, **no trailing newline** → truncated away (the only
  artefact a killed single ``write(json + "\\n")`` can leave);
* unreadable final line **with a trailing newline** → raise — a fully
  written line of garbage cannot come from a torn append, so it is real
  corruption even in tail position;
* a torn line that happens to be a **valid JSON prefix** of a record
  (e.g. a bare ``{"fp": ...}`` missing its outcome) → truncated away,
  never half-loaded;
* **empty file** → loads empty and is left untouched;
* a file of only **other-schema rows** → loads empty (the rows are
  unreadable through current-version lookups anyway), file untouched.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Union

from repro.campaign.codec import outcome_from_dict, outcome_to_dict
from repro.campaign.spec import ScenarioOutcome
from repro.exceptions import ConfigurationError
from repro.store.base import Fingerprintish, ResultStore, _digest
from repro.store.fingerprint import SCHEMA_VERSION

__all__ = ["JsonlResultStore"]

#: See :data:`repro.store.sqlite._IDLE_FLUSH_SECONDS` — same contract.
_IDLE_FLUSH_SECONDS = 0.5


class JsonlResultStore(ResultStore):
    """Append-only JSONL backend (the portable default).

    ``commit_batch=1`` (the default) appends and flushes per record —
    the historical behaviour.  Larger values buffer encoded lines and
    append them as **one** ``write`` of the joined block per batch; a
    kill mid-write then leaves complete lines plus at most one torn
    final line, which is *exactly* the artefact the open-time
    classification above already recognises and truncates — the
    byte-level torn-tail guarantees hold unchanged, only the durability
    point moves by at most one batch (bounded in wall time by an idle
    flush timer).  Reads are always served from the in-memory index, so
    buffering never affects read-your-writes.
    """

    def __init__(self, path: Union[str, Path], *, commit_batch: int = 1,
                 idle_flush_seconds: float = _IDLE_FLUSH_SECONDS):
        if commit_batch < 1:
            raise ConfigurationError(
                f"commit_batch must be >= 1, got {commit_batch}")
        if idle_flush_seconds <= 0:
            raise ConfigurationError(
                f"idle_flush_seconds must be > 0, got {idle_flush_seconds}")
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._commit_batch = commit_batch
        self._idle_flush_seconds = idle_flush_seconds
        self._pending: List[str] = []
        self._idle_timer: Optional[threading.Timer] = None
        self._io = {"puts": 0, "commits": 0, "committed_rows": 0,
                    "max_commit_batch": 0, "flushes": 0}
        self._index: Dict[str, ScenarioOutcome] = {}
        self._load()
        self._file = self._path.open("a", encoding="utf-8")

    @property
    def path(self) -> Path:
        return self._path

    def _load(self) -> None:
        if not self._path.exists():
            return
        data = self._path.read_bytes()
        good_until = 0
        for line_number, raw_line in enumerate(data.split(b"\n"), start=1):
            stripped = raw_line.strip()
            if stripped:
                try:
                    record = json.loads(stripped.decode("utf-8"))
                    if not isinstance(record, dict):
                        raise ConfigurationError(f"record is not an object: {record!r}")
                    if record.get("v") == SCHEMA_VERSION:
                        digest = record["fp"]
                        if not isinstance(digest, str) or not digest:
                            # A record of the right version with a broken
                            # key is corruption, not a schema mismatch.
                            raise ConfigurationError(
                                f"record has a non-string fingerprint: {digest!r}"
                            )
                        self._index[digest] = outcome_from_dict(record["outcome"])
                except (ValueError, KeyError, TypeError, ConfigurationError) as exc:
                    if good_until + len(raw_line) + 1 <= len(data):
                        # The bad line is followed by more data: this is
                        # not a torn final append but real corruption.
                        raise ConfigurationError(
                            f"corrupt result store {self._path}: unreadable record "
                            f"on line {line_number} ({exc})"
                        ) from exc
                    break  # torn final line: drop it below
            good_until += len(raw_line) + 1  # the split-away "\n"
        good_until = min(good_until, len(data))
        if good_until < len(data) or (data and not data.endswith(b"\n")):
            # Truncate the torn tail so the next append starts clean.
            clean = data[:good_until]
            if clean and not clean.endswith(b"\n"):
                clean += b"\n"
            self._path.write_bytes(clean)

    # -- write buffering ---------------------------------------------------

    def _commit_lines(self, lines: List[str]) -> None:
        """One appended write for ``lines`` (caller holds the lock).

        A single ``write`` of the joined block is the whole trick: the
        kernel appends it contiguously, so an interrupting kill leaves a
        clean-line prefix plus at most one torn tail — the same artefact
        a torn single-record append leaves.
        """
        if not lines:
            return
        self._file.write("".join(lines))
        # Flushed to the OS per commit: durable against the process being
        # killed (the resume guarantee), not against the host dying.
        self._file.flush()
        self._io["commits"] += 1
        self._io["committed_rows"] += len(lines)
        self._io["max_commit_batch"] = max(
            self._io["max_commit_batch"], len(lines))

    def _drain_pending_locked(self) -> None:
        if self._idle_timer is not None:
            self._idle_timer.cancel()
            self._idle_timer = None
        if not self._pending:
            return
        lines, self._pending = self._pending, []
        self._commit_lines(lines)

    def _arm_idle_timer_locked(self) -> None:
        if self._idle_timer is not None:
            return
        timer = threading.Timer(self._idle_flush_seconds, self._idle_flush)
        timer.daemon = True
        self._idle_timer = timer
        timer.start()

    def _idle_flush(self) -> None:
        with self._lock:
            self._idle_timer = None
            if self._file.closed:
                return
            if self._pending:
                self._io["flushes"] += 1
                self._drain_pending_locked()

    def flush(self) -> None:
        """Append any buffered records now (the explicit durability point)."""
        with self._lock:
            if self._file.closed:
                return
            if self._pending:
                self._io["flushes"] += 1
            self._drain_pending_locked()

    def io_stats(self) -> Dict[str, int]:
        with self._lock:
            return {**self._io, "buffered": len(self._pending),
                    "commit_batch": self._commit_batch}

    # -- ResultStore -------------------------------------------------------

    def get(self, fingerprint: Fingerprintish) -> Optional[ScenarioOutcome]:
        return self._index.get(_digest(fingerprint))

    def put(self, fingerprint: Fingerprintish, outcome: ScenarioOutcome) -> None:
        digest = _digest(fingerprint)
        record = {"fp": digest, "v": SCHEMA_VERSION, "outcome": outcome_to_dict(outcome)}
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self._io["puts"] += 1
            if self._commit_batch == 1:
                self._commit_lines([line])
            else:
                self._pending.append(line)
                if len(self._pending) >= self._commit_batch:
                    self._drain_pending_locked()
                else:
                    self._arm_idle_timer_locked()
            self._index[digest] = outcome

    def fingerprints(self) -> FrozenSet[str]:
        return frozenset(self._index)

    def close(self) -> None:
        with self._lock:
            if self._idle_timer is not None:
                self._idle_timer.cancel()
                self._idle_timer = None
            if not self._file.closed:
                self._drain_pending_locked()
                self._file.close()
