"""Persistent campaign results: caching, resume, budgets, progress.

The campaign engine (:mod:`repro.campaign`) makes every scenario's
outcome a pure function of its spec; this package makes that function
*persistent*.  Outcomes are filed under a content-addressed
:class:`ScenarioFingerprint` in a :class:`ResultStore` (append-only
JSONL, SQLite, or in-memory — :func:`open_store` picks from a path), and
:class:`CachingRunner` wires a store into any
:class:`~repro.campaign.runner.CampaignRunner` backend:

* scenarios already in the store are served from cache;
* fresh outcomes are persisted incrementally, so a killed campaign
  resumes from its last completed scenario — the resumed
  :class:`~repro.campaign.runner.CampaignResult` is *equal* to an
  uninterrupted run's;
* an :class:`EarlyStopPolicy` stops sampling a sweep point once its
  outcome is certified (recording what was skipped);
* a :class:`ProgressReporter` consumes worker-side events for pool-wide
  live visibility.

Typical use::

    from repro.campaign import CampaignRunner, theorem8_specs
    from repro.store import CachingRunner, LogProgressReporter, open_store

    with open_store("theorem8.sqlite") as store:
        runner = CachingRunner(
            store,
            CampaignRunner(backend="process", workers=8),
            progress=LogProgressReporter(every=100),
        )
        result = runner.run(theorem8_specs([4, 5, 6, 7]))
        print(runner.last_stats.as_dict())   # {'cached': ..., 'hit_rate': ...}

Every workload registered via ``@scenario_kind`` inherits caching and
resume with no code of its own.
"""

from repro.store.base import ResultStore, open_store
from repro.store.caching import CacheStats, CachingRunner
from repro.store.fingerprint import SCHEMA_VERSION, ScenarioFingerprint, fingerprint_spec
from repro.store.jsonl import JsonlResultStore
from repro.store.memory import MemoryResultStore
from repro.store.policy import EarlyStopPolicy, point_key
from repro.store.progress import (
    CollectingProgressReporter,
    LogProgressReporter,
    ProgressReporter,
)
from repro.store.sqlite import SqliteResultStore

__all__ = [
    "SCHEMA_VERSION",
    "ScenarioFingerprint",
    "fingerprint_spec",
    "ResultStore",
    "open_store",
    "JsonlResultStore",
    "SqliteResultStore",
    "MemoryResultStore",
    "CachingRunner",
    "CacheStats",
    "EarlyStopPolicy",
    "point_key",
    "ProgressReporter",
    "CollectingProgressReporter",
    "LogProgressReporter",
]
