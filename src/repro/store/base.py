"""The result-store interface and the backend factory.

A :class:`ResultStore` maps scenario fingerprints
(:mod:`repro.store.fingerprint`) to the
:class:`~repro.campaign.spec.ScenarioOutcome` the scenario produced.
Stores are written to incrementally — one ``put`` per completed scenario,
durable immediately — so that a killed campaign leaves behind every
outcome it finished, and a rerun against the same store replays them as
cache hits instead of recomputing.

Two persistent backends ship (:class:`~repro.store.jsonl.JsonlResultStore`
for portability and append-only simplicity,
:class:`~repro.store.sqlite.SqliteResultStore` for large grids with
indexed lookups) plus an in-memory backend for tests and ephemeral
campaigns; :func:`open_store` picks one from a path.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple, Union

from repro.campaign.spec import ScenarioOutcome
from repro.store.fingerprint import ScenarioFingerprint

__all__ = ["ResultStore", "Fingerprintish", "open_store"]

#: Anything accepted as a store key.
Fingerprintish = Union[str, ScenarioFingerprint]


def _digest(fingerprint: Fingerprintish) -> str:
    if isinstance(fingerprint, ScenarioFingerprint):
        return fingerprint.digest
    return str(fingerprint)


class ResultStore(ABC):
    """Persistent mapping ``fingerprint -> ScenarioOutcome``.

    Implementations must make each :meth:`put` durable before returning
    (that is the resume guarantee) and must return outcomes that compare
    equal to the originally stored ones — cached campaign results are
    asserted *equal* to cold runs, not merely similar.
    """

    # -- required ----------------------------------------------------------

    @abstractmethod
    def get(self, fingerprint: Fingerprintish) -> Optional[ScenarioOutcome]:
        """The stored outcome for this fingerprint, or ``None``."""

    @abstractmethod
    def put(self, fingerprint: Fingerprintish, outcome: ScenarioOutcome) -> None:
        """Store an outcome durably (last write wins on re-put)."""

    @abstractmethod
    def fingerprints(self) -> FrozenSet[str]:
        """All fingerprints with a stored outcome (current schema only)."""

    @abstractmethod
    def close(self) -> None:
        """Release the backing resource.

        ``close`` is **idempotent** — closing twice is a no-op, which is
        what lets stores be used both as context managers and with an
        explicit ``close()`` in ``finally`` blocks.  Reads and writes
        after close are undefined (backends may raise).
        """

    # -- conveniences ------------------------------------------------------

    def get_many(
        self, fingerprints: Iterable[Fingerprintish]
    ) -> Dict[str, ScenarioOutcome]:
        """Bulk lookup: only hits appear in the returned mapping."""
        hits: Dict[str, ScenarioOutcome] = {}
        for fingerprint in fingerprints:
            digest = _digest(fingerprint)
            if digest in hits:
                continue
            outcome = self.get(digest)
            if outcome is not None:
                hits[digest] = outcome
        return hits

    def put_many(
        self, items: Iterable[Tuple[Fingerprintish, ScenarioOutcome]]
    ) -> None:
        """Bulk store (backends may override with a single transaction)."""
        for fingerprint, outcome in items:
            self.put(fingerprint, outcome)

    def items(self) -> Iterator[Tuple[str, ScenarioOutcome]]:
        """Every ``(fingerprint, outcome)`` pair, sorted by fingerprint.

        The provenance query layer (:mod:`repro.provenance.queries`)
        aggregates over this; backends may override with a streaming
        implementation.
        """
        for digest in sorted(self.fingerprints()):
            outcome = self.get(digest)
            if outcome is not None:
                yield digest, outcome

    def flush(self) -> None:
        """Make every buffered write durable now.

        The default is a no-op because the base contract already makes
        each :meth:`put` durable before returning.  Backends opened with
        a ``commit_batch > 1`` buffer writes and *relax* that contract to
        "durable within one batch or one flush, whichever comes first";
        for them this is the durability point.  Reads on such a backend
        flush implicitly first — a store never hides rows from itself.
        """

    def io_stats(self) -> Dict[str, int]:
        """Write-path accounting: puts, flushes, rows per commit.

        Base stores commit per put, so the default reports nothing;
        batching backends override with real counters (``puts``,
        ``commits``, ``committed_rows``, ``max_commit_batch``).  Numbers
        feed the telemetry layer's ``dispatch:store_*`` counters; they
        never affect stored data.
        """
        return {}

    def __contains__(self, fingerprint: object) -> bool:
        if not isinstance(fingerprint, (str, ScenarioFingerprint)):
            return False
        return self.get(fingerprint) is not None

    def __len__(self) -> int:
        return len(self.fingerprints())

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_store(path: Union[str, "object"], *, commit_batch: int = 1) -> ResultStore:
    """Open a result store, picking the backend from the path.

    ``":memory:"`` opens the in-memory backend; a ``.sqlite`` / ``.db`` /
    ``.sqlite3`` suffix opens SQLite; anything else opens the append-only
    JSONL backend.  The file (and its parent directory) is created on
    first use.

    ``commit_batch`` > 1 turns on buffered writes for the persistent
    backends: up to that many outcomes are committed in one transaction
    (SQLite) or one appended write (JSONL), trading the per-put fsync
    for bulk throughput while moving the durability point by at most one
    batch (an idle timer and every read flush early).  The in-memory
    backend ignores it.
    """
    from repro.store.jsonl import JsonlResultStore
    from repro.store.memory import MemoryResultStore
    from repro.store.sqlite import SqliteResultStore

    text = str(path)
    if text == ":memory:":
        return MemoryResultStore()
    if text.endswith((".sqlite", ".sqlite3", ".db")):
        return SqliteResultStore(text, commit_batch=commit_batch)
    return JsonlResultStore(text, commit_batch=commit_batch)
