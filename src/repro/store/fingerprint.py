"""Content-addressed scenario identity.

A :class:`ScenarioFingerprint` is the stable sha256 of a scenario's full
canonical identity (:meth:`repro.campaign.spec.ScenarioSpec.identity`),
using the same ``repr``-of-a-canonical-tuple blob construction as
:meth:`~repro.campaign.spec.ScenarioSpec.derived_seed`.  It is the key
under which the persistent store files outcomes, which gives the cache
its correctness argument for free:

* **Stability.**  The identity tuple contains only canonicalised plain
  data (sorted crash pairs, sorted params), so the fingerprint does not
  depend on process, platform, ``PYTHONHASHSEED``, execution order or
  how the spec was constructed.
* **Completeness.**  Everything that can change an outcome is in the
  tuple — including ``max_steps``, which :meth:`derived_seed` leaves out
  (a bigger budget extends a schedule; it must not be served a
  truncated cached outcome).
* **Invalidation.**  :data:`SCHEMA_VERSION` participates in the hash.
  Any change to the spec schema or its canonicalisation must bump it,
  which re-keys every scenario: an old store then yields cache misses
  (recompute and re-store) instead of stale hits.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.campaign.spec import ScenarioSpec
from repro.exceptions import ConfigurationError

__all__ = ["SCHEMA_VERSION", "ScenarioFingerprint", "fingerprint_spec"]

#: Bump on any change to ``ScenarioSpec``'s fields, their meaning, or the
#: canonicalisation behind :meth:`ScenarioSpec.identity` — stored results
#: keyed under the old version then become unreachable instead of wrong.
#: Version history: 2 — ``ScenarioSpec.recording`` joined the identity;
#: 3 — outcomes gained the ``messages_sent``/``messages_delivered``
#: counters (stored rows written before them must not be served as
#: complete outcomes with zeroed cost).
SCHEMA_VERSION = 3


@dataclass(frozen=True)
class ScenarioFingerprint:
    """A 64-hex-character sha256 digest naming one scenario's identity."""

    digest: str

    def __post_init__(self) -> None:
        if len(self.digest) != 64 or any(c not in "0123456789abcdef" for c in self.digest):
            raise ConfigurationError(
                f"a scenario fingerprint is 64 lowercase hex characters, got {self.digest!r}"
            )

    @classmethod
    def of(cls, spec: ScenarioSpec) -> "ScenarioFingerprint":
        """Fingerprint a spec (stable across processes and sessions)."""
        return cls(fingerprint_spec(spec))

    @property
    def short(self) -> str:
        """A 12-character prefix for logs and progress lines."""
        return self.digest[:12]

    def __str__(self) -> str:
        return self.digest


def fingerprint_spec(spec: ScenarioSpec) -> str:
    """The fingerprint digest of a spec, as a plain string key.

    The sha256 is computed **once per spec instance** and memoised on
    the spec (a non-field attribute, excluded from pickling by
    ``ScenarioSpec.__getstate__``): the caching runner's skip pass, the
    store puts, the journal records and the worker-side event emitter
    all ask for the same digest, and hashing the canonical ``repr`` is
    the single most repeated piece of work in a warm campaign.  The
    memo key is the instance, not the identity — equal specs decoded in
    different processes each hash once, which is exactly the "no spec
    is hashed twice in one campaign" contract.
    """
    cached = spec.__dict__.get("_fingerprint")
    if cached is not None:
        return cached
    blob = repr((SCHEMA_VERSION, spec.identity())).encode()
    digest = hashlib.sha256(blob).hexdigest()
    object.__setattr__(spec, "_fingerprint", digest)
    return digest
