"""repro — an executable reproduction of
"Easy Impossibility Proofs for k-Set Agreement in Message Passing Systems"
(Martin Biely, Peter Robinson, Ulrich Schmid, OPODIS 2011).

The library contains four layers:

1. **Substrates** — a message-passing simulator in the paper's
   deterministic-state-machine model (:mod:`repro.simulation`), the
   Dolev–Dwork–Stockmeyer model lattice (:mod:`repro.models`), failure
   detectors (:mod:`repro.failure_detectors`) and the directed-graph
   machinery of Section VI (:mod:`repro.graphs`).
2. **Algorithms** — the FLP two-stage protocol and the paper's k-set
   agreement generalisation, the ``Sigma_{n-1}`` and ``(Sigma, Omega)``
   protocols behind Corollary 13, and a deliberately flawed candidate
   (:mod:`repro.algorithms`).
3. **The paper's contribution** — Theorem 1 and its conditions,
   T-independence, restriction, indistinguishability, the closed-form
   borders and certificates (:mod:`repro.core`), plus the proof-specific
   partitions and run-pasting constructions (:mod:`repro.partitioning`).
4. **Analysis** — sweeps, bounded exploration and reporting used by the
   benchmark harness (:mod:`repro.analysis`).
5. **Campaigns** — the parallel scenario-campaign engine
   (:mod:`repro.campaign`): declarative scenario grids with deterministic
   per-scenario seeding, executed serially or across worker processes
   with identical results; plus the persistent result store
   (:mod:`repro.store`): content-addressed caching, kill/resume,
   adaptive budgets and pool-wide live progress for long campaigns.

Quickstart::

    from repro import (
        KSetInitialCrash, initial_crash_model, execute, KSetAgreementProblem,
    )

    n, f = 6, 3
    model = initial_crash_model(n, f)
    algorithm = KSetInitialCrash(n, f)
    run = execute(algorithm, model, {p: p for p in model.processes})
    report = KSetAgreementProblem(k=2).evaluate(run)
    assert report.all_ok
"""

from repro.types import UNDECIDED, ProcessId, ProcessSet, Value, Verdict
from repro.exceptions import (
    AgreementViolation,
    ConfigurationError,
    PropertyViolation,
    ReproError,
    TerminationViolation,
    ValidityViolation,
)

from repro.models import (
    FailureAssumption,
    SystemModel,
    SystemModelSpec,
    asynchronous_model,
    consensus_verdict,
    initial_crash_model,
    partially_synchronous_model,
)

from repro.failure_detectors import (
    FailurePattern,
    OmegaK,
    PartitionDetector,
    RecordedHistory,
    SigmaK,
    sigma_omega_k,
    verify_lemma9,
)

from repro.algorithms import (
    Algorithm,
    DecideOwnValue,
    FLPConsensus,
    FlawedQuorumKSet,
    KSetInitialCrash,
    RestrictedAlgorithm,
    SigmaKSetAgreement,
    SigmaOmegaConsensus,
)

from repro.simulation import (
    ExecutionSettings,
    IsolationAdversary,
    LazyAdversaryView,
    PartitioningAdversary,
    RandomScheduler,
    RecordingPolicy,
    RoundRobinScheduler,
    Run,
    SilenceAdversary,
    execute,
)

from repro.core import (
    BorderVerdict,
    ImpossibilityCertificate,
    ImpossibilityWitness,
    KSetAgreementProblem,
    PartitionSpec,
    PossibilityCertificate,
    PropertyReport,
    TheoremOneApplication,
    check_independence,
    corollary13_verdict,
    f_resilient_family,
    indistinguishable_until_decision,
    restrict,
    runs_compatible,
    theorem2_verdict,
    theorem8_verdict,
    wait_free_family,
)

from repro.partitioning import (
    Theorem2Scenario,
    Theorem8BorderScenario,
    Theorem10Scenario,
    paste_runs,
    theorem2_partition,
    theorem10_partition,
    verify_pasting,
)

from repro.graphs import (
    DiGraph,
    lemma6_bound,
    source_components,
    verify_lemma6,
    verify_lemma7,
)

from repro.campaign import (
    CampaignResult,
    CampaignRunner,
    ScenarioGrid,
    ScenarioOutcome,
    ScenarioSpec,
)

__version__ = "1.0.0"

__all__ = [
    # types & errors
    "UNDECIDED",
    "ProcessId",
    "ProcessSet",
    "Value",
    "Verdict",
    "ReproError",
    "ConfigurationError",
    "PropertyViolation",
    "AgreementViolation",
    "ValidityViolation",
    "TerminationViolation",
    # models
    "FailureAssumption",
    "SystemModel",
    "SystemModelSpec",
    "asynchronous_model",
    "partially_synchronous_model",
    "initial_crash_model",
    "consensus_verdict",
    # failure detectors
    "FailurePattern",
    "RecordedHistory",
    "SigmaK",
    "OmegaK",
    "PartitionDetector",
    "sigma_omega_k",
    "verify_lemma9",
    # algorithms
    "Algorithm",
    "RestrictedAlgorithm",
    "DecideOwnValue",
    "FLPConsensus",
    "KSetInitialCrash",
    "SigmaKSetAgreement",
    "SigmaOmegaConsensus",
    "FlawedQuorumKSet",
    # simulation
    "execute",
    "ExecutionSettings",
    "RecordingPolicy",
    "LazyAdversaryView",
    "Run",
    "RoundRobinScheduler",
    "RandomScheduler",
    "PartitioningAdversary",
    "IsolationAdversary",
    "SilenceAdversary",
    # core
    "KSetAgreementProblem",
    "PropertyReport",
    "PartitionSpec",
    "TheoremOneApplication",
    "ImpossibilityWitness",
    "ImpossibilityCertificate",
    "PossibilityCertificate",
    "BorderVerdict",
    "theorem2_verdict",
    "theorem8_verdict",
    "corollary13_verdict",
    "restrict",
    "indistinguishable_until_decision",
    "runs_compatible",
    "check_independence",
    "wait_free_family",
    "f_resilient_family",
    # partitioning
    "Theorem2Scenario",
    "Theorem8BorderScenario",
    "Theorem10Scenario",
    "theorem2_partition",
    "theorem10_partition",
    "paste_runs",
    "verify_pasting",
    # campaigns
    "ScenarioSpec",
    "ScenarioOutcome",
    "ScenarioGrid",
    "CampaignRunner",
    "CampaignResult",
    # graphs
    "DiGraph",
    "source_components",
    "lemma6_bound",
    "verify_lemma6",
    "verify_lemma7",
    "__version__",
]
