"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from violations of
the distributed-computing model discovered at simulation time.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ModelError",
    "AdmissibilityError",
    "SimulationError",
    "StaleViewError",
    "TraceUnavailableError",
    "ScheduleExhaustedError",
    "AlgorithmError",
    "FailureDetectorError",
    "PropertyViolation",
    "AgreementViolation",
    "ValidityViolation",
    "TerminationViolation",
    "PartitionError",
    "CertificateError",
]


class ReproError(Exception):
    """Base class of all exceptions raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A user-supplied parameter combination is inconsistent.

    Examples: a partition that does not cover the requested process set,
    ``k < 1``, ``f >= n`` for an algorithm that needs at least one correct
    process, or a failure-detector parameter outside ``1 <= k <= n - 1``.
    """


class ModelError(ReproError):
    """A system model was used in a way its definition does not allow."""


class AdmissibilityError(ModelError):
    """A constructed run violates the admissibility conditions of its model.

    Raised by the executor when an adversary asks for a step that the
    model forbids (for instance, letting a crashed process take a step, or
    withholding a message from a correct receiver forever in ``M_ASYNC``).
    """


class SimulationError(ReproError):
    """The simulation engine reached an internal inconsistency."""


class StaleViewError(SimulationError):
    """An adversary used a lazy view after the step it was issued for.

    The executor hands adversaries a zero-copy
    :class:`repro.simulation.scheduler.LazyAdversaryView` that reads the
    *live* execution state.  The view is only valid while the adversary's
    ``next_step`` call for that step is running; retaining it and reading
    it later would silently observe future state, so every access after
    the step raises this error instead.
    """


class TraceUnavailableError(SimulationError):
    """A run query needs trace data its recording policy did not keep.

    Runs executed under ``RecordingPolicy.DECISIONS_ONLY`` or
    ``RecordingPolicy.VERDICT_ONLY`` skip per-step event construction;
    queries that need the step events (state sequences, per-step message
    logs, ...) raise this error rather than silently returning an empty
    trace.  Re-run with ``RecordingPolicy.FULL`` to get the full trace.
    """


class ScheduleExhaustedError(SimulationError):
    """A run hit its step budget before the stopping condition was met.

    The partially built :class:`repro.simulation.run.Run` is attached as the
    ``partial_run`` attribute so callers can inspect how far the execution
    got before the budget ran out.
    """

    def __init__(self, message: str, partial_run=None):
        super().__init__(message)
        self.partial_run = partial_run


class AlgorithmError(ReproError):
    """An algorithm implementation broke the step contract.

    Typical causes: returning a state for a different process id, changing
    a write-once decision, or sending a message on behalf of another
    process.
    """


class FailureDetectorError(ReproError):
    """A failure-detector history violates the class it claims to satisfy."""


class PropertyViolation(ReproError):
    """Base class for violations of the k-set agreement properties.

    These exceptions double as *findings*: the impossibility benchmarks
    deliberately drive algorithms into schedules where a violation is
    expected, catch the exception and record it as the reproduced result.
    """

    def __init__(self, message: str, run=None):
        super().__init__(message)
        self.run = run


class AgreementViolation(PropertyViolation):
    """More than ``k`` distinct decision values were observed in a run."""


class ValidityViolation(PropertyViolation):
    """A process decided a value that no process proposed."""


class TerminationViolation(PropertyViolation):
    """A correct process failed to decide within the allotted schedule."""


class PartitionError(ReproError):
    """A partition construction required by a proof scenario is infeasible."""


class CertificateError(ReproError):
    """A possibility/impossibility certificate failed verification."""
