"""Restriction of algorithms and models (Definition 1, Section II-B).

``restrict`` bundles the two halves of the paper's restriction operation:
given an algorithm ``A`` designed for the model ``M = <Pi>`` and a
nonempty subset ``D`` of the processes, it returns the restricted
algorithm ``A|D`` (same code, messages to ``Pi \\ D`` dropped) together
with a restricted model ``M' = <D>`` whose synchrony spec is inherited but
whose failure assumption and failure detector are chosen by the caller —
the paper stresses that the restriction "does not imply anything about the
synchrony assumptions which hold in M'", and its proofs pick these
deliberately (e.g. "at most one process can crash in M'" for Theorem 2's
condition (C)).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.algorithms.base import Algorithm, RestrictedAlgorithm
from repro.models.model import FailureAssumption, SystemModel

__all__ = ["restrict"]


def restrict(
    algorithm: Algorithm,
    model: SystemModel,
    subset: Iterable[int],
    *,
    failures: Optional[FailureAssumption] = None,
    failure_detector: Optional[object] = None,
    model_name: Optional[str] = None,
) -> Tuple[RestrictedAlgorithm, SystemModel]:
    """Return ``(A|D, <D>)`` for ``D = subset``.

    Parameters
    ----------
    algorithm:
        The algorithm ``A`` designed for ``model``.
    model:
        The original model ``M = <Pi>``.
    subset:
        The nonempty process subset ``D``.
    failures:
        Failure assumption of the restricted model (default: inherited,
        capped at ``|D| - 1``).
    failure_detector:
        Failure detector of the restricted model (default: none).
    model_name:
        Optional explicit name of the restricted model.
    """
    members = tuple(sorted(set(subset)))
    restricted_algorithm = RestrictedAlgorithm(algorithm, model.processes, members)
    restricted_model = model.restrict(
        members,
        name=model_name,
        failures=failures,
        failure_detector=failure_detector,
    )
    return restricted_algorithm, restricted_model
