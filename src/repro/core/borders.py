"""Closed-form solvability borders: Theorem 2, Theorem 8, Corollary 13.

The quantitative content of the paper is a set of borders in the
``(n, f, k)`` parameter space (and, for failure detectors, in ``(n, k)``):

* **Theorem 2 / Corollary 5** — with partially synchronous processes,
  asynchronous communication and ``f`` faults of which one may occur
  during the execution, k-set agreement is impossible whenever
  ``k <= (n - 1) / (n - f)``.
* **Theorem 8** — with up to ``f`` *initially dead* processes, k-set
  agreement is solvable **iff** ``k * n > (k + 1) * f`` (equivalently
  ``k > f / (n - f)``).
* **Corollary 13** — in an asynchronous system with the failure detector
  ``(Sigma_k, Omega_k)`` and up to ``n - 1`` crashes, k-set agreement is
  solvable **iff** ``k = 1`` or ``k = n - 1``.

The functions below return :class:`BorderVerdict` objects carrying the
verdict, the theorem it follows from and a one-line explanation; the
benchmark harness sweeps them against the simulated outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.exceptions import ConfigurationError
from repro.types import Verdict

__all__ = [
    "BorderVerdict",
    "theorem2_verdict",
    "theorem8_verdict",
    "corollary13_verdict",
    "initial_crash_border_f",
    "partially_synchronous_border_k",
]


@dataclass(frozen=True)
class BorderVerdict:
    """A solvability verdict for one parameter point.

    Attributes
    ----------
    verdict:
        ``SOLVABLE``, ``IMPOSSIBLE`` or ``UNKNOWN`` (the latter only where
        the paper makes no claim).
    source:
        The theorem the verdict follows from.
    explanation:
        One-line justification with the instantiated inequality.
    parameters:
        The parameter point the verdict refers to.
    """

    verdict: Verdict
    source: str
    explanation: str
    parameters: Dict[str, int]

    @property
    def is_solvable(self) -> bool:
        """``True`` when the verdict is ``SOLVABLE``."""
        return self.verdict is Verdict.SOLVABLE

    @property
    def is_impossible(self) -> bool:
        """``True`` when the verdict is ``IMPOSSIBLE``."""
        return self.verdict is Verdict.IMPOSSIBLE

    def __str__(self) -> str:
        return f"{self.verdict} ({self.source}): {self.explanation}"


def _validate(n: int, f: int, k: int) -> None:
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if not 0 <= f <= n:
        raise ConfigurationError(f"f must satisfy 0 <= f <= n, got f={f}, n={n}")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")


def theorem2_verdict(n: int, f: int, k: int) -> BorderVerdict:
    """The Theorem 2 / Corollary 5 verdict for partially synchronous processes.

    The model: synchronous processes, asynchronous communication, atomic
    broadcast steps, ``f - 1`` initial crashes plus at most one crash
    during the execution.  The theorem asserts impossibility for
    ``k <= (n - 1) / (n - f)``; for larger ``k`` (and ``k < n``) it makes
    no claim, and for ``k >= n`` the problem is trivially solvable without
    communication.
    """
    _validate(n, f, k)
    parameters = {"n": n, "f": f, "k": k}
    if k >= n:
        return BorderVerdict(
            Verdict.SOLVABLE,
            "trivial",
            f"k={k} >= n={n}: every process may decide its own proposal",
            parameters,
        )
    if f >= 1 and f < n and k * (n - f) <= n - 1:
        return BorderVerdict(
            Verdict.IMPOSSIBLE,
            "Theorem 2",
            f"k*(n-f) = {k * (n - f)} <= n-1 = {n - 1}: the partition into "
            f"{k - 1} blocks of size n-f={n - f} plus a remainder of size >= "
            f"{n - f + 1} satisfies conditions (A)-(D) of Theorem 1",
            parameters,
        )
    return BorderVerdict(
        Verdict.UNKNOWN,
        "Theorem 2",
        f"k*(n-f) = {k * (n - f)} > n-1 = {n - 1}: Theorem 2 makes no claim "
        "for this parameter point (see Theorem 8 for the initial-crash model)",
        parameters,
    )


def theorem8_verdict(n: int, f: int, k: int) -> BorderVerdict:
    """The Theorem 8 verdict for asynchronous systems with initial crashes.

    Solvable iff ``k * n > (k + 1) * f``; the possibility side is realised
    by :class:`repro.algorithms.kset_initial_crash.KSetInitialCrash`, the
    impossibility side by the (k+1)-group partitioning argument of
    Section VI.
    """
    _validate(n, f, k)
    parameters = {"n": n, "f": f, "k": k}
    if k * n > (k + 1) * f:
        return BorderVerdict(
            Verdict.SOLVABLE,
            "Theorem 8",
            f"k*n = {k * n} > (k+1)*f = {(k + 1) * f}: the Section VI protocol "
            f"with threshold L=n-f={n - f} decides at most "
            f"floor(n/(n-f)) = {n // (n - f) if n > f else n} values",
            parameters,
        )
    return BorderVerdict(
        Verdict.IMPOSSIBLE,
        "Theorem 8",
        f"k*n = {k * n} <= (k+1)*f = {(k + 1) * f}: the system can be split "
        f"into k+1 = {k + 1} groups that each decide their own value",
        parameters,
    )


def corollary13_verdict(n: int, k: int) -> BorderVerdict:
    """The Corollary 13 verdict for ``(Sigma_k, Omega_k)``-augmented systems.

    For ``1 <= k <= n - 1`` and up to ``n - 1`` crashes: solvable iff
    ``k = 1`` or ``k = n - 1``; impossible for ``2 <= k <= n - 2``
    (Theorem 10).  For ``k >= n`` the problem is trivially solvable.
    """
    if n < 2:
        raise ConfigurationError(f"the failure-detector setting needs n >= 2, got {n}")
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k}")
    parameters = {"n": n, "k": k}
    if k >= n:
        return BorderVerdict(
            Verdict.SOLVABLE,
            "trivial",
            f"k={k} >= n={n}: every process may decide its own proposal",
            parameters,
        )
    if k == 1:
        return BorderVerdict(
            Verdict.SOLVABLE,
            "Corollary 13",
            "(Sigma, Omega) is sufficient (and necessary) for consensus",
            parameters,
        )
    if k == n - 1:
        return BorderVerdict(
            Verdict.SOLVABLE,
            "Corollary 13",
            f"Sigma_{n - 1} alone suffices for (n-1)-set agreement",
            parameters,
        )
    return BorderVerdict(
        Verdict.IMPOSSIBLE,
        "Theorem 10",
        f"2 <= k={k} <= n-2={n - 2}: the partition detector (Sigma'_k, Omega'_k) "
        "admits k-way partitioning histories while consensus remains unsolvable "
        "in the remainder block",
        parameters,
    )


def initial_crash_border_f(n: int, k: int) -> int:
    """The largest ``f`` for which k-set agreement with initial crashes is solvable.

    By Theorem 8 this is the largest ``f`` with ``(k + 1) * f < k * n``,
    i.e. ``f_max = ceil(k * n / (k + 1)) - 1``.

    >>> initial_crash_border_f(6, 2)
    3
    """
    if n < 1 or k < 1:
        raise ConfigurationError("n and k must be >= 1")
    return (k * n - 1) // (k + 1)


def partially_synchronous_border_k(n: int, f: int) -> int:
    """The smallest ``k`` not covered by Theorem 2's impossibility.

    Theorem 2 rules out every ``k <= (n - 1) / (n - f)``; the returned
    value is ``floor((n - 1) / (n - f)) + 1``.

    >>> partially_synchronous_border_k(4, 2)
    2
    """
    if n < 1 or not 1 <= f < n:
        raise ConfigurationError("need n >= 1 and 1 <= f < n")
    return (n - 1) // (n - f) + 1
