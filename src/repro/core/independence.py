"""T-independence (Definition 6) and the classic progress conditions.

Definition 6 of the paper: an algorithm ``A`` satisfies *T-independence*
in a model ``M`` — for a family ``T`` of process sets — when for every
``S`` in ``T`` there is a run of ``A`` in ``M`` in which the processes of
``S`` only receive messages from other processes of ``S`` until every
member of ``S`` has decided or crashed.  (*Strong* T-independence requires
such runs where this only holds eventually; since every run witnessing the
plain property also witnesses the strong one restricted "from the start",
Observation 1(a) gives strong => plain, and the library checks the plain
property.)

Section IV expresses the classic progress conditions in this vocabulary;
the family constructors below mirror that list:

* wait-freedom         — all nonempty subsets of ``Pi``,
* obstruction-freedom  — all singletons,
* f-resilience         — all subsets of size at least ``n - f``,
* wait-freedom of a single process ``p`` — all subsets containing ``p``.

``check_independence`` verifies the property *constructively*: for every
``S`` it runs the algorithm under the isolation schedule (only members of
``S`` take steps, only intra-``S`` messages are delivered) and reports
whether every correct member of ``S`` decided without hearing from the
outside.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.algorithms.base import Algorithm
from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern
from repro.models.model import SystemModel
from repro.simulation.adversary import IsolationAdversary
from repro.simulation.executor import ExecutionSettings, execute, group_decided
from repro.simulation.run import Run
from repro.types import ProcessId, Value

__all__ = [
    "wait_free_family",
    "obstruction_free_family",
    "f_resilient_family",
    "asymmetric_family",
    "IndependenceWitness",
    "check_independence",
]


def wait_free_family(processes: Sequence[ProcessId]) -> Iterator[FrozenSet[ProcessId]]:
    """All nonempty subsets of the process set (wait-freedom, ``2^Pi``)."""
    members = tuple(sorted(set(processes)))
    for size in range(1, len(members) + 1):
        for combo in itertools.combinations(members, size):
            yield frozenset(combo)


def obstruction_free_family(processes: Sequence[ProcessId]) -> Iterator[FrozenSet[ProcessId]]:
    """All singletons (obstruction-freedom)."""
    for pid in sorted(set(processes)):
        yield frozenset({pid})


def f_resilient_family(
    processes: Sequence[ProcessId], f: int
) -> Iterator[FrozenSet[ProcessId]]:
    """All subsets of size at least ``n - f`` (f-resilience)."""
    members = tuple(sorted(set(processes)))
    if f < 0 or f > len(members):
        raise ConfigurationError(f"f must satisfy 0 <= f <= n, got f={f}, n={len(members)}")
    minimum = len(members) - f
    for size in range(max(minimum, 1), len(members) + 1):
        for combo in itertools.combinations(members, size):
            yield frozenset(combo)


def asymmetric_family(
    processes: Sequence[ProcessId], pivot: ProcessId
) -> Iterator[FrozenSet[ProcessId]]:
    """All subsets containing ``pivot`` (wait-freedom of a single process)."""
    members = tuple(sorted(set(processes)))
    if pivot not in members:
        raise ConfigurationError(f"pivot p{pivot} is not a process of the system")
    rest = tuple(p for p in members if p != pivot)
    for size in range(0, len(rest) + 1):
        for combo in itertools.combinations(rest, size):
            yield frozenset((pivot,) + combo)


@dataclass(frozen=True)
class IndependenceWitness:
    """The outcome of checking one set ``S`` of the family.

    ``holds`` is ``True`` when the constructed isolation run shows the
    required run exists: every correct member of ``S`` decided without
    receiving a message from outside ``S``.
    """

    subset: FrozenSet[ProcessId]
    holds: bool
    run: Run
    reason: str = ""


def check_independence(
    algorithm: Algorithm,
    model: SystemModel,
    family: Iterable[Iterable[ProcessId]],
    proposals: Mapping[ProcessId, Value],
    *,
    failure_pattern: Optional[FailurePattern] = None,
    max_steps: int = 5_000,
) -> List[IndependenceWitness]:
    """Check T-independence of ``algorithm`` in ``model`` for ``family``.

    For every set ``S`` of the family, the algorithm is executed under the
    isolation schedule for ``S`` (members of ``S`` run fair round-robin
    among themselves; nobody else takes a step, no message crosses into
    ``S``); the witness records whether every correct member of ``S``
    decided this way.  The runs are genuine runs of the (unrestricted)
    algorithm in the (unrestricted) model — exactly what Definition 6
    quantifies over.
    """
    witnesses: List[IndependenceWitness] = []
    for subset in family:
        members = frozenset(subset)
        if not members or not members.issubset(set(model.processes)):
            raise ConfigurationError(
                f"family member {sorted(members)} is not a nonempty subset of the model"
            )
        pattern = failure_pattern or FailurePattern.all_correct(model.processes)
        run = execute(
            algorithm,
            model,
            proposals,
            adversary=IsolationAdversary(members),
            failure_pattern=pattern,
            settings=ExecutionSettings(
                max_steps=max_steps,
                stop_condition=group_decided(members),
            ),
        )
        decided_needed = members & run.correct_processes()
        all_decided = decided_needed.issubset(run.decided_processes())
        leaked = {
            pid: run.received_before_decision(pid) - members
            for pid in members
            if run.received_before_decision(pid) - members
        }
        holds = all_decided and not leaked
        if not all_decided:
            reason = (
                f"correct members {sorted(decided_needed - run.decided_processes())} "
                f"did not decide in isolation within {max_steps} steps"
            )
        elif leaked:
            reason = f"members received messages from outside S: {leaked}"
        else:
            reason = "isolation run exists and every correct member decided"
        witnesses.append(
            IndependenceWitness(subset=members, holds=holds, run=run, reason=reason)
        )
    return witnesses
