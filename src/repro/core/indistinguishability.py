"""Indistinguishability (Definition 2) and compatibility (Definition 3).

The paper uses a notion of similarity that is slightly weaker than the
textbook one: two runs are *indistinguishable until decision* for a
process ``p`` when ``p`` goes through the same sequence of states in both
runs up to (and including) the state in which it decides.  The notation
``alpha ~_D beta`` means the runs are indistinguishable for every process
of ``D``.  A set of runs ``R'`` is *compatible* with a set ``R`` for the
processes in ``D`` (written ``R' <=_D R``) when every run of ``R'`` has an
indistinguishable counterpart in ``R``.

States are compared structurally (the algorithm states are frozen
dataclasses), which matches the paper's deterministic-state-machine model:
equal inputs produce equal states.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.simulation.run import Run
from repro.types import ProcessId

__all__ = [
    "indistinguishable_until_decision",
    "distinguishing_processes",
    "runs_compatible",
]


def _sequence_until_decision(run: Run, pid: ProcessId):
    return run.state_sequence(pid, until_decision=True)


def indistinguishable_until_decision(
    alpha: Run, beta: Run, processes: Iterable[ProcessId]
) -> bool:
    """Check ``alpha ~_D beta`` for ``D = processes`` (Definition 2).

    For every process of ``D``, its sequence of states up to its decision
    must be identical in both runs.  A process that never decides in either
    run must have identical full recorded sequences — the conservative
    reading; the paper's constructions only ever compare processes that do
    decide.
    """
    return not distinguishing_processes(alpha, beta, processes)


def distinguishing_processes(
    alpha: Run, beta: Run, processes: Iterable[ProcessId]
) -> Tuple[ProcessId, ...]:
    """Return the processes of ``D`` for which the two runs differ.

    Empty tuple means the runs are indistinguishable (until decision) for
    every process of ``D``.
    """
    differing: List[ProcessId] = []
    for pid in sorted(set(processes)):
        seq_a = _sequence_until_decision(alpha, pid)
        seq_b = _sequence_until_decision(beta, pid)
        if _decided(seq_a) and _decided(seq_b):
            if seq_a != seq_b:
                differing.append(pid)
        else:
            # At least one run never decides for this process: compare the
            # common prefix (a finite prefix can never witness a difference
            # beyond its own length) and require the shorter to be a prefix
            # of the longer.
            shorter, longer = sorted((seq_a, seq_b), key=len)
            if longer[: len(shorter)] != shorter:
                differing.append(pid)
    return tuple(differing)


def _decided(sequence) -> bool:
    return bool(sequence) and sequence[-1].has_decided


def runs_compatible(
    candidate_runs: Sequence[Run],
    reference_runs: Sequence[Run],
    processes: Iterable[ProcessId],
) -> Tuple[bool, Dict[int, Optional[int]]]:
    """Check ``R' <=_D R`` (Definition 3) for finite sets of recorded runs.

    Returns ``(holds, matching)`` where ``matching`` maps the index of every
    candidate run to the index of an indistinguishable reference run (or
    ``None`` when no counterpart exists).  ``holds`` is ``True`` when every
    candidate found a counterpart.

    The paper's Definition 3 quantifies over the full (usually infinite)
    run sets of a model; the executable check necessarily works on the
    finite collections the benchmarks construct, which is exactly how the
    paper's proofs use it — they exhibit, for each run of interest, one
    matching run built by an explicit construction.
    """
    process_set = tuple(sorted(set(processes)))
    matching: Dict[int, Optional[int]] = {}
    holds = True
    for i, candidate in enumerate(candidate_runs):
        found: Optional[int] = None
        for j, reference in enumerate(reference_runs):
            if indistinguishable_until_decision(candidate, reference, process_set):
                found = j
                break
        matching[i] = found
        if found is None:
            holds = False
    return holds, matching
