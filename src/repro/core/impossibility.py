"""Theorem 1: the generic k-set agreement impossibility machinery.

Theorem 1 of the paper is a *template*: given a k-set agreement algorithm
``A`` for a model ``M = <Pi>``, disjoint process sets ``D_1, ...,
D_{k-1}`` with union ``D`` and remainder ``D-bar = Pi \\ D``, it derives a
contradiction from four conditions:

* **(A)** the set ``R(D)`` of runs satisfying (dec-D) — every ``D_i``
  contains a process deciding a distinct value proposed within ``D`` —
  is nonempty;
* **(B)** ``R(D)`` is compatible (for the processes of ``D-bar``) with the
  runs ``R(D, D-bar)`` that additionally satisfy (dec-D-bar) — no process
  of ``D-bar`` hears from ``D`` before all of ``D-bar`` decided;
* **(C)** consensus is unsolvable in a restricted model ``M' = <D-bar>``;
* **(D)** every run of the restricted algorithm ``A|D-bar`` in ``M'`` has
  an indistinguishable (for ``D-bar``) counterpart among the runs of ``A``
  in ``M``.

If all four hold, ``A`` cannot solve k-set agreement in ``M``.

An impossibility theorem quantifies over all runs and all algorithms and
cannot be *verified* by finite simulation; what this module does — and what
the paper's own applications (Theorems 2 and 10) do — is *construct the
witnesses* the conditions ask for, for a concrete algorithm:

* condition (A)/(B): execute the algorithm under the partitioning
  adversary, check (dec-D) and (dec-D-bar) on the recorded run, and verify
  compatibility on the constructed run sets;
* condition (C): consult the consensus-impossibility catalogue for the
  restricted model, or accept an explicit justification (Theorem 10's
  argument via the weakest failure detector for consensus);
* condition (D): execute ``A|D-bar`` in ``M'`` and the full algorithm in
  ``M`` with ``D`` initially dead under the same schedule, and check
  Definition 2 indistinguishability for the processes of ``D-bar``.

The result is an :class:`ImpossibilityWitness`: a machine-checked record
that the Theorem 1 template applies to this algorithm, partition and
model.  The same machinery doubles as the "vetting tool" described in the
paper's remarks — condition (A) being constructible is already strong
evidence that a candidate algorithm is flawed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.algorithms.base import Algorithm
from repro.core.indistinguishability import (
    distinguishing_processes,
    runs_compatible,
)
from repro.core.restriction import restrict
from repro.exceptions import ConfigurationError, PartitionError
from repro.failure_detectors.base import FailurePattern
from repro.models.catalog import consensus_verdict
from repro.models.model import FailureAssumption, SystemModel
from repro.simulation.adversary import PartitioningAdversary
from repro.simulation.executor import ExecutionSettings, execute
from repro.simulation.run import Run
from repro.simulation.scheduler import RoundRobinScheduler
from repro.types import ProcessId, Value, Verdict

__all__ = [
    "PartitionSpec",
    "ConditionReport",
    "ImpossibilityWitness",
    "TheoremOneApplication",
]


@dataclass(frozen=True)
class PartitionSpec:
    """The partition ``D_1, ..., D_{k-1}`` / ``D-bar`` of Theorem 1.

    ``d_blocks`` are the sets ``D_1 .. D_{k-1}``; everything else in
    ``processes`` forms ``D-bar``.  The implied k-set agreement parameter
    is ``k = len(d_blocks) + 1``.
    """

    processes: Tuple[ProcessId, ...]
    d_blocks: Tuple[FrozenSet[ProcessId], ...]

    def __post_init__(self) -> None:
        all_processes = set(self.processes)
        seen: set[ProcessId] = set()
        for block in self.d_blocks:
            if not block:
                raise PartitionError("the sets D_i must be nonempty")
            if not block.issubset(all_processes):
                raise PartitionError(
                    f"block {sorted(block)} contains processes outside the system"
                )
            if block & seen:
                raise PartitionError("the sets D_i must be pairwise disjoint")
            seen |= block
        if not (all_processes - seen):
            raise PartitionError("D-bar = Pi \\ D must be nonempty")

    @property
    def k(self) -> int:
        """The k-set agreement parameter the partition targets."""
        return len(self.d_blocks) + 1

    @property
    def d_union(self) -> FrozenSet[ProcessId]:
        """The union ``D`` of the blocks ``D_1 .. D_{k-1}``."""
        return frozenset().union(*self.d_blocks) if self.d_blocks else frozenset()

    @property
    def d_bar(self) -> FrozenSet[ProcessId]:
        """The remainder ``D-bar = Pi \\ D``."""
        return frozenset(self.processes) - self.d_union

    def all_blocks(self) -> Tuple[FrozenSet[ProcessId], ...]:
        """The full partition ``D_1, ..., D_{k-1}, D-bar``."""
        return self.d_blocks + (self.d_bar,)

    def describe(self) -> str:
        """Human-readable rendering of the partition."""
        blocks = ", ".join(
            "D%d={%s}" % (i + 1, ",".join(f"p{p}" for p in sorted(block)))
            for i, block in enumerate(self.d_blocks)
        )
        dbar = ",".join(f"p{p}" for p in sorted(self.d_bar))
        return f"{blocks}; D-bar={{{dbar}}} (k={self.k})"


@dataclass(frozen=True)
class ConditionReport:
    """Outcome of checking one of the conditions (A)-(D)."""

    condition: str
    satisfied: bool
    details: str
    runs: Tuple[Run, ...] = ()


@dataclass(frozen=True)
class ImpossibilityWitness:
    """The assembled application of Theorem 1 to one concrete algorithm."""

    algorithm_name: str
    model_name: str
    partition: PartitionSpec
    reports: Tuple[ConditionReport, ...]
    conclusion: str

    @property
    def holds(self) -> bool:
        """``True`` when all four conditions were established."""
        return all(report.satisfied for report in self.reports)

    def report(self, condition: str) -> ConditionReport:
        """Return the report for condition ``"A"``, ``"B"``, ``"C"`` or ``"D"``."""
        for entry in self.reports:
            if entry.condition == condition:
                return entry
        raise KeyError(condition)

    def describe(self) -> str:
        """Multi-line rendering used by examples and benchmarks."""
        lines = [
            f"Theorem 1 applied to {self.algorithm_name} in {self.model_name}",
            f"  partition: {self.partition.describe()}",
        ]
        for entry in self.reports:
            status = "satisfied" if entry.satisfied else "NOT satisfied"
            lines.append(f"  condition ({entry.condition}): {status} — {entry.details}")
        lines.append(f"  conclusion: {self.conclusion}")
        return "\n".join(lines)


class TheoremOneApplication:
    """Apply the Theorem 1 template to a concrete algorithm and partition.

    Parameters
    ----------
    algorithm:
        The purported k-set agreement algorithm ``A``.
    model:
        The model ``M = <Pi>`` (with its failure detector, if any).
    partition:
        The partition ``D_1 .. D_{k-1}`` / ``D-bar``.
    proposals:
        Distinct proposals (Theorem 1 considers runs in which every process
        starts with a distinct input value); defaults to ``{p: p}``.
    restricted_failures:
        Failure assumption of the restricted model ``M' = <D-bar>``
        (defaults to "at most one crash", the Theorem 2 choice).
    condition_c_justification:
        Optional textual justification that consensus is unsolvable in
        ``M'`` when the encoded catalogue does not cover the model (e.g.
        Theorem 10's argument that the restricted detector is too weak).
    max_steps:
        Step budget for every constructed run.
    """

    def __init__(
        self,
        algorithm: Algorithm,
        model: SystemModel,
        partition: PartitionSpec,
        *,
        proposals: Optional[Mapping[ProcessId, Value]] = None,
        restricted_failures: Optional[FailureAssumption] = None,
        condition_c_justification: Optional[str] = None,
        max_steps: int = 20_000,
    ):
        if tuple(sorted(partition.processes)) != tuple(sorted(model.processes)):
            raise ConfigurationError(
                "the partition must range over exactly the model's processes"
            )
        self.algorithm = algorithm
        self.model = model
        self.partition = partition
        self.proposals: Dict[ProcessId, Value] = dict(
            proposals if proposals is not None else {p: p for p in model.processes}
        )
        if len(set(self.proposals.values())) != len(self.proposals):
            raise ConfigurationError(
                "Theorem 1 considers runs with pairwise distinct proposals"
            )
        self.restricted_failures = restricted_failures or FailureAssumption(
            max_failures=1
        )
        self.condition_c_justification = condition_c_justification
        self.max_steps = max_steps

    # -- condition (A) ---------------------------------------------------------

    def check_condition_a(self) -> ConditionReport:
        """Construct a run witnessing (dec-D) — condition (A)."""
        run = self._partitioned_run()
        satisfied, details = self._dec_d_holds(run)
        return ConditionReport(
            condition="A",
            satisfied=satisfied,
            details=details,
            runs=(run,),
        )

    # -- condition (B) ---------------------------------------------------------

    def check_condition_b(self) -> ConditionReport:
        """Check compatibility ``R(D) <=_{D-bar} R(D, D-bar)`` on witnesses."""
        run = self._partitioned_run()
        dec_d, details_d = self._dec_d_holds(run)
        dec_dbar, details_dbar = self._dec_dbar_holds(run)
        if not dec_d:
            return ConditionReport(
                condition="B",
                satisfied=False,
                details=f"no witness for R(D): {details_d}",
                runs=(run,),
            )
        candidates = [run]
        references = [run] if dec_dbar else []
        holds, matching = runs_compatible(candidates, references, self.partition.d_bar)
        details = (
            "the partitioning run witnesses both (dec-D) and (dec-D-bar); every "
            "constructed R(D) run has an indistinguishable R(D, D-bar) counterpart "
            f"for D-bar (matching: {matching})"
            if holds
            else f"compatibility failed: {details_dbar}"
        )
        return ConditionReport(
            condition="B", satisfied=holds, details=details, runs=(run,)
        )

    # -- condition (C) ---------------------------------------------------------

    def restricted_model(self) -> SystemModel:
        """The restricted model ``M' = <D-bar>`` used for condition (C)/(D)."""
        _algorithm, model = restrict(
            self.algorithm,
            self.model,
            self.partition.d_bar,
            failures=self.restricted_failures,
            failure_detector=None,
            model_name=f"<D-bar> of {self.model.name}",
        )
        return model

    def check_condition_c(self) -> ConditionReport:
        """Establish that consensus is unsolvable in ``M' = <D-bar>``."""
        if self.condition_c_justification is not None:
            return ConditionReport(
                condition="C",
                satisfied=True,
                details=self.condition_c_justification,
            )
        model = self.restricted_model()
        verdict, entry = consensus_verdict(model)
        if verdict is Verdict.IMPOSSIBLE and entry is not None:
            return ConditionReport(
                condition="C",
                satisfied=True,
                details=f"{entry.statement} [{entry.reference}]",
            )
        return ConditionReport(
            condition="C",
            satisfied=False,
            details=(
                "the consensus-impossibility catalogue does not certify "
                f"impossibility for {model.describe()}"
            ),
        )

    # -- condition (D) ---------------------------------------------------------

    def check_condition_d(self) -> ConditionReport:
        """Match a run of ``A|D-bar`` in ``M'`` with an indistinguishable run in ``M``."""
        d_bar = self.partition.d_bar
        restricted_algorithm, restricted_model = restrict(
            self.algorithm,
            self.model,
            d_bar,
            failures=self.restricted_failures,
            failure_detector=self.model.failure_detector,
            model_name=f"<D-bar> of {self.model.name}",
        )
        restricted_proposals = {p: self.proposals[p] for p in restricted_model.processes}
        restricted_run = execute(
            restricted_algorithm,
            restricted_model,
            restricted_proposals,
            adversary=RoundRobinScheduler(),
            settings=ExecutionSettings(max_steps=self.max_steps),
        )

        d_union = self.partition.d_union
        if len(d_union) > self.model.failures.max_failures:
            return ConditionReport(
                condition="D",
                satisfied=False,
                details=(
                    f"|D| = {len(d_union)} exceeds the failure bound "
                    f"f = {self.model.failures.max_failures}, so the 'D initially "
                    "dead' construction is not available in M"
                ),
                runs=(restricted_run,),
            )
        pattern = FailurePattern.initially_dead(self.model.processes, d_union)
        full_run = execute(
            self.algorithm,
            self.model,
            self.proposals,
            adversary=RoundRobinScheduler(),
            failure_pattern=pattern,
            settings=ExecutionSettings(max_steps=self.max_steps),
        )
        differing = distinguishing_processes(restricted_run, full_run, d_bar)
        satisfied = not differing
        details = (
            "the run of A|D-bar in <D-bar> and the run of A in M with D initially "
            "dead are indistinguishable (until decision) for every process of D-bar"
            if satisfied
            else f"state sequences differ for processes {sorted(differing)}"
        )
        return ConditionReport(
            condition="D",
            satisfied=satisfied,
            details=details,
            runs=(restricted_run, full_run),
        )

    # -- assembly ----------------------------------------------------------------

    def apply(self) -> ImpossibilityWitness:
        """Check all four conditions and assemble the witness."""
        reports = (
            self.check_condition_a(),
            self.check_condition_b(),
            self.check_condition_c(),
            self.check_condition_d(),
        )
        holds = all(r.satisfied for r in reports)
        k = self.partition.k
        if holds:
            conclusion = (
                f"Theorem 1 applies: {self.algorithm.name} does not solve "
                f"{k}-set agreement in {self.model.name}"
            )
        else:
            failed = ", ".join(r.condition for r in reports if not r.satisfied)
            conclusion = (
                f"conditions ({failed}) could not be established; Theorem 1 does "
                "not apply to this algorithm/partition/model combination"
            )
        return ImpossibilityWitness(
            algorithm_name=self.algorithm.name,
            model_name=self.model.name,
            partition=self.partition,
            reports=reports,
            conclusion=conclusion,
        )

    # -- helpers -------------------------------------------------------------------

    def _partitioned_run(self) -> Run:
        """Execute the algorithm under the partitioning adversary."""
        adversary = PartitioningAdversary(self.partition.all_blocks())
        return execute(
            self.algorithm,
            self.model,
            self.proposals,
            adversary=adversary,
            settings=ExecutionSettings(max_steps=self.max_steps),
        )

    def _dec_d_holds(self, run: Run) -> Tuple[bool, str]:
        """Check property (dec-D) on a recorded run."""
        decisions = run.decisions()
        proposals_in_d = {self.proposals[p] for p in self.partition.d_union}
        chosen_values: List[Value] = []
        for index, block in enumerate(self.partition.d_blocks, start=1):
            block_decisions = {
                decisions[p] for p in block if p in decisions
            } & proposals_in_d
            fresh = [v for v in block_decisions if v not in chosen_values]
            if not fresh:
                return (
                    False,
                    f"no process of D_{index} decided a fresh value proposed in D "
                    f"(block decisions: {sorted(map(repr, block_decisions))})",
                )
            chosen_values.append(sorted(fresh, key=repr)[0])
        return (
            True,
            f"blocks D_1..D_{len(self.partition.d_blocks)} decided the distinct "
            f"values {[repr(v) for v in chosen_values]} proposed within D",
        )

    def _dec_dbar_holds(self, run: Run) -> Tuple[bool, str]:
        """Check property (dec-D-bar) on a recorded run."""
        d_union = self.partition.d_union
        offenders = {}
        for pid in self.partition.d_bar:
            heard = run.received_before_decision(pid) & d_union
            if heard:
                offenders[pid] = sorted(heard)
        if offenders:
            return False, f"processes of D-bar heard from D before deciding: {offenders}"
        undecided = self.partition.d_bar - run.decided_processes() - run.failure_pattern.faulty
        if undecided:
            return (
                False,
                f"processes of D-bar never decided in the constructed run: {sorted(undecided)}",
            )
        return True, "no process of D-bar heard from D before every process of D-bar decided"
