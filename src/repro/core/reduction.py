"""Fact 1: extracting a consensus protocol for ``<D-bar>`` from ``A``.

The heart of the Theorem 1 proof is a reduction: if ``A`` solves k-set
agreement in ``M`` and the conditions (A)/(B) hold, then in every run of
``R(D)`` the processes of ``D-bar`` must decide on a *common* value
(Fact 1) — because the processes of ``D`` already use up ``k - 1``
distinct values and ``A`` may not exceed ``k``.  Consequently the
restricted algorithm ``A|D-bar``, run in the restricted model
``M' = <D-bar>``, would solve consensus there, contradicting condition
(C).

This module makes the extraction executable: given ``A``, ``M`` and
``D-bar`` it returns the restricted algorithm/model pair, and
:func:`run_extracted_consensus` executes the extracted protocol and
evaluates the *consensus* (1-set agreement) properties on the resulting
run — which is how the benchmarks demonstrate "the would-be consensus
protocol" concretely.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple

from repro.algorithms.base import Algorithm, RestrictedAlgorithm
from repro.core.ksetagreement import KSetAgreementProblem, PropertyReport
from repro.core.restriction import restrict
from repro.failure_detectors.base import FailurePattern
from repro.models.model import FailureAssumption, SystemModel
from repro.simulation.executor import ExecutionSettings, execute
from repro.simulation.run import Run
from repro.simulation.scheduler import Adversary, RoundRobinScheduler
from repro.types import ProcessId, Value

__all__ = ["extract_consensus_protocol", "run_extracted_consensus"]


def extract_consensus_protocol(
    algorithm: Algorithm,
    model: SystemModel,
    d_bar: Iterable[ProcessId],
    *,
    failures: Optional[FailureAssumption] = None,
    failure_detector: Optional[object] = None,
) -> Tuple[RestrictedAlgorithm, SystemModel]:
    """Return the extracted consensus protocol ``(A|D-bar, <D-bar>)``.

    The failure assumption of the restricted model defaults to "at most one
    crash", which is the choice Theorem 2 makes for its condition (C); the
    Theorem 10 application passes its own assumption ("up to |D-bar| - 1
    crashes") and detector instead.
    """
    restricted_failures = failures or FailureAssumption(max_failures=1)
    return restrict(
        algorithm,
        model,
        d_bar,
        failures=restricted_failures,
        failure_detector=failure_detector,
        model_name=f"<D-bar> of {model.name}",
    )


def run_extracted_consensus(
    algorithm: Algorithm,
    model: SystemModel,
    d_bar: Iterable[ProcessId],
    proposals: Mapping[ProcessId, Value],
    *,
    adversary: Optional[Adversary] = None,
    failure_pattern: Optional[FailurePattern] = None,
    failures: Optional[FailureAssumption] = None,
    failure_detector: Optional[object] = None,
    max_steps: int = 20_000,
) -> Tuple[Run, PropertyReport]:
    """Execute the extracted protocol and evaluate consensus on the run.

    ``proposals`` may be given for the full system or only for ``D-bar``;
    only the ``D-bar`` entries are used.  Returns the recorded run and the
    consensus (``k = 1``) property report — which is how Fact 1 manifests
    on concrete runs: if ``A`` were a correct k-set agreement algorithm,
    the report would have to show agreement on a single value whenever the
    run corresponds to a member of ``R(D)``.
    """
    restricted_algorithm, restricted_model = extract_consensus_protocol(
        algorithm,
        model,
        d_bar,
        failures=failures,
        failure_detector=failure_detector,
    )
    restricted_proposals = {
        pid: proposals[pid] for pid in restricted_model.processes
    }
    run = execute(
        restricted_algorithm,
        restricted_model,
        restricted_proposals,
        adversary=adversary or RoundRobinScheduler(),
        failure_pattern=failure_pattern,
        settings=ExecutionSettings(max_steps=max_steps),
    )
    report = KSetAgreementProblem(k=1).evaluate(run, proposals=restricted_proposals)
    return run, report
