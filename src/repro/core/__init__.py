"""The paper's primary contribution, made executable.

* :mod:`repro.core.ksetagreement` — the k-set agreement problem and its
  three properties (k-agreement, validity, termination) evaluated on
  recorded runs,
* :mod:`repro.core.indistinguishability` — Definition 2
  (indistinguishability until decision) and Definition 3 (compatibility of
  run sets),
* :mod:`repro.core.restriction` — Definition 1 / Section II-B: the
  restricted algorithm ``A|D`` and the restricted model ``<D>``,
* :mod:`repro.core.independence` — T-independence (Definition 6) and the
  classic progress conditions expressed in it (Section IV),
* :mod:`repro.core.impossibility` — Theorem 1: the conditions (A)-(D), the
  machinery that constructs and checks witnesses for them on concrete
  algorithms, and the resulting impossibility conclusion,
* :mod:`repro.core.reduction` — "Fact 1": extraction of a consensus
  protocol for ``<D-bar>`` from a purported k-set agreement algorithm,
* :mod:`repro.core.borders` — the closed-form solvability borders of
  Theorem 2, Theorem 8 and Corollary 13,
* :mod:`repro.core.certificates` — machine-checkable possibility /
  impossibility certificates tying parameters, theorems and witnesses
  together.
"""

from repro.core.ksetagreement import (
    KSetAgreementProblem,
    PropertyReport,
    check_agreement,
    check_termination,
    check_validity,
)
from repro.core.indistinguishability import (
    indistinguishable_until_decision,
    distinguishing_processes,
    runs_compatible,
)
from repro.core.restriction import restrict
from repro.core.independence import (
    IndependenceWitness,
    f_resilient_family,
    obstruction_free_family,
    wait_free_family,
    asymmetric_family,
    check_independence,
)
from repro.core.impossibility import (
    PartitionSpec,
    ConditionReport,
    ImpossibilityWitness,
    TheoremOneApplication,
)
from repro.core.reduction import extract_consensus_protocol, run_extracted_consensus
from repro.core.borders import (
    BorderVerdict,
    theorem2_verdict,
    theorem8_verdict,
    corollary13_verdict,
    initial_crash_border_f,
    partially_synchronous_border_k,
)
from repro.core.certificates import (
    ImpossibilityCertificate,
    PossibilityCertificate,
)

__all__ = [
    "KSetAgreementProblem",
    "PropertyReport",
    "check_agreement",
    "check_termination",
    "check_validity",
    "indistinguishable_until_decision",
    "distinguishing_processes",
    "runs_compatible",
    "restrict",
    "IndependenceWitness",
    "f_resilient_family",
    "obstruction_free_family",
    "wait_free_family",
    "asymmetric_family",
    "check_independence",
    "PartitionSpec",
    "ConditionReport",
    "ImpossibilityWitness",
    "TheoremOneApplication",
    "extract_consensus_protocol",
    "run_extracted_consensus",
    "BorderVerdict",
    "theorem2_verdict",
    "theorem8_verdict",
    "corollary13_verdict",
    "initial_crash_border_f",
    "partially_synchronous_border_k",
    "ImpossibilityCertificate",
    "PossibilityCertificate",
]
