"""Machine-checkable possibility / impossibility certificates.

The benchmark harness does not merely print numbers; for every parameter
point it assembles a *certificate* tying together

* the parameter point and the closed-form verdict
  (:mod:`repro.core.borders`),
* the evidence gathered by simulation — property reports of algorithm runs
  on the possibility side, Theorem 1 witnesses or constructed violations on
  the impossibility side.

``verify()`` cross-checks the evidence against the claim and raises
:class:`repro.exceptions.CertificateError` on any mismatch, so a benchmark
that "passes" has actually validated the reproduced border point rather
than just executed code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core.borders import BorderVerdict
from repro.core.impossibility import ImpossibilityWitness
from repro.core.ksetagreement import PropertyReport
from repro.exceptions import CertificateError
from repro.types import Verdict

__all__ = ["PossibilityCertificate", "ImpossibilityCertificate"]


@dataclass(frozen=True)
class PossibilityCertificate:
    """Evidence that a parameter point is solvable.

    Attributes
    ----------
    claim:
        The closed-form verdict being certified (must be ``SOLVABLE``).
    algorithm_name:
        The algorithm whose runs provide the evidence.
    reports:
        Property reports of the runs exercised (all properties must hold).
    schedules:
        Human-readable descriptions of the schedules exercised.
    """

    claim: BorderVerdict
    algorithm_name: str
    reports: Tuple[PropertyReport, ...]
    schedules: Tuple[str, ...] = ()

    def verify(self) -> "PossibilityCertificate":
        """Check the evidence against the claim; return ``self`` on success."""
        if not self.claim.is_solvable:
            raise CertificateError(
                f"possibility certificate built for a non-solvable claim: {self.claim}"
            )
        if not self.reports:
            raise CertificateError("possibility certificate carries no runs")
        for index, report in enumerate(self.reports):
            if not report.all_ok:
                raise CertificateError(
                    f"run {index} of {self.algorithm_name} violates "
                    f"{self.claim.parameters}: {report.violations}"
                )
        return self

    def describe(self) -> str:
        """One-line summary used in benchmark output."""
        return (
            f"SOLVABLE {self.claim.parameters} via {self.algorithm_name}: "
            f"{len(self.reports)} run(s), all properties hold"
        )


@dataclass(frozen=True)
class ImpossibilityCertificate:
    """Evidence that a parameter point is impossible.

    Either a full Theorem 1 witness (all four conditions established for a
    representative algorithm) or a directly constructed violation — a
    property report exhibiting an agreement or termination violation of a
    representative algorithm under the adversarial schedule the proof
    prescribes — backs the claim.
    """

    claim: BorderVerdict
    witness: Optional[ImpossibilityWitness] = None
    violation_reports: Tuple[PropertyReport, ...] = ()
    note: str = ""

    def verify(self) -> "ImpossibilityCertificate":
        """Check the evidence against the claim; return ``self`` on success."""
        if not self.claim.is_impossible:
            raise CertificateError(
                f"impossibility certificate built for a non-impossible claim: {self.claim}"
            )
        has_witness = self.witness is not None and self.witness.holds
        has_violation = any(not report.all_ok for report in self.violation_reports)
        if not has_witness and not has_violation:
            raise CertificateError(
                f"impossibility certificate for {self.claim.parameters} carries "
                "neither a complete Theorem 1 witness nor a constructed violation"
            )
        return self

    def describe(self) -> str:
        """One-line summary used in benchmark output."""
        backing = []
        if self.witness is not None and self.witness.holds:
            backing.append("Theorem 1 witness")
        violated = sum(1 for report in self.violation_reports if not report.all_ok)
        if violated:
            backing.append(f"{violated} constructed violation(s)")
        return (
            f"IMPOSSIBLE {self.claim.parameters} ({self.claim.source}): "
            + ", ".join(backing or ["unverified"])
        )
