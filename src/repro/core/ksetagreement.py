"""The k-set agreement problem and its property checkers.

Section II-A of the paper defines k-set agreement by three properties over
the write-once outputs of the processes:

* **k-Agreement** — processes decide on at most ``k`` different values,
* **Validity** — every decided value was proposed by some process,
* **Termination** — every correct process eventually decides.

``k = 1`` is (uniform) consensus; ``k = n - 1`` is set agreement.  The
checkers below evaluate the properties on recorded runs; note that
k-agreement and validity bind the decisions of *all* processes (correct or
faulty), while termination only concerns the correct ones.  For a finite
recorded prefix, "eventually decides" is interpreted as "decided within
the recorded prefix" — callers that want to treat a truncated run more
leniently can inspect the report's fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.exceptions import (
    AgreementViolation,
    ConfigurationError,
    TerminationViolation,
    ValidityViolation,
)
from repro.simulation.run import Run
from repro.types import ProcessId, Value, validate_k

__all__ = [
    "PropertyReport",
    "check_agreement",
    "check_validity",
    "check_termination",
    "KSetAgreementProblem",
]


@dataclass(frozen=True)
class PropertyReport:
    """Outcome of evaluating the three properties on one run.

    ``violations`` collects human-readable findings; the three booleans
    summarise them per property.  ``distinct_decisions`` and ``decided``
    expose the quantities most benchmarks report.
    """

    k: int
    agreement_ok: bool
    validity_ok: bool
    termination_ok: bool
    distinct_decisions: FrozenSet[Value]
    decided: FrozenSet[ProcessId]
    undecided_correct: FrozenSet[ProcessId]
    violations: Tuple[str, ...] = ()

    @property
    def all_ok(self) -> bool:
        """``True`` when every property holds."""
        return self.agreement_ok and self.validity_ok and self.termination_ok

    def summary(self) -> str:
        """One-line summary used in reports."""
        status = "OK" if self.all_ok else "VIOLATED"
        return (
            f"{self.k}-set agreement {status}: "
            f"{len(self.distinct_decisions)} distinct decision(s), "
            f"{len(self.decided)} decided, "
            f"{len(self.undecided_correct)} correct undecided"
        )


def check_agreement(run: Run, k: int) -> List[str]:
    """Return k-agreement violations of a run (empty list when it holds)."""
    validate_k(k, len(run.processes))
    decisions = run.decisions()
    distinct = set(decisions.values())
    if len(distinct) <= k:
        return []
    by_value: Dict[Value, List[ProcessId]] = {}
    for pid, value in decisions.items():
        by_value.setdefault(value, []).append(pid)
    detail = "; ".join(
        f"{value!r} decided by {sorted(pids)}" for value, pids in sorted(by_value.items(), key=lambda item: repr(item[0]))
    )
    return [
        f"k-agreement violated: {len(distinct)} distinct decision values for k={k} ({detail})"
    ]


def check_validity(run: Run, proposals: Optional[Mapping[ProcessId, Value]] = None) -> List[str]:
    """Return validity violations of a run (empty list when it holds)."""
    proposed = set((proposals or run.proposals).values())
    violations = []
    for pid, value in sorted(run.decisions().items()):
        if value not in proposed:
            violations.append(
                f"validity violated: p{pid} decided {value!r}, which nobody proposed"
            )
    return violations


def check_termination(run: Run) -> List[str]:
    """Return termination violations of a run (empty list when it holds).

    A correct process that has not decided within the recorded prefix is a
    termination violation of the prefix.  Runs that completed normally
    never report violations; truncated runs typically do — which is how the
    impossibility benchmarks detect "the adversary prevented termination".
    """
    undecided = run.correct_processes() - run.decided_processes()
    if not undecided:
        return []
    reason = "the step budget was exhausted" if run.truncated else "the schedule ended"
    return [
        f"termination violated: correct process(es) {sorted(undecided)} never decided "
        f"({reason} after {run.length} steps)"
    ]


@dataclass(frozen=True)
class KSetAgreementProblem:
    """The k-set agreement decision task.

    Parameters
    ----------
    k:
        Maximum number of distinct decision values allowed.
    """

    k: int

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got {self.k}")

    @property
    def is_consensus(self) -> bool:
        """``True`` for ``k = 1``."""
        return self.k == 1

    def evaluate(
        self, run: Run, *, proposals: Optional[Mapping[ProcessId, Value]] = None
    ) -> PropertyReport:
        """Evaluate all three properties on a recorded run."""
        agreement = check_agreement(run, self.k)
        validity = check_validity(run, proposals)
        termination = check_termination(run)
        return PropertyReport(
            k=self.k,
            agreement_ok=not agreement,
            validity_ok=not validity,
            termination_ok=not termination,
            distinct_decisions=run.distinct_decisions(),
            decided=run.decided_processes(),
            undecided_correct=run.correct_processes() - run.decided_processes(),
            violations=tuple(agreement + validity + termination),
        )

    def require(self, run: Run, *, proposals: Optional[Mapping[ProcessId, Value]] = None) -> PropertyReport:
        """Like :meth:`evaluate` but raise on the first violated property.

        Raises :class:`repro.exceptions.AgreementViolation`,
        :class:`repro.exceptions.ValidityViolation` or
        :class:`repro.exceptions.TerminationViolation` with the run attached.
        """
        report = self.evaluate(run, proposals=proposals)
        if not report.agreement_ok:
            raise AgreementViolation("; ".join(report.violations), run=run)
        if not report.validity_ok:
            raise ValidityViolation("; ".join(report.violations), run=run)
        if not report.termination_ok:
            raise TerminationViolation("; ".join(report.violations), run=run)
        return report

    def __str__(self) -> str:
        return "consensus" if self.is_consensus else f"{self.k}-set agreement"
