"""Tiny aggregation helpers for benchmark reporting.

Kept dependency-free on purpose (``numpy`` is available in the benchmark
environment but the library itself does not require it).
"""

from __future__ import annotations

from typing import Dict, Sequence

__all__ = ["summarize"]


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Return count, mean, min, max and median of a sequence of numbers.

    An empty sequence yields all-zero statistics rather than raising, which
    keeps benchmark report code free of special cases.

    >>> summarize([1.0, 2.0, 3.0])["mean"]
    2.0
    """
    data = sorted(float(v) for v in values)
    if not data:
        return {"count": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0, "median": 0.0}
    count = len(data)
    middle = count // 2
    if count % 2:
        median = data[middle]
    else:
        median = (data[middle - 1] + data[middle]) / 2.0
    # Clamp the mean into [min, max]: naive float summation can land a
    # ULP outside the range (e.g. five equal values whose partial sums
    # round up), and downstream consumers rely on min <= mean <= max.
    mean = min(max(sum(data) / count, data[0]), data[-1])
    return {
        "count": float(count),
        "mean": mean,
        "min": data[0],
        "max": data[-1],
        "median": median,
    }
