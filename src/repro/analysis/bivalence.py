"""Bounded exploration of reachable configurations.

The paper discharges "consensus is unsolvable in the sub-system" by citing
known impossibility results; the library encodes those citations in
:mod:`repro.models.catalog`.  As a complementary, *executable* sanity
check for small instances, this module explores the tree of reachable
configurations of an algorithm under a bounded nondeterministic scheduler
(any process may step next; it receives either nothing or the oldest
pending message addressed to it) and reports

* the decision patterns (sets of decided values) that are reachable,
* whether a configuration violating k-agreement is reachable,
* whether configurations deciding different single values are reachable
  from the same initial configuration — the hallmark of a bivalent initial
  configuration in the FLP sense.

The exploration is exhaustive up to ``max_configs`` visited configurations
and is intended for very small systems (2-4 processes); the unit tests use
it to confirm, for example, that the trivial decide-own-value protocol has
reachable configurations with ``n`` distinct decisions while the FLP
protocol never exceeds one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Set, Tuple

from repro.algorithms.base import Algorithm
from repro.simulation.configuration import Configuration
from repro.types import ProcessId, Value

__all__ = ["ExplorationReport", "explore"]


@dataclass(frozen=True)
class ExplorationReport:
    """Result of a bounded exploration.

    Attributes
    ----------
    decision_patterns:
        All distinct sets of decided values observed in visited
        configurations.
    max_distinct_decisions:
        The largest number of distinct decided values in any visited
        configuration.
    configurations_visited:
        How many configurations were expanded.
    exhausted:
        ``True`` when the frontier was emptied before hitting the budget —
        the reachable space (under the restricted delivery rule) was
        explored completely.
    """

    decision_patterns: FrozenSet[FrozenSet[Value]]
    max_distinct_decisions: int
    configurations_visited: int
    exhausted: bool

    def violates_agreement(self, k: int) -> bool:
        """``True`` when some visited configuration decided more than ``k`` values."""
        return self.max_distinct_decisions > k

    def univalent_values(self) -> FrozenSet[Value]:
        """Values ``v`` such that some visited configuration decided exactly ``{v}``."""
        return frozenset(
            next(iter(pattern))
            for pattern in self.decision_patterns
            if len(pattern) == 1
        )

    @property
    def looks_bivalent(self) -> bool:
        """``True`` when at least two different single-value decisions are reachable."""
        return len(self.univalent_values()) >= 2


def explore(
    algorithm: Algorithm,
    proposals: Mapping[ProcessId, Value],
    *,
    fd_output: Optional[object] = None,
    max_configs: int = 5_000,
) -> ExplorationReport:
    """Breadth-first exploration of reachable configurations.

    Parameters
    ----------
    algorithm:
        The algorithm to explore (must not require a failure detector, or a
        fixed ``fd_output`` must be supplied for every step).
    proposals:
        Initial proposals keyed by process identifier.
    fd_output:
        A constant failure-detector output handed to every step (the
        exploration does not model detector dynamics).
    max_configs:
        Budget of configurations to expand.
    """
    processes = tuple(sorted(proposals))
    initial = Configuration.initial(algorithm, processes, proposals)
    seen: Set[Configuration] = {initial}
    frontier: deque[Configuration] = deque([initial])
    patterns: Set[FrozenSet[Value]] = {initial.decided_values()}
    max_distinct = len(initial.decided_values())
    visited = 0
    exhausted = True

    while frontier:
        if visited >= max_configs:
            exhausted = False
            break
        config = frontier.popleft()
        visited += 1
        for pid in processes:
            if config.state_of(pid).has_decided:
                continue
            pending = config.pending_for(pid)
            delivery_choices = [()]
            if pending:
                delivery_choices.append((pending[0],))
            for choice in delivery_choices:
                successor = config.apply_step(algorithm, pid, choice, fd_output)
                if successor in seen:
                    continue
                seen.add(successor)
                frontier.append(successor)
                decided = successor.decided_values()
                patterns.add(decided)
                max_distinct = max(max_distinct, len(decided))
    return ExplorationReport(
        decision_patterns=frozenset(patterns),
        max_distinct_decisions=max_distinct,
        configurations_visited=visited,
        exhausted=exhausted,
    )
