"""ASCII tables for benchmark and example output.

The benchmark harness prints, for every reproduced theorem, a table whose
rows mirror the entries of EXPERIMENTS.md (parameter point, paper
prediction, simulated observation, agreement).  The helpers here render
such tables without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.analysis.border_sweep import SweepPoint

__all__ = ["format_table", "format_sweep", "format_campaign"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a left-aligned ASCII table.

    >>> print(format_table(("a", "b"), [(1, "x")]))
    a | b
    --+--
    1 | x
    """
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in materialised:
        for index in range(columns):
            cell = row[index] if index < len(row) else ""
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        padded = [
            (cells[i] if i < len(cells) else "").ljust(widths[i]) for i in range(columns)
        ]
        return " | ".join(padded).rstrip()

    separator = "-+-".join("-" * width for width in widths)
    lines = [render_row([str(h) for h in headers]), separator]
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def format_sweep(points: Sequence[SweepPoint], *, include_details: bool = False) -> str:
    """Render a Theorem 8 sweep as a table (one row per parameter point).

    With ``include_details=True`` every disagreeing point is followed by
    its per-run failure details (which property failed, under which
    schedule/seed/crash pattern), indented under the table.
    """
    headers = ("n", "f", "k", "paper verdict", "simulated observation", "agrees")
    rows = [
        (
            point.n,
            point.f,
            point.k,
            str(point.predicted),
            point.observed,
            "yes" if point.agrees else "NO",
        )
        for point in points
    ]
    table = format_table(headers, rows)
    if not include_details:
        return table
    lines = [table]
    for point in points:
        if not point.agrees:
            lines.append(f"(n={point.n}, f={point.f}, k={point.k}) disagrees:")
            lines.extend(f"  {detail}" for detail in point.details)
    return "\n".join(lines)


def format_campaign(result) -> str:
    """Render a :class:`~repro.campaign.runner.CampaignResult` summary.

    Shows the verdict counts, the per-property failure rollup and the
    wall-time statistics, followed by one line per non-ok scenario.
    """
    counts = result.verdict_counts()
    rollup = result.property_rollup()
    timing = result.wall_time_stats()
    rows = [
        ("scenarios", len(result.outcomes)),
        ("backend", f"{result.backend} ({result.workers} worker(s))"),
        ("ok / violation / error",
         f"{counts['ok']} / {counts['violation']} / {counts['error']}"),
        ("agreement failures", rollup["agreement_failures"]),
        ("validity failures", rollup["validity_failures"]),
        ("termination failures", rollup["termination_failures"]),
        ("truncated runs", rollup["truncated_runs"]),
        ("wall time", f"{timing['total']:.3f}s"
         f" (median scenario {timing['median'] * 1000:.2f}ms)"),
        ("throughput", f"{result.scenarios_per_second:.1f} scenarios/s"),
    ]
    table = format_table(("metric", "value"), rows)
    failures = result.failures()
    if not failures:
        return table
    lines = [table, "non-ok scenarios:"]
    lines.extend(f"  {outcome.describe()}" for outcome in failures)
    return "\n".join(lines)
