"""ASCII tables for benchmark and example output.

The benchmark harness prints, for every reproduced theorem, a table whose
rows mirror the entries of EXPERIMENTS.md (parameter point, paper
prediction, simulated observation, agreement).  The helpers here render
such tables without any third-party dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.analysis.border_sweep import SweepPoint

__all__ = ["format_table", "format_sweep"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a left-aligned ASCII table.

    >>> print(format_table(("a", "b"), [(1, "x")]))
    a | b
    --+--
    1 | x
    """
    materialised: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    for row in materialised:
        for index in range(columns):
            cell = row[index] if index < len(row) else ""
            widths[index] = max(widths[index], len(cell))
    def render_row(cells: Sequence[str]) -> str:
        padded = [
            (cells[i] if i < len(cells) else "").ljust(widths[i]) for i in range(columns)
        ]
        return " | ".join(padded).rstrip()

    separator = "-+-".join("-" * width for width in widths)
    lines = [render_row([str(h) for h in headers]), separator]
    lines.extend(render_row(row) for row in materialised)
    return "\n".join(lines)


def format_sweep(points: Sequence[SweepPoint]) -> str:
    """Render a Theorem 8 sweep as a table (one row per parameter point)."""
    headers = ("n", "f", "k", "paper verdict", "simulated observation", "agrees")
    rows = [
        (
            point.n,
            point.f,
            point.k,
            str(point.predicted),
            point.observed,
            "yes" if point.agrees else "NO",
        )
        for point in points
    ]
    return format_table(headers, rows)
