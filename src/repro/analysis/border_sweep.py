"""Sweeping the Theorem 8 border: prediction vs. simulation.

For every parameter point ``(n, f, k)`` the closed form of Theorem 8 says
whether k-set agreement with up to ``f`` initially dead processes is
solvable (``k * n > (k + 1) * f``) or not.  This module checks both sides
empirically with the paper's own Section VI algorithm:

* on the solvable side, the algorithm is executed under a collection of
  schedules (fair, random, worst-case initial-crash sets) and all three
  properties must hold in every run;
* on the impossible side, the partitioning construction of Section VI is
  executed — ``k + 1`` disjoint groups of size ``n - f`` run without ever
  hearing from each other (any leftover processes are initially dead) —
  and must produce more than ``k`` distinct decision values.

The sweep reports, for every point, the prediction, the observation and
whether they agree; benchmark E5 asserts full agreement over the swept
grid, which is the reproduced "figure" for Theorem 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.core.borders import theorem8_verdict
from repro.core.ksetagreement import KSetAgreementProblem, PropertyReport
from repro.failure_detectors.base import FailurePattern
from repro.models.initial_crash import initial_crash_model
from repro.simulation.adversary import PartitioningAdversary
from repro.simulation.executor import ExecutionSettings, execute
from repro.simulation.scheduler import RandomScheduler, RoundRobinScheduler
from repro.types import Verdict

__all__ = ["SweepPoint", "observe_solvable", "observe_impossible", "sweep_theorem8"]


@dataclass(frozen=True)
class SweepPoint:
    """One parameter point of the Theorem 8 sweep."""

    n: int
    f: int
    k: int
    predicted: Verdict
    observed: str
    agrees: bool
    details: str = ""


def _initial_crash_patterns(n: int, f: int, seeds: Sequence[int]) -> List[frozenset]:
    """Representative initial-crash sets: none, largest, smallest, seeded."""
    import random

    processes = tuple(range(1, n + 1))
    patterns = [frozenset(), frozenset(processes[-f:]) if f else frozenset(),
                frozenset(processes[:f]) if f else frozenset()]
    for seed in seeds:
        rng = random.Random(seed)
        patterns.append(frozenset(rng.sample(processes, f)) if f else frozenset())
    unique: List[frozenset] = []
    for pattern in patterns:
        if pattern not in unique:
            unique.append(pattern)
    return unique


def observe_solvable(
    n: int,
    f: int,
    k: int,
    *,
    seeds: Sequence[int] = (1, 2),
    max_steps: int = 20_000,
) -> Tuple[bool, List[PropertyReport]]:
    """Exercise the Section VI algorithm on the solvable side.

    Returns ``(all_ok, reports)`` where ``all_ok`` means every executed
    schedule satisfied k-agreement, validity and termination.
    """
    algorithm = KSetInitialCrash(n, f)
    model = initial_crash_model(n, f)
    proposals = {pid: pid for pid in model.processes}
    problem = KSetAgreementProblem(k)
    reports: List[PropertyReport] = []
    for dead in _initial_crash_patterns(n, f, seeds):
        pattern = FailurePattern.initially_dead(model.processes, dead)
        schedules = [RoundRobinScheduler()] + [RandomScheduler(seed) for seed in seeds]
        for adversary in schedules:
            run = execute(
                algorithm,
                model,
                proposals,
                adversary=adversary,
                failure_pattern=pattern,
                settings=ExecutionSettings(max_steps=max_steps),
            )
            reports.append(problem.evaluate(run, proposals=proposals))
    return all(report.all_ok for report in reports), reports


def observe_impossible(
    n: int,
    f: int,
    k: int,
    *,
    max_steps: int = 20_000,
) -> Tuple[bool, PropertyReport]:
    """Run the Section VI partitioning construction on the impossible side.

    Builds ``k + 1`` disjoint groups of size ``n - f`` (possible exactly
    when ``(k + 1) * (n - f) <= n``, i.e. on the impossible side of the
    border), declares any leftover processes initially dead, and executes
    the Section VI algorithm under the partitioning adversary.  Returns
    ``(violation_found, report)``.
    """
    group_size = n - f
    groups = [
        frozenset(range(i * group_size + 1, (i + 1) * group_size + 1))
        for i in range(k + 1)
    ]
    covered = frozenset().union(*groups)
    model = initial_crash_model(n, f)
    leftover = frozenset(model.processes) - covered
    pattern = FailurePattern.initially_dead(model.processes, leftover)
    algorithm = KSetInitialCrash(n, f)
    proposals = {pid: pid for pid in model.processes}
    run = execute(
        algorithm,
        model,
        proposals,
        adversary=PartitioningAdversary(groups),
        failure_pattern=pattern,
        settings=ExecutionSettings(max_steps=max_steps),
    )
    report = KSetAgreementProblem(k).evaluate(run, proposals=proposals)
    violation_found = not report.agreement_ok or not report.termination_ok
    return violation_found, report


def sweep_theorem8(
    n_values: Iterable[int],
    *,
    seeds: Sequence[int] = (1, 2),
    max_steps: int = 20_000,
) -> List[SweepPoint]:
    """Sweep the full (n, f, k) grid and compare prediction with observation."""
    points: List[SweepPoint] = []
    for n in n_values:
        for f in range(1, n):
            for k in range(1, n):
                verdict = theorem8_verdict(n, f, k)
                if verdict.is_solvable:
                    ok, reports = observe_solvable(
                        n, f, k, seeds=seeds, max_steps=max_steps
                    )
                    observed = "all properties hold" if ok else "violation observed"
                    agrees = ok
                    details = f"{len(reports)} runs"
                else:
                    violated, report = observe_impossible(n, f, k, max_steps=max_steps)
                    observed = (
                        "partitioning forces a violation" if violated else "no violation found"
                    )
                    agrees = violated
                    details = report.summary()
                points.append(
                    SweepPoint(
                        n=n,
                        f=f,
                        k=k,
                        predicted=verdict.verdict,
                        observed=observed,
                        agrees=agrees,
                        details=details,
                    )
                )
    return points
