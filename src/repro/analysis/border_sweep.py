"""Sweeping the Theorem 8 border: prediction vs. simulation.

For every parameter point ``(n, f, k)`` the closed form of Theorem 8 says
whether k-set agreement with up to ``f`` initially dead processes is
solvable (``k * n > (k + 1) * f``) or not.  This module checks both sides
empirically with the paper's own Section VI algorithm:

* on the solvable side, the algorithm is executed under a collection of
  schedules (fair, random, worst-case initial-crash sets) and all three
  properties must hold in every run;
* on the impossible side, the partitioning construction of Section VI is
  executed — ``k + 1`` disjoint groups of size ``n - f`` run without ever
  hearing from each other (any leftover processes are initially dead) —
  and must produce more than ``k`` distinct decision values.

The executions themselves run on the campaign engine
(:mod:`repro.campaign`): the grid of scenarios is compiled once and
handed to a :class:`~repro.campaign.runner.CampaignRunner`, so the same
sweep scales from a serial smoke test to a multiprocess run without
touching this module — and, because campaign outcomes are deterministic,
every backend produces the identical list of sweep points.

The sweep reports, for every point, the prediction, the observation,
whether they agree, and — when they do not — *which* property failed
under *which* schedule, seed and crash pattern (``SweepPoint.details``);
benchmark E5 asserts full agreement over the swept grid, which is the
reproduced "figure" for Theorem 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.campaign.runner import CampaignRunner
from repro.campaign.scenarios import (
    execute_theorem8_impossible,
    execute_theorem8_solvable,
    theorem8_point_specs,
    theorem8_specs,
)
from repro.campaign.spec import ScenarioOutcome, ScenarioSpec
from repro.core.borders import theorem8_verdict
from repro.core.ksetagreement import PropertyReport
from repro.types import Verdict

__all__ = ["SweepPoint", "observe_solvable", "observe_impossible", "sweep_theorem8"]


@dataclass(frozen=True)
class SweepPoint:
    """One parameter point of the Theorem 8 sweep.

    ``details`` carries one line per noteworthy run: on a disagreeing
    point, every failing run with the violated property and the schedule,
    seed and crash pattern it failed under; on an agreeing point, a
    one-line summary of the evidence.
    """

    n: int
    f: int
    k: int
    predicted: Verdict
    observed: str
    agrees: bool
    details: Tuple[str, ...] = ()


def observe_solvable(
    n: int,
    f: int,
    k: int,
    *,
    seeds: Sequence[int] = (1, 2),
    max_steps: int = 20_000,
) -> Tuple[bool, List[PropertyReport]]:
    """Exercise the Section VI algorithm on the solvable side.

    Returns ``(all_ok, reports)`` where ``all_ok`` means every executed
    schedule satisfied k-agreement, validity and termination.  The
    schedules are exactly the scenarios the campaign grid compiles for
    this point.
    """
    reports: List[PropertyReport] = []
    for spec in theorem8_point_specs(n, f, k, seeds=seeds, max_steps=max_steps):
        _run, report = execute_theorem8_solvable(spec)
        reports.append(report)
    return all(report.all_ok for report in reports), reports


def observe_impossible(
    n: int,
    f: int,
    k: int,
    *,
    max_steps: int = 20_000,
) -> Tuple[bool, PropertyReport]:
    """Run the Section VI partitioning construction on the impossible side.

    Builds ``k + 1`` disjoint groups of size ``n - f`` (possible exactly
    when ``(k + 1) * (n - f) <= n``, i.e. on the impossible side of the
    border), declares any leftover processes initially dead, and executes
    the Section VI algorithm under the partitioning adversary.  Returns
    ``(violation_found, report)``.
    """
    spec = ScenarioSpec(
        kind="theorem8-impossible", n=n, f=f, k=k,
        scheduler="partitioning", max_steps=max_steps,
    )
    _run, report = execute_theorem8_impossible(spec)
    violation_found = not report.agreement_ok or not report.termination_ok
    return violation_found, report


def _solvable_point(outcomes: Sequence[ScenarioOutcome]) -> Tuple[str, bool, Tuple[str, ...]]:
    errors = tuple(o for o in outcomes if o.verdict == "error")
    if errors:
        # An execution failure is evidence of nothing: report it as an
        # error, never as an observed property violation.
        return "execution error", False, tuple(o.describe() for o in errors)
    ok = all(outcome.all_ok for outcome in outcomes)
    if ok:
        details = (f"{len(outcomes)} runs, all properties hold",)
    else:
        details = tuple(o.describe() for o in outcomes if not o.all_ok)
    observed = "all properties hold" if ok else "violation observed"
    return observed, ok, details


def _impossible_point(outcomes: Sequence[ScenarioOutcome]) -> Tuple[str, bool, Tuple[str, ...]]:
    (outcome,) = outcomes
    if outcome.verdict == "error":
        # An execution failure is evidence of nothing: never report it as
        # the expected violation, surface it as a disagreement instead.
        return "execution error", False, (outcome.describe(),)
    violated = not outcome.agreement_ok or not outcome.termination_ok
    observed = "partitioning forces a violation" if violated else "no violation found"
    details = outcome.violations if outcome.violations else (outcome.describe(),)
    return observed, violated, details


def sweep_theorem8(
    n_values: Iterable[int],
    *,
    seeds: Sequence[int] = (1, 2),
    max_steps: int = 20_000,
    runner: Optional[CampaignRunner] = None,
    store=None,
    progress=None,
    recording: str = "full",
) -> List[SweepPoint]:
    """Sweep the full (n, f, k) grid and compare prediction with observation.

    ``runner`` selects the campaign backend (default: serial); the
    resulting points are identical for every backend.  Passing a
    ``store`` (:class:`repro.store.ResultStore`) makes the sweep
    persistent: already-stored scenarios are served from cache, fresh
    outcomes are persisted incrementally, and a killed sweep resumes
    where it stopped — producing the identical points either way.
    ``progress`` (:class:`repro.store.ProgressReporter`) streams
    pool-wide per-scenario events while the campaign runs.

    ``recording`` selects the executor's
    :class:`~repro.simulation.recording.RecordingPolicy` for every
    scenario.  The sweep only consumes verdicts, so ``"verdict-only"``
    skips all per-step trace allocation and returns the **identical**
    list of points measurably faster — the setting to use for large
    grids.
    """
    n_values = list(n_values)
    specs = theorem8_specs(
        n_values, seeds=seeds, max_steps=max_steps, recording=recording)
    campaign_runner = runner if runner is not None else CampaignRunner()
    if store is not None or progress is not None:
        from repro.store import CachingRunner, MemoryResultStore

        campaign_runner = CachingRunner(
            store if store is not None else MemoryResultStore(),
            campaign_runner,
            progress=progress,
        )
    result = campaign_runner.run(specs)
    grouped = result.by_point()

    points: List[SweepPoint] = []
    for n in n_values:
        for f in range(1, n):
            for k in range(1, n):
                verdict = theorem8_verdict(n, f, k)
                outcomes = grouped.get((n, f, k), ())
                if not outcomes:
                    # A point the campaign never executed is a sweep bug,
                    # not agreement — fail loudly rather than vacuously.
                    observed, agrees = "no scenarios executed", False
                    details = ("the campaign produced no outcomes for this point",)
                elif verdict.is_solvable:
                    observed, agrees, details = _solvable_point(outcomes)
                else:
                    observed, agrees, details = _impossible_point(outcomes)
                points.append(
                    SweepPoint(
                        n=n,
                        f=f,
                        k=k,
                        predicted=verdict.verdict,
                        observed=observed,
                        agrees=agrees,
                        details=details,
                    )
                )
    return points
