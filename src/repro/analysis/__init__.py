"""Measurement, sweeps and reporting helpers used by benchmarks and examples.

* :mod:`repro.analysis.run_properties` — per-run statistics and property
  evaluation,
* :mod:`repro.analysis.border_sweep` — (n, f, k) sweeps comparing the
  closed-form Theorem 8 border with simulated outcomes,
* :mod:`repro.analysis.bivalence` — bounded exploration of reachable
  configurations for small instances,
* :mod:`repro.analysis.statistics` — tiny aggregation helpers,
* :mod:`repro.analysis.reporting` — ASCII tables for benchmark output.
"""

from repro.analysis.run_properties import decision_histogram, evaluate_kset, run_statistics
from repro.analysis.border_sweep import (
    SweepPoint,
    observe_impossible,
    observe_solvable,
    sweep_theorem8,
)
from repro.analysis.bivalence import ExplorationReport, explore
from repro.analysis.statistics import summarize
from repro.analysis.reporting import format_campaign, format_sweep, format_table

__all__ = [
    "decision_histogram",
    "evaluate_kset",
    "run_statistics",
    "SweepPoint",
    "observe_impossible",
    "observe_solvable",
    "sweep_theorem8",
    "ExplorationReport",
    "explore",
    "summarize",
    "format_table",
    "format_sweep",
    "format_campaign",
]
