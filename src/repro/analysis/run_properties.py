"""Per-run statistics and property evaluation.

Thin convenience layer over :mod:`repro.core.ksetagreement` used by the
benchmarks: evaluate the k-set agreement properties of a run, count how
often each decision value occurs, and extract the volume metrics (steps,
messages) that the scalability benchmark reports.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.ksetagreement import KSetAgreementProblem, PropertyReport
from repro.simulation.run import Run
from repro.types import ProcessId, Value

__all__ = ["evaluate_kset", "decision_histogram", "run_statistics"]


def evaluate_kset(
    run: Run, k: int, *, proposals: Optional[Mapping[ProcessId, Value]] = None
) -> PropertyReport:
    """Evaluate the three k-set agreement properties on ``run``."""
    return KSetAgreementProblem(k).evaluate(run, proposals=proposals)


def decision_histogram(run: Run) -> Dict[Value, int]:
    """How many processes decided each value (undecided processes ignored)."""
    histogram: Dict[Value, int] = {}
    for value in run.decisions().values():
        histogram[value] = histogram.get(value, 0) + 1
    return histogram


def run_statistics(run: Run) -> Dict[str, float]:
    """Volume metrics of a run: steps, messages, decision latency.

    ``decision_latency`` is the time of the last decision (or the run
    length when nobody decided), which the scalability benchmark uses as
    its per-run cost measure.
    """
    last_decision = run.last_decision_time()
    return {
        "steps": float(run.length),
        "messages_sent": float(run.messages_sent()),
        "messages_delivered": float(run.messages_delivered()),
        "decided_processes": float(len(run.decided_processes())),
        "distinct_decisions": float(len(run.distinct_decisions())),
        "decision_latency": float(last_decision if last_decision is not None else run.length),
    }
