"""The trivial wait-free protocol: decide your own proposal.

Deciding one's own value without any communication solves n-set agreement
(and hence k-set agreement for every ``k >= n``) in a wait-free manner.
The paper uses this observation implicitly: "It is easy to show that k-set
agreement is impossible in the purely asynchronous model, if we assume a
wait-free environment: It suffices to simply delay all communication until
every process has decided on its own propose value" — that is, *this*
protocol run under the total-silence schedule is the canonical example of
a run in which all ``n`` proposal values are decided.  The test-suite and
the independence benchmarks use it as the extreme baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.algorithms.base import Algorithm, ProcessState, StepOutput
from repro.types import ProcessId, Value

__all__ = ["DecideOwnValue"]


class DecideOwnValue(Algorithm):
    """Each process decides its own proposal in its first step."""

    name = "decide-own-value"
    requires_failure_detector = False

    def initial_state(
        self, pid: ProcessId, processes: Sequence[ProcessId], proposal: Value
    ) -> ProcessState:
        """The initial state carries only the proposal."""
        return ProcessState(pid=pid, proposal=proposal)

    def step(
        self,
        state: ProcessState,
        delivered: Tuple[object, ...],
        fd_output: Optional[object] = None,
    ) -> StepOutput:
        """Decide the own proposal (idempotent after the first step)."""
        if state.has_decided:
            return StepOutput(state=state)
        return StepOutput(state=state.decide(state.proposal))
