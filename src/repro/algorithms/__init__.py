"""Agreement algorithms: the paper's protocols plus reference baselines.

* :mod:`repro.algorithms.base` — the deterministic-state-machine interface
  of Section II (transition relation + message sending function) and the
  restriction operator ``A|D`` of Definition 1,
* :mod:`repro.algorithms.flp_consensus` — the two-stage FLP protocol for
  initially dead processes (consensus, ``L = ceil((n+1)/2)``),
* :mod:`repro.algorithms.kset_initial_crash` — the paper's Section VI
  generalisation to k-set agreement (``L = n - f``),
* :mod:`repro.algorithms.trivial` — the wait-free decide-own-value
  protocol (solves n-set agreement),
* :mod:`repro.algorithms.sigma_kset` — (n-1)-set agreement from
  ``Sigma_{n-1}`` (the possibility half of Corollary 13 for ``k = n-1``),
* :mod:`repro.algorithms.sigma_omega_consensus` — consensus from
  ``(Sigma, Omega)`` (the possibility half for ``k = 1``),
* :mod:`repro.algorithms.flawed_candidate` — a deliberately "promising but
  flawed" ``(Sigma_k, Omega_k)``-based candidate used to demonstrate the
  Theorem 1 vetting methodology.
"""

from repro.algorithms.base import (
    Algorithm,
    ProcessState,
    RestrictedAlgorithm,
    StepOutput,
    broadcast,
    send,
)
from repro.algorithms.floodset import FloodSetConsensus
from repro.algorithms.flp_consensus import FLPConsensus
from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.trivial import DecideOwnValue
from repro.algorithms.sigma_kset import SigmaKSetAgreement
from repro.algorithms.sigma_omega_consensus import SigmaOmegaConsensus
from repro.algorithms.flawed_candidate import FlawedQuorumKSet

__all__ = [
    "Algorithm",
    "ProcessState",
    "RestrictedAlgorithm",
    "StepOutput",
    "broadcast",
    "send",
    "FloodSetConsensus",
    "FLPConsensus",
    "KSetInitialCrash",
    "DecideOwnValue",
    "SigmaKSetAgreement",
    "SigmaOmegaConsensus",
    "FlawedQuorumKSet",
]
