"""The two-stage knowledge-graph protocol (FLP Section 4, generalised).

This module implements the protocol the paper describes in Section VI in a
parametric form.  The protocol is designed for asynchronous systems in
which up to ``f`` processes may be *initially dead*; its only parameter is
the waiting threshold ``L``:

* **Stage 1** — every process broadcasts its identifier and waits until it
  has received ``L - 1`` stage-1 messages from other processes.
* **Stage 2** — every process broadcasts its proposal together with the
  list of processes it heard from in stage 1, and waits until it has
  received such reports from every process in the transitive closure of
  "heard from" starting at itself.
* **Decision** — consider the directed graph ``G`` with an edge ``u -> w``
  whenever ``w`` received ``u``'s stage-1 message.  Every vertex of ``G``
  has in-degree at least ``L - 1``, so by Lemma 6 the graph has at most
  ``floor(n / L)`` source components; once a process knows the part of
  ``G`` it transitively depends on, it decides on the proposal of the
  smallest-identifier member of a source component that reaches it.

With ``L = ceil((n + 1) / 2)`` (a correct majority) there is exactly one
source component and the protocol is the FLP consensus algorithm for
initially dead processes; with ``L = n - f`` it is the paper's k-set
agreement protocol, correct whenever ``k >= floor(n / (n - f))``, i.e.
exactly on the solvable side of Theorem 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.algorithms.base import Algorithm, ProcessState, StepOutput, broadcast
from repro.exceptions import ConfigurationError
from repro.graphs.knowledge_graph import decide_from_reports
from repro.types import ProcessId, Value

__all__ = ["TwoStageState", "TwoStageKnowledgeProtocol"]

#: A stage-2 report: (process, the processes it heard from in stage 1, its proposal).
Report = Tuple[ProcessId, Tuple[ProcessId, ...], Value]


@dataclass(frozen=True)
class TwoStageState(ProcessState):
    """Local state of the two-stage protocol.

    Fields
    ------
    stage:
        1 while collecting stage-1 messages, 2 afterwards.
    sent_stage1 / sent_stage2:
        Whether the respective broadcast has been performed.
    heard_stage1:
        Senders of the stage-1 messages received so far.
    predecessors:
        The "heard from" list frozen when entering stage 2 (this process's
        in-neighbourhood in the knowledge graph ``G``).
    reports:
        Stage-2 reports received so far (including the process's own).
    """

    stage: int = 1
    sent_stage1: bool = False
    sent_stage2: bool = False
    heard_stage1: FrozenSet[ProcessId] = frozenset()
    predecessors: Tuple[ProcessId, ...] = ()
    reports: FrozenSet[Report] = frozenset()


class TwoStageKnowledgeProtocol(Algorithm):
    """The parametric two-stage protocol with waiting threshold ``L``.

    Parameters
    ----------
    n:
        System size the protocol is configured for (``|Pi|``).
    threshold:
        The value ``L``; the protocol waits for ``L - 1`` stage-1 messages
        from other processes.  Must satisfy ``1 <= L <= n``.
    """

    requires_failure_detector = False

    def __init__(self, n: int, threshold: int, *, name: Optional[str] = None):
        if n < 1:
            raise ConfigurationError(f"n must be positive, got {n}")
        if not 1 <= threshold <= n:
            raise ConfigurationError(
                f"the waiting threshold L must satisfy 1 <= L <= n, got L={threshold}, n={n}"
            )
        self.n = n
        self.threshold = threshold
        self.name = name or f"two-stage(L={threshold})"

    # -- protocol ------------------------------------------------------------

    def initial_state(
        self, pid: ProcessId, processes: Sequence[ProcessId], proposal: Value
    ) -> TwoStageState:
        """Initial state; the process set must match the configured ``n``."""
        if len(processes) != self.n:
            raise ConfigurationError(
                f"{self.name} was configured for n={self.n} but the system has "
                f"{len(processes)} processes"
            )
        return TwoStageState(pid=pid, proposal=proposal)

    def step(
        self,
        state: TwoStageState,
        delivered: Tuple[object, ...],
        fd_output: Optional[object] = None,
    ) -> StepOutput:
        """One atomic step: absorb messages, advance stages, decide."""
        if state.has_decided:
            return StepOutput(state=state)

        processes = tuple(range(1, self.n + 1))
        outgoing = []
        heard = set(state.heard_stage1)
        reports = set(state.reports)

        for message in delivered:
            payload = message.payload
            kind = payload[0]
            if kind == "S1":
                heard.add(payload[1])
            elif kind == "S2":
                _kind, sender, predecessors, value = payload
                reports.add((sender, tuple(predecessors), value))

        new_reports = len(reports) != len(state.reports)
        new_state = replace(
            state, heard_stage1=frozenset(heard), reports=frozenset(reports)
        )

        if not new_state.sent_stage1:
            outgoing.extend(
                broadcast(processes, ("S1", state.pid), exclude=(state.pid,))
            )
            new_state = replace(new_state, sent_stage1=True)

        if new_state.stage == 1 and new_state.sent_stage1:
            if len(new_state.heard_stage1 - {state.pid}) >= self.threshold - 1:
                predecessors = tuple(sorted(new_state.heard_stage1 - {state.pid}))
                own_report: Report = (state.pid, predecessors, state.proposal)
                reports = set(new_state.reports)
                reports.add(own_report)
                outgoing.extend(
                    broadcast(
                        processes,
                        ("S2", state.pid, predecessors, state.proposal),
                        exclude=(state.pid,),
                    )
                )
                new_state = replace(
                    new_state,
                    stage=2,
                    sent_stage2=True,
                    predecessors=predecessors,
                    reports=frozenset(reports),
                )
                new_reports = True

        # The decision depends only on the report set, so a step that
        # brought no new report cannot newly complete the closure — skip
        # the (O(edges)) attempt instead of recomputing the same "not yet".
        if new_state.stage == 2 and new_reports:
            decision = self._try_decide(new_state)
            if decision is not None:
                new_state = new_state.decide(decision)

        return StepOutput(state=new_state, messages=tuple(outgoing))

    # -- decision ------------------------------------------------------------

    def _try_decide(self, state: TwoStageState) -> Optional[Value]:
        """Return the decision value once the knowledge closure is complete.

        Works directly on the raw report tuples via
        :func:`repro.graphs.knowledge_graph.decide_from_reports` — the
        per-attempt :class:`KnowledgeGraph` (one frozenset per report,
        rebuilt on every stage-2 step) was the dominant allocation of a
        Section VI run.  Reports are write-once per process, so the
        graph's conflicting-report validation has nothing to detect here.
        """
        heard_from = {}
        values = {}
        for process, predecessors, value in state.reports:
            heard_from[process] = predecessors
            values[process] = value
        return decide_from_reports(state.pid, heard_from, values)

    # -- documentation helpers -------------------------------------------------

    def max_distinct_decisions(self) -> int:
        """Upper bound on distinct decisions: ``floor(n / L)`` (Lemma 6)."""
        return self.n // self.threshold

    def describe(self) -> str:
        return (
            f"{self.name}: waits for L-1={self.threshold - 1} stage-1 messages, "
            f"decides via source components; at most {self.max_distinct_decisions()} "
            f"distinct decision value(s)"
        )
