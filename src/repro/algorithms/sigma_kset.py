"""(n-1)-set agreement from the quorum detector ``Sigma_{n-1}``.

Corollary 13 of the paper states that ``(Sigma_k, Omega_k)`` suffices for
k-set agreement exactly for ``k = 1`` and ``k = n - 1``; for ``k = n - 1``
the paper points to Bonnet and Raynal's result that ``Sigma_{n-1}`` alone
is already sufficient.  This module ships a self-contained protocol with
the same guarantee (the proof below is elementary and only uses the
defining properties of ``Sigma_{n-1}``; the protocol is not claimed to be
syntactically identical to Bonnet–Raynal's).

Protocol (process ``p_i`` with proposal ``v_i``)
------------------------------------------------

1.  In its first step, ``p_i`` broadcasts ``VAL(i, v_i)``.
2.  In every step ``p_i`` queries ``Sigma_{n-1}`` and applies the first
    enabled rule:

    * **R-adopt** — if a ``DEC(v)`` message has been received: decide
      ``v``.
    * **R-smaller** — if a ``VAL(j, v_j)`` with ``j < i`` has been
      received: decide the value of the *smallest* such ``j`` received so
      far and broadcast ``DEC``.
    * **R-alone** — if the quorum returned by ``Sigma_{n-1}`` is exactly
      ``{i}``: decide ``v_i`` and broadcast ``DEC``.

Why this solves (n-1)-set agreement (any number of crashes)
------------------------------------------------------------

*Validity* is immediate.  *Termination*: let ``p_i`` be correct.  If some
process with a smaller identifier ever sends ``VAL`` and the message
arrives, R-smaller fires.  Otherwise, if ``p_i`` is not the only correct
process, every correct ``p_j`` with ``j > i`` receives ``VAL(i, v_i)``
(reliable channels) and decides by R-smaller (or earlier), broadcasting
``DEC`` which lets ``p_i`` decide by R-adopt.  If ``p_i`` is the only
correct process, the liveness property of ``Sigma_{n-1}`` eventually
returns a quorum containing only correct processes, i.e. ``{i}``, and
R-alone fires.  *(n-1)-agreement*: suppose for contradiction that all
``n`` processes decide pairwise distinct values.  Then no process decided
by R-adopt (it would share a value with the ``DEC`` sender), so every
decision came from R-smaller (deciding the value of a strictly smaller
identifier) or R-alone (deciding the own value).  The map "decider ->
identifier whose value it decided" is then a permutation ``pi`` with
``pi(i) <= i`` for all ``i``; the only such permutation is the identity,
so *every* process decided its own value by R-alone, i.e. each ``p_i``
observed the singleton quorum ``{i}`` at some time ``t_i``.  Those ``n``
singleton quorums are pairwise disjoint, contradicting the intersection
property of ``Sigma_{n-1}`` (among any ``n = (n-1)+1`` queries, two
quorums must intersect).  Hence at most ``n - 1`` distinct values are
decided.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.algorithms.base import Algorithm, ProcessState, StepOutput, broadcast
from repro.exceptions import ConfigurationError
from repro.types import ProcessId, Value

__all__ = ["SigmaKSetState", "SigmaKSetAgreement"]


@dataclass(frozen=True)
class SigmaKSetState(ProcessState):
    """Local state of the ``Sigma_{n-1}`` protocol."""

    sent_val: bool = False
    #: proposals received from smaller-identifier processes: (sender, value).
    smaller_values: FrozenSet[Tuple[ProcessId, Value]] = frozenset()
    #: first decision value received via a DEC message (or ``None``).
    dec_received: Optional[Value] = None
    #: set when the decision was fresh (not adopted) and DEC must be sent.
    announce: Optional[Value] = None


class SigmaKSetAgreement(Algorithm):
    """(n-1)-set agreement using only ``Sigma_{n-1}`` quorum outputs.

    Parameters
    ----------
    n:
        System size the protocol is configured for.
    """

    requires_failure_detector = True

    def __init__(self, n: int):
        if n < 2:
            raise ConfigurationError(f"the protocol needs at least 2 processes, got n={n}")
        self.n = n
        self.name = f"sigma-kset(n={n}, k={n - 1})"

    def initial_state(
        self, pid: ProcessId, processes: Sequence[ProcessId], proposal: Value
    ) -> SigmaKSetState:
        """Initial state; the process set must match the configured ``n``."""
        if len(processes) != self.n:
            raise ConfigurationError(
                f"{self.name} was configured for n={self.n} but the system has "
                f"{len(processes)} processes"
            )
        return SigmaKSetState(pid=pid, proposal=proposal)

    def step(
        self,
        state: SigmaKSetState,
        delivered: Tuple[object, ...],
        fd_output: Optional[object] = None,
    ) -> StepOutput:
        """One atomic step: absorb messages, apply the three decision rules."""
        processes = tuple(range(1, self.n + 1))
        outgoing = []

        smaller = set(state.smaller_values)
        dec_received = state.dec_received
        for message in delivered:
            payload = message.payload
            if payload[0] == "VAL":
                _kind, sender, value = payload
                if sender < state.pid:
                    smaller.add((sender, value))
            elif payload[0] == "DEC" and dec_received is None:
                dec_received = payload[1]

        new_state = replace(
            state, smaller_values=frozenset(smaller), dec_received=dec_received
        )

        if not new_state.sent_val:
            outgoing.extend(
                broadcast(processes, ("VAL", state.pid, state.proposal), exclude=(state.pid,))
            )
            new_state = replace(new_state, sent_val=True)

        if not new_state.has_decided:
            quorum = self._quorum(fd_output)
            decision, fresh = self._decide(new_state, quorum)
            if decision is not None:
                new_state = new_state.decide(decision)
                if fresh:
                    outgoing.extend(
                        broadcast(processes, ("DEC", decision), exclude=(state.pid,))
                    )

        return StepOutput(state=new_state, messages=tuple(outgoing))

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _quorum(fd_output: Optional[object]) -> Optional[FrozenSet[ProcessId]]:
        """Accept either a raw quorum set or a product-detector output."""
        if fd_output is None:
            return None
        if isinstance(fd_output, dict):
            fd_output = fd_output.get("sigma")
        if fd_output is None:
            return None
        return frozenset(fd_output)

    @staticmethod
    def _decide(
        state: SigmaKSetState, quorum: Optional[FrozenSet[ProcessId]]
    ) -> Tuple[Optional[Value], bool]:
        """Return ``(decision, is_fresh)`` for the first enabled rule."""
        if state.dec_received is not None:
            return state.dec_received, False
        if state.smaller_values:
            smallest = min(state.smaller_values, key=lambda item: item[0])
            return smallest[1], True
        if quorum is not None and quorum == frozenset({state.pid}):
            return state.proposal, True
        return None, False

    def describe(self) -> str:
        return (
            f"{self.name}: queries Sigma_{self.n - 1}; decides by adopting a DEC, "
            "by taking the value of the smallest identifier heard, or by the "
            "singleton-quorum rule; tolerates any number of crashes"
        )
