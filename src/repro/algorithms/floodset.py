"""FloodSet consensus for synchronous systems (the favourable DDS case).

The consensus catalogue (:mod:`repro.models.catalog`) asserts that with
synchronous processes *and* synchronous communication, consensus is
solvable for any number ``f < n`` of crash failures.  This module provides
the executable evidence: the classic FloodSet protocol, in which every
process repeatedly broadcasts the set of proposal values it has seen and
decides, after ``f + 1`` rounds, on the smallest value it knows.

Synchrony assumption
--------------------
The protocol is correct under *lockstep* schedules — every alive process
takes one step per round and receives, in its round-``r`` step, every
message sent in earlier rounds.  The fair
:class:`repro.simulation.scheduler.RoundRobinScheduler` provides exactly
this structure (one cycle = one round, all pending messages delivered),
which is how the simulator realises the favourable synchrony parameters.
Under asynchronous (e.g. random or partitioning) schedules the protocol's
guarantee is void — which is precisely the difference between the
favourable and unfavourable points of the model lattice, and the paper's
Theorem 2 shows that losing only the communication synchrony already makes
k-set agreement impossible for small ``k``.

Values must be totally ordered (the decision rule takes the minimum); the
library's convention of ordering by ``repr`` is used so that heterogeneous
value types remain usable.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.algorithms.base import Algorithm, ProcessState, StepOutput, broadcast
from repro.exceptions import ConfigurationError
from repro.types import ProcessId, Value

__all__ = ["FloodSetState", "FloodSetConsensus"]


@dataclass(frozen=True)
class FloodSetState(ProcessState):
    """Local state: the set of values seen so far and the round counter."""

    known: FrozenSet[Value] = frozenset()
    round: int = 0


class FloodSetConsensus(Algorithm):
    """The (f+1)-round FloodSet consensus protocol.

    Parameters
    ----------
    n:
        System size.
    f:
        Crash-failure budget; the protocol runs ``f + 1`` broadcast rounds.
    """

    requires_failure_detector = False

    def __init__(self, n: int, f: int):
        if n < 1:
            raise ConfigurationError(f"need at least one process, got n={n}")
        if not 0 <= f < n:
            raise ConfigurationError(f"need 0 <= f < n, got f={f}, n={n}")
        self.n = n
        self.f = f
        self.rounds = f + 1
        self.name = f"floodset(n={n}, f={f})"

    def initial_state(
        self, pid: ProcessId, processes: Sequence[ProcessId], proposal: Value
    ) -> FloodSetState:
        """Initial state: the process knows only its own proposal."""
        if len(processes) != self.n:
            raise ConfigurationError(
                f"{self.name} was configured for n={self.n} but the system has "
                f"{len(processes)} processes"
            )
        return FloodSetState(pid=pid, proposal=proposal, known=frozenset({proposal}))

    def step(
        self,
        state: FloodSetState,
        delivered: Tuple[object, ...],
        fd_output: Optional[object] = None,
    ) -> StepOutput:
        """Absorb flooded sets; broadcast for ``f + 1`` rounds; then decide."""
        if state.has_decided:
            return StepOutput(state=state)

        known = set(state.known)
        for message in delivered:
            payload = message.payload
            if payload[0] == "FLOOD":
                known.update(payload[2])
        new_state = replace(state, known=frozenset(known))

        processes = tuple(range(1, self.n + 1))
        if new_state.round < self.rounds:
            outgoing = broadcast(
                processes,
                ("FLOOD", new_state.round, tuple(sorted(known, key=repr))),
                exclude=(state.pid,),
            )
            new_state = replace(new_state, round=new_state.round + 1)
            return StepOutput(state=new_state, messages=outgoing)

        decision = min(new_state.known, key=repr)
        return StepOutput(state=new_state.decide(decision))

    def describe(self) -> str:
        return (
            f"{self.name}: floods known values for {self.rounds} rounds, then "
            "decides the minimum; correct under lockstep (synchronous) schedules"
        )
