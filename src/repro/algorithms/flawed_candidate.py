"""A "promising but flawed" ``(Sigma_k, Omega_k)`` candidate algorithm.

The Remarks after Theorem 1 point out a second use of the theorem: as a
*vetting tool* for candidate algorithms.  If a seemingly promising
algorithm has runs satisfying condition (dec-D) — i.e. the system can be
driven into ``k - 1`` partitions that decide on their own — then "the
algorithm is very likely flawed, as the remaining conditions are typically
easy to construct in sufficiently asynchronous systems".

:class:`FlawedQuorumKSet` is such a candidate.  It generalises the correct
``Sigma_{n-1}`` protocol (:mod:`repro.algorithms.sigma_kset`) to arbitrary
``k`` by relaxing the R-alone rule: instead of waiting for the singleton
quorum ``{i}``, process ``p_i`` decides its own value as soon as the
``Sigma_k`` quorum contains *no process with a smaller identifier*.  The
relaxation looks plausible ("nobody smaller is trusted, so nobody smaller
can be waiting on me") and indeed preserves validity and termination, but
it breaks k-agreement: under a partitioning failure-detector history the
smallest process of every block immediately satisfies the relaxed rule and
decides its own value, while another member of the same block can be
driven — by delivering it the value of an intermediate process first — to
decide a different value, producing ``k + 1`` distinct decisions in total.
The benchmark ``bench_vetting_tool.py`` and the Theorem 10 benchmark
exhibit exactly this schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.algorithms.base import Algorithm, ProcessState, StepOutput, broadcast
from repro.exceptions import ConfigurationError
from repro.types import ProcessId, Value

__all__ = ["FlawedQuorumKSetState", "FlawedQuorumKSet"]


@dataclass(frozen=True)
class FlawedQuorumKSetState(ProcessState):
    """Local state of the flawed candidate (mirrors the correct protocol)."""

    sent_val: bool = False
    smaller_values: FrozenSet[Tuple[ProcessId, Value]] = frozenset()
    dec_received: Optional[Value] = None


class FlawedQuorumKSet(Algorithm):
    """The flawed candidate: relaxed quorum rule, plausible but wrong.

    Parameters
    ----------
    n:
        System size.
    k:
        The k-set agreement parameter the candidate *claims* to solve with
        ``(Sigma_k, Omega_k)``.
    """

    requires_failure_detector = True

    def __init__(self, n: int, k: int):
        if n < 2:
            raise ConfigurationError(f"need at least 2 processes, got n={n}")
        if not 1 <= k <= n - 1:
            raise ConfigurationError(f"k must satisfy 1 <= k <= n-1, got k={k}, n={n}")
        self.n = n
        self.k = k
        self.name = f"flawed-quorum-kset(n={n}, k={k})"

    def initial_state(
        self, pid: ProcessId, processes: Sequence[ProcessId], proposal: Value
    ) -> FlawedQuorumKSetState:
        """Initial state; the process set must match the configured ``n``."""
        if len(processes) != self.n:
            raise ConfigurationError(
                f"{self.name} was configured for n={self.n} but the system has "
                f"{len(processes)} processes"
            )
        return FlawedQuorumKSetState(pid=pid, proposal=proposal)

    def step(
        self,
        state: FlawedQuorumKSetState,
        delivered: Tuple[object, ...],
        fd_output: Optional[object] = None,
    ) -> StepOutput:
        """One atomic step of the flawed candidate."""
        processes = tuple(range(1, self.n + 1))
        outgoing = []

        smaller = set(state.smaller_values)
        dec_received = state.dec_received
        for message in delivered:
            payload = message.payload
            if payload[0] == "VAL":
                _kind, sender, value = payload
                if sender < state.pid:
                    smaller.add((sender, value))
            elif payload[0] == "DEC" and dec_received is None:
                dec_received = payload[1]

        new_state = replace(
            state, smaller_values=frozenset(smaller), dec_received=dec_received
        )

        if not new_state.sent_val:
            outgoing.extend(
                broadcast(processes, ("VAL", state.pid, state.proposal), exclude=(state.pid,))
            )
            new_state = replace(new_state, sent_val=True)

        if not new_state.has_decided:
            quorum = self._quorum(fd_output)
            decision, fresh = self._decide(new_state, quorum)
            if decision is not None:
                new_state = new_state.decide(decision)
                if fresh:
                    outgoing.extend(
                        broadcast(processes, ("DEC", decision), exclude=(state.pid,))
                    )

        return StepOutput(state=new_state, messages=tuple(outgoing))

    @staticmethod
    def _quorum(fd_output: Optional[object]) -> Optional[FrozenSet[ProcessId]]:
        """Accept either a raw quorum or a ``(Sigma_k, Omega_k)`` product output."""
        if fd_output is None:
            return None
        if isinstance(fd_output, dict):
            fd_output = fd_output.get("sigma")
        if fd_output is None:
            return None
        return frozenset(fd_output)

    @staticmethod
    def _decide(
        state: FlawedQuorumKSetState, quorum: Optional[FrozenSet[ProcessId]]
    ) -> Tuple[Optional[Value], bool]:
        """The three decision rules; the third one is the flawed relaxation."""
        if state.dec_received is not None:
            return state.dec_received, False
        if state.smaller_values:
            smallest = min(state.smaller_values, key=lambda item: item[0])
            return smallest[1], True
        if quorum is not None and all(member >= state.pid for member in quorum):
            # Flaw: "no smaller process is trusted" is *not* the same as
            # "I am alone"; under partitioned quorums every block's smallest
            # member passes this test immediately.
            return state.proposal, True
        return None, False

    def describe(self) -> str:
        return (
            f"{self.name}: like the Sigma_(n-1) protocol but decides the own "
            "value as soon as the quorum contains no smaller identifier — "
            "plausible, terminating, and wrong (it admits the Theorem 1 "
            "partitioning runs)"
        )
