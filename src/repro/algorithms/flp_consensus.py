"""FLP consensus for initially dead processes (the ``k = 1`` baseline).

Fischer, Lynch and Paterson complement their impossibility result with a
protocol that solves consensus in an asynchronous system in which up to
``f`` processes may be initially dead, provided a majority of processes is
correct.  It is the two-stage knowledge-graph protocol with waiting
threshold ``L = ceil((n + 1) / 2)``: since ``2L > n`` there can be only
one source component (the *initial clique*), so all processes decide the
same value.  The paper's Section VI generalisation changes nothing except
the threshold; see
:class:`repro.algorithms.kset_initial_crash.KSetInitialCrash`.
"""

from __future__ import annotations

import math

from repro.algorithms.two_stage import TwoStageKnowledgeProtocol
from repro.exceptions import ConfigurationError

__all__ = ["FLPConsensus"]


class FLPConsensus(TwoStageKnowledgeProtocol):
    """The FLP initial-crash consensus protocol.

    Parameters
    ----------
    n:
        System size.
    f:
        Upper bound on the number of initially dead processes; must leave a
        correct majority (``n > 2 f``), otherwise the protocol's waiting
        threshold could exceed the number of processes guaranteed to be
        alive and termination would be lost.
    """

    def __init__(self, n: int, f: int):
        if f < 0:
            raise ConfigurationError(f"f must be >= 0, got {f}")
        if n <= 2 * f:
            raise ConfigurationError(
                f"FLP consensus requires a correct majority: need n > 2f, got n={n}, f={f}"
            )
        threshold = math.ceil((n + 1) / 2)
        super().__init__(n=n, threshold=threshold, name=f"flp-consensus(n={n}, f={f})")
        self.f = f

    def describe(self) -> str:
        return (
            f"{self.name}: two-stage FLP protocol with majority threshold "
            f"L={self.threshold}; solves consensus with up to {self.f} initially "
            f"dead processes"
        )
