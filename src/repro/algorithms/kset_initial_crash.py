"""The paper's Section VI algorithm: k-set agreement with initial crashes.

Taking the two-stage FLP protocol and lowering the waiting threshold to
``L = n - f`` yields a protocol that tolerates up to ``f`` initially dead
processes and decides at most ``floor(n / (n - f))`` distinct values —
the possibility half of Theorem 8.  Together with the theorem's
impossibility half (``k * n <= (k + 1) * f`` makes k-set agreement
unsolvable), the bound is tight: for every ``k >= floor(n / (n - f))``
(equivalently ``k * n > (k + 1) * f``) this protocol solves k-set
agreement, and for every smaller ``k`` nothing does.
"""

from __future__ import annotations

from repro.algorithms.two_stage import TwoStageKnowledgeProtocol
from repro.exceptions import ConfigurationError

__all__ = ["KSetInitialCrash"]


class KSetInitialCrash(TwoStageKnowledgeProtocol):
    """The Section VI protocol with threshold ``L = n - f``.

    Parameters
    ----------
    n:
        System size.
    f:
        Upper bound on the number of initially dead processes
        (``0 <= f < n``).
    """

    def __init__(self, n: int, f: int):
        if not 0 <= f < n:
            raise ConfigurationError(
                f"the initial-crash bound must satisfy 0 <= f < n, got f={f}, n={n}"
            )
        super().__init__(n=n, threshold=n - f, name=f"kset-initial-crash(n={n}, f={f})")
        self.f = f

    @property
    def achieved_k(self) -> int:
        """The smallest ``k`` for which the protocol solves k-set agreement.

        Equals ``floor(n / (n - f))``, the Lemma 6 bound on the number of
        source components of the stage-1 knowledge graph.
        """
        return self.max_distinct_decisions()

    def describe(self) -> str:
        return (
            f"{self.name}: Section VI protocol, threshold L=n-f={self.threshold}; "
            f"solves k-set agreement for every k >= {self.achieved_k} with up to "
            f"{self.f} initially dead processes"
        )
