"""The algorithm interface: deterministic state machines over messages.

Section II of the paper models every process as a deterministic state
machine whose local state contains a proposal ``x_p`` and a write-once
output ``y_p`` (initially the sentinel ``bottom``).  A *step* atomically
consumes the current state, a (possibly empty) set of messages from the
process's buffer and — when available — a failure-detector value, and
yields a new state; a deterministic *message sending function* determines
the messages to be sent, each of which is placed into the receiver's
buffer.

:class:`Algorithm` captures exactly that interface.  Implementations are
pure: :meth:`Algorithm.step` must not mutate the input state, must return
a fresh state for the same process, and must respect the write-once nature
of the decision.  The executor enforces these contracts at runtime.

:class:`RestrictedAlgorithm` implements Definition 1: the restriction
``A|D`` drops all messages addressed to processes outside ``D`` from the
message sending function but leaves the code — including its use of
``|Pi|`` for the system size — untouched.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from repro.exceptions import AlgorithmError, ConfigurationError
from repro.types import UNDECIDED, ProcessId, Value

__all__ = [
    "ProcessState",
    "Outgoing",
    "StepOutput",
    "send",
    "broadcast",
    "Algorithm",
    "RestrictedAlgorithm",
]


@dataclass(frozen=True)
class ProcessState:
    """Base class of per-process algorithm states.

    Concrete algorithms subclass this dataclass with their own fields.
    The three fields below mirror the paper's model: the process identity,
    its proposal ``x_p`` and its write-once output ``y_p`` (``UNDECIDED``
    until the decision).
    """

    pid: ProcessId
    proposal: Value
    decision: Value = UNDECIDED

    @property
    def has_decided(self) -> bool:
        """``True`` once the write-once output has been set."""
        return self.decision is not UNDECIDED

    def decide(self, value: Value) -> "ProcessState":
        """Return a copy of the state with the decision set to ``value``.

        Deciding twice with a different value raises
        :class:`repro.exceptions.AlgorithmError`; deciding the same value
        again is a no-op (the output is write-once).
        """
        if self.has_decided:
            if self.decision != value:
                raise AlgorithmError(
                    f"p{self.pid} attempted to change its decision from "
                    f"{self.decision!r} to {value!r}"
                )
            return self
        return dataclasses.replace(self, decision=value)


@dataclass(frozen=True)
class Outgoing:
    """One message produced by the message sending function."""

    receiver: ProcessId
    payload: object


@dataclass(frozen=True)
class StepOutput:
    """Result of one atomic step: the new state plus outgoing messages."""

    state: ProcessState
    messages: Tuple[Outgoing, ...] = ()


def send(receiver: ProcessId, payload: object) -> Outgoing:
    """Convenience constructor for a point-to-point message."""
    return Outgoing(receiver=receiver, payload=payload)


def broadcast(
    processes: Iterable[ProcessId], payload: object, *, exclude: Iterable[ProcessId] = ()
) -> Tuple[Outgoing, ...]:
    """Messages to every process in ``processes`` except those in ``exclude``.

    The paper's favourable transmission parameter lets a process broadcast
    in a single atomic step; in the simulator a broadcast is simply the
    tuple of point-to-point messages produced within one step.
    """
    excluded = set(exclude)
    return tuple(Outgoing(receiver=p, payload=payload) for p in processes if p not in excluded)


class Algorithm(abc.ABC):
    """A distributed algorithm in the Section II sense.

    Subclasses provide :meth:`initial_state` (the initial local state for a
    proposal) and :meth:`step` (the combined transition relation and
    message sending function).  The class attribute
    :attr:`requires_failure_detector` declares whether the algorithm
    queries a failure detector at the beginning of each step; the executor
    refuses to run detector-dependent algorithms in models without one.
    """

    #: Human-readable algorithm name (subclasses override).
    name: str = "algorithm"
    #: Whether :meth:`step` expects a failure-detector output.
    requires_failure_detector: bool = False

    @abc.abstractmethod
    def initial_state(
        self, pid: ProcessId, processes: Sequence[ProcessId], proposal: Value
    ) -> ProcessState:
        """Return the initial state of process ``pid``.

        ``processes`` is the full process set ``Pi`` of the system the
        algorithm was designed for — a restricted execution still passes
        the original ``Pi`` (Definition 1 keeps the code, and in particular
        its use of ``|Pi|``, unchanged).
        """

    @abc.abstractmethod
    def step(
        self,
        state: ProcessState,
        delivered: Tuple[object, ...],
        fd_output: Optional[object] = None,
    ) -> StepOutput:
        """Perform one atomic step.

        Parameters
        ----------
        state:
            The current local state (never mutated).
        delivered:
            The messages removed from the process's buffer for this step —
            a tuple of :class:`repro.simulation.message.Message` objects
            (algorithms usually only look at ``.payload`` and ``.sender``).
        fd_output:
            The failure-detector value for this step, or ``None`` when the
            model has no detector.
        """

    # -- conveniences ----------------------------------------------------

    def describe(self) -> str:
        """One-line description used by traces and reports."""
        detector = " (queries a failure detector)" if self.requires_failure_detector else ""
        return f"{self.name}{detector}"

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class RestrictedAlgorithm(Algorithm):
    """The restriction ``A|D`` of Definition 1.

    Wraps an algorithm designed for a system ``Pi`` so it can run in the
    restricted system ``<D>``: the wrapped code is executed unchanged
    (including its knowledge of the original ``Pi``), but every message
    addressed to a process outside ``D`` is dropped from the output of the
    message sending function.
    """

    def __init__(
        self,
        inner: Algorithm,
        full_processes: Sequence[ProcessId],
        subset: Iterable[ProcessId],
    ):
        members = frozenset(subset)
        if not members:
            raise ConfigurationError("the restriction subset D must be nonempty")
        if not members.issubset(set(full_processes)):
            raise ConfigurationError(
                "the restriction subset D must be a subset of the original process set"
            )
        self.inner = inner
        self.full_processes: Tuple[ProcessId, ...] = tuple(full_processes)
        self.subset: frozenset[ProcessId] = members
        self.name = f"{inner.name}|D"
        self.requires_failure_detector = inner.requires_failure_detector

    def initial_state(
        self, pid: ProcessId, processes: Sequence[ProcessId], proposal: Value
    ) -> ProcessState:
        """Delegate to the inner algorithm, always passing the original ``Pi``."""
        if pid not in self.subset:
            raise ConfigurationError(
                f"p{pid} is not part of the restricted system D={sorted(self.subset)}"
            )
        return self.inner.initial_state(pid, self.full_processes, proposal)

    def step(
        self,
        state: ProcessState,
        delivered: Tuple[object, ...],
        fd_output: Optional[object] = None,
    ) -> StepOutput:
        """Run the inner step and drop messages leaving ``D``."""
        output = self.inner.step(state, delivered, fd_output)
        kept = tuple(m for m in output.messages if m.receiver in self.subset)
        return StepOutput(state=output.state, messages=kept)
