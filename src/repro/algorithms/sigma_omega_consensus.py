"""Consensus from ``(Sigma, Omega)`` — the ``k = 1`` half of Corollary 13.

``(Sigma_1, Omega_1) = (Sigma, Omega)`` is the weakest failure detector
for message-passing consensus; Corollary 13 uses the classic result that
it is *sufficient*.  This module implements a Paxos-style protocol in the
paper's step model:

* the ``Omega`` component elects the (eventually unique and correct)
  leader — a process considers itself leader exactly when the oracle
  outputs the singleton containing its own identifier;
* the ``Sigma`` component provides quorums — a leader considers a phase
  complete when the set of processes it heard from *contains the quorum
  currently returned by* ``Sigma``.  Because any two ``Sigma`` outputs
  intersect, any two such response sets intersect, which gives the usual
  Paxos safety argument; because ``Sigma`` eventually returns only correct
  processes, a correct leader's phases eventually complete, which gives
  termination once ``Omega`` has stabilised.

The protocol proceeds in ballots ``(round, leader id)`` ordered
lexicographically: *prepare/promise* (phase 1), *accept/accepted*
(phase 2), then a final ``DECIDE`` broadcast that every process adopts.
A leader whose ballot is rejected (``NACK``) retries with a higher round.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.algorithms.base import Algorithm, Outgoing, ProcessState, StepOutput, broadcast, send
from repro.exceptions import ConfigurationError
from repro.types import ProcessId, Value

__all__ = ["Ballot", "SigmaOmegaState", "SigmaOmegaConsensus"]

#: Ballots are (round, proposer id) pairs compared lexicographically.
Ballot = Tuple[int, ProcessId]

#: The "nothing accepted yet" ballot.
ZERO_BALLOT: Ballot = (0, 0)


@dataclass(frozen=True)
class SigmaOmegaState(ProcessState):
    """Local state of the ``(Sigma, Omega)`` consensus protocol."""

    # acceptor side
    promised: Ballot = ZERO_BALLOT
    accepted_ballot: Ballot = ZERO_BALLOT
    accepted_value: Optional[Value] = None
    # leader side
    phase: str = "idle"  # "idle" | "prepare" | "accept"
    current_ballot: Ballot = ZERO_BALLOT
    chosen_value: Optional[Value] = None
    promises: FrozenSet[Tuple[ProcessId, Ballot, Optional[Value]]] = frozenset()
    accepts: FrozenSet[ProcessId] = frozenset()
    max_seen_round: int = 0
    # learning
    dec_received: Optional[Value] = None


class SigmaOmegaConsensus(Algorithm):
    """Paxos-style uniform consensus driven by ``(Sigma, Omega)``.

    Parameters
    ----------
    n:
        System size the protocol is configured for.
    """

    requires_failure_detector = True

    def __init__(self, n: int):
        if n < 1:
            raise ConfigurationError(f"need at least one process, got n={n}")
        self.n = n
        self.name = f"sigma-omega-consensus(n={n})"

    def initial_state(
        self, pid: ProcessId, processes: Sequence[ProcessId], proposal: Value
    ) -> SigmaOmegaState:
        """Initial state; the process set must match the configured ``n``."""
        if len(processes) != self.n:
            raise ConfigurationError(
                f"{self.name} was configured for n={self.n} but the system has "
                f"{len(processes)} processes"
            )
        return SigmaOmegaState(pid=pid, proposal=proposal)

    # -- step ------------------------------------------------------------------

    def step(
        self,
        state: SigmaOmegaState,
        delivered: Tuple[object, ...],
        fd_output: Optional[object] = None,
    ) -> StepOutput:
        """One atomic step: handle messages, then run the leader logic."""
        sigma, omega = self._detector_outputs(fd_output)
        outgoing: list[Outgoing] = []

        new_state = state
        for message in delivered:
            new_state, replies = self._handle_message(new_state, message)
            outgoing.extend(replies)

        if new_state.dec_received is not None and not new_state.has_decided:
            new_state = new_state.decide(new_state.dec_received)

        is_leader = omega is not None and omega == frozenset({state.pid})
        if is_leader and not new_state.has_decided and sigma is not None:
            new_state, leader_messages = self._leader_logic(new_state, sigma)
            outgoing.extend(leader_messages)
            if new_state.dec_received is not None and not new_state.has_decided:
                new_state = new_state.decide(new_state.dec_received)

        return StepOutput(state=new_state, messages=tuple(outgoing))

    # -- message handling ----------------------------------------------------

    def _handle_message(
        self, state: SigmaOmegaState, message
    ) -> Tuple[SigmaOmegaState, Tuple[Outgoing, ...]]:
        payload = message.payload
        kind = payload[0]
        replies: Tuple[Outgoing, ...] = ()

        if kind == "PREPARE":
            _kind, ballot, leader = payload
            if ballot > state.promised:
                state = replace(state, promised=ballot)
                replies = (
                    send(
                        leader,
                        ("PROMISE", ballot, state.accepted_ballot, state.accepted_value, state.pid),
                    ),
                )
            else:
                replies = (send(leader, ("NACK", ballot, state.promised, state.pid)),)

        elif kind == "PROMISE":
            _kind, ballot, accepted_ballot, accepted_value, sender = payload
            if ballot == state.current_ballot and state.phase == "prepare":
                promises = set(state.promises)
                promises.add((sender, accepted_ballot, accepted_value))
                state = replace(state, promises=frozenset(promises))

        elif kind == "ACCEPT":
            _kind, ballot, value, leader = payload
            if ballot >= state.promised:
                state = replace(
                    state, promised=ballot, accepted_ballot=ballot, accepted_value=value
                )
                replies = (send(leader, ("ACCEPTED", ballot, state.pid)),)
            else:
                replies = (send(leader, ("NACK", ballot, state.promised, state.pid)),)

        elif kind == "ACCEPTED":
            _kind, ballot, sender = payload
            if ballot == state.current_ballot and state.phase == "accept":
                accepts = set(state.accepts)
                accepts.add(sender)
                state = replace(state, accepts=frozenset(accepts))

        elif kind == "NACK":
            _kind, ballot, their_promised, _sender = payload
            max_seen = max(state.max_seen_round, their_promised[0])
            if ballot == state.current_ballot and state.phase in ("prepare", "accept"):
                state = replace(state, phase="idle", max_seen_round=max_seen)
            else:
                state = replace(state, max_seen_round=max_seen)

        elif kind == "DECIDE":
            _kind, value = payload
            if state.dec_received is None:
                state = replace(state, dec_received=value)

        return state, replies

    # -- leader logic --------------------------------------------------------

    def _leader_logic(
        self, state: SigmaOmegaState, sigma: FrozenSet[ProcessId]
    ) -> Tuple[SigmaOmegaState, Tuple[Outgoing, ...]]:
        processes = tuple(range(1, self.n + 1))
        outgoing: list[Outgoing] = []

        if state.phase == "idle":
            next_round = (
                max(state.current_ballot[0], state.promised[0], state.max_seen_round) + 1
            )
            ballot: Ballot = (next_round, state.pid)
            own_promise = (state.pid, state.accepted_ballot, state.accepted_value)
            state = replace(
                state,
                phase="prepare",
                current_ballot=ballot,
                promised=max(state.promised, ballot),
                promises=frozenset({own_promise}),
                accepts=frozenset(),
                chosen_value=None,
            )
            outgoing.extend(
                broadcast(processes, ("PREPARE", ballot, state.pid), exclude=(state.pid,))
            )
            return state, tuple(outgoing)

        if state.phase == "prepare":
            responders = frozenset(p for p, _b, _v in state.promises)
            if sigma.issubset(responders):
                best = max(state.promises, key=lambda item: item[1])
                value = best[2] if best[1] > ZERO_BALLOT else state.proposal
                ballot = state.current_ballot
                state = replace(
                    state,
                    phase="accept",
                    chosen_value=value,
                    accepts=frozenset({state.pid}),
                    accepted_ballot=ballot,
                    accepted_value=value,
                )
                outgoing.extend(
                    broadcast(
                        processes, ("ACCEPT", ballot, value, state.pid), exclude=(state.pid,)
                    )
                )
            return state, tuple(outgoing)

        if state.phase == "accept":
            if sigma.issubset(state.accepts):
                value = state.chosen_value
                state = replace(state, dec_received=value)
                outgoing.extend(
                    broadcast(processes, ("DECIDE", value), exclude=(state.pid,))
                )
            return state, tuple(outgoing)

        return state, tuple(outgoing)

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _detector_outputs(
        fd_output: Optional[object],
    ) -> Tuple[Optional[FrozenSet[ProcessId]], Optional[FrozenSet[ProcessId]]]:
        """Extract the ``Sigma`` and ``Omega`` components of the detector output."""
        if fd_output is None:
            return None, None
        if isinstance(fd_output, dict):
            sigma = fd_output.get("sigma")
            omega = fd_output.get("omega")
            return (
                frozenset(sigma) if sigma is not None else None,
                frozenset(omega) if omega is not None else None,
            )
        return frozenset(fd_output), None

    def describe(self) -> str:
        return (
            f"{self.name}: Paxos-style ballots; Omega elects the leader, Sigma "
            "supplies intersecting quorums; decides via a final DECIDE broadcast"
        )
