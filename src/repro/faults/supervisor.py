"""The supervised dispatch loop shared by the campaign backends.

:class:`Supervisor` owns the part of campaign execution that has to stay
correct when infrastructure misbehaves: it submits tasks (``(fn, specs,
slot indices)`` triples) to a ``multiprocessing`` pool — or runs them
inline — and guarantees that **every slot settles exactly once**, no
matter how many times its task crashes, hangs, raises or is re-queued:

* every wait on the completion queue is bounded by
  :attr:`~repro.faults.plan.RetryPolicy.wake_seconds`, so a SIGKILLed
  worker (whose ``apply_async`` callbacks never fire) can never park the
  campaign in an indefinite ``get()``;
* every in-flight task carries a deadline; a task with no result by its
  deadline is presumed lost and re-queued, while the original stays
  known as a *zombie* so a late result is still accepted — first
  completion wins, the settled-slot set makes the loser a no-op;
* worker deaths are detected by polling the pool's worker pids; a death
  tightens all in-flight deadlines to a short grace, so lost chunks are
  re-queued promptly instead of after a full timeout;
* failures are retried under the :class:`~repro.faults.plan.RetryPolicy`
  with exponential backoff; a task that exhausts its attempts is
  **bisected**, and a single spec that still fails is **quarantined**
  into an ``"error"`` outcome (plus a synthetic progress event so the
  journal ledger stays exact) instead of aborting the campaign;
* if the pool itself breaks (``apply_async`` starts raising), the
  supervisor degrades to in-process execution and finishes the campaign.

The module deliberately imports nothing from :mod:`repro.campaign` at
the top level — the campaign runner imports *it* — so the campaign
types it needs (outcomes, events, fingerprints) are imported inside the
functions that build them.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.faults.plan import FaultPlan, FaultStats, RetryPolicy
from repro.telemetry.logs import get_logger

__all__ = ["DispatchStats", "QuarantineError", "SupervisedTask", "Supervisor"]

#: A unit of supervised work: ``fn(specs, ...)`` filling ``indices``.
TaskSpec = Tuple[Callable, Tuple, Tuple[int, ...]]

#: ``record(indices, outcomes, timings)`` — the runner's slot writer.
RecordHook = Callable[[Sequence[int], Sequence, Sequence[float]], None]


@dataclass
class DispatchStats:
    """What shipping the campaign's tasks cost (pool dispatch only).

    Orchestration accounting, not a result property — attached to
    :class:`~repro.campaign.runner.CampaignResult` with ``compare=False``
    exactly like :class:`~repro.faults.plan.FaultStats`.  The in-process
    backends ship nothing, so their stats stay zero.

    ``queue_seconds`` is the summed per-task dispatch latency: time from
    submission to result callback minus the in-worker scenario seconds —
    queue wait, (un)pickling, descriptor expansion and callback delivery
    together.  ``wire_bytes`` is what the compact descriptors actually
    cost on the pipe; ``encode_seconds`` what encoding them cost the
    parent.
    """

    tasks_shipped: int = 0
    scenarios_shipped: int = 0
    wire_bytes: int = 0
    encode_seconds: float = 0.0
    queue_seconds: float = 0.0

    def any(self) -> bool:
        return self.tasks_shipped > 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "tasks_shipped": self.tasks_shipped,
            "scenarios_shipped": self.scenarios_shipped,
            "wire_bytes": self.wire_bytes,
            "encode_seconds": round(self.encode_seconds, 6),
            "queue_seconds": round(self.queue_seconds, 6),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DispatchStats":
        return cls(
            tasks_shipped=int(data.get("tasks_shipped", 0)),
            scenarios_shipped=int(data.get("scenarios_shipped", 0)),
            wire_bytes=int(data.get("wire_bytes", 0)),
            encode_seconds=float(data.get("encode_seconds", 0.0)),
            queue_seconds=float(data.get("queue_seconds", 0.0)),
        )


class QuarantineError(RuntimeError):
    """A spec failed persistently and was quarantined by the supervisor."""


class _PoolBroken(RuntimeError):
    """Internal: the pool rejected a submission; degrade to in-process."""


class SupervisedTask:
    """One submission-unit tracked by the supervisor."""

    __slots__ = ("task_id", "fn", "specs", "indices", "attempt",
                 "eligible_at", "deadline", "submitted_at")

    def __init__(self, task_id: int, fn: Callable, specs: Tuple,
                 indices: Tuple[int, ...], attempt: int = 1,
                 eligible_at: float = 0.0) -> None:
        self.task_id = task_id
        self.fn = fn
        self.specs = specs
        self.indices = indices
        self.attempt = attempt
        self.eligible_at = eligible_at
        self.deadline = float("inf")
        self.submitted_at = 0.0


class Supervisor:
    """Fault-tolerant executor of ``(fn, specs, indices)`` tasks.

    One instance supervises one campaign run: it accumulates the
    :class:`~repro.faults.plan.FaultStats` for the run and remembers
    which slots already settled (so retries, zombies and the in-process
    fallback can never double-deliver an outcome).
    """

    def __init__(
        self,
        *,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        stats: Optional[FaultStats] = None,
        record: RecordHook,
        progress: Optional[Callable] = None,
        telemetry=None,
        max_outstanding: int = 4,
        pack: Optional[Callable[[Tuple], Any]] = None,
        dispatch: Optional[DispatchStats] = None,
    ) -> None:
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self.stats = stats if stats is not None else FaultStats()
        self._record = record
        self._progress = progress
        self._telemetry = telemetry
        self._max_outstanding = max(1, max_outstanding)
        # ``pack`` compresses a task's spec tuple into the descriptor that
        # actually crosses the pool pipe (the runner passes the wire
        # codec's ``encode_chunk``); tasks keep their *real* specs
        # parent-side so retry and bisection work on specs and re-encode
        # on resubmission.  Inline execution never packs.
        self._pack = pack
        self.dispatch = dispatch if dispatch is not None else DispatchStats()
        self._log = get_logger("faults.supervisor")
        self._settled: Set[int] = set()
        self._next_id = 0

    # -- bookkeeping -------------------------------------------------------

    def _new_task(self, fn: Callable, specs: Tuple,
                  indices: Tuple[int, ...], attempt: int = 1) -> SupervisedTask:
        self._next_id += 1
        return SupervisedTask(self._next_id, fn, specs, indices, attempt)

    def _settle(self, indices: Sequence[int], outcomes: Sequence,
                timings: Sequence[float]) -> None:
        """Record outcomes for slots not yet settled (first result wins)."""
        fresh = [
            (index, outcome, seconds)
            for index, outcome, seconds in zip(indices, outcomes, timings)
            if index not in self._settled
        ]
        if not fresh:
            return
        self._settled.update(index for index, _, _ in fresh)
        self._record(
            [index for index, _, _ in fresh],
            [outcome for _, outcome, _ in fresh],
            [seconds for _, _, seconds in fresh],
        )

    def _emit_synthetic(self, spec, outcome) -> None:
        """Ship a parent-side event for a scenario no worker reported.

        Quarantined specs never reach a worker's event emitter (the
        injected fault fires first), but the journal ledger still needs
        exactly one scenario record for them.
        """
        if self._progress is None:
            return
        from repro.campaign.runner import ScenarioEvent
        from repro.provenance.usage import ResourceUsage
        from repro.store.fingerprint import fingerprint_spec

        try:
            self._progress(ScenarioEvent(
                label=spec.label(),
                verdict=outcome.verdict,
                seconds=0.0,
                worker_pid=os.getpid(),
                fingerprint=fingerprint_spec(spec),
                usage=ResourceUsage.of_outcome(outcome, seconds=0.0),
            ))
        except Exception:  # noqa: BLE001 - progress must never break a campaign
            pass

    def _quarantine(self, task: SupervisedTask, exc: BaseException) -> None:
        from repro.campaign.spec import ScenarioOutcome

        spec = task.specs[0]
        self.stats.quarantined += 1
        self._log.warning(
            "quarantining %s after %d attempt(s): %s: %s",
            spec.label(), task.attempt, type(exc).__name__, exc)
        outcome = ScenarioOutcome.from_error(spec, QuarantineError(
            f"quarantined after {task.attempt} attempt(s); "
            f"last failure: {type(exc).__name__}: {exc}"
        ))
        self._settle(task.indices, [outcome], [0.0])
        self._emit_synthetic(spec, outcome)

    def _after_failure(self, task: SupervisedTask,
                       exc: BaseException) -> List[SupervisedTask]:
        """Retry, bisect or quarantine a failed task.

        Returns the replacement tasks to queue (empty on quarantine).
        Bisected halves restart at attempt 1: the failure is re-attributed
        at the finer granularity, which is what drills a poisoned chunk
        down to the single guilty spec.
        """
        if task.attempt < self.retry.max_attempts:
            self.stats.task_retries += 1
            task.attempt += 1
            task.eligible_at = time.monotonic() + self.retry.backoff_for(task.attempt - 1)
            return [task]
        if len(task.specs) > 1:
            self.stats.bisections += 1
            middle = len(task.specs) // 2
            self._log.warning(
                "bisecting task of %d specs after %d failed attempts (%s)",
                len(task.specs), task.attempt, type(exc).__name__)
            return [
                self._new_task(task.fn, task.specs[:middle], task.indices[:middle]),
                self._new_task(task.fn, task.specs[middle:], task.indices[middle:]),
            ]
        self._quarantine(task, exc)
        return []

    # -- in-process execution ----------------------------------------------

    def run_inline(self, tasks: Iterable[TaskSpec]) -> None:
        """Execute tasks in the calling process, one at a time.

        ``tasks`` is consumed lazily, so a generator that consults
        ``should_skip`` sees all previously delivered outcomes before
        producing the next task — the same submission-time semantics as
        the pool path.
        """
        for fn, specs, indices in tasks:
            if not specs:
                continue
            self._run_inline_one(self._new_task(fn, tuple(specs), tuple(indices)))

    def _run_inline_one(self, task: SupervisedTask) -> None:
        stack = [task]
        while stack:
            current = stack.pop(0)
            try:
                outcomes, timings = current.fn(
                    current.specs, self._progress, self._telemetry,
                    attempt=current.attempt, faults=self.faults)
            except Exception as exc:  # noqa: BLE001 - that's the job
                # No backoff sleeps inline: injected faults are
                # deterministic per attempt, waiting buys nothing.
                stack[:0] = self._after_failure(current, exc)
            else:
                self._settle(current.indices, list(outcomes), list(timings))

    # -- pool execution ----------------------------------------------------

    def run_pool(self, pool, tasks: Iterable[TaskSpec]) -> None:
        """Supervised dispatch of ``tasks`` onto a multiprocessing pool.

        Never blocks unboundedly: the completion wait is capped at
        ``wake_seconds``, after which worker liveness and task deadlines
        are re-checked.  On pool breakage the remaining work is finished
        in-process (:attr:`FaultStats.pool_failures` counts it).
        """
        done: "queue_module.SimpleQueue" = queue_module.SimpleQueue()
        inflight: Dict[int, SupervisedTask] = {}
        zombies: Dict[int, Tuple[int, ...]] = {}
        waiting: List[SupervisedTask] = []
        pending: Iterator[TaskSpec] = iter(tasks)
        exhausted = False
        known_pids = self._pool_pids(pool) or set()
        # Wedge detection: a worker killed while *idle* in the shared
        # task queue's ``get()`` dies holding the queue's reader lock,
        # starving every other worker forever — no callback will ever
        # arrive again.  Track when the pool last showed signs of life
        # (a submission or a completed callback) and degrade to inline
        # execution once the silence outlasts any legitimate task.
        last_callback = time.monotonic()

        def submit(task: SupervisedTask) -> None:
            nonlocal last_callback
            task.deadline = time.monotonic() + self.retry.task_timeout_seconds
            task_id = task.task_id
            payload: Any = task.specs
            if self._pack is not None:
                encode_started = time.perf_counter()
                payload = self._pack(task.specs)
                self.dispatch.encode_seconds += time.perf_counter() - encode_started
            try:
                pool.apply_async(
                    task.fn, (payload,), {"attempt": task.attempt},
                    callback=lambda result, t=task_id: done.put((t, result, None)),
                    error_callback=lambda exc, t=task_id: done.put((t, None, exc)),
                )
            except Exception as exc:  # pool closed/broken
                waiting.append(task)
                raise _PoolBroken from exc
            self.dispatch.tasks_shipped += 1
            self.dispatch.scenarios_shipped += len(task.specs)
            self.dispatch.wire_bytes += len(
                pickle.dumps(payload, pickle.HIGHEST_PROTOCOL))
            inflight[task_id] = task
            task.submitted_at = time.monotonic()
            last_callback = task.submitted_at

        def next_ready() -> Optional[SupervisedTask]:
            nonlocal exhausted
            now = time.monotonic()
            for position, candidate in enumerate(waiting):
                if candidate.eligible_at <= now:
                    return waiting.pop(position)
            if not exhausted:
                for fn, specs, indices in pending:
                    if not specs:
                        continue
                    return self._new_task(fn, tuple(specs), tuple(indices))
                exhausted = True
            return None

        try:
            while True:
                while len(inflight) < self._max_outstanding:
                    task = next_ready()
                    if task is None:
                        break
                    submit(task)
                if not inflight:
                    if waiting:
                        # Everything is backing off; sleep toward the
                        # earliest eligibility, never past one tick.
                        delay = min(t.eligible_at for t in waiting) - time.monotonic()
                        if delay > 0:
                            time.sleep(min(delay, self.retry.wake_seconds))
                        continue
                    return  # all slots settled, nothing pending
                try:
                    task_id, result, exc = done.get(timeout=self.retry.wake_seconds)
                except queue_module.Empty:
                    self._check_liveness(pool, inflight, zombies, waiting, known_pids)
                    wedge_after = (self.retry.task_timeout_seconds
                                   + self.retry.death_grace_seconds)
                    if (self.stats.worker_deaths and inflight
                            and time.monotonic() - last_callback > wedge_after):
                        self._log.error(
                            "pool silent for %.1fs after a worker death — "
                            "likely wedged on the task-queue lock the dead "
                            "worker held; degrading to in-process execution",
                            wedge_after)
                        raise _PoolBroken
                    continue
                last_callback = time.monotonic()
                task = inflight.pop(task_id, None)
                if task is not None:
                    if exc is None:
                        outcomes, timings = result
                        self.dispatch.queue_seconds += max(
                            0.0,
                            last_callback - task.submitted_at - sum(timings))
                        self._settle(task.indices, list(outcomes), list(timings))
                    else:
                        waiting.extend(self._after_failure(task, exc))
                    continue
                zombie_indices = zombies.pop(task_id, None)
                if zombie_indices is not None and exc is None:
                    # A presumed-lost task completed after all: accept
                    # the late result; already-settled slots are no-ops.
                    outcomes, timings = result
                    self._settle(zombie_indices, list(outcomes), list(timings))
                # A zombie *failure* needs nothing: its replacement was
                # queued when the deadline expired.
        except _PoolBroken:
            self.stats.pool_failures += 1
            self._log.error(
                "worker pool broke mid-campaign; finishing %d in-flight and "
                "%d queued task(s) in-process",
                len(inflight), len(waiting))
            leftovers: List[SupervisedTask] = list(inflight.values()) + waiting
            inflight.clear()
            if not exhausted:
                for fn, specs, indices in pending:
                    if specs:
                        leftovers.append(
                            self._new_task(fn, tuple(specs), tuple(indices)))
            for task in leftovers:
                self._run_inline_one(task)

    def _check_liveness(self, pool, inflight: Dict[int, SupervisedTask],
                        zombies: Dict[int, Tuple[int, ...]],
                        waiting: List[SupervisedTask],
                        known_pids: Set[int]) -> None:
        """Detect dead workers and expired deadlines; re-queue their work."""
        now = time.monotonic()
        pids = self._pool_pids(pool)
        if pids is not None:
            dead = known_pids - pids
            if dead:
                self.stats.worker_deaths += len(dead)
                self._log.warning(
                    "%d worker(s) died (pids %s); re-queueing their work "
                    "within %.1fs", len(dead), sorted(dead),
                    self.retry.death_grace_seconds)
                # The pool cannot say which task the dead worker held, so
                # tighten every in-flight deadline: live tasks re-settle
                # harmlessly, the lost one is re-queued after the grace.
                cutoff = now + self.retry.death_grace_seconds
                for task in inflight.values():
                    task.deadline = min(task.deadline, cutoff)
            known_pids.clear()
            known_pids.update(pids)
        expired = [task_id for task_id, task in inflight.items()
                   if task.deadline <= now]
        for task_id in expired:
            task = inflight.pop(task_id)
            zombies[task_id] = task.indices
            self.stats.task_timeouts += 1
            self._log.warning(
                "task %d (%d spec(s), attempt %d) produced no result before "
                "its deadline; re-queueing", task_id, len(task.specs),
                task.attempt)
            clone = self._new_task(task.fn, task.specs, task.indices,
                                   attempt=task.attempt)
            waiting.extend(self._after_failure(
                clone, TimeoutError("no result before task deadline")))

    @staticmethod
    def _pool_pids(pool) -> Optional[Set[int]]:
        """Current worker pids, or ``None`` when the pool hides them."""
        try:
            return {proc.pid for proc in pool._pool}
        except Exception:  # pragma: no cover - non-CPython pool internals
            return None
